//! The lazy-frontier contract: fusing BFS expansion into the search loop
//! must change *work*, never *answers*.
//!
//! Every property here compares the lazy production path against an
//! **eager replay** — the original whole-tree-first implementation kept as
//! the oracle (`top_k_merge_join` for single-source queries,
//! `top_k_from_set_replay` for restart sets, and for the random-root
//! variant the path itself drains the tree eagerly since its bound can
//! never terminate). Under the scalar kernel the two must be bit-identical
//! in results and agree on every work counter; the traversal counters obey
//! the lazy semantics:
//!
//! * run-to-completion ⇒ identical stats, `frontier_expanded == reachable`
//!   (the full reachable count, as before);
//! * early termination ⇒ `reachable` is the discovered-so-far count
//!   (`<=` the eager full count) and `frontier_expanded` is *strictly*
//!   below it — the layer the search died in was discovered, never
//!   expanded, and everything deeper never even enumerated.
//!
//! Graphs span the three generator families the paper's datasets map to
//! (ER: flat degrees; BA: heavy-tailed hubs; RMAT: skewed + community
//! structure), crossed with orderings and k.

use kdash_core::{GatherKernel, IndexOptions, KdashIndex, NodeOrdering, Searcher, TopKResult};
use kdash_datagen::{barabasi_albert, erdos_renyi, rmat, RmatParams};
use kdash_graph::{GraphBuilder, NodeId};
use kdash_harness::check_lazy_vs_eager;
use proptest::prelude::*;

/// ER, BA and RMAT graphs small enough to build dozens of indexes per run.
fn graph_strategy() -> impl Strategy<Value = kdash_graph::CsrGraph> {
    (0usize..3, 12usize..80, 1usize..5, any::<u64>()).prop_map(|(family, n, density, seed)| {
        match family {
            0 => erdos_renyi(n, n * density, seed),
            1 => barabasi_albert(n, density.min(n - 1).max(1), seed),
            _ => {
                // Scale 4-6 ⇒ 16-64 nodes, edge factor from `density`.
                let scale = 4 + (n % 3) as u32;
                rmat(scale, (1usize << scale) * density, RmatParams::default(), seed)
            }
        }
    })
}

fn ordering_for(which: usize) -> NodeOrdering {
    [
        NodeOrdering::Natural,
        NodeOrdering::Degree,
        NodeOrdering::Hybrid,
        NodeOrdering::ReverseCuthillMcKee,
    ][which % 4]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Single-source top-k: lazy search ≡ eager merge-join replay, across
    /// generator families × orderings × k.
    #[test]
    fn lazy_top_k_matches_eager_replay((graph, q_sel, k_sel, which) in
        (graph_strategy(), any::<u32>(), 1usize..14, 0usize..4)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let index = KdashIndex::build(
            &graph,
            IndexOptions { ordering: ordering_for(which), ..Default::default() },
        ).unwrap();
        let mut searcher = Searcher::with_kernel(&index, GatherKernel::Scalar).unwrap();
        for k in [k_sel, n + 2] {
            let lazy = searcher.top_k(q, k).unwrap();
            let eager = index.top_k_merge_join(q, k).unwrap();
            if let Err(msg) = check_lazy_vs_eager(&lazy, &eager) {
                prop_assert!(false, "n={} q={} k={}: {}", n, q, k, msg);
            }
        }
    }

    /// Restart sets (multi-root frontier): lazy search ≡ the eager
    /// multi-root replay, including the layer-0 estimator chain.
    #[test]
    fn lazy_restart_set_matches_eager_replay((graph, picks, k_sel, which) in
        (graph_strategy(), proptest::collection::vec(any::<u32>(), 1..4), 1usize..10, 0usize..4)) {
        let n = graph.num_nodes();
        let mut sources: Vec<NodeId> = picks.iter().map(|&p| (p as usize % n) as NodeId).collect();
        sources.sort_unstable();
        sources.dedup();
        let index = KdashIndex::build(
            &graph,
            IndexOptions { ordering: ordering_for(which), ..Default::default() },
        ).unwrap();
        let lazy = Searcher::with_kernel(&index, GatherKernel::Scalar)
            .unwrap()
            .top_k_from_set(&sources, k_sel)
            .unwrap();
        let eager = index.top_k_from_set_replay(&sources, k_sel).unwrap();
        if let Err(msg) = check_lazy_vs_eager(&lazy, &eager) {
            prop_assert!(false, "n={} sources={:?} k={}: {}", n, sources, k_sel, msg);
        }
    }

    /// The random-root variant cannot terminate early, so its traversal is
    /// always exhaustive: full reachable counts, every root-reachable node
    /// expanded — and answers still exact (checked against the normal
    /// search) and replayable bit-for-bit on a fresh workspace.
    #[test]
    fn random_root_traversal_is_exhaustive_and_exact((graph, q_sel, root_sel) in
        (graph_strategy(), any::<u32>(), any::<u32>())) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let root = (root_sel as usize % n) as NodeId;
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let mut searcher = Searcher::with_kernel(&index, GatherKernel::Scalar).unwrap();
        let rr = searcher.top_k_from_root(q, 5, root).unwrap();
        prop_assert!(!rr.stats.terminated_early);
        prop_assert_eq!(rr.stats.frontier_expanded, rr.stats.reachable);
        // Every node is visited (reached or not), none left behind.
        prop_assert_eq!(rr.stats.visited, n);
        let replay = Searcher::with_kernel(&index, GatherKernel::Scalar)
            .unwrap()
            .top_k_from_root(q, 5, root)
            .unwrap();
        prop_assert_eq!(rr.stats.clone(), replay.stats.clone());
        let normal = searcher.top_k(q, 5).unwrap();
        for ((x, y), z) in rr.items.iter().zip(&replay.items).zip(&normal.items) {
            prop_assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
            prop_assert!((x.proximity - z.proximity).abs() < 1e-9,
                "root {}: {} vs {}", root, x.proximity, z.proximity);
        }
    }
}

/// The acceptance pin: on a community-structured graph, early-terminating
/// top-k queries must expand strictly fewer frontier nodes than they
/// discover — and discover far fewer than the true reachable set.
#[test]
fn community_graph_early_termination_skips_frontier_work() {
    // 30 dense 10-cliques chained by weak bridges: queries resolve inside
    // their own community, so Lemma 2 fires after a couple of layers.
    let mut b = GraphBuilder::new(300);
    for blk in 0..30u32 {
        let base = blk * 10;
        for i in 0..10u32 {
            for j in 0..10u32 {
                if i != j {
                    b.add_edge(base + i, base + j, 1.0);
                }
            }
        }
        let next = ((blk + 1) % 30) * 10;
        b.add_edge(base, next, 0.1);
    }
    let g = b.build().unwrap();
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    let mut searcher = index.searcher();
    let pruned = searcher.top_k(5, 5).unwrap();
    assert!(pruned.stats.terminated_early, "community query must terminate early");
    assert!(
        pruned.stats.frontier_expanded < pruned.stats.reachable,
        "expanded {} must be strictly below discovered {}",
        pruned.stats.frontier_expanded,
        pruned.stats.reachable
    );
    // The eager reference sees the whole reachable set; the lazy search
    // must have discovered only a fraction of it.
    let eager = index.top_k_merge_join(5, 5).unwrap();
    assert!(
        pruned.stats.reachable < eager.stats.reachable,
        "lazy discovery {} should stop well short of full reachability {}",
        pruned.stats.reachable,
        eager.stats.reachable
    );
    assert!(
        pruned.stats.frontier_expanded < eager.stats.reachable / 2,
        "frontier work {} should be a fraction of the reachable set {}",
        pruned.stats.frontier_expanded,
        eager.stats.reachable
    );
    // And the answers are still the exact ones.
    for (x, y) in pruned.items.iter().zip(&eager.items) {
        assert_eq!(x.node, y.node);
        assert!((x.proximity - y.proximity).abs() <= 1e-12);
    }
    // An unpruned run pays the whole frontier: the lazy loop must degrade
    // to exactly the eager cost, never above it.
    let unpruned = searcher.top_k_unpruned(5, 5).unwrap();
    assert_eq!(unpruned.stats.frontier_expanded, eager.stats.reachable);
    assert_eq!(unpruned.stats.reachable, eager.stats.reachable);
}

/// Under *any* kernel, the lazy loop and the eager-drain replay
/// (`top_k_eager_into`) are the same search over the same kernel — items
/// bit-identical, work counters equal, only the traversal counters differ.
#[test]
fn lazy_loop_matches_eager_drain_under_default_kernel() {
    let g = barabasi_albert(150, 3, 23);
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    let mut lazy_s = index.searcher();
    let mut eager_s = index.searcher();
    let (mut lazy, mut eager) = (TopKResult::default(), TopKResult::default());
    for q in (0..150u32).step_by(11) {
        lazy_s.top_k_into(q, 8, &mut lazy).unwrap();
        eager_s.top_k_eager_into(q, 8, &mut eager).unwrap();
        assert_eq!(lazy.items.len(), eager.items.len());
        for (x, y) in lazy.items.iter().zip(&eager.items) {
            assert_eq!(x.node, y.node, "q {q}");
            assert_eq!(x.proximity.to_bits(), y.proximity.to_bits(), "q {q}");
        }
        assert_eq!(lazy.stats.visited, eager.stats.visited);
        assert_eq!(lazy.stats.proximity_computations, eager.stats.proximity_computations);
        assert_eq!(lazy.stats.terminated_early, eager.stats.terminated_early);
        assert_eq!(eager.stats.frontier_expanded, eager.stats.reachable);
        assert!(lazy.stats.frontier_expanded <= eager.stats.frontier_expanded, "q {q}");
    }
}

/// Interleaving entry points on one workspace must not leak lazy-frontier
/// state between query kinds (cursor, exhaustion flag, partial layers).
#[test]
fn mixed_entry_points_reset_lazy_state() {
    let g = erdos_renyi(70, 280, 11);
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    let mut s = index.searcher();
    for round in 0..4 {
        let a = s.top_k(3, 4).unwrap(); // may terminate early (partial frontier)
        let b = s.top_k_unpruned(3, 4).unwrap(); // must drain fully afterwards
        assert_eq!(b.stats.frontier_expanded, b.stats.reachable, "round {round}");
        assert!(a.stats.reachable <= b.stats.reachable, "round {round}");
        let c = s.nodes_above(3, 1e-5).unwrap();
        let d = s.top_k(3, 4).unwrap();
        assert_eq!(a.stats, d.stats, "round {round}: replay after interleaving must agree");
        for (x, y) in a.items.iter().zip(&d.items) {
            assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
        }
        drop(c);
    }
}
