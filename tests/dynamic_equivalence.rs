//! Tier-1 contract of the dynamic-update engine (`kdash-dynamic`):
//! applying an [`UpdateBatch`] to a built index is **bit-for-bit
//! equivalent** to rebuilding from scratch on the edited graph under the
//! index's frozen node order — index arrays (`L⁻¹` pointers/indices/value
//! bits, the `U⁻¹` proximity store with its blocked encoding and RowStat
//! policy table), estimator constants, nnz statistics, top-k items and
//! `SearchStats` alike.
//!
//! * Property: across ER/BA/RMAT × orderings × random edit batches
//!   (insert/delete/reweight mixes, applied over multiple epochs), the
//!   patched index passes `kdash_harness::check_index_bit_identity`
//!   against the pinned-permutation rebuild, and sampled queries agree
//!   exactly — items *and* stats.
//! * Exactness: after updates, top-k proximities match the iterative
//!   ground truth on the **edited** graph (freshness, not staleness).
//! * Reach pin: on a two-component graph, editing one component leaves
//!   every column of the other **byte-identical** and the reported dirty
//!   sets confined to the edited component — i.e. the engine provably
//!   did not fall back to a silent full rebuild.
//! * The update epoch counts batches and survives persistence.

use kdash_core::{IndexBuilder, IndexOptions, KdashIndex, NodeOrdering};
use kdash_datagen::{barabasi_albert, erdos_renyi, rmat, RmatParams};
use kdash_dynamic::{DynamicIndex, UpdateBatch};
use kdash_graph::{CsrGraph, EdgeEdit, GraphBuilder, NodeId};
use kdash_harness::{check_index_bit_identity, exact_top_k_scored};
use proptest::prelude::*;
use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};
use std::collections::HashSet;

fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (0usize..3, 20usize..70, 1usize..4, any::<u64>()).prop_map(|(family, n, density, seed)| {
        match family {
            0 => erdos_renyi(n, n * (density + 1), seed),
            1 => barabasi_albert(n, density.min(n - 1).max(1), seed),
            _ => {
                let scale = 4 + (n % 3) as u32;
                rmat(scale, (1usize << scale) * (density + 1), RmatParams::default(), seed)
            }
        }
    })
}

const ORDERINGS: [NodeOrdering; 4] = [
    NodeOrdering::Natural,
    NodeOrdering::Degree,
    NodeOrdering::Hybrid,
    NodeOrdering::ReverseCuthillMcKee,
];

/// Generates a valid random batch against `graph` + the edits already
/// applied (tracked through an edge-set overlay so multi-batch sequences
/// stay valid), mixing inserts, deletes and reweights.
fn random_batch(
    graph: &CsrGraph,
    edges: &mut Vec<(NodeId, NodeId)>,
    edge_set: &mut HashSet<(NodeId, NodeId)>,
    rng: &mut StdRng,
) -> UpdateBatch {
    let n = graph.num_nodes() as NodeId;
    let len = rng.gen_range(1..=6usize);
    let mut edits = Vec::with_capacity(len);
    for _ in 0..len {
        let op = rng.gen_range(0..3u32);
        if op == 0 || edges.is_empty() {
            // Insert a fresh edge.
            let (mut src, mut dst) = (rng.gen_range(0..n), rng.gen_range(0..n));
            let mut tries = 0;
            while edge_set.contains(&(src, dst)) && tries < 50 {
                src = rng.gen_range(0..n);
                dst = rng.gen_range(0..n);
                tries += 1;
            }
            if edge_set.contains(&(src, dst)) {
                continue; // dense corner: skip this edit
            }
            edge_set.insert((src, dst));
            edges.push((src, dst));
            edits.push(EdgeEdit::Insert { src, dst, weight: rng.gen_range(0.1..3.0) });
        } else if op == 1 {
            // Delete an existing edge.
            let at = rng.gen_range(0..edges.len());
            let (src, dst) = edges.swap_remove(at);
            edge_set.remove(&(src, dst));
            edits.push(EdgeEdit::Delete { src, dst });
        } else {
            // Reweight an existing edge.
            let &(src, dst) = edges.choose(rng).expect("non-empty edge list");
            edits.push(EdgeEdit::Reweight { src, dst, weight: rng.gen_range(0.1..3.0) });
        }
    }
    if edits.is_empty() {
        // Guarantee a non-trivial batch even in the dense corner.
        let &(src, dst) = edges.choose(rng).expect("non-empty edge list");
        edits.push(EdgeEdit::Reweight { src, dst, weight: rng.gen_range(0.1..3.0) });
    }
    UpdateBatch::new(edits).expect("generator emits valid weights")
}

/// Sampled queries must agree exactly — ranked items (ids + proximity
/// bits) and the full SearchStats record.
fn assert_queries_bit_identical(a: &KdashIndex, b: &KdashIndex, context: &str) {
    let n = a.num_nodes();
    for q in (0..n as NodeId).step_by((n / 5).max(1)) {
        for k in [1usize, 4, 10] {
            let ra = a.top_k(q, k).unwrap();
            let rb = b.top_k(q, k).unwrap();
            assert_eq!(ra.items.len(), rb.items.len(), "{context} q={q} k={k}");
            for (x, y) in ra.items.iter().zip(&rb.items) {
                assert_eq!(x.node, y.node, "{context} q={q} k={k}");
                assert_eq!(
                    x.proximity.to_bits(),
                    y.proximity.to_bits(),
                    "{context} q={q} k={k}"
                );
            }
            assert_eq!(ra.stats, rb.stats, "{context} q={q} k={k}");
        }
    }
    let sources = [0 as NodeId, (n as NodeId) / 2];
    let ra = a.searcher().top_k_from_set(&sources, 5).unwrap();
    let rb = b.searcher().top_k_from_set(&sources, 5).unwrap();
    assert_eq!(ra.items, rb.items, "{context} restart-set");
    assert_eq!(ra.stats, rb.stats, "{context} restart-set");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline property: incremental update ≡ pinned from-scratch
    /// rebuild, bit-identically, across graph families × orderings ×
    /// random edit batches — over two consecutive epochs.
    #[test]
    fn incremental_update_equals_pinned_rebuild(
        (graph, ord_sel, edit_seed) in (graph_strategy(), any::<u32>(), any::<u64>())
    ) {
        let ordering = ORDERINGS[ord_sel as usize % ORDERINGS.len()];
        let options = IndexOptions { ordering, ..Default::default() };
        let index = KdashIndex::build(&graph, options).unwrap();
        let perm = index.permutation().clone();
        let mut dynamic = DynamicIndex::new(index).unwrap();

        let mut rng = StdRng::seed_from_u64(edit_seed);
        let mut edges: Vec<(NodeId, NodeId)> =
            graph.edges().map(|(s, d, _)| (s, d)).collect();
        let mut edge_set: HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
        let mut edited = graph.clone();
        for epoch in 1..=2u64 {
            let batch = random_batch(&edited, &mut edges, &mut edge_set, &mut rng);
            let report = dynamic.apply(&batch).unwrap();
            prop_assert_eq!(report.edits, batch.len());
            prop_assert_eq!(dynamic.index().update_epoch(), epoch);
            edited = edited.apply_edits(batch.edits()).unwrap();

            let rebuilt = IndexBuilder::from_options(options)
                .permutation(perm.clone())
                .build(&edited)
                .unwrap();
            if let Err(msg) = check_index_bit_identity(dynamic.index(), &rebuilt) {
                prop_assert!(false, "{:?} epoch {} seed {}: {}",
                    ordering, epoch, edit_seed, msg);
            }
            assert_queries_bit_identical(
                dynamic.index(),
                &rebuilt,
                &format!("{ordering:?} epoch {epoch} seed {edit_seed}"),
            );
        }
    }

    /// Freshness: after updates the index answers for the *edited* graph,
    /// exactly (vs the iterative ground truth), never the stale one.
    #[test]
    fn updated_index_is_exact_on_the_edited_graph(
        (graph, edit_seed) in (graph_strategy(), any::<u64>())
    ) {
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let mut dynamic = DynamicIndex::new(index).unwrap();
        let mut rng = StdRng::seed_from_u64(edit_seed);
        let mut edges: Vec<(NodeId, NodeId)> =
            graph.edges().map(|(s, d, _)| (s, d)).collect();
        let mut edge_set: HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
        let batch = random_batch(&graph, &mut edges, &mut edge_set, &mut rng);
        dynamic.apply(&batch).unwrap();
        let edited = graph.apply_edits(batch.edits()).unwrap();
        let n = edited.num_nodes();
        for q in (0..n as NodeId).step_by((n / 3).max(1)) {
            let k = 6.min(n);
            let got = dynamic.index().top_k(q, k).unwrap();
            let want = exact_top_k_scored(&edited, 0.95, q, k);
            prop_assert_eq!(got.items.len(), want.len());
            for (g, w) in got.items.iter().zip(&want) {
                prop_assert!((g.proximity - w.1).abs() < 1e-9,
                    "q={} seed={}: {} vs {}", q, edit_seed, g.proximity, w.1);
            }
        }
    }
}

/// Two disjoint chorded rings in one graph (Natural ordering keeps the
/// components contiguous in permuted space).
fn two_components(n_a: usize, n_b: usize) -> CsrGraph {
    let n = n_a + n_b;
    let mut b = GraphBuilder::new(n);
    for v in 0..n_a as NodeId {
        b.add_edge(v, ((v as usize + 1) % n_a) as NodeId, 1.0);
        if v % 3 == 0 {
            b.add_edge(v, ((v as usize + n_a / 2) % n_a) as NodeId, 0.5);
        }
    }
    for v in 0..n_b as NodeId {
        let off = n_a as NodeId;
        b.add_edge(off + v, off + ((v as usize + 1) % n_b) as NodeId, 1.0);
        if v % 4 == 0 {
            b.add_edge(off + v, off + ((v as usize + n_b / 3) % n_b) as NodeId, 0.25);
        }
    }
    b.build().unwrap()
}

/// The no-silent-full-rebuild pin: edits confined to one component must
/// leave every inverse column of the other **byte-identical**, and the
/// reported dirty sets must stay inside the edited component — the reach
/// bound is real, not a full recompute wearing a hat.
#[test]
fn reach_untouched_columns_are_byte_identical() {
    let (n_a, n_b) = (24usize, 30usize);
    let graph = two_components(n_a, n_b);
    let options = IndexOptions { ordering: NodeOrdering::Natural, ..Default::default() };
    let index = KdashIndex::build(&graph, options).unwrap();
    let before = index.clone();
    let mut dynamic = DynamicIndex::new(index).unwrap();

    let batch = UpdateBatch::new(vec![
        EdgeEdit::Insert { src: 2, dst: 17, weight: 2.0 },
        EdgeEdit::Reweight { src: 0, dst: 1, weight: 4.0 },
        EdgeEdit::Delete { src: 3, dst: 4 },
    ])
    .unwrap();
    let report = dynamic.apply(&batch).unwrap();

    // Dirty sets confined to component A (permuted ids == original ids
    // under the Natural ordering), and strictly below the full dimension.
    assert!(report.dirty_linv_columns <= n_a, "L⁻¹ dirt leaked: {report:?}");
    assert!(report.dirty_uinv_columns <= n_a, "U⁻¹ dirt leaked: {report:?}");
    assert!(report.dirty_uinv_rows <= n_a, "row splice leaked: {report:?}");
    assert!(
        report.dirty_linv_columns < report.num_columns,
        "a silent full rebuild would re-solve every column"
    );

    // Every component-B column of L⁻¹ and row of U⁻¹ is byte-identical.
    let after = dynamic.index();
    let rows_before = before.uinv_rows().to_csr();
    let rows_after = after.uinv_rows().to_csr();
    for q in n_a as NodeId..(n_a + n_b) as NodeId {
        let (ri, vi) = before.linv_cols().col(q);
        let (rj, vj) = after.linv_cols().col(q);
        assert_eq!(ri, rj, "L⁻¹ column {q} pattern changed");
        for (x, y) in vi.iter().zip(vj) {
            assert_eq!(x.to_bits(), y.to_bits(), "L⁻¹ column {q} value changed");
        }
        assert_eq!(rows_before.row(q).0, rows_after.row(q).0, "U⁻¹ row {q} pattern changed");
        let (_, vb) = rows_before.row(q);
        let (_, va) = rows_after.row(q);
        for (x, y) in vb.iter().zip(va) {
            assert_eq!(x.to_bits(), y.to_bits(), "U⁻¹ row {q} value changed");
        }
    }

    // And component-B answers are untouched while component-A answers
    // moved with the graph (freshness on the edited side).
    let q_b = (n_a + 3) as NodeId;
    assert_eq!(
        before.top_k(q_b, 5).unwrap().items,
        after.top_k(q_b, 5).unwrap().items,
        "component B answers must be stable"
    );
    let edited = graph.apply_edits(batch.edits()).unwrap();
    let want = exact_top_k_scored(&edited, 0.95, 0, 5);
    let got = after.top_k(0, 5).unwrap();
    for (g, w) in got.items.iter().zip(&want) {
        assert!((g.proximity - w.1).abs() < 1e-9, "stale component-A answer");
    }
}

/// The epoch is a batch counter and survives persistence (format v3).
#[test]
fn update_epoch_counts_batches_and_persists() {
    let graph = two_components(12, 10);
    let index =
        KdashIndex::build(&graph, IndexOptions { ordering: NodeOrdering::Natural, ..Default::default() })
            .unwrap();
    assert_eq!(index.update_epoch(), 0);
    let mut dynamic = DynamicIndex::new(index).unwrap();
    for (epoch, edit) in [
        EdgeEdit::Insert { src: 0, dst: 5, weight: 1.0 },
        EdgeEdit::Delete { src: 0, dst: 5 },
        EdgeEdit::Reweight { src: 1, dst: 2, weight: 2.0 },
    ]
    .into_iter()
    .enumerate()
    {
        dynamic.apply(&UpdateBatch::new(vec![edit]).unwrap()).unwrap();
        assert_eq!(dynamic.index().update_epoch(), epoch as u64 + 1);
    }
    let patched = dynamic.into_index();
    let mut buf = Vec::new();
    patched.save(&mut buf).unwrap();
    let loaded = KdashIndex::load(buf.as_slice()).unwrap();
    assert_eq!(loaded.update_epoch(), 3, "epoch must survive a save/load round trip");
    assert_eq!(
        loaded.top_k(1, 5).unwrap().items,
        patched.top_k(1, 5).unwrap().items,
        "reloaded patched index answers identically"
    );
    // A reloaded index re-attaches (refactorises) and keeps updating.
    let mut reattached = DynamicIndex::new(loaded).unwrap();
    reattached
        .apply(&UpdateBatch::new(vec![EdgeEdit::Reweight { src: 1, dst: 2, weight: 1.0 }]).unwrap())
        .unwrap();
    assert_eq!(reattached.index().update_epoch(), 4);
}

/// The dangling-policy plumbing: under `DanglingPolicy::SelfLoop`,
/// incremental updates renormalise edited columns exactly as the build
/// did — including a delete that strips a node's last out-edge (the
/// node becomes dangling and SelfLoop must inject its waiting
/// self-loop) — and the result still equals the pinned rebuild
/// bit-for-bit.
#[test]
fn self_loop_dangling_policy_updates_match_rebuild() {
    let mut b = GraphBuilder::new(16);
    for v in 0..16u32 {
        b.add_edge(v, (v + 1) % 16, 1.0);
    }
    b.add_edge(3, 9, 0.5); // node 3 has two out-edges
    let graph = b.build().unwrap();
    let options = IndexOptions {
        ordering: NodeOrdering::Degree,
        dangling: kdash_sparse::DanglingPolicy::SelfLoop,
        ..Default::default()
    };
    let index = KdashIndex::build(&graph, options).unwrap();
    let perm = index.permutation().clone();
    let mut dynamic = DynamicIndex::new(index).unwrap();
    // Strip node 5's only out-edge: it dangles, and only SelfLoop keeps
    // its walk mass in place.
    let batch = UpdateBatch::new(vec![
        EdgeEdit::Delete { src: 5, dst: 6 },
        EdgeEdit::Reweight { src: 3, dst: 9, weight: 2.0 },
    ])
    .unwrap();
    dynamic.apply(&batch).unwrap();
    let edited = graph.apply_edits(batch.edits()).unwrap();
    assert_eq!(edited.num_dangling(), 1);
    let rebuilt = IndexBuilder::from_options(options).permutation(perm).build(&edited).unwrap();
    check_index_bit_identity(dynamic.index(), &rebuilt).expect("SelfLoop bit identity");
    assert_queries_bit_identical(dynamic.index(), &rebuilt, "self-loop dangling");
    // Exactness on the edited graph under SelfLoop semantics: total mass
    // is conserved (the dangling node waits in place).
    let p: f64 = dynamic.index().full_proximities(0).unwrap().iter().sum();
    assert!((p - 1.0).abs() < 1e-9, "SelfLoop must conserve mass, got {p}");
}

/// The pre-v3 hazard is closed at attach time: an index whose stored
/// inverses were built under `SelfLoop` but whose recorded policy says
/// `Keep` (what loading a v1/v2 file produces) is rejected by the
/// attach-time consistency probe instead of silently serving
/// mixed-normalisation updates.
#[test]
fn attach_rejects_mismatched_dangling_policy() {
    let mut b = GraphBuilder::new(8);
    b.add_edge(0, 1, 1.0);
    b.add_edge(1, 2, 1.0); // nodes 2..7 dangle
    let graph = b.build().unwrap();
    let index = KdashIndex::build(
        &graph,
        IndexOptions { dangling: kdash_sparse::DanglingPolicy::SelfLoop, ..Default::default() },
    )
    .unwrap();
    // Round-trip through the legacy v1 format, which drops the policy.
    let mut v1 = Vec::new();
    index.save_v1(&mut v1).unwrap();
    let loaded = KdashIndex::load(v1.as_slice()).unwrap();
    assert_eq!(loaded.dangling_policy(), kdash_sparse::DanglingPolicy::Keep);
    let err = DynamicIndex::new(loaded).unwrap_err();
    assert!(
        matches!(err, kdash_core::KdashError::Sparse(_)),
        "mismatched policy must fail the attach probe, got {err:?}"
    );
    // The same index under the current format records the policy and
    // attaches fine.
    let mut v3 = Vec::new();
    index.save(&mut v3).unwrap();
    let reloaded = KdashIndex::load(v3.as_slice()).unwrap();
    assert!(DynamicIndex::new(reloaded).is_ok());
}

/// Engine-level error surface: unknown nodes and absent edges are typed
/// errors in original id space and leave the index untouched at epoch 0.
#[test]
fn invalid_batches_are_typed_errors() {
    let graph = two_components(10, 8);
    let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
    let mut dynamic = DynamicIndex::new(index).unwrap();
    let err = dynamic
        .apply(&UpdateBatch::new(vec![EdgeEdit::Delete { src: 0, dst: 9 }]).unwrap())
        .unwrap_err();
    assert!(
        matches!(
            err,
            kdash_core::KdashError::Graph(kdash_graph::GraphError::EdgeNotFound {
                src: 0,
                dst: 9
            })
        ),
        "{err:?}"
    );
    let err = dynamic
        .apply(&UpdateBatch::new(vec![EdgeEdit::Insert { src: 99, dst: 0, weight: 1.0 }]).unwrap())
        .unwrap_err();
    assert!(matches!(err, kdash_core::KdashError::NodeOutOfBounds { node: 99, .. }), "{err:?}");
    assert_eq!(dynamic.index().update_epoch(), 0);
}
