//! Failure injection: every crate's error surface behaves — invalid
//! inputs are rejected with typed errors, never panics or wrong answers.
//!
//! The second half is the durability sweep: a journaled update pipeline
//! is crashed at **every** injectable I/O point (torn writes byte by
//! byte on the journal, strided through the snapshot, plus every fsync /
//! rename / truncate), and after each crash recovery must come back to a
//! well-defined epoch — audit-clean, bit-identical to the live-applied
//! index at that epoch, never losing an acknowledged batch.

use kdash_core::batch::batch_top_k_outcomes_with_hook;
use kdash_core::{
    batch_top_k_outcomes, save_atomic, save_atomic_with, BatchOptions, BudgetLimit, CrashPlan,
    FaultInjector, IndexAudit, IndexOptions, KdashError, KdashIndex, QueryBudget,
};
use kdash_dynamic::{DynamicIndex, Journal, UpdateBatch};
use kdash_graph::{
    io::read_edge_list, CsrGraph, EdgeEdit, GraphBuilder, GraphError, MergePolicy, NodeId,
    Permutation,
};
use kdash_harness::check_index_bit_identity;
use kdash_linalg::{invert_dense, DenseMatrix, LinalgError};
use kdash_sparse::{sparse_lu, CscMatrix, SparseError};
use std::fs::File;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::Arc;

#[test]
fn graph_rejects_malformed_input() {
    // NaN / zero / negative weights.
    for w in [f64::NAN, f64::INFINITY, 0.0, -3.0] {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, w);
        assert!(matches!(b.build(), Err(GraphError::InvalidWeight { .. })), "weight {w}");
    }
    // Out-of-bounds endpoints.
    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 2, 1.0);
    assert!(matches!(b.build(), Err(GraphError::NodeOutOfBounds { node: 2, .. })));
    // Duplicate ban.
    let mut b = GraphBuilder::new(2);
    b.set_merge_policy(MergePolicy::Error);
    b.add_edge(0, 1, 1.0).add_edge(0, 1, 1.0);
    assert!(matches!(b.build(), Err(GraphError::DuplicateEdge { .. })));
}

#[test]
fn edge_list_parser_reports_line_numbers() {
    for (text, line) in [
        ("0 1\nbroken", 2),
        ("0", 1),
        ("0 1 2 3", 1),
        ("0 x", 1),
        ("-1 0", 1),
    ] {
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line: l, .. }) => assert_eq!(l, line, "{text:?}"),
            other => panic!("{text:?} should fail to parse, got {other:?}"),
        }
    }
}

#[test]
fn permutations_reject_non_bijections() {
    assert!(Permutation::from_new_order(vec![0, 0]).is_err());
    assert!(Permutation::from_new_order(vec![1, 2]).is_err());
    let p = Permutation::identity(3);
    let q = Permutation::identity(4);
    assert!(p.then(&q).is_err(), "length mismatch must fail");
}

#[test]
fn sparse_kernels_reject_bad_shapes() {
    let rect = CscMatrix::zeros(2, 3);
    assert!(matches!(sparse_lu(&rect), Err(SparseError::NotSquare { .. })));
    // Singular matrix (zero column).
    let singular = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
    assert!(matches!(
        sparse_lu(&singular),
        Err(SparseError::SingularPivot { column: 1, .. })
    ));
    // Malformed raw arrays.
    assert!(CscMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
    assert!(CscMatrix::from_raw_parts(2, 1, vec![0, 2], vec![0, 0], vec![1.0, 1.0]).is_err());
}

#[test]
fn dense_kernels_reject_bad_inputs() {
    let singular =
        DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
    assert!(matches!(invert_dense(&singular), Err(LinalgError::Singular { .. })));
    let a = DenseMatrix::zeros(2, 3);
    assert!(a.matmul(&DenseMatrix::zeros(2, 2)).is_err());
    assert!(a.matvec(&[1.0]).is_err());
}

#[test]
fn index_rejects_invalid_queries_and_parameters() {
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, 1.0);
    b.add_edge(1, 2, 1.0);
    b.add_edge(2, 3, 1.0);
    b.add_edge(3, 0, 1.0);
    let g = b.build().unwrap();
    // Bad restart probabilities.
    for c in [0.0, 1.0, -0.1, 2.0, f64::NAN] {
        let r = KdashIndex::build(
            &g,
            IndexOptions { restart_probability: c, ..Default::default() },
        );
        assert!(r.is_err(), "c = {c} must be rejected");
    }
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    // Bad node ids on every query entry point.
    assert!(matches!(
        index.top_k(4, 2),
        Err(KdashError::NodeOutOfBounds { node: 4, .. })
    ));
    assert!(index.top_k_unpruned(9, 2).is_err());
    assert!(index.top_k_from_root(0, 2, 17).is_err());
    assert!(index.proximity(0, 99).is_err());
    assert!(index.full_proximities(44).is_err());
}

#[test]
fn degenerate_graphs_still_work() {
    // Single node, no edges.
    let g = GraphBuilder::new(1).build().unwrap();
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    let r = index.top_k(0, 1).unwrap();
    assert_eq!(r.items.len(), 1);
    assert_eq!(r.items[0].node, 0);
    assert!((r.items[0].proximity - 0.95).abs() < 1e-12, "p_q = c for a lone dangling node");

    // All-dangling graph (no edges at all).
    let g = GraphBuilder::new(5).build().unwrap();
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    let r = index.top_k(2, 5).unwrap();
    assert_eq!(r.items.len(), 5);
    assert_eq!(r.items[0].node, 2);
    assert!(r.items[1..].iter().all(|i| i.proximity == 0.0));

    // Self-loop-only node.
    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 0, 1.0);
    b.add_edge(1, 0, 1.0);
    let g = b.build().unwrap();
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    let p = index.full_proximities(0).unwrap();
    assert!((p[0] - 1.0).abs() < 1e-9, "walk can never leave node 0: {}", p[0]);
    assert_eq!(p[1], 0.0);
}

fn ring_index() -> KdashIndex {
    let mut b = GraphBuilder::new(30);
    for v in 0..30u32 {
        b.add_edge(v, (v + 1) % 30, 1.0);
        b.add_edge(v, (v + 11) % 30, 0.5);
    }
    KdashIndex::build(&b.build().unwrap(), IndexOptions::default()).unwrap()
}

/// One poisoned query in a batch must cost exactly that query: the other
/// N−1 results come back bit-identical to an uncontaminated batch, and
/// the poisoned slot carries a typed [`KdashError::QueryPanicked`] — the
/// panic never reaches the caller and never tears down a worker pool.
#[test]
fn batch_isolates_a_panicking_query() {
    let index = ring_index();
    let queries: Vec<NodeId> = (0..12).collect();
    let k = 8;
    const BAD: usize = 5;

    for threads in [1, 4] {
        let options = BatchOptions { threads, ..Default::default() };
        let clean = batch_top_k_outcomes(&index, &queries, k, &options).unwrap();
        let poisoned = batch_top_k_outcomes_with_hook(
            &index,
            &queries,
            k,
            &options,
            &|i, q| {
                if i == BAD {
                    panic!("injected fault at query {q}")
                }
            },
        )
        .unwrap();

        assert_eq!(poisoned.len(), queries.len());
        for (i, (a, b)) in clean.iter().zip(&poisoned).enumerate() {
            if i == BAD {
                match b.err() {
                    Some(KdashError::QueryPanicked { message }) => {
                        assert!(
                            message.contains("injected fault"),
                            "panic payload must be preserved: {message}"
                        );
                    }
                    other => panic!("query {BAD} should be QueryPanicked, got {other:?}"),
                }
                continue;
            }
            let (a, b) = (a.clone().ok().unwrap(), b.clone().ok().unwrap());
            assert_eq!(a.nodes(), b.nodes(), "query {i} ({threads} threads)");
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(
                    x.proximity.to_bits(),
                    y.proximity.to_bits(),
                    "query {i} node {} must be bit-identical to the clean batch",
                    x.node
                );
            }
        }
    }
}

/// A starved per-query budget fails every query with a typed
/// [`KdashError::BudgetExceeded`] that names the limit and carries the
/// search counters at the abort point; a generous budget changes nothing.
#[test]
fn batch_budget_exhaustion_is_typed_and_carries_stats() {
    let index = ring_index();
    let queries: Vec<NodeId> = (0..6).collect();
    let k = 10;

    let starved = BatchOptions {
        budget: QueryBudget { max_gather_nnz: Some(1), ..Default::default() },
        ..Default::default()
    };
    for (i, outcome) in batch_top_k_outcomes(&index, &queries, k, &starved)
        .unwrap()
        .iter()
        .enumerate()
    {
        match outcome.err() {
            Some(KdashError::BudgetExceeded { limit, stats }) => {
                assert!(
                    matches!(limit, BudgetLimit::GatherNnz(1)),
                    "query {i}: wrong limit {limit:?}"
                );
                assert!(stats.nnz_gathered >= 1, "abort must carry the running total");
                assert!(stats.visited >= 1, "at least the root was visited");
            }
            other => panic!("query {i} should exceed its budget, got {other:?}"),
        }
    }

    // A budget generous enough to never fire must not perturb results.
    let generous = BatchOptions {
        budget: QueryBudget {
            max_frontier_nodes: Some(1_000_000),
            max_gather_nnz: Some(1_000_000),
            deadline: Some(std::time::Duration::from_secs(3600)),
        },
        ..Default::default()
    };
    let unbudgeted = batch_top_k_outcomes(&index, &queries, k, &BatchOptions::default()).unwrap();
    let budgeted = batch_top_k_outcomes(&index, &queries, k, &generous).unwrap();
    for (a, b) in unbudgeted.into_iter().zip(budgeted) {
        let (a, b) = (a.ok().unwrap(), b.ok().unwrap());
        assert_eq!(a.nodes(), b.nodes());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
        }
    }
}

// ---------------------------------------------------------------------
// Durability: the failpoint-driven crash sweep.
// ---------------------------------------------------------------------

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("kdash-failure-injection-{}", std::process::id()))
        .join(name);
    // A leftover from a previous run of the same pid must not leak
    // state into a crash scenario.
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn sweep_graph() -> CsrGraph {
    let mut b = GraphBuilder::new(32);
    for v in 0..32u32 {
        b.add_edge(v, (v + 1) % 32, 1.0);
        b.add_edge(v, (v + 7) % 32, 0.5);
    }
    b.build().unwrap()
}

/// Four batches covering all three edit kinds, valid in sequence against
/// [`sweep_graph`]: epochs 1 and 2 are applied singly, 3 and 4 coalesced.
fn sweep_batches() -> Vec<UpdateBatch> {
    vec![
        UpdateBatch::new(vec![
            EdgeEdit::Insert { src: 0, dst: 20, weight: 2.0 },
            EdgeEdit::Reweight { src: 3, dst: 4, weight: 0.25 },
        ])
        .unwrap(),
        UpdateBatch::new(vec![
            EdgeEdit::Delete { src: 5, dst: 6 },
            EdgeEdit::Insert { src: 5, dst: 25, weight: 1.0 },
        ])
        .unwrap(),
        UpdateBatch::new(vec![EdgeEdit::Reweight { src: 10, dst: 17, weight: 0.75 }]).unwrap(),
        UpdateBatch::new(vec![
            EdgeEdit::Insert { src: 8, dst: 30, weight: 1.5 },
            EdgeEdit::Delete { src: 12, dst: 13 },
        ])
        .unwrap(),
    ]
}

/// `refs[e]` = the index after live-applying the first `e` batches — the
/// ground truth every recovered state must be bit-identical to.
fn reference_indexes(base: &KdashIndex, batches: &[UpdateBatch]) -> Vec<KdashIndex> {
    let mut refs = vec![base.clone()];
    let mut engine = DynamicIndex::new(base.clone()).unwrap();
    for batch in batches {
        engine.apply(batch).unwrap();
        refs.push(engine.index().clone());
    }
    refs
}

/// The journaled lifecycle under test: snapshot → journal → two single
/// applies → checkpoint → one coalesced apply of two batches. Returns the
/// highest epoch that was **acknowledged** (the call returned `Ok`)
/// before an injected crash stopped the run — the floor recovery must
/// reach. Every early return models the process dying at that point.
fn run_scenario(
    dir: &Path,
    base: &KdashIndex,
    batches: &[UpdateBatch],
    faults: Arc<dyn FaultInjector>,
) -> u64 {
    let index_path = dir.join("sweep.kdash");
    let journal_path = Journal::sidecar_path(&index_path);
    if save_atomic_with(base, &index_path, faults.as_ref()).is_err() {
        return 0;
    }
    let journal = match Journal::create_with(&journal_path, 0, Arc::clone(&faults)) {
        Ok(j) => j,
        Err(_) => return 0,
    };
    let mut engine = DynamicIndex::new(base.clone()).unwrap().journaled(journal).unwrap();
    if engine.apply(&batches[0]).is_err() {
        return 0;
    }
    if engine.apply(&batches[1]).is_err() {
        return 1;
    }
    if engine.checkpoint(&index_path).is_err() {
        return 2;
    }
    if engine.apply_coalesced(&batches[2..4]).is_err() {
        return 2;
    }
    4
}

/// The sweep invariant: whatever the crash left behind, recovery lands
/// on a well-defined epoch `e` with `acked <= e <= 4`, the recovered
/// index is bit-identical to the live-applied index at epoch `e`, and
/// the deep structural audit is clean. Never a panic, never corruption,
/// never a lost acknowledged batch.
fn assert_recoverable(dir: &Path, refs: &[KdashIndex], acked: u64, context: &str) {
    let index_path = dir.join("sweep.kdash");
    let journal_path = Journal::sidecar_path(&index_path);
    let snapshot = match File::open(&index_path) {
        Ok(f) => KdashIndex::load(BufReader::new(f))
            .unwrap_or_else(|e| panic!("{context}: snapshot must load cleanly: {e}")),
        Err(_) => {
            // The initial save itself crashed: nothing was ever acked.
            assert_eq!(acked, 0, "{context}: snapshot lost after {acked} acked batch(es)");
            return;
        }
    };
    let engine = if journal_path.exists() {
        let (engine, report) = DynamicIndex::recover(snapshot, &journal_path)
            .unwrap_or_else(|e| panic!("{context}: recovery must succeed: {e}"));
        assert_eq!(
            report.final_epoch,
            engine.index().update_epoch(),
            "{context}: report disagrees with the recovered index"
        );
        engine
    } else {
        DynamicIndex::new(snapshot).unwrap()
    };
    let epoch = engine.index().update_epoch();
    assert!(
        (epoch as usize) < refs.len(),
        "{context}: recovered to impossible epoch {epoch}"
    );
    assert!(
        epoch >= acked,
        "{context}: acknowledged batch lost (recovered epoch {epoch} < acked {acked})"
    );
    check_index_bit_identity(engine.index(), &refs[epoch as usize]).unwrap_or_else(|e| {
        panic!("{context}: recovered index differs from live-applied epoch {epoch}: {e}")
    });
    let audit = IndexAudit::run(engine.index());
    assert!(audit.is_clean(), "{context}: audit found: {:?}", audit.findings);
}

/// Pass 1 counts every injectable point of the lifecycle; pass 2 crashes
/// it at each selected point and asserts [`assert_recoverable`]. Journal
/// writes are swept **byte by byte** (every torn-prefix length), the two
/// wide snapshot writes by prime stride plus both edges, and every
/// fsync / rename / truncate everywhere.
#[test]
fn crash_sweep_recovers_from_every_injection_point() {
    let base = KdashIndex::build(&sweep_graph(), IndexOptions::default()).unwrap();
    let batches = sweep_batches();
    let refs = reference_indexes(&base, &batches);
    assert_eq!(refs[4].update_epoch(), 4);

    let count_dir = temp_dir("sweep-count");
    let plan = Arc::new(CrashPlan::count_only());
    let acked = run_scenario(&count_dir, &base, &batches, plan.clone());
    assert_eq!(acked, 4, "counting pass must run the whole lifecycle");
    assert_recoverable(&count_dir, &refs, acked, "clean run");
    assert!(plan.tripped().is_none());

    let planned = plan.planned();
    assert!(
        planned.iter().any(|(_, _, l)| l.contains(".journal"))
            && planned.iter().any(|(_, _, l)| l.starts_with("fsync"))
            && planned.iter().any(|(_, _, l)| l.starts_with("rename")),
        "the lifecycle must expose journal writes, fsyncs and renames: {planned:?}"
    );
    let mut targets: Vec<u64> = Vec::new();
    for (start, width, label) in &planned {
        if *width <= 1 || label.contains(".journal") {
            targets.extend(*start..*start + *width);
        } else {
            targets.push(*start);
            targets.push(*start + *width - 1);
            let mut p = *start + 97;
            while p + 1 < *start + *width {
                targets.push(p);
                p += 997;
            }
        }
    }
    assert!(targets.len() >= 100, "sweep degenerated to {} targets", targets.len());

    for point in targets {
        let dir = temp_dir(&format!("sweep-{point}"));
        let plan = Arc::new(CrashPlan::crash_at(point));
        let acked = run_scenario(&dir, &base, &batches, plan.clone());
        let tripped = plan
            .tripped()
            .unwrap_or_else(|| panic!("point {point} never fired (scenario acked {acked})"));
        assert!(acked < 4, "point {point} ({tripped}) fired yet the run fully acked");
        assert_recoverable(&dir, &refs, acked, &format!("point {point} ({tripped})"));
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&count_dir);
}

/// Deterministic valid batches for an arbitrary graph: inserts of fresh
/// edges, a delete and a reweight of existing ones, spread so batches
/// stay valid applied in sequence.
fn family_batches(graph: &CsrGraph) -> Vec<UpdateBatch> {
    let n = graph.num_nodes() as NodeId;
    let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
    let edge_set: std::collections::HashSet<(NodeId, NodeId)> = edges.iter().copied().collect();
    let mut fresh = Vec::new();
    'outer: for stride in 1..n {
        for src in 0..n {
            let dst = (src + stride) % n;
            if src != dst && !edge_set.contains(&(src, dst)) {
                fresh.push((src, dst));
                if fresh.len() == 3 {
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(fresh.len(), 3, "graph too dense to insert into");
    let (del_src, del_dst) = edges[edges.len() / 2];
    let (rw_src, rw_dst) = edges[edges.len() / 3];
    vec![
        UpdateBatch::new(vec![
            EdgeEdit::Insert { src: fresh[0].0, dst: fresh[0].1, weight: 1.5 },
            EdgeEdit::Reweight { src: rw_src, dst: rw_dst, weight: 0.4 },
        ])
        .unwrap(),
        UpdateBatch::new(vec![EdgeEdit::Delete { src: del_src, dst: del_dst }]).unwrap(),
        UpdateBatch::new(vec![
            EdgeEdit::Insert { src: fresh[1].0, dst: fresh[1].1, weight: 0.8 },
            EdgeEdit::Insert { src: fresh[2].0, dst: fresh[2].1, weight: 2.2 },
        ])
        .unwrap(),
    ]
}

/// Replay ≡ live apply, bit-identically, across ER / BA / RMAT graphs ×
/// single / coalesced application: journal the batches, "crash" before
/// any checkpoint (drop the engine — the snapshot still holds epoch 0),
/// recover from snapshot + journal, and the result must be bit-identical
/// to the engine that applied the same batches live and never crashed.
#[test]
fn journal_replay_is_bit_identical_to_live_apply() {
    use kdash_datagen::{barabasi_albert, erdos_renyi, rmat, RmatParams};
    let families: [(&str, CsrGraph); 3] = [
        ("er", erdos_renyi(48, 150, 11)),
        ("ba", barabasi_albert(48, 2, 12)),
        ("rmat", rmat(5, 100, RmatParams::default(), 13)),
    ];
    for (family, graph) in families {
        let base = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let batches = family_batches(&graph);
        for coalesced in [false, true] {
            let context = format!("{family} coalesced={coalesced}");
            let dir = temp_dir(&format!("replay-{family}-{coalesced}"));
            let index_path = dir.join("replay.kdash");
            let journal_path = Journal::sidecar_path(&index_path);

            // Live path: no journal, no crash.
            let mut live = DynamicIndex::new(base.clone()).unwrap();
            if coalesced {
                live.apply_coalesced(&batches).unwrap();
            } else {
                for batch in &batches {
                    live.apply(batch).unwrap();
                }
            }

            // Journaled path, killed before any checkpoint.
            save_atomic(&base, &index_path).unwrap();
            let journal = Journal::create(&journal_path, 0).unwrap();
            let mut engine = DynamicIndex::new(base.clone()).unwrap().journaled(journal).unwrap();
            if coalesced {
                engine.apply_coalesced(&batches).unwrap();
            } else {
                for batch in &batches {
                    engine.apply(batch).unwrap();
                }
            }
            drop(engine); // the "crash": acked epochs live only in the journal

            let snapshot = KdashIndex::load(BufReader::new(File::open(&index_path).unwrap()))
                .unwrap_or_else(|e| panic!("{context}: snapshot load: {e}"));
            assert_eq!(snapshot.update_epoch(), 0, "{context}");
            let (recovered, report) = DynamicIndex::recover(snapshot, &journal_path)
                .unwrap_or_else(|e| panic!("{context}: recovery: {e}"));
            assert_eq!(report.snapshot_epoch, 0, "{context}");
            assert_eq!(report.replayed_batches, batches.len(), "{context}");
            assert_eq!(report.final_epoch, batches.len() as u64, "{context}");
            assert!(report.torn_tail.is_none(), "{context}: {:?}", report.torn_tail);
            assert_eq!(
                recovered.index().update_epoch(),
                live.index().update_epoch(),
                "{context}"
            );
            check_index_bit_identity(recovered.index(), live.index()).unwrap_or_else(|e| {
                panic!("{context}: replayed index differs from live-applied: {e}")
            });
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn error_messages_are_informative() {
    let err = KdashIndex::build(
        &GraphBuilder::new(2).add_edge(0, 1, 1.0).build().unwrap(),
        IndexOptions { restart_probability: 7.0, ..Default::default() },
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('7'), "message should carry the bad value: {msg}");
    // Error sources chain for downstream reporting.
    let source = std::error::Error::source(&err);
    assert!(source.is_some());
}
