//! Failure injection: every crate's error surface behaves — invalid
//! inputs are rejected with typed errors, never panics or wrong answers.

use kdash_core::batch::batch_top_k_outcomes_with_hook;
use kdash_core::{
    batch_top_k_outcomes, BatchOptions, BudgetLimit, IndexOptions, KdashError, KdashIndex,
    QueryBudget,
};
use kdash_graph::{io::read_edge_list, GraphBuilder, GraphError, MergePolicy, NodeId, Permutation};
use kdash_linalg::{invert_dense, DenseMatrix, LinalgError};
use kdash_sparse::{sparse_lu, CscMatrix, SparseError};

#[test]
fn graph_rejects_malformed_input() {
    // NaN / zero / negative weights.
    for w in [f64::NAN, f64::INFINITY, 0.0, -3.0] {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, w);
        assert!(matches!(b.build(), Err(GraphError::InvalidWeight { .. })), "weight {w}");
    }
    // Out-of-bounds endpoints.
    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 2, 1.0);
    assert!(matches!(b.build(), Err(GraphError::NodeOutOfBounds { node: 2, .. })));
    // Duplicate ban.
    let mut b = GraphBuilder::new(2);
    b.set_merge_policy(MergePolicy::Error);
    b.add_edge(0, 1, 1.0).add_edge(0, 1, 1.0);
    assert!(matches!(b.build(), Err(GraphError::DuplicateEdge { .. })));
}

#[test]
fn edge_list_parser_reports_line_numbers() {
    for (text, line) in [
        ("0 1\nbroken", 2),
        ("0", 1),
        ("0 1 2 3", 1),
        ("0 x", 1),
        ("-1 0", 1),
    ] {
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line: l, .. }) => assert_eq!(l, line, "{text:?}"),
            other => panic!("{text:?} should fail to parse, got {other:?}"),
        }
    }
}

#[test]
fn permutations_reject_non_bijections() {
    assert!(Permutation::from_new_order(vec![0, 0]).is_err());
    assert!(Permutation::from_new_order(vec![1, 2]).is_err());
    let p = Permutation::identity(3);
    let q = Permutation::identity(4);
    assert!(p.then(&q).is_err(), "length mismatch must fail");
}

#[test]
fn sparse_kernels_reject_bad_shapes() {
    let rect = CscMatrix::zeros(2, 3);
    assert!(matches!(sparse_lu(&rect), Err(SparseError::NotSquare { .. })));
    // Singular matrix (zero column).
    let singular = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]).unwrap();
    assert!(matches!(
        sparse_lu(&singular),
        Err(SparseError::SingularPivot { column: 1, .. })
    ));
    // Malformed raw arrays.
    assert!(CscMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
    assert!(CscMatrix::from_raw_parts(2, 1, vec![0, 2], vec![0, 0], vec![1.0, 1.0]).is_err());
}

#[test]
fn dense_kernels_reject_bad_inputs() {
    let singular =
        DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
    assert!(matches!(invert_dense(&singular), Err(LinalgError::Singular { .. })));
    let a = DenseMatrix::zeros(2, 3);
    assert!(a.matmul(&DenseMatrix::zeros(2, 2)).is_err());
    assert!(a.matvec(&[1.0]).is_err());
}

#[test]
fn index_rejects_invalid_queries_and_parameters() {
    let mut b = GraphBuilder::new(4);
    b.add_edge(0, 1, 1.0);
    b.add_edge(1, 2, 1.0);
    b.add_edge(2, 3, 1.0);
    b.add_edge(3, 0, 1.0);
    let g = b.build().unwrap();
    // Bad restart probabilities.
    for c in [0.0, 1.0, -0.1, 2.0, f64::NAN] {
        let r = KdashIndex::build(
            &g,
            IndexOptions { restart_probability: c, ..Default::default() },
        );
        assert!(r.is_err(), "c = {c} must be rejected");
    }
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    // Bad node ids on every query entry point.
    assert!(matches!(
        index.top_k(4, 2),
        Err(KdashError::NodeOutOfBounds { node: 4, .. })
    ));
    assert!(index.top_k_unpruned(9, 2).is_err());
    assert!(index.top_k_from_root(0, 2, 17).is_err());
    assert!(index.proximity(0, 99).is_err());
    assert!(index.full_proximities(44).is_err());
}

#[test]
fn degenerate_graphs_still_work() {
    // Single node, no edges.
    let g = GraphBuilder::new(1).build().unwrap();
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    let r = index.top_k(0, 1).unwrap();
    assert_eq!(r.items.len(), 1);
    assert_eq!(r.items[0].node, 0);
    assert!((r.items[0].proximity - 0.95).abs() < 1e-12, "p_q = c for a lone dangling node");

    // All-dangling graph (no edges at all).
    let g = GraphBuilder::new(5).build().unwrap();
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    let r = index.top_k(2, 5).unwrap();
    assert_eq!(r.items.len(), 5);
    assert_eq!(r.items[0].node, 2);
    assert!(r.items[1..].iter().all(|i| i.proximity == 0.0));

    // Self-loop-only node.
    let mut b = GraphBuilder::new(2);
    b.add_edge(0, 0, 1.0);
    b.add_edge(1, 0, 1.0);
    let g = b.build().unwrap();
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    let p = index.full_proximities(0).unwrap();
    assert!((p[0] - 1.0).abs() < 1e-9, "walk can never leave node 0: {}", p[0]);
    assert_eq!(p[1], 0.0);
}

fn ring_index() -> KdashIndex {
    let mut b = GraphBuilder::new(30);
    for v in 0..30u32 {
        b.add_edge(v, (v + 1) % 30, 1.0);
        b.add_edge(v, (v + 11) % 30, 0.5);
    }
    KdashIndex::build(&b.build().unwrap(), IndexOptions::default()).unwrap()
}

/// One poisoned query in a batch must cost exactly that query: the other
/// N−1 results come back bit-identical to an uncontaminated batch, and
/// the poisoned slot carries a typed [`KdashError::QueryPanicked`] — the
/// panic never reaches the caller and never tears down a worker pool.
#[test]
fn batch_isolates_a_panicking_query() {
    let index = ring_index();
    let queries: Vec<NodeId> = (0..12).collect();
    let k = 8;
    const BAD: usize = 5;

    for threads in [1, 4] {
        let options = BatchOptions { threads, ..Default::default() };
        let clean = batch_top_k_outcomes(&index, &queries, k, &options).unwrap();
        let poisoned = batch_top_k_outcomes_with_hook(
            &index,
            &queries,
            k,
            &options,
            &|i, q| {
                if i == BAD {
                    panic!("injected fault at query {q}")
                }
            },
        )
        .unwrap();

        assert_eq!(poisoned.len(), queries.len());
        for (i, (a, b)) in clean.iter().zip(&poisoned).enumerate() {
            if i == BAD {
                match b.err() {
                    Some(KdashError::QueryPanicked { message }) => {
                        assert!(
                            message.contains("injected fault"),
                            "panic payload must be preserved: {message}"
                        );
                    }
                    other => panic!("query {BAD} should be QueryPanicked, got {other:?}"),
                }
                continue;
            }
            let (a, b) = (a.clone().ok().unwrap(), b.clone().ok().unwrap());
            assert_eq!(a.nodes(), b.nodes(), "query {i} ({threads} threads)");
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(
                    x.proximity.to_bits(),
                    y.proximity.to_bits(),
                    "query {i} node {} must be bit-identical to the clean batch",
                    x.node
                );
            }
        }
    }
}

/// A starved per-query budget fails every query with a typed
/// [`KdashError::BudgetExceeded`] that names the limit and carries the
/// search counters at the abort point; a generous budget changes nothing.
#[test]
fn batch_budget_exhaustion_is_typed_and_carries_stats() {
    let index = ring_index();
    let queries: Vec<NodeId> = (0..6).collect();
    let k = 10;

    let starved = BatchOptions {
        budget: QueryBudget { max_gather_nnz: Some(1), ..Default::default() },
        ..Default::default()
    };
    for (i, outcome) in batch_top_k_outcomes(&index, &queries, k, &starved)
        .unwrap()
        .iter()
        .enumerate()
    {
        match outcome.err() {
            Some(KdashError::BudgetExceeded { limit, stats }) => {
                assert!(
                    matches!(limit, BudgetLimit::GatherNnz(1)),
                    "query {i}: wrong limit {limit:?}"
                );
                assert!(stats.nnz_gathered >= 1, "abort must carry the running total");
                assert!(stats.visited >= 1, "at least the root was visited");
            }
            other => panic!("query {i} should exceed its budget, got {other:?}"),
        }
    }

    // A budget generous enough to never fire must not perturb results.
    let generous = BatchOptions {
        budget: QueryBudget {
            max_frontier_nodes: Some(1_000_000),
            max_gather_nnz: Some(1_000_000),
            deadline: Some(std::time::Duration::from_secs(3600)),
        },
        ..Default::default()
    };
    let unbudgeted = batch_top_k_outcomes(&index, &queries, k, &BatchOptions::default()).unwrap();
    let budgeted = batch_top_k_outcomes(&index, &queries, k, &generous).unwrap();
    for (a, b) in unbudgeted.into_iter().zip(budgeted) {
        let (a, b) = (a.ok().unwrap(), b.ok().unwrap());
        assert_eq!(a.nodes(), b.nodes());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
        }
    }
}

#[test]
fn error_messages_are_informative() {
    let err = KdashIndex::build(
        &GraphBuilder::new(2).add_edge(0, 1, 1.0).build().unwrap(),
        IndexOptions { restart_probability: 7.0, ..Default::default() },
    )
    .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains('7'), "message should carry the bad value: {msg}");
    // Error sources chain for downstream reporting.
    let source = std::error::Error::source(&err);
    assert!(source.is_some());
}
