//! The query-engine equivalence contract: the scatter/gather `Searcher`
//! path must return **bit-identical** proximities — and therefore identical
//! rankings and work counters — to the original merge-join path
//! (`KdashIndex::top_k_merge_join`), across random graphs, random queries
//! and every entry-point family.
//!
//! The gather visits exactly the merge join's matching pairs in the same
//! ascending-column order, so the floating-point sums agree to the last
//! bit; this suite is what keeps that argument honest as the kernels
//! evolve.

use kdash_core::{IndexOptions, KdashIndex, NodeOrdering};
use kdash_datagen::{barabasi_albert, erdos_renyi};
use kdash_graph::NodeId;
use proptest::prelude::*;

/// Strategy over the two generator families the paper's datasets span:
/// ER (flat degrees) and BA (heavy-tailed hubs), with sizes small enough
/// to build dozens of indexes per run.
fn graph_strategy() -> impl Strategy<Value = kdash_graph::CsrGraph> {
    (0usize..2, 12usize..90, 1usize..5, any::<u64>()).prop_map(|(family, n, density, seed)| {
        match family {
            0 => erdos_renyi(n, n * density, seed),
            _ => barabasi_albert(n, density.min(n - 1).max(1), seed),
        }
    })
}

fn assert_bit_identical(
    a: &kdash_core::TopKResult,
    b: &kdash_core::TopKResult,
) -> Result<(), String> {
    if a.items.len() != b.items.len() {
        return Err(format!("lengths differ: {} vs {}", a.items.len(), b.items.len()));
    }
    for (x, y) in a.items.iter().zip(&b.items) {
        if x.node != y.node {
            return Err(format!("ranking differs: node {} vs {}", x.node, y.node));
        }
        if x.proximity.to_bits() != y.proximity.to_bits() {
            return Err(format!(
                "proximity of node {} differs in the last bit: {:.17e} vs {:.17e}",
                x.node, x.proximity, y.proximity
            ));
        }
    }
    if a.stats != b.stats {
        return Err(format!("work counters differ: {:?} vs {:?}", a.stats, b.stats));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Scatter/gather top-k ≡ merge-join top-k, bit for bit, including the
    /// early-termination point (identical stats).
    #[test]
    fn searcher_matches_merge_join((graph, q_sel, k_sel, c_pick) in
        (graph_strategy(), any::<u32>(), 0usize..12, 0usize..3)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let c = [0.5, 0.8, 0.95][c_pick];
        let index = KdashIndex::build(
            &graph,
            IndexOptions { restart_probability: c, ..Default::default() },
        ).unwrap();
        for k in [k_sel, n / 2, n + 3] {
            let new = index.top_k(q, k).unwrap();
            let old = index.top_k_merge_join(q, k).unwrap();
            if let Err(msg) = assert_bit_identical(&new, &old) {
                prop_assert!(false, "n={} q={} k={}: {}", n, q, k, msg);
            }
        }
    }

    /// A single reused Searcher replays a whole query stream bit-identically
    /// to the merge-join reference — reuse must not leak state.
    #[test]
    fn reused_searcher_matches_merge_join((graph, k_sel) in (graph_strategy(), 1usize..8)) {
        let n = graph.num_nodes();
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let mut searcher = index.searcher();
        for q in (0..n as NodeId).step_by(7) {
            let new = searcher.top_k(q, k_sel).unwrap();
            let old = index.top_k_merge_join(q, k_sel).unwrap();
            if let Err(msg) = assert_bit_identical(&new, &old) {
                prop_assert!(false, "n={} q={} k={}: {}", n, q, k_sel, msg);
            }
        }
    }

    /// The ordering permutation changes the inverse patterns and the visit
    /// order; equivalence must survive all of them.
    #[test]
    fn equivalence_holds_across_orderings((graph, q_sel, which) in
        (graph_strategy(), any::<u32>(), 0usize..4)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let ordering = [
            NodeOrdering::Natural,
            NodeOrdering::Degree,
            NodeOrdering::Hybrid,
            NodeOrdering::ReverseCuthillMcKee,
        ][which];
        let index = KdashIndex::build(&graph, IndexOptions { ordering, ..Default::default() })
            .unwrap();
        let new = index.top_k(q, 10).unwrap();
        let old = index.top_k_merge_join(q, 10).unwrap();
        if let Err(msg) = assert_bit_identical(&new, &old) {
            prop_assert!(false, "{:?} n={} q={}: {}", ordering, n, q, msg);
        }
    }

    /// The remaining entry points agree with independently computed truths:
    /// unpruned and threshold variants against the full proximity vector.
    #[test]
    fn other_entry_points_match_full_vector((graph, q_sel, theta_exp) in
        (graph_strategy(), any::<u32>(), 2u32..7)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let full = index.full_proximities(q).unwrap();

        let unpruned = index.top_k_unpruned(q, n).unwrap();
        for item in &unpruned.items {
            let want = full[item.node as usize];
            prop_assert!(
                (item.proximity - want).abs() < 1e-12,
                "unpruned node {}: {} vs {}", item.node, item.proximity, want
            );
        }

        let theta = 10f64.powi(-(theta_exp as i32));
        let above = index.nodes_above(q, theta).unwrap();
        let expect = full.iter().filter(|&&p| p >= theta).count();
        prop_assert_eq!(above.items.len(), expect);
    }
}
