//! The query-engine equivalence contract, post-lazy-BFS and kernel
//! dispatch:
//!
//! * under the **scalar** gather kernel, the lazy `Searcher` path must
//!   return **bit-identical** proximities — and identical rankings and
//!   work counters — to the original eager merge-join path
//!   (`KdashIndex::top_k_merge_join`), across random graphs, random
//!   queries and every entry-point family. (The gather visits exactly the
//!   merge join's matching pairs in the same ascending-column order.)
//! * the **traversal counters** differ by design: the merge join
//!   enumerates the whole reachable set up front (`reachable` =
//!   `frontier_expanded` = full count), while the lazy path stops
//!   discovering at early termination — `reachable` is then the
//!   discovered-so-far count and `frontier_expanded` is strictly below it
//!   (the death layer was discovered, never expanded). When a search runs
//!   to completion the two paths must agree exactly.
//! * under the **default (`Auto`) kernel** the wide gathers re-associate
//!   the sum, so proximities are only pinned to `1e-12` of the reference —
//!   the bit-level cross-kernel contracts live in
//!   `tests/kernel_equivalence.rs`.

use kdash_core::{GatherKernel, IndexOptions, KdashIndex, NodeOrdering, Searcher};
use kdash_datagen::{barabasi_albert, erdos_renyi};
use kdash_graph::NodeId;
use kdash_harness::check_lazy_vs_eager;
use proptest::prelude::*;

/// Strategy over the two generator families the paper's datasets span:
/// ER (flat degrees) and BA (heavy-tailed hubs), with sizes small enough
/// to build dozens of indexes per run.
fn graph_strategy() -> impl Strategy<Value = kdash_graph::CsrGraph> {
    (0usize..2, 12usize..90, 1usize..5, any::<u64>()).prop_map(|(family, n, density, seed)| {
        match family {
            0 => erdos_renyi(n, n * density, seed),
            _ => barabasi_albert(n, density.min(n - 1).max(1), seed),
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Lazy scatter/gather top-k ≡ eager merge-join top-k, bit for bit,
    /// with the traversal counters obeying the lazy/eager contract.
    #[test]
    fn searcher_matches_merge_join((graph, q_sel, k_sel, c_pick) in
        (graph_strategy(), any::<u32>(), 0usize..12, 0usize..3)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let c = [0.5, 0.8, 0.95][c_pick];
        let index = KdashIndex::build(
            &graph,
            IndexOptions { restart_probability: c, ..Default::default() },
        ).unwrap();
        let mut searcher = Searcher::with_kernel(&index, GatherKernel::Scalar).unwrap();
        for k in [k_sel, n / 2, n + 3] {
            let new = searcher.top_k(q, k).unwrap();
            let old = index.top_k_merge_join(q, k).unwrap();
            if let Err(msg) = check_lazy_vs_eager(&new, &old) {
                prop_assert!(false, "n={} q={} k={}: {}", n, q, k, msg);
            }
        }
    }

    /// A single reused Searcher replays a whole query stream bit-identically
    /// to the merge-join reference — reuse must not leak state, lazy
    /// frontier cursors included.
    #[test]
    fn reused_searcher_matches_merge_join((graph, k_sel) in (graph_strategy(), 1usize..8)) {
        let n = graph.num_nodes();
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let mut searcher = Searcher::with_kernel(&index, GatherKernel::Scalar).unwrap();
        for q in (0..n as NodeId).step_by(7) {
            let new = searcher.top_k(q, k_sel).unwrap();
            let old = index.top_k_merge_join(q, k_sel).unwrap();
            if let Err(msg) = check_lazy_vs_eager(&new, &old) {
                prop_assert!(false, "n={} q={} k={}: {}", n, q, k_sel, msg);
            }
        }
    }

    /// The ordering permutation changes the inverse patterns and the visit
    /// order; equivalence must survive all of them.
    #[test]
    fn equivalence_holds_across_orderings((graph, q_sel, which) in
        (graph_strategy(), any::<u32>(), 0usize..4)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let ordering = [
            NodeOrdering::Natural,
            NodeOrdering::Degree,
            NodeOrdering::Hybrid,
            NodeOrdering::ReverseCuthillMcKee,
        ][which];
        let index = KdashIndex::build(&graph, IndexOptions { ordering, ..Default::default() })
            .unwrap();
        let new = Searcher::with_kernel(&index, GatherKernel::Scalar)
            .unwrap()
            .top_k(q, 10)
            .unwrap();
        let old = index.top_k_merge_join(q, 10).unwrap();
        if let Err(msg) = check_lazy_vs_eager(&new, &old) {
            prop_assert!(false, "{:?} n={} q={}: {}", ordering, n, q, msg);
        }
    }

    /// The default (Auto) kernel may re-associate the gather sum but must
    /// stay within 1e-12 of the merge-join reference per returned node.
    #[test]
    fn auto_kernel_stays_within_tolerance((graph, q_sel) in
        (graph_strategy(), any::<u32>())) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let new = index.top_k(q, 10).unwrap();
        let old = index.top_k_merge_join(q, 10).unwrap();
        prop_assert_eq!(new.items.len(), old.items.len());
        // Match by node id: last-bit rounding may swap ranks at the k-th
        // cutoff, so a node in the Auto result can be absent from the
        // merge-join list — the full vector then supplies its reference.
        let full = index.full_proximities(q).unwrap();
        for x in &new.items {
            let reference = old
                .items
                .iter()
                .find(|y| y.node == x.node)
                .map(|y| y.proximity)
                .unwrap_or(full[x.node as usize]);
            prop_assert!(
                (x.proximity - reference).abs() <= 1e-12,
                "node {} ({:?} kernel): {:.17e} vs {:.17e}",
                x.node, index.searcher().kernel().name(), x.proximity, reference
            );
        }
    }

    /// The remaining entry points agree with independently computed truths:
    /// unpruned and threshold variants against the full proximity vector.
    #[test]
    fn other_entry_points_match_full_vector((graph, q_sel, theta_exp) in
        (graph_strategy(), any::<u32>(), 2u32..7)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let full = index.full_proximities(q).unwrap();

        let unpruned = index.top_k_unpruned(q, n).unwrap();
        // Unpruned searches always run to completion: full reachability.
        prop_assert_eq!(unpruned.stats.frontier_expanded, unpruned.stats.reachable);
        prop_assert!(!unpruned.stats.terminated_early);
        for item in &unpruned.items {
            let want = full[item.node as usize];
            prop_assert!(
                (item.proximity - want).abs() < 1e-12,
                "unpruned node {}: {} vs {}", item.node, item.proximity, want
            );
        }

        let theta = 10f64.powi(-(theta_exp as i32));
        let above = index.nodes_above(q, theta).unwrap();
        let expect = full.iter().filter(|&&p| p >= theta).count();
        prop_assert_eq!(above.items.len(), expect);
    }
}
