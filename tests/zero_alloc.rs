//! Pins down the `Searcher` hot-path contract: after one warm-up query,
//! `Searcher::top_k_into` performs **zero heap allocations**.
//!
//! A counting global allocator wraps the system one; the warm-up query
//! sizes every reusable buffer (BFS order, scattered column, heap, result
//! items), after which repeated queries — same k, arbitrary query nodes —
//! must leave the allocation counter untouched.

use kdash_core::{IndexOptions, KdashIndex, TopKResult};
use kdash_datagen::barabasi_albert;
use kdash_graph::NodeId;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn top_k_into_is_allocation_free_after_warmup() {
    // A hub-rich graph so queries traverse substantial candidate sets.
    let graph = barabasi_albert(600, 3, 42);
    let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
    let n = graph.num_nodes() as NodeId;
    let k = 10;

    let mut searcher = index.searcher();
    let mut result = TopKResult::default();

    // Warm-up: one query per distinct BFS shape we are about to replay,
    // letting every buffer reach its high-water capacity.
    for q in 0..n {
        searcher.top_k_into(q, k, &mut result).unwrap();
    }

    let before = allocations();
    for round in 0..3 {
        for q in 0..n {
            searcher.top_k_into(q, k, &mut result).unwrap();
            assert_eq!(result.items.len(), k.min(graph.num_nodes()), "round {round} q {q}");
        }
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "Searcher::top_k_into allocated {} times across {} warmed-up queries",
        after - before,
        3 * n
    );
}

#[test]
fn transient_searchers_do_allocate() {
    // Sanity check that the counter actually observes the transient path —
    // otherwise the zero assertion above would be vacuous.
    let graph = barabasi_albert(200, 3, 7);
    let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
    let before = allocations();
    let _ = index.top_k(0, 10).unwrap();
    assert!(allocations() > before, "transient top_k must allocate its workspace");
}
