//! Tier-1 contract of the incremental refactorisation
//! ([`kdash_sparse::refactor_columns`]): re-eliminating only the forward
//! reach of the dirty `W` columns and splicing the rest from the old
//! factors is **byte-identical** to a full `sparse_lu` on the edited
//! `W` — across graph families × node orderings × edit classes, for
//! single edits and coalesced multi-edit dirty sets, at any thread
//! count.
//!
//! * Property: ER/BA/RMAT × {Natural, Degree, Hybrid, RCM} × edit
//!   classes (fresh-source insert, reweight, delete, in-closure edit on
//!   the first eliminated column) — each class singly and all classes
//!   merged into one coalesced dirty set — refactorises to the same bits
//!   as the from-scratch factorisation, sequentially and in parallel.
//! * Scheduling honesty: the refactorisation recomputes a *bounded* set
//!   (reported), and on a two-component graph an edit in one component
//!   never recomputes or changes a column of the other.
//! * Parallel full LU: `sparse_lu_with` at 2/auto threads is
//!   bit-identical to the sequential factorisation (the build pipeline's
//!   `keep_factors` path).
//! * Engine level: `apply_coalesced` over a random queue equals the
//!   pinned from-scratch rebuild bit-for-bit and advances the epoch by
//!   the queue length (`tests/dynamic_equivalence.rs` pins the
//!   batch-by-batch path; this pins the coalesced one).

use kdash_core::{IndexBuilder, IndexOptions, KdashIndex, NodeOrdering};
use kdash_datagen::{barabasi_albert, erdos_renyi, rmat, RmatParams};
use kdash_dynamic::{DynamicIndex, UpdateBatch};
use kdash_graph::{CsrGraph, EdgeEdit, GraphBuilder, NodeId};
use kdash_harness::check_index_bit_identity;
use kdash_sparse::{
    refactor_columns, refactor_columns_with, sparse_lu, sparse_lu_with, transition_matrix,
    w_matrix, CscMatrix, DanglingPolicy, Index, InvertOptions, LuFactors,
};
use proptest::prelude::*;
use rand::{rngs::StdRng, seq::SliceRandom, Rng, SeedableRng};

fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (0usize..3, 24usize..64, 1usize..4, any::<u64>()).prop_map(|(family, n, density, seed)| {
        match family {
            0 => erdos_renyi(n, n * (density + 1), seed),
            1 => barabasi_albert(n, density.min(n - 1).max(1), seed),
            _ => {
                let scale = 4 + (n % 2) as u32;
                rmat(scale, (1usize << scale) * (density + 1), RmatParams::default(), seed)
            }
        }
    })
}

const ORDERINGS: [NodeOrdering; 4] = [
    NodeOrdering::Natural,
    NodeOrdering::Degree,
    NodeOrdering::Hybrid,
    NodeOrdering::ReverseCuthillMcKee,
];

/// `W = I − (1−c)A` of a (permuted) graph under the given policy.
fn w_of(graph: &CsrGraph, c: f64, dangling: DanglingPolicy) -> CscMatrix {
    let a = transition_matrix(graph, dangling);
    w_matrix(&a, c).expect("valid restart probability")
}

fn assert_factors_bit_identical(a: &LuFactors, b: &LuFactors, context: &str) {
    for (name, ta, tb) in [("L", &a.l, &b.l), ("U", &a.u, &b.u)] {
        let (pa, ia, va) = ta.raw();
        let (pb, ib, vb) = tb.raw();
        assert_eq!(pa, pb, "{context}: {name} column pointers differ");
        assert_eq!(ia, ib, "{context}: {name} row indices differ");
        assert_eq!(va.len(), vb.len(), "{context}: {name} value counts differ");
        for (i, (x, y)) in va.iter().zip(vb).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{context}: {name} value {i} differs");
        }
    }
}

/// One edit list per class, built directly in permuted id space:
/// fresh-source insert (a node gains an out-edge it never had),
/// reweight, delete, and an in-closure edit touching the **first**
/// eliminated column (the worst case — its forward reach is the
/// largest).
fn edit_classes(graph: &CsrGraph, rng: &mut StdRng) -> Vec<(&'static str, Vec<EdgeEdit>)> {
    let n = graph.num_nodes() as NodeId;
    let edges: Vec<(NodeId, NodeId, f64)> = graph.edges().collect();
    let mut classes = Vec::new();

    // Fresh-source insert: a source from the back half of the order.
    let mut inserted = None;
    'outer: for _ in 0..200 {
        let src = rng.gen_range(n / 2..n);
        let dst = rng.gen_range(0..n);
        if src != dst && !graph.has_edge(src, dst) {
            inserted = Some((src, dst));
            break 'outer;
        }
    }
    if let Some((src, dst)) = inserted {
        classes.push(("fresh-source", vec![EdgeEdit::Insert { src, dst, weight: 1.5 }]));
    }

    if let Some(&(src, dst, _)) = edges.choose(rng) {
        classes.push(("reweight", vec![EdgeEdit::Reweight { src, dst, weight: 0.65 }]));
    }
    if let Some(&(src, dst, _)) = edges.choose(rng) {
        classes.push(("delete", vec![EdgeEdit::Delete { src, dst }]));
    }

    // In-closure: edit column 0 of the permuted order — everything
    // reachable from the first eliminated column is a candidate.
    let in_closure = match edges.iter().find(|&&(s, _, _)| s == 0) {
        Some(&(s, d, _)) => EdgeEdit::Reweight { src: s, dst: d, weight: 2.25 },
        None => {
            let dst = if n > 1 { 1 } else { 0 };
            EdgeEdit::Insert { src: 0, dst, weight: 1.0 }
        }
    };
    classes.push(("in-closure", vec![in_closure]));
    classes
}

/// Checks one edit list: the incremental refactorisation from `old`
/// equals the full factorisation of the edited `W`, bit for bit, at
/// every thread count, and the recompute schedule is honest.
fn check_edit(
    old_w_graph: &CsrGraph,
    old: &LuFactors,
    edits: &[EdgeEdit],
    c: f64,
    dangling: DanglingPolicy,
    context: &str,
) {
    let edited = old_w_graph.apply_edits(edits).expect("generator emits valid edits");
    let w_new = w_of(&edited, c, dangling);
    let mut dirty: Vec<Index> = edits.iter().map(|e| e.src()).collect();
    dirty.sort_unstable();
    dirty.dedup();

    let full = sparse_lu(&w_new).expect("W is diagonally dominant");
    let (incremental, report) = refactor_columns(old, &w_new, &dirty).expect("refactor");
    assert_factors_bit_identical(&incremental, &full, context);
    assert_eq!(report.dirty_w_columns, dirty.len(), "{context}");
    assert!(report.recomputed_columns <= report.dim, "{context}");
    assert!(
        report.changed_l_columns.len() <= report.recomputed_columns
            && report.changed_u_columns.len() <= report.recomputed_columns,
        "{context}: changed ⊆ recomputed"
    );

    for threads in [2usize, 0] {
        let (par, _) =
            refactor_columns_with(old, &w_new, &dirty, InvertOptions { threads })
                .expect("parallel refactor");
        assert_factors_bit_identical(&par, &full, &format!("{context} threads={threads}"));
        let par_full = sparse_lu_with(&w_new, InvertOptions { threads }).expect("parallel LU");
        assert_factors_bit_identical(
            &par_full,
            &full,
            &format!("{context} full-LU threads={threads}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: every edit class, singly and coalesced,
    /// refactorises to the bits of the from-scratch factorisation.
    #[test]
    fn refactor_equals_full_lu_across_families_orderings_and_edit_classes(
        (graph, ord_sel, seed) in (graph_strategy(), any::<u32>(), any::<u64>())
    ) {
        let ordering = ORDERINGS[ord_sel as usize % ORDERINGS.len()];
        let index = KdashIndex::build(
            &graph,
            IndexOptions { ordering, ..Default::default() },
        ).unwrap();
        let (c, dangling) = (index.restart_probability(), index.dangling_policy());
        let permuted = index.permuted_graph().clone();
        let old = sparse_lu(&w_of(&permuted, c, dangling)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);

        let classes = edit_classes(&permuted, &mut rng);
        for (class, edits) in &classes {
            check_edit(&permuted, &old, edits, c, dangling,
                &format!("{ordering:?} seed={seed} class={class}"));
        }

        // Coalesced: all classes merged into one dirty set — but only
        // where the merged edit list stays valid (a delete of an edge a
        // later class reweights would not), so filter to one edit per
        // distinct (src, dst) pair.
        let mut merged: Vec<EdgeEdit> = Vec::new();
        let mut seen: Vec<(NodeId, NodeId)> = Vec::new();
        for (_, edits) in &classes {
            for e in edits {
                let key = (e.src(), e.dst());
                if !seen.contains(&key) {
                    seen.push(key);
                    merged.push(e.clone());
                }
            }
        }
        check_edit(&permuted, &old, &merged, c, dangling,
            &format!("{ordering:?} seed={seed} class=coalesced"));
    }
}

/// Two disjoint chorded rings: an edit in component A must neither
/// recompute nor change any factor column of component B (Natural
/// ordering keeps components contiguous, so the pin is a plain index
/// bound). This is the no-cross-contamination guarantee of the
/// dependency-DAG schedule — not just "the bits happen to agree" but
/// "the scheduler provably never visited them".
#[test]
fn two_component_edits_never_touch_the_other_component() {
    let (n_a, n_b) = (20usize, 26usize);
    let n = n_a + n_b;
    let mut b = GraphBuilder::new(n);
    for v in 0..n_a as NodeId {
        b.add_edge(v, ((v as usize + 1) % n_a) as NodeId, 1.0);
        if v % 3 == 0 {
            b.add_edge(v, ((v as usize + n_a / 2) % n_a) as NodeId, 0.5);
        }
    }
    for v in 0..n_b as NodeId {
        let off = n_a as NodeId;
        b.add_edge(off + v, off + ((v as usize + 1) % n_b) as NodeId, 1.0);
    }
    let graph = b.build().unwrap();
    let old = sparse_lu(&w_of(&graph, 0.95, DanglingPolicy::Keep)).unwrap();

    let edits = vec![
        EdgeEdit::Reweight { src: 2, dst: 3, weight: 3.0 },
        EdgeEdit::Insert { src: 5, dst: 11, weight: 0.75 },
    ];
    let edited = graph.apply_edits(&edits).unwrap();
    let w_new = w_of(&edited, 0.95, DanglingPolicy::Keep);
    let (incremental, report) = refactor_columns(&old, &w_new, &[2, 5]).unwrap();
    assert_factors_bit_identical(&incremental, &sparse_lu(&w_new).unwrap(), "two-component");

    assert!(report.recomputed_columns <= n_a, "schedule leaked into component B: {report:?}");
    assert!(
        report
            .changed_l_columns
            .iter()
            .chain(&report.changed_u_columns)
            .all(|&j| (j as usize) < n_a),
        "changed columns leaked into component B: {report:?}"
    );
    // And component B's stored bytes are literally the old allocations'
    // content: every B column of the spliced factors equals the old one.
    for j in n_a as Index..n as Index {
        let (or, ov) = old.u.col(j);
        let (nr, nv) = incremental.u.col(j);
        assert_eq!(or, nr, "U column {j} pattern moved");
        assert!(ov.iter().zip(nv).all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}

/// Engine level: a coalesced queue equals the pinned from-scratch
/// rebuild bit-for-bit (arrays, stats, estimator) and advances the
/// epoch by the queue length.
#[test]
fn coalesced_engine_apply_equals_pinned_rebuild() {
    let graph = erdos_renyi(48, 180, 99);
    let options = IndexOptions { ordering: NodeOrdering::Hybrid, ..Default::default() };
    let index = KdashIndex::build(&graph, options).unwrap();
    let perm = index.permutation().clone();
    let mut dynamic = DynamicIndex::new(index).unwrap();

    let mut rng = StdRng::seed_from_u64(4242);
    let edges: Vec<(NodeId, NodeId)> = graph.edges().map(|(s, d, _)| (s, d)).collect();
    let (s1, d1) = edges[rng.gen_range(0..edges.len())];
    let mut fresh = (rng.gen_range(0..48u32), rng.gen_range(0..48u32));
    while fresh.0 == fresh.1 || edges.contains(&fresh) {
        fresh = (rng.gen_range(0..48u32), rng.gen_range(0..48u32));
    }
    let batches = vec![
        UpdateBatch::new(vec![EdgeEdit::Reweight { src: s1, dst: d1, weight: 2.5 }]).unwrap(),
        UpdateBatch::new(vec![
            EdgeEdit::Insert { src: fresh.0, dst: fresh.1, weight: 0.8 },
            EdgeEdit::Delete { src: s1, dst: d1 },
        ])
        .unwrap(),
        UpdateBatch::new(vec![EdgeEdit::Reweight { src: fresh.0, dst: fresh.1, weight: 1.1 }])
            .unwrap(),
    ];
    let report = dynamic.apply_coalesced(&batches).unwrap();
    assert_eq!(report.batches, 3);
    assert_eq!(dynamic.index().update_epoch(), 3);

    let mut edited = graph.clone();
    for batch in &batches {
        edited = edited.apply_edits(batch.edits()).unwrap();
    }
    let rebuilt = IndexBuilder::from_options(options).permutation(perm).build(&edited).unwrap();
    check_index_bit_identity(dynamic.index(), &rebuilt).expect("coalesced bit identity");
}
