//! The sparsified-tier exactness contract: an index built under a drop
//! tolerance `ε > 0` stores *truncated* inverses, yet every query entry
//! point must return the **same top-k node set in the same order** as
//! the dense-exact build — the certified residual-refinement loop
//! iterates until the residual norm proves the ranking, or fails loudly.
//!
//! * Property: across ER/BA/RMAT (reweighted to break exact proximity
//!   ties) × orderings × ε ∈ {1e-8, 1e-5, 1e-3} × k ∈ {5, 50} ×
//!   top-k / restart-set / random-root / unpruned / threshold /
//!   merge-join-oracle entry points, sparsified results carry the exact
//!   node sequence, and the values witness the certificate: the maximum
//!   deviation from exact stays below half the refined ranking's minimum
//!   adjacent gap (plus threshold margins for `nodes_above`).
//! * ε = 0 routes the classic path bit-for-bit: stores, items, and
//!   stats all identical to the default dense build.
//! * A positive ε that drops nothing (1e-300) flags the *tier* as
//!   sparsified but keeps `needs_refinement()` false — classic-path
//!   queries, bit-identical stores.

use kdash_core::{IndexOptions, KdashError, KdashIndex, NodeOrdering, TopKResult};
use kdash_datagen::{barabasi_albert, erdos_renyi, rmat, RmatParams};
use kdash_graph::{CsrGraph, GraphBuilder, NodeId};
use proptest::prelude::*;

/// Rebuilds `graph` with deterministic per-edge weights derived from the
/// endpoint pair. The stock generators emit unit weights, under which
/// symmetric structures produce *exactly* equal proximities — ties the
/// refined path correctly refuses to certify (no positive gap separates
/// them) and under which "the" dense order is itself arbitrary. Hashed
/// weights make distinct-node proximity collisions measure-zero while
/// keeping the graph structure.
fn break_ties(graph: &CsrGraph) -> CsrGraph {
    let n = graph.num_nodes();
    let mut b = GraphBuilder::new(n);
    // splitmix64 over the packed endpoint pair: 53 bits of weight
    // granularity makes two edges sharing a weight (and hence two nodes
    // sharing an exact proximity) practically impossible — a coarse
    // bucket hash here produced real collisions and real exact ties.
    let mix = |v: u64| {
        let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for v in 0..n as NodeId {
        for (t, _) in graph.out_edges(v) {
            let h = mix(((v as u64) << 32) | t as u64) >> 11;
            b.add_edge(v, t, 1.0 + h as f64 / (1u64 << 53) as f64);
        }
    }
    b.build().unwrap()
}

fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (0usize..3, 24usize..90, 1usize..5, any::<u64>()).prop_map(|(family, n, density, seed)| {
        let raw = match family {
            0 => erdos_renyi(n, n * density, seed),
            1 => barabasi_albert(n, density.min(n - 1).max(1), seed),
            _ => {
                let scale = 4 + (n % 3) as u32;
                rmat(scale, (1usize << scale) * density, RmatParams::default(), seed)
            }
        };
        break_ties(&raw)
    })
}

fn ordering_for(which: usize) -> NodeOrdering {
    [NodeOrdering::Natural, NodeOrdering::Degree, NodeOrdering::Hybrid][which % 3]
}

/// Asserts the sparsified result carries the dense result's node sequence
/// exactly, and that the values witness the certificate: every refined
/// value sits within the final residual norm δ of exact, and the refined
/// ranking's gaps all exceed 2δ — so the *observable* invariant is
/// `max_i |dense_i − sparse_i| < min adjacent sparsified gap / 2`. (The
/// dense gaps bound nothing: certification reasons about refined values,
/// whose gaps can exceed the dense ones by up to 2δ.) `extra_bound`
/// tightens the gap bound with entry-point-specific certificate terms
/// (e.g. threshold margins).
fn check_same_ranking(label: &str, dense: &TopKResult, sparse: &TopKResult, extra_bound: f64) {
    assert_eq!(
        dense.items.len(),
        sparse.items.len(),
        "{label}: result sizes diverge (dense {} vs sparsified {})",
        dense.items.len(),
        sparse.items.len()
    );
    // Zero-proximity entries are filler — nodes outside the query's
    // reach, padded in when k exceeds the genuine answer count (the
    // random-root ablation visits the whole graph). Both tiers order
    // that tail arbitrarily (dense: visit order; refined: certificate
    // heap order), exactly as two dense entry points would — so the
    // contract binds the positive prefix only, plus matching prefix
    // lengths and an all-zero tail on both sides.
    let positive = |r: &TopKResult| r.items.iter().take_while(|i| i.proximity > 0.0).count();
    let (dp, sp) = (positive(dense), positive(sparse));
    assert_eq!(dp, sp, "{label}: genuine (positive-proximity) answer counts diverge");
    assert!(
        dense.items[dp..].iter().chain(&sparse.items[sp..]).all(|i| i.proximity == 0.0),
        "{label}: non-zero entry below the positive prefix"
    );
    let mut max_err = 0.0f64;
    let mut min_half_gap = extra_bound;
    for (rank, (d, s)) in dense.items[..dp].iter().zip(&sparse.items[..sp]).enumerate() {
        assert_eq!(d.node, s.node, "{label}: node sequences diverge at rank {rank}");
        max_err = max_err.max((d.proximity - s.proximity).abs());
        if rank + 1 < sp {
            min_half_gap = min_half_gap.min((s.proximity - sparse.items[rank + 1].proximity) / 2.0);
        }
    }
    // A single-item result exposes no internal gap (its certified
    // boundary gap is against the unseen (k+1)-th value), so only the
    // entry-point bound applies there. The additive 1e-9 is the
    // floating-point allowance: the certificate reasons in exact
    // arithmetic, while the dense direct solves and the refined
    // accumulation each carry their own rounding — a δ = 0 refined
    // answer still differs from the dense values by a few ulps of the
    // residual accumulation.
    if min_half_gap.is_finite() && sp > 1 {
        assert!(
            max_err < min_half_gap + 1e-9,
            "{label}: value error {max_err:e} reaches half the minimum refined gap \
             {min_half_gap:e} — the certificate cannot have held"
        );
    }
}

fn build(graph: &CsrGraph, ordering: NodeOrdering, eps: f64) -> KdashIndex {
    KdashIndex::build(
        graph,
        IndexOptions { ordering, drop_tolerance: eps, ..Default::default() },
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The tentpole property: every entry point, every ε, identical
    /// top-k set and order against the dense-exact twin.
    #[test]
    fn sparsified_ranking_matches_dense_exact((graph, q_sel, which, k_wide) in
        (graph_strategy(), any::<u32>(), 0usize..3, 0usize..2)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let k = if k_wide == 1 { 50 } else { 5 };
        let ordering = ordering_for(which);
        let dense = build(&graph, ordering, 0.0);
        prop_assert!(!dense.is_sparsified());

        // A threshold wedged between two single-source ranking values,
        // for the nodes_above entry point.
        let dense_padded = dense.top_k(q, k + 1).unwrap();
        let sources = [q, (q + 1) % n as NodeId];
        let root = (q + 2) % n as NodeId;
        let theta = match dense_padded.items.len() {
            0 | 1 => 0.5,
            len => {
                let at = (len - 1).min(3);
                (dense_padded.items[at - 1].proximity + dense_padded.items[at].proximity) / 2.0
            }
        };

        type Run = (&'static str, Box<dyn Fn(&KdashIndex, usize) -> Result<TopKResult, KdashError>>);
        let runs: Vec<Run> = vec![
            ("top_k", Box::new(move |ix, kk| ix.top_k(q, kk))),
            ("from_set", Box::new(move |ix, kk| ix.top_k_from_set(&sources, kk))),
            ("random_root", Box::new(move |ix, kk| ix.top_k_from_root(q, kk, root))),
            ("unpruned", Box::new(move |ix, kk| ix.top_k_unpruned(q, kk))),
            ("merge_join", Box::new(move |ix, kk| ix.top_k_merge_join(q, kk))),
            (
                "from_set_replay",
                Box::new(move |ix, kk| ix.top_k_from_set_replay(&sources, kk)),
            ),
        ];

        for eps in [1e-8, 1e-5, 1e-3] {
            let sparse = build(&graph, ordering, eps);
            prop_assert!(sparse.is_sparsified());
            prop_assert_eq!(sparse.permutation(), dense.permutation(),
                "the permutation is ε-independent");
            // `RefinementFailed` is the tier's documented honest outcome
            // when two candidate proximities sit inside the same ulp:
            // no positive gap can ever exceed 2δ, so the loop refuses to
            // rank them rather than guess. Accept it only when the
            // residual was already at floating-point-noise level — a
            // large residual at failure would mean refinement diverged,
            // which IS a bug.
            let mut check = |label: &str, d: Result<TopKResult, KdashError>,
                             s: Result<TopKResult, KdashError>, bound: f64| {
                let d = d.expect("dense-exact queries never fail");
                match s {
                    Ok(s) => check_same_ranking(label, &d, &s, bound),
                    Err(KdashError::RefinementFailed { residual, .. }) => assert!(
                        residual < 1e-12,
                        "{label}: refinement failed with residual {residual:e} still far above \
                         the floating-point floor — the loop diverged"
                    ),
                    Err(e) => panic!("{label}: unexpected error {e}"),
                }
            };
            for (label, run) in &runs {
                check(
                    &format!("eps {eps:e} {label} n={n} q={q} k={k}"),
                    run(&dense, k),
                    run(&sparse, k),
                    f64::INFINITY,
                );
            }
            // Threshold query: the certificate additionally bounds the
            // final residual below every refined margin to θ.
            let d_above = dense.nodes_above(q, theta);
            let s_above = sparse.nodes_above(q, theta);
            let margin = s_above
                .as_ref()
                .map(|r| {
                    r.items
                        .iter()
                        .map(|i| (i.proximity - theta).abs())
                        .fold(f64::INFINITY, f64::min)
                })
                .unwrap_or(f64::INFINITY);
            check(&format!("eps {eps:e} nodes_above n={n} q={q}"), d_above, s_above, margin);
            // ε = 1e-3 on these graphs must actually drop mass —
            // otherwise the property never exercised the refined path.
            if eps == 1e-3 {
                prop_assert!(sparse.needs_refinement(),
                    "eps 1e-3 dropped nothing on n={} — property vacuous", n);
            }
        }
    }

    /// ε = 0 is the dense build, bit for bit: raw stores, items, stats.
    #[test]
    fn zero_tolerance_is_bit_identical((graph, q_sel, which) in
        (graph_strategy(), any::<u32>(), 0usize..3)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let ordering = ordering_for(which);
        let dense = build(&graph, ordering, 0.0);
        let explicit = KdashIndex::build(
            &graph,
            IndexOptions { ordering, ..Default::default() },
        ).unwrap();
        prop_assert!(!dense.is_sparsified() && !dense.needs_refinement());
        let (ap, ai, av) = dense.linv_cols().raw();
        let (bp, bi, bv) = explicit.linv_cols().raw();
        prop_assert_eq!((ap, ai), (bp, bi));
        prop_assert!(av.iter().zip(bv).all(|(a, b)| a.to_bits() == b.to_bits()));
        prop_assert_eq!(dense.uinv_rows(), explicit.uinv_rows());
        let a = dense.top_k(q, 10).unwrap();
        let b = explicit.top_k(q, 10).unwrap();
        prop_assert_eq!(a.items, b.items);
        prop_assert_eq!(a.stats, b.stats);
    }
}

/// A positive ε so small it drops nothing: the *tier* reads sparsified,
/// the dropped mass is exactly zero, and queries route the classic
/// (refinement-free) path — `needs_refinement()` (dropped mass), not
/// `is_sparsified()` (ε sign), gates the refinement loop. The stored
/// arrays carry the dense pattern but are only *rounding*-equal in
/// values: any ε > 0 routes the value-driven worklist solve, whose
/// accumulation order differs from the exact DFS inverter (documented
/// on `solve_truncated`); bit-identity to the dense build is the ε = 0
/// contract, pinned in `zero_tolerance_is_bit_identical`.
#[test]
fn undropped_positive_tolerance_routes_classic_path() {
    let graph = break_ties(&rmat(8, 1024, RmatParams::default(), 21));
    let dense = build(&graph, NodeOrdering::Hybrid, 0.0);
    let tiny = build(&graph, NodeOrdering::Hybrid, 1e-300);
    assert!(tiny.is_sparsified(), "positive ε labels the tier");
    assert!(!tiny.needs_refinement(), "1e-300 must drop nothing");
    assert_eq!(tiny.dropped_mass(), 0.0);
    let (ap, ai, av) = dense.linv_cols().raw();
    let (bp, bi, bv) = tiny.linv_cols().raw();
    assert_eq!((ap, ai), (bp, bi), "nothing dropped: the stored pattern is the dense pattern");
    assert!(
        av.iter().zip(bv).all(|(a, b)| (a - b).abs() <= 1e-12 * (1.0 + b.abs())),
        "undropped values must match the dense build up to accumulation-order rounding"
    );
    for q in (0..graph.num_nodes() as NodeId).step_by(61) {
        let a = dense.top_k(q, 10).unwrap();
        let b = tiny.top_k(q, 10).unwrap();
        let a_nodes: Vec<NodeId> = a.items.iter().map(|i| i.node).collect();
        let b_nodes: Vec<NodeId> = b.items.iter().map(|i| i.node).collect();
        assert_eq!(a_nodes, b_nodes, "q {q}");
        assert_eq!(
            b.stats.refinement_iterations, 0,
            "q {q}: an undropped store must route the classic path, not the refinement loop"
        );
        assert_eq!(b.stats.refinement_nnz, 0, "q {q}");
    }
}

/// Aggressive truncation visibly shrinks the stored inverses while the
/// ranking stays exact — the memory/latency trade the tier exists for,
/// pinned on a fill-heavy graph (natural ordering maximises fill-in).
#[test]
fn aggressive_tolerance_shrinks_the_store() {
    let graph = break_ties(&erdos_renyi(600, 4200, 9));
    let dense = build(&graph, NodeOrdering::Natural, 0.0);
    let sparse = build(&graph, NodeOrdering::Natural, 1e-3);
    assert!(sparse.needs_refinement());
    let d_nnz = dense.stats().nnz_l_inv + dense.stats().nnz_u_inv;
    let s_nnz = sparse.stats().nnz_l_inv + sparse.stats().nnz_u_inv;
    assert!(
        (s_nnz as f64) < 0.8 * d_nnz as f64,
        "ε = 1e-3 kept {s_nnz} of {d_nnz} inverse nnz — no meaningful sparsification"
    );
    check_same_ranking(
        "aggressive",
        &dense.top_k(17, 10).unwrap(),
        &sparse.top_k(17, 10).unwrap(),
        f64::INFINITY,
    );
}
