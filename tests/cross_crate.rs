//! Cross-crate integration: the claims the paper's evaluation makes about
//! the *system* (not just the algorithm) hold end-to-end on generated
//! datasets.

use kdash_core::{IndexOptions, KdashIndex, NodeOrdering};
use kdash_datagen::{dictionary, DatasetProfile};
use kdash_eval::{precision_at_k, Table};
use kdash_harness::{exact_top_k, profile_graph, sample_queries};

#[test]
fn hybrid_ordering_beats_random_on_fill() {
    // Figure 5's shape: Degree/Cluster/Hybrid orderings produce far fewer
    // inverse nonzeros than Random on a community-structured graph.
    let graph = profile_graph(DatasetProfile::Dictionary, 500, 2);
    let build = |ordering| {
        KdashIndex::build(&graph, IndexOptions { ordering, ..Default::default() })
            .expect("build")
            .stats()
            .inverse_nnz_ratio()
    };
    let hybrid = build(NodeOrdering::Hybrid);
    let degree = build(NodeOrdering::Degree);
    let random = build(NodeOrdering::Random { seed: 4 });
    assert!(
        hybrid < random,
        "hybrid ratio {hybrid:.1} must beat random {random:.1}"
    );
    assert!(
        degree < random,
        "degree ratio {degree:.1} must beat random {random:.1}"
    );
}

#[test]
fn pruning_reduces_work_on_modular_graphs() {
    // Figure 7's shape: with pruning the search touches a fraction of the
    // graph.
    let graph = profile_graph(DatasetProfile::Dictionary, 600, 8);
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("build");
    let mut pruned_total = 0usize;
    let mut unpruned_total = 0usize;
    for q in sample_queries(&graph, 5) {
        pruned_total += index.top_k(q, 5).expect("q").stats.proximity_computations;
        unpruned_total += index.top_k_unpruned(q, 5).expect("q").stats.proximity_computations;
    }
    assert!(
        pruned_total * 2 < unpruned_total,
        "pruning saved too little: {pruned_total} vs {unpruned_total}"
    );
}

#[test]
fn query_rooting_beats_random_rooting() {
    // Figure 9's shape: rooting the tree at the query needs fewer exact
    // proximity computations than rooting it anywhere else.
    let graph = profile_graph(DatasetProfile::Dictionary, 500, 10);
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("build");
    let mut query_rooted = 0usize;
    let mut random_rooted = 0usize;
    for (i, q) in sample_queries(&graph, 5).into_iter().enumerate() {
        query_rooted += index.top_k(q, 5).expect("q").stats.proximity_computations;
        random_rooted +=
            index.top_k_random_root(q, 5, i as u64).expect("q").stats.proximity_computations;
    }
    assert!(
        query_rooted < random_rooted,
        "query rooting {query_rooted} should beat random rooting {random_rooted}"
    );
}

#[test]
fn kdash_precision_is_always_one() {
    // Figure 3's K-dash series: precision 1 everywhere, by construction.
    let graph = profile_graph(DatasetProfile::Citation, 350, 5);
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("build");
    for q in sample_queries(&graph, 4) {
        let truth = exact_top_k(&graph, 0.95, q, 5);
        let got = index.top_k(q, 5).expect("q").nodes();
        let p = precision_at_k(&got, &truth, 5);
        assert!(
            (p - 1.0).abs() < 1e-12 || proximity_tie(&graph, &got, &truth),
            "precision {p} for q={q}"
        );
    }
}

/// Exact ties can swap ids between the two engines; verify the differing
/// ids carry equal proximities before accepting them.
fn proximity_tie(
    graph: &kdash_graph::CsrGraph,
    got: &[kdash_graph::NodeId],
    truth: &[kdash_graph::NodeId],
) -> bool {
    let engine = kdash_baselines::IterativeRwr::new(graph, 0.95);
    let q = truth[0];
    let p = engine.full(q);
    let differing: Vec<_> = got.iter().filter(|n| !truth.contains(n)).collect();
    let missing: Vec<_> = truth.iter().filter(|n| !got.contains(n)).collect();
    differing.len() == missing.len()
        && differing
            .iter()
            .zip(&missing)
            .all(|(a, b)| (p[**a as usize] - p[**b as usize]).abs() < 1e-9)
}

#[test]
fn dictionary_case_study_recovers_planted_clusters() {
    // Table 2's shape: for each planted head term, the exact top-5
    // (excluding the query itself) is dominated by its planted members.
    let data = dictionary(400, 6);
    let index = KdashIndex::build(&data.graph, IndexOptions::default()).expect("build");
    for cluster in &data.clusters {
        let head = cluster[0];
        let result = index.top_k(head, 6).expect("query");
        let answers: Vec<_> = result.nodes().into_iter().filter(|&n| n != head).collect();
        let planted = &cluster[1..];
        let hits = answers.iter().filter(|n| planted.contains(n)).count();
        assert!(
            hits >= 4,
            "head {} recovered only {hits}/5 planted members: {answers:?}",
            data.labels[head as usize]
        );
    }
}

#[test]
fn full_proximities_roundtrip_through_eval_table() {
    // Smoke-test the eval table against real rows (render only).
    let graph = profile_graph(DatasetProfile::Internet, 300, 3);
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("build");
    let mut table = Table::new(vec!["query", "top1", "proximity"]);
    for q in sample_queries(&graph, 3) {
        let r = index.top_k(q, 1).expect("q");
        table.add_row(vec![
            q.to_string(),
            r.items[0].node.to_string(),
            format!("{:.3e}", r.items[0].proximity),
        ]);
    }
    let rendered = table.render();
    assert_eq!(rendered.lines().count(), 2 + table.num_rows());
}

#[test]
fn index_memory_is_linear_in_edges_with_hybrid() {
    // The "Nimble" claim: inverse storage stays within a small multiple of
    // the edge count under hybrid ordering on modular graphs.
    let graph = profile_graph(DatasetProfile::Dictionary, 700, 17);
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("build");
    let ratio = index.stats().inverse_nnz_ratio();
    assert!(
        ratio < 60.0,
        "inverse nnz ratio {ratio:.1} looks super-linear (m = {})",
        graph.num_edges()
    );
}
