//! Tier-1 determinism pin for the parallel build pipeline.
//!
//! The inversion stage fans independent Gilbert–Peierls column solves out
//! over a work-stealing cursor; the contract is that the gathered `L⁻¹` /
//! `U⁻¹` are **byte-identical** to the sequential inversion at every
//! thread count — same nnz, same index arrays, same value bits — on every
//! graph family. A scheduling-dependent result here would silently break
//! index persistence, replication, and the exactness guarantees downstream,
//! so this suite runs in tier-1.

use kdash_core::{IndexBuilder, IndexOptions, NodeOrdering};
use kdash_datagen::{barabasi_albert, erdos_renyi, rmat, RmatParams};
use kdash_graph::CsrGraph;
use kdash_sparse::{
    invert_lower_unit, invert_lower_unit_with, invert_upper, invert_upper_with, sparse_lu,
    transition_matrix, w_matrix, CscMatrix, DanglingPolicy, InvertOptions,
};

fn test_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("er", erdos_renyi(300, 1200, 11)),
        ("ba", barabasi_albert(300, 3, 12)),
        ("rmat", rmat(9, 2048, RmatParams::default(), 13)),
    ]
}

fn assert_csc_bytes_equal(label: &str, seq: &CscMatrix, par: &CscMatrix) {
    let (sp, si, sv) = seq.raw();
    let (pp, pi, pv) = par.raw();
    assert_eq!(seq.nnz(), par.nnz(), "{label}: nnz differs");
    assert_eq!(sp, pp, "{label}: col_ptr differs");
    assert_eq!(si, pi, "{label}: row indices differ");
    assert_eq!(sv.len(), pv.len(), "{label}: value count differs");
    for (i, (a, b)) in sv.iter().zip(pv).enumerate() {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: value {i} differs: {a} vs {b}");
    }
}

/// The sparse-kernel contract: parallel inversion of real LU factors is
/// byte-identical to the sequential inversion.
#[test]
fn parallel_inversion_matches_sequential_on_lu_factors() {
    for (name, graph) in test_graphs() {
        let a = transition_matrix(&graph, DanglingPolicy::Keep);
        let w = w_matrix(&a, 0.95).expect("valid restart probability");
        let factors = sparse_lu(&w).expect("W is diagonally dominant");
        let linv_seq = invert_lower_unit(&factors.l).expect("sequential L inverse");
        let uinv_seq = invert_upper(&factors.u).expect("sequential U inverse");
        for threads in [2usize, 3, 0] {
            let opts = InvertOptions { threads };
            let linv_par = invert_lower_unit_with(&factors.l, opts).expect("parallel L inverse");
            let uinv_par = invert_upper_with(&factors.u, opts).expect("parallel U inverse");
            assert_csc_bytes_equal(&format!("{name} L⁻¹ threads={threads}"), &linv_seq, &linv_par);
            assert_csc_bytes_equal(&format!("{name} U⁻¹ threads={threads}"), &uinv_seq, &uinv_par);
        }
    }
}

/// The end-to-end contract: `IndexBuilder` at threads ∈ {1, 2, auto}
/// produces byte-identical stored inverses and identical nnz stats, for
/// every ordering family the paper evaluates.
#[test]
fn staged_build_is_thread_count_invariant() {
    for (name, graph) in test_graphs() {
        for ordering in [NodeOrdering::Natural, NodeOrdering::Degree, NodeOrdering::Hybrid] {
            let options = IndexOptions { ordering, ..Default::default() };
            let baseline = IndexBuilder::from_options(options).threads(1).build(&graph).unwrap();
            for threads in [2usize, 0] {
                let built =
                    IndexBuilder::from_options(options).threads(threads).build(&graph).unwrap();
                let label = format!("{name} {ordering:?} threads={threads}");
                assert_csc_bytes_equal(
                    &format!("{label} L⁻¹"),
                    baseline.linv_cols(),
                    built.linv_cols(),
                );
                assert_csc_bytes_equal(
                    &format!("{label} U⁻¹"),
                    &baseline.uinv_rows().to_csc(),
                    &built.uinv_rows().to_csc(),
                );
                assert_eq!(baseline.stats().nnz_l_inv, built.stats().nnz_l_inv, "{label}");
                assert_eq!(baseline.stats().nnz_u_inv, built.stats().nnz_u_inv, "{label}");
                assert_eq!(
                    baseline.stats().inverse_heap_bytes,
                    built.stats().inverse_heap_bytes,
                    "{label}"
                );
            }
        }
    }
}

/// Top-k answers (the user-visible surface) carry the same bit-exactness
/// across thread counts.
#[test]
fn queries_are_bit_identical_across_thread_counts() {
    let graph = rmat(9, 2048, RmatParams::default(), 21);
    let sequential = IndexBuilder::new().threads(1).build(&graph).unwrap();
    let parallel = IndexBuilder::new().threads(0).build(&graph).unwrap();
    for q in (0..graph.num_nodes() as u32).step_by(97) {
        let a = sequential.top_k(q, 10).unwrap();
        let b = parallel.top_k(q, 10).unwrap();
        assert_eq!(a.nodes(), b.nodes(), "query {q}");
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.proximity.to_bits(), y.proximity.to_bits(), "query {q}");
        }
        assert_eq!(a.stats, b.stats, "query {q}: search statistics must agree");
    }
}
