//! Tier-1 contract of the epoch-snapshot serving tier (`kdash-serve`):
//! a [`ServeLoop`] over an [`EpochStore`] serves **consistent, exact**
//! answers while a writer swaps epochs underneath it.
//!
//! * Consistency: every response produced during a concurrent write
//!   storm is tagged with the epoch it was computed against, and is
//!   **bit-identical** (node ids and proximity bit patterns) to a
//!   standalone [`Searcher::top_k`] on that epoch's pinned snapshot —
//!   i.e. no torn reads, no cross-epoch blends, ever.
//! * Admission control: overload returns the typed
//!   [`ServeError::Overloaded`] — never a panic, never a hang — and
//!   every request accepted before the queue filled still completes
//!   once the loop drains.
//! * Durability: a mid-serve crash (process death without checkpoint)
//!   recovers from the write-ahead journal to an epoch at or above the
//!   acked floor, and the revived serving tier answers bit-identically
//!   to the pre-crash index.

use kdash_core::{IndexOptions, KdashIndex, Searcher};
use kdash_dynamic::{DynamicIndex, Journal, UpdateBatch};
use kdash_graph::EdgeEdit;
use kdash_harness::profile_graph;
use kdash_serve::{EpochWriter, ServeError, ServeLoop, ServeOptions};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn build_index(nodes: usize, seed: u64) -> KdashIndex {
    let graph = profile_graph(kdash_datagen::DatasetProfile::Social, nodes, seed);
    KdashIndex::build(&graph, IndexOptions::default()).expect("build index")
}

/// A valid random single-edit batch against the *current* index: fresh
/// inserts (checked against the permuted graph so duplicates cannot be
/// generated) and deletes drawn only from edges this run inserted.
fn synthetic_batch(
    rng: &mut StdRng,
    inserted: &mut Vec<(u32, u32)>,
    index: &KdashIndex,
) -> UpdateBatch {
    let n = index.num_nodes() as u32;
    let edit = loop {
        if !inserted.is_empty() && (inserted.len() >= 32 || rng.gen_bool(0.5)) {
            let at = rng.gen_range(0..inserted.len());
            let (src, dst) = inserted.swap_remove(at);
            break EdgeEdit::Delete { src, dst };
        }
        let src = rng.gen_range(0..n);
        let dst = rng.gen_range(0..n);
        let perm = index.permutation();
        if src == dst || index.permuted_graph().has_edge(perm.new_of(src), perm.new_of(dst)) {
            continue;
        }
        inserted.push((src, dst));
        break EdgeEdit::Insert { src, dst, weight: 1.0 };
    };
    UpdateBatch::new(vec![edit]).expect("valid edit")
}

fn assert_bit_identical(
    label: &str,
    served: &kdash_core::TopKResult,
    reference: &kdash_core::TopKResult,
) {
    assert_eq!(
        served.items.len(),
        reference.items.len(),
        "{label}: result length diverged"
    );
    for (s, r) in served.items.iter().zip(&reference.items) {
        assert_eq!(s.node, r.node, "{label}: node order diverged");
        assert_eq!(
            s.proximity.to_bits(),
            r.proximity.to_bits(),
            "{label}: proximity bits diverged at node {}",
            s.node
        );
    }
}

/// Concurrent readers during a write storm: every answer matches a
/// standalone query on the exact epoch snapshot it claims, bit for bit.
#[test]
fn concurrent_reads_during_write_storm_are_bit_identical_per_epoch() {
    const WRITES: usize = 10;
    const K: usize = 8;

    let index = build_index(250, 11);
    let n = index.num_nodes() as u32;
    let engine = DynamicIndex::new(index).expect("attach engine");
    let (mut writer, store) = EpochWriter::new(engine);

    // history[e] = the immutable snapshot published as epoch e.
    let mut history: Vec<Arc<KdashIndex>> = Vec::new();
    history.push(store.pin());

    let serve_loop = ServeLoop::start(
        Arc::clone(&store),
        ServeOptions { workers: 2, queue_capacity: 256, max_batch: 8, ..Default::default() },
    )
    .expect("start loop");
    writer.attach_metrics(serve_loop.metrics());

    let stop = AtomicBool::new(false);
    let recorded: Vec<(u64, u32, Vec<(u32, u64)>)> = std::thread::scope(|scope| {
        let serve_ref = &serve_loop;
        let stop_ref = &stop;
        let readers: Vec<_> = (0..2)
            .map(|r| {
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(100 + r);
                    let mut seen = Vec::new();
                    while !stop_ref.load(Ordering::Acquire) {
                        let q = rng.gen_range(0..n);
                        let resp = serve_ref.query_blocking(q, K).expect("serve during storm");
                        let bits = resp
                            .result
                            .items
                            .iter()
                            .map(|i| (i.node, i.proximity.to_bits()))
                            .collect();
                        seen.push((resp.epoch, q, bits));
                    }
                    seen
                })
            })
            .collect();

        let mut rng = StdRng::seed_from_u64(7);
        let mut inserted = Vec::new();
        for _ in 0..WRITES {
            let batch = synthetic_batch(&mut rng, &mut inserted, writer.engine().index());
            writer.apply(&batch).expect("apply during storm");
            // `apply` published before returning and we are the only
            // writer, so this pin is exactly the epoch just installed.
            history.push(store.pin());
            std::thread::sleep(Duration::from_millis(3));
        }
        stop.store(true, Ordering::Release);
        readers
            .into_iter()
            .flat_map(|h| h.join().expect("reader panicked"))
            .collect()
    });
    serve_loop.shutdown();

    assert_eq!(history.len() as u64, WRITES as u64 + 1);
    assert!(!recorded.is_empty(), "readers recorded no responses");
    for (epoch, query, bits) in &recorded {
        let snapshot = history
            .get(*epoch as usize)
            .unwrap_or_else(|| panic!("response claims unknown epoch {epoch}"));
        let reference = Searcher::new(snapshot).top_k(*query, K).expect("reference query");
        assert_eq!(bits.len(), reference.items.len(), "epoch {epoch} query {query}: length");
        for ((node, prox_bits), r) in bits.iter().zip(&reference.items) {
            assert_eq!(*node, r.node, "epoch {epoch} query {query}: node order diverged");
            assert_eq!(
                *prox_bits,
                r.proximity.to_bits(),
                "epoch {epoch} query {query}: proximity bits diverged"
            );
        }
    }
}

/// Overload is a typed, recoverable condition: a full queue sheds with
/// [`ServeError::Overloaded`], accepted requests complete after resume,
/// and nothing panics.
#[test]
fn overload_sheds_typed_and_accepted_requests_complete() {
    const K: usize = 5;
    let index = build_index(120, 23);
    let n = index.num_nodes() as u32;
    let engine = DynamicIndex::new(index).expect("attach engine");
    let (writer, store) = EpochWriter::new(engine);

    let serve_loop = ServeLoop::start(
        Arc::clone(&store),
        ServeOptions { workers: 1, queue_capacity: 4, max_batch: 4, ..Default::default() },
    )
    .expect("start loop");

    // Park the worker so the queue can only fill.
    serve_loop.pause();
    std::thread::sleep(Duration::from_millis(30));

    let capacity = serve_loop.queue_capacity();
    let mut pending = Vec::new();
    let mut shed_seen = None;
    for q in 0.. {
        match serve_loop.submit(q % n, K) {
            Ok(p) => pending.push(p),
            Err(err) => {
                shed_seen = Some(err);
                break;
            }
        }
        assert!(
            pending.len() <= capacity,
            "queue accepted more than its capacity before shedding"
        );
    }
    match shed_seen.expect("a full queue must shed") {
        ServeError::Overloaded { depth, capacity: cap } => {
            assert_eq!(cap, capacity);
            assert!(depth >= capacity, "shed reported a non-full queue");
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert_eq!(pending.len(), capacity, "accepted exactly the admission bound");
    assert!(serve_loop.metrics().snapshot().shed >= 1);

    // Resume: every accepted request completes, bit-identical to a
    // standalone query on the (only) pinned epoch.
    serve_loop.resume();
    let pinned = store.pin();
    let mut searcher = Searcher::new(&pinned);
    for (q, p) in pending.into_iter().enumerate() {
        let resp = p.wait().expect("accepted request must complete after resume");
        assert_eq!(resp.epoch, 0);
        let reference = searcher.top_k(q as u32 % n, K).expect("reference query");
        assert_bit_identical("post-resume", &resp.result, &reference);
    }
    serve_loop.shutdown();
}

static CRASH_DIR_TAG: AtomicUsize = AtomicUsize::new(0);

/// Mid-serve crash: the journal's acked floor survives, `recover`
/// replays to it, and the revived tier serves the pre-crash answers.
#[test]
fn mid_serve_crash_recovers_to_acked_floor_and_serves_identically() {
    const WRITES: usize = 5;
    const K: usize = 6;

    let dir = std::env::temp_dir().join(format!(
        "kdash-serving-equivalence-{}-{}",
        std::process::id(),
        CRASH_DIR_TAG.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let snapshot_path: PathBuf = dir.join("serve.kdash");

    let index = build_index(150, 31);
    let n = index.num_nodes() as u32;
    kdash_core::save_atomic(&index, &snapshot_path).expect("write snapshot");
    let journal = Journal::create(Journal::sidecar_path(&snapshot_path), index.update_epoch())
        .expect("create journal");
    let engine = DynamicIndex::new(index)
        .expect("attach engine")
        .journaled(journal)
        .expect("attach journal");
    let (mut writer, store) = EpochWriter::new(engine);

    let serve_loop = ServeLoop::start(Arc::clone(&store), ServeOptions::default())
        .expect("start loop");
    writer.attach_metrics(serve_loop.metrics());

    let mut rng = StdRng::seed_from_u64(404);
    let mut inserted = Vec::new();
    for _ in 0..WRITES {
        let batch = synthetic_batch(&mut rng, &mut inserted, writer.engine().index());
        writer.apply(&batch).expect("journaled apply");
    }
    let acked = store.acked_epoch();
    assert_eq!(acked, WRITES as u64);
    let resp = serve_loop.query_blocking(3 % n, K).expect("serve before crash");
    assert_eq!(resp.epoch, WRITES as u64);

    // "Crash": tear everything down without checkpointing. The snapshot
    // on disk is still epoch 0; only the journal knows about the acks.
    let pre_crash = store.pin();
    serve_loop.shutdown();
    drop(writer);

    let loaded = KdashIndex::load(std::fs::File::open(&snapshot_path).expect("open snapshot"))
        .expect("load snapshot");
    assert_eq!(loaded.update_epoch(), 0, "snapshot must predate the acked writes");
    let (recovered, report) =
        DynamicIndex::recover(loaded, Journal::sidecar_path(&snapshot_path))
            .expect("recover from journal");
    assert!(
        report.final_epoch >= acked,
        "recovery fell below the acked floor: {} < {acked}",
        report.final_epoch
    );

    let (revived_writer, revived_store) = EpochWriter::new(recovered);
    assert_eq!(revived_store.epoch(), acked);
    let revived_loop = ServeLoop::start(Arc::clone(&revived_store), ServeOptions::default())
        .expect("restart loop");
    let mut reference = Searcher::new(&pre_crash);
    for q in [0u32, 1, 7 % n, n / 2, n - 1] {
        let served = revived_loop.query_blocking(q, K).expect("serve after recovery");
        assert_eq!(served.epoch, acked);
        let expected = reference.top_k(q, K).expect("pre-crash reference");
        assert_bit_identical("post-recovery", &served.result, &expected);
    }
    revived_loop.shutdown();
    drop(revived_writer);
    let _ = std::fs::remove_dir_all(&dir);
}
