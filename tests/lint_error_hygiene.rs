//! Error-hygiene lint: library code must not grow new `unwrap()` /
//! `expect(` call sites.
//!
//! The robustness story of this PR — typed `PersistError`s, budget
//! aborts, panic-isolated batches — only holds if the library itself
//! doesn't panic on the paths those errors are supposed to cover. This
//! test walks every library crate's sources (tests, benches and binaries
//! excluded), counts panic-prone call sites outside `#[cfg(test)]`
//! modules, and fails if any file exceeds its frozen allowance.
//!
//! The allowlist below is the audited baseline: each entry is a call
//! site that was reviewed and found unreachable-by-construction (e.g.
//! an index freshly validated two lines above) or deliberately fatal
//! (e.g. a poisoned lock where unwinding is the right answer). Lowering
//! a count is always fine; raising one means a new panic path slipped
//! into library code — convert it to a typed error instead, or argue
//! its safety in review and bump the entry.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// `(file path relative to the workspace root, audited call-site count)`.
const ALLOWLIST: &[(&str, usize)] = &[
    ("crates/baselines/src/blin.rs", 5),
    ("crates/baselines/src/bpa.rs", 3),
    ("crates/baselines/src/lib.rs", 1),
    ("crates/baselines/src/local.rs", 2),
    ("crates/baselines/src/montecarlo.rs", 1),
    ("crates/baselines/src/nblin.rs", 2),
    ("crates/community/src/louvain.rs", 1),
    ("crates/core/src/estimator.rs", 1),
    ("crates/core/src/ordering.rs", 1),
    ("crates/core/src/precompute.rs", 1),
    // searcher.rs: all three are `partial_cmp.expect` on proximities that
    // are finite by construction (the refinement sort added the third).
    ("crates/core/src/searcher.rs", 3),
    ("crates/datagen/src/ba.rs", 1),
    ("crates/datagen/src/collaboration.rs", 1),
    ("crates/datagen/src/dictionary.rs", 1),
    ("crates/datagen/src/er.rs", 1),
    ("crates/datagen/src/rmat.rs", 1),
    ("crates/datagen/src/sbm.rs", 2),
    ("crates/datagen/src/ws.rs", 1),
    ("crates/dynamic/src/batch.rs", 1),
    ("crates/dynamic/src/engine.rs", 3),
    ("crates/eval/src/timing.rs", 1),
    ("crates/graph/src/components.rs", 2),
    ("crates/graph/src/csr.rs", 1),
    ("crates/linalg/src/eigen.rs", 1),
    ("crates/linalg/src/svd.rs", 2),
    ("crates/sparse/src/blocked.rs", 5),
    ("crates/sparse/src/csr.rs", 1),
    ("crates/sparse/src/inverse.rs", 3),
    ("crates/sparse/src/kernel.rs", 1),
    ("crates/sparse/src/lu.rs", 1),
    ("crates/sparse/src/rwr.rs", 1),
    // sparsify.rs: two `join().expect` propagating worker panics (the same
    // deliberately-fatal pattern audited in inverse.rs) and one
    // `col_ptr.last().expect` directly after an unconditional push.
    ("crates/sparse/src/sparsify.rs", 3),
    ("crates/sparse/src/store.rs", 1),
];

fn workspace_root() -> PathBuf {
    // CARGO_MANIFEST_DIR is crates/harness; the workspace root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
}

/// Recursively collects `.rs` files under `dir`.
fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Counts `.unwrap()` / `.expect(` call sites in the library portion of
/// one source file: everything before the first `#[cfg(test)]` line,
/// with `//` line comments stripped so documentation can still *discuss*
/// the patterns.
fn panic_sites(source: &str) -> usize {
    let mut count = 0;
    for line in source.lines() {
        if line.trim_start().starts_with("#[cfg(test)]") {
            break;
        }
        let code = line.split("//").next().unwrap_or(line);
        count += code.matches(".unwrap()").count();
        count += code.matches(".expect(").count();
    }
    count
}

#[test]
fn library_code_does_not_grow_panic_sites() {
    let root = workspace_root();
    let allowed: BTreeMap<&str, usize> = ALLOWLIST.iter().copied().collect();

    let mut files = Vec::new();
    for entry in std::fs::read_dir(root.join("crates")).unwrap() {
        let krate = entry.unwrap().path();
        // Benches are throwaway measurement code; binaries (src/bin) are
        // covered by their own CLI-level error handling.
        if krate.file_name().is_some_and(|n| n == "bench") {
            continue;
        }
        let src = krate.join("src");
        if src.is_dir() {
            rust_sources(&src, &mut files);
        }
    }
    assert!(files.len() > 30, "the source walk found too few files — lint is miswired");

    let mut violations = Vec::new();
    let mut seen = Vec::new();
    for path in files {
        let rel = path.strip_prefix(&root).unwrap().to_string_lossy().replace('\\', "/");
        if rel.contains("/src/bin/") {
            continue;
        }
        let count = panic_sites(&std::fs::read_to_string(&path).unwrap());
        let budget = allowed.get(rel.as_str()).copied().unwrap_or(0);
        if count > budget {
            violations.push(format!(
                "{rel}: {count} unwrap()/expect( call sites in library code \
                 (allowed: {budget}) — return a typed error instead, or audit \
                 the site and bump the allowlist in tests/lint_error_hygiene.rs"
            ));
        }
        if allowed.contains_key(rel.as_str()) {
            seen.push(rel);
        }
    }

    // A stale allowlist entry (file deleted or renamed) silently grants
    // budget to nothing; flag it so the list tracks reality.
    for (file, _) in ALLOWLIST {
        assert!(
            seen.iter().any(|s| s == file),
            "allowlist entry {file} matches no source file — remove or update it"
        );
    }

    assert!(violations.is_empty(), "\n{}\n", violations.join("\n"));
}

#[test]
fn hardened_files_stay_at_zero() {
    // The durability/robustness subsystems must stay panic-free in
    // library code — they are deliberately *not* in the allowlist. A
    // recovery path that can panic defeats its own purpose (journal.rs
    // and fault.rs run exactly when the process is picking up after a
    // crash), and the serving tier holds the same bar: a panic in a
    // worker, the epoch store, or the metrics path takes down queries
    // that admission control promised to answer.
    let root = workspace_root();
    for file in [
        "crates/core/src/persist.rs",
        "crates/core/src/batch.rs",
        "crates/core/src/audit.rs",
        "crates/core/src/fault.rs",
        "crates/dynamic/src/journal.rs",
        "crates/serve/src/lib.rs",
        "crates/serve/src/epoch.rs",
        "crates/serve/src/metrics.rs",
        "crates/serve/src/queue.rs",
        "crates/serve/src/server.rs",
    ] {
        let source = std::fs::read_to_string(root.join(file)).unwrap();
        assert_eq!(panic_sites(&source), 0, "{file} must stay free of unwrap/expect");
    }
}
