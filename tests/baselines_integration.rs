//! The comparative behaviours §6 reports, as assertions: the approximate
//! engines trade accuracy for their own cost models while K-dash stays
//! exact.

use kdash_baselines::{
    BLin, BLinOptions, Bpa, BpaOptions, IterativeRwr, LocalRwr, NbLin, NbLinOptions, TopKEngine,
};
use kdash_core::{IndexOptions, KdashIndex};
use kdash_datagen::DatasetProfile;
use kdash_eval::{precision_at_k, recall_at_k};
use kdash_harness::{exact_top_k, profile_graph, sample_queries};

const C: f64 = 0.9;
const K: usize = 5;

fn average_precision<E: TopKEngine>(
    engine: &E,
    graph: &kdash_graph::CsrGraph,
    queries: &[kdash_graph::NodeId],
) -> f64 {
    let mut total = 0.0;
    for &q in queries {
        let truth = exact_top_k(graph, C, q, K);
        let got: Vec<_> = engine.top_k(q, K).into_iter().map(|(n, _)| n).collect();
        total += precision_at_k(&got, &truth, K);
    }
    total / queries.len() as f64
}

#[test]
fn nblin_precision_rises_with_rank() {
    // Figure 3's NB_LIN curve.
    let graph = profile_graph(DatasetProfile::Dictionary, 400, 1);
    let queries = sample_queries(&graph, 6);
    let lo = NbLin::build(
        &graph,
        NbLinOptions { target_rank: 5, restart_probability: C, seed: 3 },
    )
    .expect("rank 5");
    let hi = NbLin::build(
        &graph,
        NbLinOptions { target_rank: 120, restart_probability: C, seed: 3 },
    )
    .expect("rank 120");
    let p_lo = average_precision(&lo, &graph, &queries);
    let p_hi = average_precision(&hi, &graph, &queries);
    assert!(
        p_hi >= p_lo,
        "precision must not fall with rank: {p_lo:.3} -> {p_hi:.3}"
    );
    assert!(p_lo < 1.0, "a rank-5 approximation cannot be exact on this graph");
}

#[test]
fn bpa_recall_is_one() {
    // The BPA guarantee the paper singles out: its answer set always
    // contains the true top-k.
    let graph = profile_graph(DatasetProfile::Citation, 350, 2);
    let bpa = Bpa::build(
        &graph,
        BpaOptions { num_hubs: 30, restart_probability: C, ..Default::default() },
    );
    for q in sample_queries(&graph, 5) {
        let truth = exact_top_k(&graph, C, q, K);
        let answer: Vec<_> = bpa.top_k(q, K).into_iter().map(|(n, _)| n).collect();
        let recall = recall_at_k(&answer, &truth, K);
        assert!((recall - 1.0).abs() < 1e-12, "q={q}: recall {recall}");
    }
}

#[test]
fn blin_no_worse_than_nblin_on_modular_graph() {
    // B_LIN keeps within-community structure exact, which is most of the
    // proximity mass on a community graph.
    let graph = profile_graph(DatasetProfile::Dictionary, 350, 4);
    let queries = sample_queries(&graph, 5);
    let rank = 15;
    let nblin = NbLin::build(
        &graph,
        NbLinOptions { target_rank: rank, restart_probability: C, seed: 5 },
    )
    .expect("nblin");
    let blin = BLin::build(
        &graph,
        BLinOptions { target_rank: rank, restart_probability: C, ..Default::default() },
    )
    .expect("blin");
    let p_nblin = average_precision(&nblin, &graph, &queries);
    let p_blin = average_precision(&blin, &graph, &queries);
    assert!(
        p_blin + 0.15 >= p_nblin,
        "B_LIN ({p_blin:.3}) should be competitive with NB_LIN ({p_nblin:.3}) at equal rank"
    );
}

#[test]
fn local_rwr_good_inside_communities_lossy_across() {
    let graph = profile_graph(DatasetProfile::Dictionary, 400, 7);
    let local = LocalRwr::build(&graph, C, 11);
    let queries = sample_queries(&graph, 6);
    let p = average_precision(&local, &graph, &queries);
    // Skewed proximities keep most answers local, but cross-community
    // answers are lost: decent but imperfect precision.
    assert!(p > 0.4, "local RWR precision collapsed: {p:.3}");
    let exact_engine = IterativeRwr::new(&graph, C);
    let p_exact = average_precision(&exact_engine, &graph, &queries);
    assert!((p_exact - 1.0).abs() < 1e-9, "iterative against itself must be 1");
}

#[test]
fn kdash_and_iterative_agree_through_engine_interface() {
    let graph = profile_graph(DatasetProfile::Internet, 300, 9);
    let index = KdashIndex::build(
        &graph,
        IndexOptions { restart_probability: C, ..Default::default() },
    )
    .expect("index");
    let iterative = IterativeRwr::new(&graph, C);
    for q in sample_queries(&graph, 4) {
        let a = index.top_k(q, K).expect("kdash");
        let b = iterative.top_k(q, K);
        for (x, y) in a.items.iter().zip(&b) {
            assert!((x.proximity - y.1).abs() < 1e-9);
        }
    }
}

#[test]
fn engine_names_are_distinct() {
    let graph = profile_graph(DatasetProfile::Internet, 300, 10);
    let names = vec![
        IterativeRwr::new(&graph, C).name(),
        NbLin::build(&graph, NbLinOptions::default()).unwrap().name(),
        BLin::build(&graph, BLinOptions::default()).unwrap().name(),
        Bpa::build(&graph, BpaOptions { num_hubs: 5, ..Default::default() }).name(),
        LocalRwr::build(&graph, C, 1).name(),
    ];
    let mut unique = names.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), names.len(), "{names:?}");
}
