//! The blocked-layout contract: re-encoding the stored `U⁻¹` from flat
//! CSR into the blocked (u32 anchor + u16 delta) layout changes *memory
//! traffic*, never *answers* — and the adaptive kernel policy consumes
//! only layout-independent inputs, so the per-row kernel choice is the
//! same under both layouts (and, by construction, on every machine).
//!
//! * Property: across ER/BA/RMAT × orderings × every host kernel
//!   (`Adaptive` included) × top-k / restart-set / random-root queries,
//!   flat and blocked runs are **bit-identical** in items and agree on
//!   every stat except the (layout-defined) index-byte counter — the
//!   shared checker lives in `kdash_harness::check_layout_equivalence`.
//! * The aggregate index-byte reduction on fill-dominated inverses is
//!   pinned at ≥ 25 % (the acceptance number; single-block matrices sit
//!   near 50 %).
//! * The PR 3 cold-row regression pin: on a synthetic *low-overlap*
//!   column (every predicted stamp-hit rate miss-dominated), `Adaptive`
//!   must never select a wide kernel, so its executed byte count (index +
//!   model value traffic) is ≤ min(scalar, wide) — the wide kernels'
//!   unconditional value touches never reappear on cold rows.

use kdash_core::{GatherKernel, IndexOptions, KdashIndex, NodeOrdering, RowLayout, Searcher};
use kdash_datagen::{barabasi_albert, erdos_renyi, rmat, RmatParams};
use kdash_graph::NodeId;
use kdash_harness::check_layout_equivalence;
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = kdash_graph::CsrGraph> {
    (0usize..3, 16usize..80, 1usize..5, any::<u64>()).prop_map(|(family, n, density, seed)| {
        match family {
            0 => erdos_renyi(n, n * density, seed),
            1 => barabasi_albert(n, density.min(n - 1).max(1), seed),
            _ => {
                let scale = 4 + (n % 3) as u32;
                rmat(scale, (1usize << scale) * density, RmatParams::default(), seed)
            }
        }
    })
}

fn ordering_for(which: usize) -> NodeOrdering {
    [
        NodeOrdering::Natural,
        NodeOrdering::Degree,
        NodeOrdering::Hybrid,
        NodeOrdering::ReverseCuthillMcKee,
    ][which % 4]
}

/// Every kernel selection this host can resolve, `Adaptive` included.
fn host_kernels() -> Vec<GatherKernel> {
    GatherKernel::ALL.into_iter().filter(|k| k.resolve().is_ok()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Flat vs blocked: bit-identical top-k, restart-set and random-root
    /// results and matching stats under every kernel.
    #[test]
    fn layouts_are_bit_identical_across_kernels((graph, q_sel, k_sel, which) in
        (graph_strategy(), any::<u32>(), 1usize..10, 0usize..4)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let flat = KdashIndex::build(&graph, IndexOptions {
            ordering: ordering_for(which),
            layout: RowLayout::Flat,
            ..Default::default()
        }).unwrap();
        // One expensive build; the blocked twin is a re-encoding of it —
        // also exactly what `with_layout` promises to preserve.
        let blocked = flat.with_layout(RowLayout::Blocked);
        prop_assert_eq!(blocked.layout(), RowLayout::Blocked);
        prop_assert_eq!(flat.stats().nnz_u_inv, blocked.stats().nnz_u_inv);

        let sources = [q, (q + 1) % n as NodeId];
        let root = (q + 2) % n as NodeId;
        for kernel in host_kernels() {
            let mut sf = Searcher::with_kernel(&flat, kernel).unwrap();
            let mut sb = Searcher::with_kernel(&blocked, kernel).unwrap();
            let runs = [
                ("top_k", sf.top_k(q, k_sel).unwrap(), sb.top_k(q, k_sel).unwrap()),
                (
                    "from_set",
                    sf.top_k_from_set(&sources, k_sel).unwrap(),
                    sb.top_k_from_set(&sources, k_sel).unwrap(),
                ),
                (
                    "random_root",
                    sf.top_k_from_root(q, k_sel, root).unwrap(),
                    sb.top_k_from_root(q, k_sel, root).unwrap(),
                ),
                (
                    "unpruned",
                    sf.top_k_unpruned(q, k_sel).unwrap(),
                    sb.top_k_unpruned(q, k_sel).unwrap(),
                ),
            ];
            for (label, f_res, b_res) in runs {
                if let Err(msg) = check_layout_equivalence(&f_res, &b_res) {
                    prop_assert!(false, "{} kernel {} n={} q={} k={}: {}",
                        label, kernel, n, q, k_sel, msg);
                }
            }
        }
    }
}

/// The acceptance pin: on fill-dominated triangular inverses the blocked
/// layout cuts aggregate index bytes by at least 25 % against flat CSR's
/// 4 bytes/nnz (on sub-65 536-node matrices every non-empty row is a
/// single run, so the cut approaches 50 %).
#[test]
fn blocked_layout_cuts_index_bytes_by_a_quarter() {
    for (label, graph) in [
        ("rmat-9", rmat(9, 2048, RmatParams::default(), 7)),
        ("ba-400", barabasi_albert(400, 4, 11)),
        ("er-300", erdos_renyi(300, 1500, 13)),
    ] {
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        assert_eq!(index.layout(), RowLayout::Blocked, "{label}: blocked is the default");
        let nnz = index.stats().nnz_u_inv;
        let flat_bytes = 4 * nnz;
        let blocked_bytes = index.stats().uinv_index_bytes;
        assert!(
            (blocked_bytes as f64) <= 0.75 * flat_bytes as f64,
            "{label}: blocked {blocked_bytes} B vs flat {flat_bytes} B \
             ({:.1}% — needs >= 25% reduction)",
            100.0 * (1.0 - blocked_bytes as f64 / flat_bytes as f64)
        );
        // And the flat twin reports exactly the flat accounting.
        let flat = index.with_layout(RowLayout::Flat);
        assert_eq!(flat.stats().uinv_index_bytes, flat_bytes, "{label}");
    }
}

/// The PR 3 cold-row regression pin: with a synthetic low-overlap query
/// column — entries spread so thin that every row's predicted stamp-hit
/// rate is miss-dominated — `Adaptive` must run *every* candidate row
/// through the scalar gather, so its executed byte count (index + model
/// value bytes) is exactly the scalar kernel's and ≤ the wide kernel's,
/// which pays 8 bytes per stored entry unconditionally.
#[test]
fn adaptive_never_picks_wide_on_miss_dominated_columns() {
    use kdash_sparse::{
        CscMatrix, CsrMatrix, GatherCounters, GatherScratch, ProximityStore, ScatteredColumn,
    };

    // Dense-ish rows (well above the wide-kernel nnz floor) over 4096
    // columns.
    let n = 4096usize;
    let mut trips = Vec::new();
    for r in 0..64u32 {
        for j in 0..128u32 {
            trips.push((r, (j * 32 + r) % n as u32, 1.0 + (j as f64) * 0.01));
        }
    }
    let csr = CsrMatrix::from_csc(&CscMatrix::from_triplets(64, n, &trips).unwrap());
    let store = ProximityStore::from_csr(csr, RowLayout::Blocked).unwrap();

    // The low-overlap column: one entry every 64 positions — bucket
    // density 16/1024 ≈ 1.6%, far below the 50% wide threshold, on every
    // window.
    let idx: Vec<u32> = (0..n as u32).step_by(64).collect();
    let val: Vec<f64> = idx.iter().map(|&i| 1.0 / (1.0 + i as f64)).collect();
    let mut column = ScatteredColumn::new(n);
    column.load(&idx, &val);

    let mut scratch = GatherScratch::with_capacity(store.max_row_nnz());
    let mut executed = |kernel: GatherKernel| {
        let resolved = kernel.resolve().unwrap();
        let mut counters = GatherCounters::default();
        let mut acc = 0.0;
        for r in 0..64u32 {
            acc += store.row_gather(resolved, r, &column, &mut scratch, &mut counters);
        }
        std::hint::black_box(acc);
        counters
    };

    let scalar = executed(GatherKernel::Scalar);
    let wide = executed(GatherKernel::Unrolled4);
    let adaptive = executed(GatherKernel::Adaptive);

    assert_eq!(adaptive.rows_wide, 0, "miss-dominated rows must never go wide");
    assert_eq!(adaptive.rows_scalar, 64);
    let bytes = |c: &GatherCounters| c.index_bytes + c.value_bytes;
    assert_eq!(
        bytes(&adaptive),
        bytes(&scalar),
        "all-scalar adaptive pays exactly the scalar traffic"
    );
    assert!(
        bytes(&adaptive) <= bytes(&scalar).min(bytes(&wide)),
        "adaptive {} must not exceed min(scalar {}, wide {})",
        bytes(&adaptive),
        bytes(&scalar),
        bytes(&wide)
    );
    // The wide kernel's unconditional value traffic is what the policy
    // avoids: on this column it is strictly worse.
    assert!(bytes(&wide) > bytes(&scalar));
}

/// The machine-independence pin for the whole search: the per-kernel row
/// split recorded in the stats must be reproducible from the index and
/// query alone — replaying the policy over the visited rows yields the
/// same split, and repeated runs agree exactly (no host state involved).
#[test]
fn adaptive_row_split_is_a_pure_function_of_index_and_query() {
    let graph = rmat(9, 2048, RmatParams::default(), 3);
    let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
    let mut searcher = Searcher::with_kernel(&index, GatherKernel::Adaptive).unwrap();
    for q in (0..graph.num_nodes() as NodeId).step_by(97) {
        let first = searcher.top_k(q, 10).unwrap();
        let again = searcher.top_k(q, 10).unwrap();
        assert_eq!(first.stats, again.stats, "q {q}: replay must agree exactly");
        assert_eq!(
            first.stats.rows_scalar + first.stats.rows_wide,
            first.stats.proximity_computations,
            "q {q}: every computed proximity is attributed to exactly one kernel class"
        );
        assert!(first.stats.kernel.starts_with("adaptive"), "q {q}: resolution recorded");
    }
}
