//! The cross-kernel contract for the gather kernels
//! (`kdash_sparse::kernel`), checked at the *search* level:
//!
//! * **unrolled ≡ SIMD, bit for bit** — the two wide kernels perform the
//!   same lane operations in the same order, so whole query results
//!   (items *and* stats, including the early-termination point) must be
//!   byte-equal wherever the host can run both. This is what makes
//!   results deterministic across machines: a host dispatching AVX2 and a
//!   host falling back to the portable unrolled kernel return identical
//!   answers.
//! * **wide vs scalar ≤ 1e-12** — the wide kernels re-associate the sum
//!   (four lanes instead of one), so they are only tolerance-pinned
//!   against the one-accumulator reference (which itself is bit-identical
//!   to the merge join).
//! * **every kernel is exact** — proximities match the iterative
//!   ground-truth RWR under each kernel the host supports.
//! * selection failures are **typed**: an impossible selector comes back
//!   as `KdashError::UnsupportedKernel`, never a panic, and only `Auto`
//!   falls back.

use kdash_core::{GatherKernel, IndexOptions, KdashError, KdashIndex, Searcher, TopKResult};
use kdash_datagen::{barabasi_albert, erdos_renyi};
use kdash_graph::NodeId;
use kdash_harness::exact_top_k_scored;
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = kdash_graph::CsrGraph> {
    (0usize..2, 16usize..80, 1usize..5, any::<u64>()).prop_map(|(family, n, density, seed)| {
        match family {
            0 => erdos_renyi(n, n * density, seed),
            _ => barabasi_albert(n, density.min(n - 1).max(1), seed),
        }
    })
}

fn assert_byte_equal(a: &TopKResult, b: &TopKResult) -> Result<(), String> {
    if a.items.len() != b.items.len() {
        return Err(format!("lengths: {} vs {}", a.items.len(), b.items.len()));
    }
    for (x, y) in a.items.iter().zip(&b.items) {
        if x.node != y.node || x.proximity.to_bits() != y.proximity.to_bits() {
            return Err(format!(
                "({}, {:.17e}) vs ({}, {:.17e})",
                x.node, x.proximity, y.node, y.proximity
            ));
        }
    }
    // Every stat — the byte-traffic counters included, which follow a
    // machine-independent accounting model — must agree; only the record
    // of *which* host kernel produced them may differ (that record is the
    // point of the cross-host determinism contract: different dispatch,
    // identical everything else).
    let mut a_stats = a.stats.clone();
    let mut b_stats = b.stats.clone();
    a_stats.kernel = "";
    b_stats.kernel = "";
    if a_stats != b_stats {
        return Err(format!("stats: {:?} vs {:?}", a.stats, b.stats));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Full query results under the unrolled kernel are byte-equal to the
    /// SIMD kernel's (where the host has one), and within 1e-12 of the
    /// scalar reference — across top-k, restart-set and threshold queries.
    #[test]
    fn wide_kernels_are_bit_identical_and_tolerance_pinned((graph, q_sel, k_sel) in
        (graph_strategy(), any::<u32>(), 1usize..12)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let mut scalar = Searcher::with_kernel(&index, GatherKernel::Scalar).unwrap();
        let mut unrolled = Searcher::with_kernel(&index, GatherKernel::Unrolled4).unwrap();
        let simd_available = GatherKernel::Simd.resolve().is_ok();

        let sources = [q, (q + 1) % n as NodeId];
        let runs: [(&str, fn(&mut Searcher, NodeId, usize, &[NodeId]) -> TopKResult); 3] = [
            ("top_k", |s, q, k, _| s.top_k(q, k).unwrap()),
            ("from_set", |s, _, k, src| s.top_k_from_set(src, k).unwrap()),
            ("nodes_above", |s, q, _, _| s.nodes_above(q, 1e-6).unwrap()),
        ];
        for (label, run) in runs {
            let s_res = run(&mut scalar, q, k_sel, &sources);
            let u_res = run(&mut unrolled, q, k_sel, &sources);
            if simd_available {
                // Fresh workspace per run keeps the borrows simple.
                let mut simd_searcher = Searcher::with_kernel(&index, GatherKernel::Simd).unwrap();
                let v_res = run(&mut simd_searcher, q, k_sel, &sources);
                if let Err(msg) = assert_byte_equal(&u_res, &v_res) {
                    prop_assert!(false, "{} unrolled vs simd: {}", label, msg);
                }
            }
            // Wide vs scalar: same candidates may round differently in the
            // last bits and may even swap ranks at the k-th cutoff, so
            // match by node id — against the scalar result where the node
            // appears, else against the full proximity vector *of the same
            // query family* (the restart-set family has its own vector).
            let full = if label == "from_set" {
                index.full_proximities_from_set(&sources).unwrap()
            } else {
                index.full_proximities(q).unwrap()
            };
            for item in &u_res.items {
                let reference = s_res
                    .items
                    .iter()
                    .find(|r| r.node == item.node)
                    .map(|r| r.proximity)
                    .unwrap_or(full[item.node as usize]);
                prop_assert!(
                    (item.proximity - reference).abs() <= 1e-12,
                    "{} node {}: unrolled {:.17e} vs scalar {:.17e}",
                    label, item.node, item.proximity, reference
                );
            }
        }
    }
}

/// Exactness re-pinned for every kernel the host supports: search results
/// must match the iterative ground truth under each of them.
#[test]
fn every_kernel_is_exact_against_iterative_ground_truth() {
    for seed in [3u64, 17] {
        let g = barabasi_albert(90, 3, seed);
        let index = KdashIndex::build(
            &g,
            IndexOptions { restart_probability: 0.9, ..Default::default() },
        )
        .unwrap();
        for q in [0u32, 41, 88] {
            let truth = exact_top_k_scored(&g, 0.9, q, 8);
            for kernel in GatherKernel::ALL {
                let mut searcher = match Searcher::with_kernel(&index, kernel) {
                    Ok(s) => s,
                    // A host without SIMD skips that row; Auto and the
                    // scalar kernels must always be available.
                    Err(KdashError::UnsupportedKernel { .. })
                        if kernel == GatherKernel::Simd =>
                    {
                        continue
                    }
                    Err(other) => panic!("kernel {kernel}: unexpected error {other}"),
                };
                let got = searcher.top_k(q, 8).unwrap();
                assert_eq!(got.items.len(), truth.len());
                for (item, (_, want)) in got.items.iter().zip(&truth) {
                    assert!(
                        (item.proximity - want).abs() < 1e-9,
                        "kernel {} q {q}: {} vs ground truth {}",
                        searcher.kernel().name(),
                        item.proximity,
                        want
                    );
                }
            }
        }
    }
}

/// Selection failures are typed errors, never panics; rejected selections
/// leave the workspace's current kernel untouched and usable.
#[test]
fn unsupported_selectors_fail_typed_and_leave_searcher_usable() {
    let g = erdos_renyi(30, 90, 5);
    let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
    let mut searcher = index.searcher();
    let auto_kernel = searcher.kernel();

    // A selector spelling that exists on no host.
    match "avx1024".parse::<GatherKernel>() {
        Err(e) => {
            // Core surfaces the same failure as its own typed variant.
            let core_err: KdashError = e.into();
            match core_err {
                KdashError::UnsupportedKernel { requested, .. } => {
                    assert_eq!(requested, "avx1024")
                }
                other => panic!("expected UnsupportedKernel, got {other:?}"),
            }
        }
        Ok(k) => panic!("'avx1024' must not parse, got {k:?}"),
    }

    // An explicit SIMD request either resolves (host has AVX2) or fails
    // typed; in both cases the workspace keeps answering queries.
    match searcher.set_kernel(GatherKernel::Simd) {
        Ok(()) => assert!(searcher.kernel().is_simd()),
        Err(KdashError::UnsupportedKernel { requested, reason }) => {
            assert_eq!(requested, "simd");
            assert!(!reason.is_empty());
            assert_eq!(searcher.kernel(), auto_kernel, "failed switch must not change kernel");
        }
        Err(other) => panic!("expected UnsupportedKernel, got {other:?}"),
    }
    assert_eq!(searcher.top_k(0, 3).unwrap().items.len(), 3);

    // Auto resolves everywhere and never to SIMD on a host lacking it.
    searcher.set_kernel(GatherKernel::Auto).unwrap();
    assert_eq!(searcher.top_k(0, 3).unwrap().items.len(), 3);
}
