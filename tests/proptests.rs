//! Property-based tests over randomly generated graphs: the paper's
//! theorems as machine-checked invariants.

use kdash_baselines::{IterativeRwr, TopKEngine};
use kdash_core::{IndexOptions, KdashIndex, LayerEstimator, NodeOrdering};
use kdash_graph::{BfsTree, CsrGraph, GraphBuilder, NodeId, Permutation};
use kdash_sparse::{
    invert_lower_unit, invert_upper, sparse_lu, transition_matrix, w_matrix, DanglingPolicy,
};
use proptest::prelude::*;

/// Strategy: a random directed weighted graph with n in [2, 40] and a
/// controllable edge density. Self-loops are included deliberately: they
/// give nodes heterogeneous `c'` factors, which stresses the soundness of
/// the search's early-termination test.
fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (2usize..40)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec(
                (0..n as NodeId, 0..n as NodeId, 0.1f64..3.0),
                0..(n * 4),
            );
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                b.add_edge(u, v, w);
            }
            b.build().expect("generated edges are valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 2: the K-dash top-k proximity sequence equals the iterative one.
    #[test]
    fn kdash_matches_iterative((graph, q_sel, k_sel, c_pick) in
        (graph_strategy(), any::<u32>(), 1usize..10, 0usize..3)) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let k = k_sel.min(n);
        let c = [0.5, 0.8, 0.95][c_pick];
        let index = KdashIndex::build(
            &graph,
            IndexOptions { restart_probability: c, ..Default::default() },
        ).unwrap();
        let got = index.top_k(q, k).unwrap();
        let truth = IterativeRwr::new(&graph, c).top_k(q, k);
        prop_assert_eq!(got.items.len(), truth.len());
        for (g, t) in got.items.iter().zip(&truth) {
            prop_assert!((g.proximity - t.1).abs() < 1e-8,
                "proximity {} vs {}", g.proximity, t.1);
        }
    }

    /// Lemma 1: every estimator bound dominates the exact proximity along
    /// the real search order.
    #[test]
    fn estimator_bound_dominates(graph in graph_strategy(), q_sel in any::<u32>()) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let full = index.full_proximities(q).unwrap();
        // Recreate the visit order on the permuted graph.
        let a = transition_matrix(&graph, DanglingPolicy::Keep);
        let col_max = a.col_max();
        let a_max = a.global_max();
        let c = index.restart_probability();
        let bfs = BfsTree::new(&graph, q);
        let mut est = LayerEstimator::new(a_max);
        for (pos, &u) in bfs.order.iter().enumerate() {
            let p = full[u as usize];
            if pos == 0 {
                est.record_root(p, col_max[u as usize]);
                continue;
            }
            let a_uu = a.get(u, u).unwrap_or(0.0);
            let c_prime = (1.0 - c) / (1.0 - a_uu + c * a_uu);
            let bound = c_prime * est.advance(bfs.layer[u as usize]);
            prop_assert!(bound >= p - 1e-9, "node {}: bound {} < p {}", u, bound, p);
            est.record_selected(bfs.layer[u as usize], p, col_max[u as usize]);
        }
    }

    /// LU correctness: the factors reproduce W (checked via solves).
    #[test]
    fn lu_solves_w_systems(graph in graph_strategy(), q_sel in any::<u32>()) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let a = transition_matrix(&graph, DanglingPolicy::Keep);
        let w = w_matrix(&a, 0.9).unwrap();
        let f = sparse_lu(&w).unwrap();
        let mut e = vec![0.0; n];
        e[q as usize] = 1.0;
        let x = f.solve_dense(&e).unwrap();
        let recon = w.matvec(&x);
        for (i, (r, want)) in recon.iter().zip(&e).enumerate() {
            prop_assert!((r - want).abs() < 1e-8, "residual at {}: {}", i, r - want);
        }
    }

    /// The triangular inverses actually invert: L⁻¹ L = I on random columns.
    #[test]
    fn triangular_inverses_invert(graph in graph_strategy()) {
        let a = transition_matrix(&graph, DanglingPolicy::Keep);
        let w = w_matrix(&a, 0.85).unwrap();
        let f = sparse_lu(&w).unwrap();
        let linv = invert_lower_unit(&f.l).unwrap();
        let uinv = invert_upper(&f.u).unwrap();
        let n = graph.num_nodes();
        // (U⁻¹ (L⁻¹ b)) must solve W x = b for a dense RHS of ones.
        let ones = vec![1.0; n];
        let mut y = vec![0.0; n];
        // L has implicit unit diagonal; L⁻¹ carries it explicitly.
        for c in 0..n as NodeId {
            let (rows, vals) = linv.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                y[r as usize] += v * ones[c as usize];
            }
        }
        let x = uinv.matvec(&y);
        let recon = w.matvec(&x);
        for (i, r) in recon.iter().enumerate() {
            prop_assert!((r - 1.0).abs() < 1e-8, "row {}: {}", i, r);
        }
    }

    /// Proximity is invariant under relabeling: permuting the graph
    /// permutes the proximity vector.
    #[test]
    fn proximity_is_permutation_equivariant(
        graph in graph_strategy(), q_sel in any::<u32>(), seed in any::<u64>()) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut order: Vec<NodeId> = (0..n as NodeId).collect();
        order.shuffle(&mut rand::rngs::StdRng::seed_from_u64(seed));
        let perm = Permutation::from_new_order(order).unwrap();
        let permuted = graph.permute(&perm).unwrap();

        let base = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let moved = KdashIndex::build(&permuted, IndexOptions::default()).unwrap();
        let p_base = base.full_proximities(q).unwrap();
        let p_moved = moved.full_proximities(perm.new_of(q)).unwrap();
        for v in 0..n as NodeId {
            prop_assert!(
                (p_base[v as usize] - p_moved[perm.new_of(v) as usize]).abs() < 1e-9);
        }
    }

    /// Orderings always yield valid bijections, and the index build
    /// succeeds for each (W is always non-singular).
    #[test]
    fn every_ordering_builds(graph in graph_strategy(), which in 0usize..5) {
        let ordering = [
            NodeOrdering::Natural,
            NodeOrdering::Degree,
            NodeOrdering::Hybrid,
            NodeOrdering::ReverseCuthillMcKee,
            NodeOrdering::MinDegree,
        ][which];
        let index = KdashIndex::build(&graph, IndexOptions { ordering, ..Default::default() });
        prop_assert!(index.is_ok(), "{:?} failed: {:?}", ordering, index.err());
    }

    /// Multi-source queries equal the average of the single-source
    /// solutions (linearity of the resolvent).
    #[test]
    fn multi_source_is_linear(graph in graph_strategy(), picks in any::<[u32; 3]>()) {
        let n = graph.num_nodes();
        let mut sources: Vec<NodeId> = picks.iter().map(|&p| (p as usize % n) as NodeId).collect();
        sources.sort_unstable();
        sources.dedup();
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let combined = index.full_proximities_from_set(&sources).unwrap();
        let mut average = vec![0.0; n];
        for &s in &sources {
            for (acc, v) in average.iter_mut().zip(index.full_proximities(s).unwrap()) {
                *acc += v / sources.len() as f64;
            }
        }
        for (i, (a, b)) in combined.iter().zip(&average).enumerate() {
            prop_assert!((a - b).abs() < 1e-10, "node {}: {} vs {}", i, a, b);
        }
    }

    /// Threshold queries return exactly the nodes at or above θ.
    #[test]
    fn threshold_queries_are_exact(
        graph in graph_strategy(), q_sel in any::<u32>(), theta_exp in 1u32..8) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let theta = 10f64.powi(-(theta_exp as i32));
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let got = index.nodes_above(q, theta).unwrap();
        let full = index.full_proximities(q).unwrap();
        let expect = full.iter().filter(|&&p| p >= theta).count();
        prop_assert_eq!(got.items.len(), expect);
        for item in &got.items {
            prop_assert!(item.proximity >= theta);
            prop_assert!((full[item.node as usize] - item.proximity).abs() < 1e-12);
        }
    }

    /// Save/load round-trips bit-exactly on arbitrary graphs.
    #[test]
    fn persistence_roundtrip(graph in graph_strategy(), q_sel in any::<u32>()) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        let a = index.top_k(q, 5.min(n)).unwrap();
        let b = loaded.top_k(q, 5.min(n)).unwrap();
        prop_assert_eq!(a.nodes(), b.nodes());
        for (x, y) in a.items.iter().zip(&b.items) {
            prop_assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
        }
    }

    /// Proximities are a (sub-)probability distribution and the query
    /// dominates under c = 0.95.
    #[test]
    fn proximities_form_subdistribution(graph in graph_strategy(), q_sel in any::<u32>()) {
        let n = graph.num_nodes();
        let q = (q_sel as usize % n) as NodeId;
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let p = index.full_proximities(q).unwrap();
        let sum: f64 = p.iter().sum();
        prop_assert!(sum <= 1.0 + 1e-9, "sum {}", sum);
        prop_assert!(p.iter().all(|&x| x >= -1e-12), "negative proximity");
        for (v, &pv) in p.iter().enumerate() {
            if v != q as usize {
                prop_assert!(p[q as usize] >= pv - 1e-12, "query not maximal");
            }
        }
    }
}
