//! Persistence properties: build → `save` → `load` is lossless, and a
//! damaged file is rejected instead of answering queries wrongly.
//!
//! The paper's deployment story (build once, serve from many processes)
//! only works if reload is *bit*-faithful — a proximity that shifts by one
//! ulp across a save/load cycle would break the exactness guarantee the
//! whole system is named for.

use kdash_core::{IndexAudit, IndexOptions, KdashIndex, NodeOrdering, PersistError, RowLayout};
use kdash_graph::{CsrGraph, GraphBuilder, NodeId};
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = CsrGraph> {
    (3usize..50)
        .prop_flat_map(|n| {
            let edges = proptest::collection::vec(
                (0..n as NodeId, 0..n as NodeId, 0.1f64..3.0),
                n..(n * 4),
            );
            (Just(n), edges)
        })
        .prop_map(|(n, edges)| {
            let mut b = GraphBuilder::new(n);
            for (u, v, w) in edges {
                b.add_edge(u, v, w);
            }
            b.build().expect("generated edges are valid")
        })
}

const ORDERINGS: [NodeOrdering; 7] = [
    NodeOrdering::Natural,
    NodeOrdering::Random { seed: 9 },
    NodeOrdering::Degree,
    NodeOrdering::Cluster,
    NodeOrdering::Hybrid,
    NodeOrdering::ReverseCuthillMcKee,
    NodeOrdering::MinDegree,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round-trip: every ordering, random graphs — the reloaded index
    /// answers every sampled query bit-identically and reports the same
    /// structural statistics.
    #[test]
    fn save_load_roundtrip_is_bit_faithful(
        (graph, ord_sel, c_pick) in (graph_strategy(), any::<u32>(), 0usize..3)
    ) {
        let ordering = ORDERINGS[ord_sel as usize % ORDERINGS.len()];
        let c = [0.5, 0.8, 0.95][c_pick];
        let index = KdashIndex::build(
            &graph,
            IndexOptions { ordering, restart_probability: c, ..Default::default() },
        ).unwrap();

        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();

        prop_assert_eq!(loaded.num_nodes(), index.num_nodes());
        prop_assert_eq!(loaded.ordering(), index.ordering());
        prop_assert_eq!(loaded.restart_probability(), index.restart_probability());
        prop_assert_eq!(loaded.stats().nnz_l_inv, index.stats().nnz_l_inv);
        prop_assert_eq!(loaded.stats().nnz_u_inv, index.stats().nnz_u_inv);
        prop_assert_eq!(loaded.stats().num_edges, index.stats().num_edges);
        prop_assert_eq!(
            loaded.stats().inverse_heap_bytes,
            index.stats().inverse_heap_bytes
        );

        let n = graph.num_nodes();
        let k = 5usize.min(n);
        for q in (0..n as NodeId).step_by((n / 4).max(1)) {
            let a = index.top_k(q, k).unwrap();
            let b = loaded.top_k(q, k).unwrap();
            prop_assert_eq!(a.nodes(), b.nodes(), "query {}", q);
            for (x, y) in a.items.iter().zip(&b.items) {
                prop_assert_eq!(
                    x.proximity.to_bits(), y.proximity.to_bits(),
                    "query {} node {}", q, x.node
                );
            }
        }
    }

    /// Any strict prefix of a saved index must fail to load — never panic,
    /// never produce a working index from partial data.
    #[test]
    fn every_truncation_is_rejected(graph in graph_strategy(), cut_sel in any::<u32>()) {
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let cut = cut_sel as usize % buf.len();
        prop_assert!(KdashIndex::load(&buf[..cut]).is_err(), "cut at {} must fail", cut);
    }

    /// v1 → v2 compatibility: legacy flat-only files keep loading, come
    /// back as the blocked layout, and answer every sampled query
    /// bit-identically — across orderings and both source layouts.
    #[test]
    fn v1_files_upgrade_losslessly(
        (graph, ord_sel) in (graph_strategy(), any::<u32>())
    ) {
        let ordering = ORDERINGS[ord_sel as usize % ORDERINGS.len()];
        let index = KdashIndex::build(
            &graph,
            IndexOptions { ordering, ..Default::default() },
        ).unwrap();
        let mut v1 = Vec::new();
        index.save_v1(&mut v1).unwrap();
        let loaded = KdashIndex::load(v1.as_slice()).unwrap();
        prop_assert_eq!(loaded.layout(), RowLayout::Blocked, "v1 upgrades to blocked on read");
        prop_assert_eq!(loaded.stats().nnz_u_inv, index.stats().nnz_u_inv);
        let n = graph.num_nodes();
        let k = 5usize.min(n);
        for q in (0..n as NodeId).step_by((n / 4).max(1)) {
            let a = index.top_k(q, k).unwrap();
            let b = loaded.top_k(q, k).unwrap();
            prop_assert_eq!(a.nodes(), b.nodes(), "query {}", q);
            for (x, y) in a.items.iter().zip(&b.items) {
                prop_assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
            }
        }
    }
}

fn sample_index() -> (KdashIndex, Vec<u8>) {
    let mut b = GraphBuilder::new(30);
    for v in 0..30u32 {
        b.add_edge(v, (v + 1) % 30, 1.0);
        b.add_edge(v, (v + 11) % 30, 0.5);
    }
    let index = KdashIndex::build(&b.build().unwrap(), IndexOptions::default()).unwrap();
    let mut buf = Vec::new();
    index.save(&mut buf).unwrap();
    (index, buf)
}

// Header layout: magic(8) + version(4) + c(8) + ordering tag(1) +
// seed(8) + n(8) = 37 bytes, followed by the 4-byte header CRC.
const HEADER_LEN: usize = 41;

#[test]
fn every_header_truncation_is_rejected() {
    let (_, buf) = sample_index();
    for cut in 0..HEADER_LEN {
        assert!(KdashIndex::load(&buf[..cut]).is_err(), "header cut at {cut} must fail");
    }
}

#[test]
fn bad_magic_is_rejected() {
    let (_, mut buf) = sample_index();
    buf[0] ^= 0x20;
    assert!(KdashIndex::load(buf.as_slice()).is_err());
}

#[test]
fn unsupported_version_is_rejected() {
    let (_, mut buf) = sample_index();
    buf[8] = 0xFF; // version is the little-endian u32 after the magic
    assert!(KdashIndex::load(buf.as_slice()).is_err());
}

#[test]
fn unknown_ordering_tag_is_rejected() {
    let (_, mut buf) = sample_index();
    buf[20] = 0x63; // the single ordering-tag byte after magic+version+c
    assert!(KdashIndex::load(buf.as_slice()).is_err());
}

#[test]
fn corrupt_restart_probability_is_rejected() {
    let (_, mut buf) = sample_index();
    // c is the f64 at bytes 12..20; overwrite with NaN (also out of (0,1)).
    buf[12..20].copy_from_slice(&f64::NAN.to_le_bytes());
    assert!(KdashIndex::load(buf.as_slice()).is_err());
}

/// Section boundaries of a saved buffer, straight from the writer's own
/// bookkeeping (`save_with_section_offsets`): `(name, end offset)` where
/// the offset is one past that section's 4-byte CRC field, and the
/// `"footer"` entry equals the file length.
fn section_marks(index: &KdashIndex) -> Vec<(&'static str, usize)> {
    let mut sink = Vec::new();
    index
        .save_with_section_offsets(&mut sink)
        .unwrap()
        .into_iter()
        .map(|(name, off)| (name, off as usize))
        .collect()
}

fn mark(marks: &[(&'static str, usize)], name: &str) -> usize {
    marks
        .iter()
        .find(|(s, _)| *s == name)
        .unwrap_or_else(|| panic!("no section mark named {name}"))
        .1
}

/// Byte offsets of the blocked-U⁻¹ internals (layout tag, blocked
/// arrays, row-stats table), anchored on the writer's section marks and
/// walked forward with the index's own counts so the corruption tests
/// stay exact against what `save` actually wrote.
fn v2_section_offsets(index: &KdashIndex) -> (usize, usize, usize) {
    let n = index.num_nodes();
    let runs = index.uinv_rows().as_blocked().expect("blocked default").num_runs();
    let marks = section_marks(index);
    let layout_off = mark(&marks, "linv"); // U⁻¹ starts where L⁻¹'s CRC ends
    let deltas_off = layout_off + 1        // layout tag
        + 8 * (n + 1)                      // blocked row_ptr
        + 8                                // run count
        + 8 * (n + 1)                      // run_ptr
        + 4 * runs + 4 * runs              // run_base + run_end
        + 8;                               // nnz
    let stats_off = mark(&marks, "uinv"); // row-stats start where U⁻¹'s CRC ends
    (layout_off, deltas_off, stats_off)
}

#[test]
fn unknown_layout_tag_is_rejected() {
    let (index, mut buf) = sample_index();
    let (layout_off, _, _) = v2_section_offsets(&index);
    assert_eq!(buf[layout_off], 1, "sample index persists the blocked tag");
    buf[layout_off] = 9;
    assert!(KdashIndex::load(buf.as_slice()).is_err());
}

#[test]
fn corrupt_blocked_deltas_are_rejected() {
    let (index, mut buf) = sample_index();
    let (_, deltas_off, _) = v2_section_offsets(&index);
    // Force the first delta to 0xFFFF: column = anchor + 65535, far out of
    // bounds for a 30-node matrix — structural validation must fire.
    buf[deltas_off] = 0xFF;
    buf[deltas_off + 1] = 0xFF;
    assert!(KdashIndex::load(buf.as_slice()).is_err());
}

#[test]
fn inflated_count_fields_error_instead_of_panicking() {
    // Count fields are untrusted: blowing one up to u64::MAX must come
    // back as InvalidData, never a capacity panic or an OOM abort.
    let (index, buf) = sample_index();
    let (layout_off, deltas_off, _) = v2_section_offsets(&index);
    let n = index.num_nodes();
    // The blocked run-count u64 sits right after the blocked row_ptr.
    let runs_off = layout_off + 1 + 8 * (n + 1);
    // The blocked nnz u64 sits right before the deltas.
    let nnz_off = deltas_off - 8;
    for off in [runs_off, nnz_off] {
        let mut bad = buf.clone();
        bad[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(KdashIndex::load(bad.as_slice()).is_err(), "count at {off} must fail");
    }
}

#[test]
fn corrupt_row_stats_section_is_rejected() {
    let (index, mut buf) = sample_index();
    let (_, _, stats_off) = v2_section_offsets(&index);
    // A row-stats table that disagrees with the arrays would silently
    // mis-steer the adaptive policy; the loader must reject it instead.
    buf[stats_off] ^= 0x5A;
    let err = KdashIndex::load(buf.as_slice()).unwrap_err();
    assert!(
        err.to_string().contains("row-stats"),
        "expected the row-stats validation to fire, got: {err}"
    );
}

#[test]
fn inflated_node_count_is_rejected() {
    let (_, mut buf) = sample_index();
    // n is the u64 at bytes 29..37. Inflating it makes the permutation
    // read consume bytes from the following sections and then either hit
    // EOF or fail the bijection validation — both must surface as errors.
    buf[29..37].copy_from_slice(&1_000_000u64.to_le_bytes());
    assert!(KdashIndex::load(buf.as_slice()).is_err());
}

/// The full corruption sweep the v4 checksums exist for: flip a byte at
/// every section boundary (last payload byte, each CRC byte, first byte
/// of the next section) and at sampled interior offsets covering every
/// section — every single mutation must come back as a typed
/// [`PersistError`], never a panic, never a silently-wrong index.
#[test]
fn every_flipped_byte_is_detected() {
    let (index, buf) = sample_index();
    let marks = section_marks(&index);
    assert_eq!(mark(&marks, "footer"), buf.len(), "footer mark is the file length");

    let mut offsets = vec![0usize];
    for &(_, end) in &marks {
        // Around each boundary: the CRC field (4 bytes before `end`), its
        // last byte, and the first byte of the following section.
        for off in end.saturating_sub(4)..(end + 1).min(buf.len()) {
            offsets.push(off);
        }
    }
    // Sampled interiors: a prime stride so every section gets hits at
    // assorted alignments within u16/u32/u64/f64 fields.
    offsets.extend((0..buf.len()).step_by(97));

    for off in offsets {
        for bit in [0x01u8, 0x80] {
            let mut bad = buf.clone();
            bad[off] ^= bit;
            let err = KdashIndex::load(bad.as_slice())
                .expect_err(&format!("flip of bit {bit:#04x} at byte {off} must be detected"));
            // Every detection is a typed PersistError; exercising Display
            // here also guards against panics while formatting.
            assert!(!err.to_string().is_empty());
        }
    }
}

/// Truncation probed exactly at section boundaries (the proptest above
/// samples random cuts; this nails the off-by-one-prone edges).
#[test]
fn every_section_boundary_truncation_is_rejected() {
    let (index, buf) = sample_index();
    for (name, end) in section_marks(&index) {
        for cut in [end.saturating_sub(1), end.min(buf.len() - 1)] {
            assert!(
                KdashIndex::load(&buf[..cut]).is_err(),
                "cut at {cut} (section {name}) must fail"
            );
        }
    }
}

/// A clean save → load round trip reports the checksummed v5 format and
/// passes the deep structural audit; a v1 file still loads but is
/// flagged unchecksummed.
#[test]
fn clean_roundtrip_is_checksummed_and_audits_clean() {
    let (index, buf) = sample_index();
    let (loaded, info) = KdashIndex::load_with_info(buf.as_slice()).unwrap();
    assert_eq!(info.version, 5);
    assert!(info.checksummed);
    let audit = IndexAudit::run(&loaded);
    assert!(audit.is_clean(), "findings: {:?}", audit.findings);

    let mut v1 = Vec::new();
    index.save_v1(&mut v1).unwrap();
    let (upgraded, info) = KdashIndex::load_with_info(v1.as_slice()).unwrap();
    assert_eq!(info.version, 1);
    assert!(!info.checksummed, "legacy files must be flagged unchecksummed");
    assert!(IndexAudit::run(&upgraded).is_clean());
}

/// A sparsified-tier build over the sample graph, saved in the current
/// format.
fn sample_sparsified_index() -> (KdashIndex, Vec<u8>) {
    let mut b = GraphBuilder::new(30);
    for v in 0..30u32 {
        b.add_edge(v, (v + 1) % 30, 1.0 + 0.03 * v as f64);
        b.add_edge(v, (v + 11) % 30, 0.5 + 0.01 * v as f64);
    }
    let index = KdashIndex::build(
        &b.build().unwrap(),
        IndexOptions { drop_tolerance: 1e-4, ..Default::default() },
    )
    .unwrap();
    assert!(index.needs_refinement(), "ε = 1e-4 must drop mass on the sample graph");
    let mut buf = Vec::new();
    index.save(&mut buf).unwrap();
    (index, buf)
}

/// v5 round trip of a sparsified index: the drop tolerance, the total
/// and per-column dropped masses, and refined query answers all survive
/// bit-for-bit, and the reloaded index passes the audit (whose sparsify
/// section cross-checks the masses against the stored inverses).
#[test]
fn sparsified_roundtrip_preserves_dropped_masses() {
    let (index, buf) = sample_sparsified_index();
    let (loaded, info) = KdashIndex::load_with_info(buf.as_slice()).unwrap();
    assert_eq!(info.version, 5);
    assert!(info.checksummed);
    assert_eq!(loaded.drop_tolerance().to_bits(), index.drop_tolerance().to_bits());
    assert_eq!(loaded.dropped_mass().to_bits(), index.dropped_mass().to_bits());
    assert!(loaded.needs_refinement());
    let (ald, aud) = index.dropped_masses();
    let (bld, bud) = loaded.dropped_masses();
    assert!(ald.iter().zip(bld).all(|(a, b)| a.to_bits() == b.to_bits()));
    assert!(aud.iter().zip(bud).all(|(a, b)| a.to_bits() == b.to_bits()));
    let audit = IndexAudit::run(&loaded);
    assert!(audit.is_clean(), "findings: {:?}", audit.findings);
    for q in (0..30u32).step_by(7) {
        let a = index.top_k(q, 6).unwrap();
        let b = loaded.top_k(q, 6).unwrap();
        assert_eq!(a.items, b.items, "query {q}");
        assert_eq!(a.stats, b.stats, "query {q}: same bits, same refinement trace");
    }
}

/// Every byte flip inside the dropped-mass section — the ε field, the
/// `L⁻¹` masses, the `U⁻¹` masses, and the section CRC itself — must be
/// detected as a typed error naming the section, never a silently
/// altered exactness certificate.
#[test]
fn corrupt_dropped_mass_section_is_rejected() {
    let (index, buf) = sample_sparsified_index();
    let marks = section_marks(&index);
    let start = mark(&marks, "estimator");
    let end = mark(&marks, "dropped-mass");
    assert!(end > start + 4, "the dropped-mass section must be non-empty");
    for off in start..end {
        let mut bad = buf.clone();
        bad[off] ^= 0x10;
        let err = KdashIndex::load(bad.as_slice())
            .expect_err(&format!("flip at byte {off} of the dropped-mass section"));
        assert!(!err.to_string().is_empty());
    }
    // The CRC-field flips specifically must name the section.
    let mut bad = buf.clone();
    bad[end - 1] ^= 0x01;
    match KdashIndex::load(bad.as_slice()).unwrap_err() {
        PersistError::ChecksumMismatch { section, .. } => {
            assert_eq!(section.name(), "dropped-mass");
        }
        other => panic!("expected a dropped-mass checksum mismatch, got: {other}"),
    }
    // Truncation at and just before the section boundary.
    for cut in [end - 1, end - 5, start + 3] {
        assert!(KdashIndex::load(&buf[..cut]).is_err(), "cut at {cut} must fail");
    }
}

/// Real v4 bytes (pre-sparsification format) load as the dense-exact
/// tier: ε = 0, no dropped mass, no refinement — and answer queries
/// bit-identically to the in-memory index they came from.
#[test]
fn v4_files_load_as_dense_exact() {
    let (index, _) = sample_index();
    let mut v4 = Vec::new();
    index.save_v4(&mut v4).unwrap();
    let (loaded, info) = KdashIndex::load_with_info(v4.as_slice()).unwrap();
    assert_eq!(info.version, 4);
    assert!(info.checksummed, "v4 is checksummed");
    assert_eq!(loaded.drop_tolerance(), 0.0);
    assert!(!loaded.is_sparsified());
    assert!(!loaded.needs_refinement());
    assert_eq!(loaded.dropped_mass(), 0.0);
    assert!(IndexAudit::run(&loaded).is_clean());
    for q in (0..30u32).step_by(7) {
        let a = index.top_k(q, 6).unwrap();
        let b = loaded.top_k(q, 6).unwrap();
        assert_eq!(a.items, b.items, "query {q}");
        assert_eq!(a.stats, b.stats, "query {q}");
    }
}

/// The legacy writers refuse indexes they cannot represent: v1 and v4
/// both reject a sparsified-tier index instead of silently discarding
/// the drop tolerance and the masses the exactness contract depends on.
#[test]
fn legacy_formats_reject_sparsified_indexes() {
    let (index, _) = sample_sparsified_index();
    assert!(index.save_v1(&mut Vec::new()).is_err(), "v1 must reject a sparsified index");
    assert!(index.save_v4(&mut Vec::new()).is_err(), "v4 must reject a sparsified index");
}

/// Checksum failures carry the section name and the byte offset of the
/// CRC field, so operators can see *where* a file went bad.
#[test]
fn checksum_errors_name_the_failing_section() {
    let (index, buf) = sample_index();
    let marks = section_marks(&index);
    for (name, end) in &marks[..marks.len() - 1] {
        let mut bad = buf.clone();
        bad[end - 1] ^= 0x01; // last CRC byte of this section
        match KdashIndex::load(bad.as_slice()).unwrap_err() {
            PersistError::ChecksumMismatch { section, offset, stored, computed } => {
                assert_eq!(section.name(), *name);
                assert_eq!(offset as usize, end - 4);
                assert_ne!(stored, computed);
            }
            other => panic!("flipping {name}'s CRC should mismatch, got: {other}"),
        }
    }
}
