//! The paper's central claim (Theorem 2): K-dash returns the exact top-k
//! for every dataset shape, ordering, restart probability and K — verified
//! against the iterative definition of Equation (1).

use kdash_core::{IndexOptions, KdashIndex, NodeOrdering};
use kdash_datagen::DatasetProfile;
use kdash_harness::{exact_top_k_scored, profile_graph, sample_queries};
use kdash_sparse::DanglingPolicy;

/// Compares the proximity sequences (ids may legitimately differ under
/// exact ties).
fn assert_same_proximities(
    got: &kdash_core::TopKResult,
    want: &[(kdash_graph::NodeId, f64)],
    context: &str,
) {
    assert_eq!(got.items.len(), want.len(), "{context}: length");
    for (g, w) in got.items.iter().zip(want) {
        assert!(
            (g.proximity - w.1).abs() < 1e-9,
            "{context}: proximity {} vs {}",
            g.proximity,
            w.1
        );
    }
}

#[test]
fn exact_on_every_dataset_profile() {
    for profile in DatasetProfile::ALL {
        let graph = profile_graph(profile, 400, 11);
        let index = KdashIndex::build(&graph, IndexOptions::default()).expect("build");
        for q in sample_queries(&graph, 3) {
            for k in [1usize, 5, 25] {
                let result = index.top_k(q, k).expect("query");
                let truth = exact_top_k_scored(&graph, 0.95, q, k.min(graph.num_nodes()));
                assert_same_proximities(&result, &truth, &format!("{profile} q={q} k={k}"));
            }
        }
    }
}

#[test]
fn exact_for_every_ordering() {
    let graph = profile_graph(DatasetProfile::Dictionary, 350, 3);
    let q = sample_queries(&graph, 1)[0];
    let truth = exact_top_k_scored(&graph, 0.95, q, 10);
    for ordering in [
        NodeOrdering::Natural,
        NodeOrdering::Random { seed: 9 },
        NodeOrdering::Degree,
        NodeOrdering::Cluster,
        NodeOrdering::Hybrid,
        NodeOrdering::ReverseCuthillMcKee,
        NodeOrdering::MinDegree,
    ] {
        let index = KdashIndex::build(&graph, IndexOptions { ordering, ..Default::default() })
            .expect("build");
        let result = index.top_k(q, 10).expect("query");
        assert_same_proximities(&result, &truth, ordering.name());
    }
}

#[test]
fn exact_across_restart_probabilities() {
    // §6.3.3: the pruning must stay correct for every proximity
    // distribution shape c induces.
    let graph = profile_graph(DatasetProfile::Citation, 300, 7);
    let q = sample_queries(&graph, 1)[0];
    for c in [0.5, 0.7, 0.9, 0.95, 0.99] {
        let index = KdashIndex::build(
            &graph,
            IndexOptions { restart_probability: c, ..Default::default() },
        )
        .expect("build");
        let result = index.top_k(q, 8).expect("query");
        let truth = exact_top_k_scored(&graph, c, q, 8);
        assert_same_proximities(&result, &truth, &format!("c={c}"));
    }
}

#[test]
fn pruned_and_unpruned_agree_everywhere() {
    let graph = profile_graph(DatasetProfile::Social, 400, 5);
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("build");
    for q in sample_queries(&graph, 5) {
        let pruned = index.top_k(q, 10).expect("pruned");
        let unpruned = index.top_k_unpruned(q, 10).expect("unpruned");
        for (a, b) in pruned.items.iter().zip(&unpruned.items) {
            assert!((a.proximity - b.proximity).abs() < 1e-12);
        }
        assert!(pruned.stats.proximity_computations <= unpruned.stats.proximity_computations);
    }
}

#[test]
fn random_root_variant_stays_exact() {
    let graph = profile_graph(DatasetProfile::Internet, 350, 9);
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("build");
    let q = sample_queries(&graph, 1)[0];
    let reference = index.top_k(q, 5).expect("reference");
    for seed in 0..4u64 {
        let rr = index.top_k_random_root(q, 5, seed).expect("random root");
        for (a, b) in reference.items.iter().zip(&rr.items) {
            assert!(
                (a.proximity - b.proximity).abs() < 1e-9,
                "seed {seed}: {} vs {}",
                a.proximity,
                b.proximity
            );
        }
    }
}

#[test]
fn dangling_policies_are_both_exact() {
    // The Email profile has hubs and dangling nodes; exactness must hold
    // under both dangling treatments.
    let graph = profile_graph(DatasetProfile::Email, 400, 13);
    for policy in [DanglingPolicy::Keep, DanglingPolicy::SelfLoop] {
        let index = KdashIndex::build(
            &graph,
            IndexOptions { dangling: policy, ..Default::default() },
        )
        .expect("build");
        let q = sample_queries(&graph, 1)[0];
        let result = index.top_k(q, 10).expect("query");
        // Self-consistency: the returned proximities must match the
        // index's own full vector, which precompute.rs already ties to the
        // iterative ground truth for Keep.
        let full = index.full_proximities(q).expect("full");
        for item in &result.items {
            assert!((full[item.node as usize] - item.proximity).abs() < 1e-12);
        }
    }
}

#[test]
fn top_k_is_descending_and_unique() {
    let graph = profile_graph(DatasetProfile::Dictionary, 300, 21);
    let index = KdashIndex::build(&graph, IndexOptions::default()).expect("build");
    for q in sample_queries(&graph, 4) {
        let result = index.top_k(q, 20).expect("query");
        for w in result.items.windows(2) {
            assert!(w[0].proximity >= w[1].proximity, "not descending");
        }
        let mut ids = result.nodes();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), result.items.len(), "duplicate nodes in answer");
    }
}
