//! Randomized truncated SVD (Halko, Martinsson & Tropp style).
//!
//! The NB_LIN / B_LIN baselines approximate the (normalised) adjacency
//! matrix with a rank-`t` factorisation `A ≈ U S Vᵀ`. The paper uses a
//! LAPACK SVD; this workspace substitutes a randomized range finder with
//! power iterations, which preserves the precision-vs-rank trade-off the
//! evaluation sweeps (see DESIGN.md, Substitutions).
//!
//! The matrix enters only through matrix–vector products, abstracted by
//! [`LinearOperator`], so sparse matrices from `kdash-sparse` can plug in
//! without a dependency cycle.

use crate::{jacobi_symmetric, thin_qr, DenseMatrix, LinalgError, Result};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Anything that can apply itself and its transpose to a vector.
pub trait LinearOperator {
    /// Number of rows of the operator.
    fn nrows(&self) -> usize;
    /// Number of columns of the operator.
    fn ncols(&self) -> usize;
    /// `y = A · x` (`y` is pre-zeroed by the caller contract).
    fn apply(&self, x: &[f64], y: &mut [f64]);
    /// `y = Aᵀ · x`.
    fn apply_transpose(&self, x: &[f64], y: &mut [f64]);
}

impl LinearOperator for DenseMatrix {
    fn nrows(&self) -> usize {
        DenseMatrix::nrows(self)
    }
    fn ncols(&self) -> usize {
        DenseMatrix::ncols(self)
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.matvec(x).expect("operator dims"));
    }
    fn apply_transpose(&self, x: &[f64], y: &mut [f64]) {
        y.copy_from_slice(&self.transpose_matvec(x).expect("operator dims"));
    }
}

/// Tuning knobs for [`randomized_svd`].
#[derive(Debug, Clone, Copy)]
pub struct SvdOptions {
    /// Extra sketch columns beyond the target rank (default 8).
    pub oversample: usize,
    /// Power iterations sharpening the spectrum (default 2).
    pub power_iterations: usize,
    /// RNG seed for the Gaussian sketch — results are deterministic given
    /// the seed.
    pub seed: u64,
}

impl Default for SvdOptions {
    fn default() -> Self {
        SvdOptions { oversample: 8, power_iterations: 2, seed: 0x5eed }
    }
}

/// A truncated singular value decomposition `A ≈ U · diag(S) · Vᵀ`.
///
/// `rank()` may be smaller than requested when the matrix is numerically
/// rank deficient; singular values are strictly positive and descending.
#[derive(Debug, Clone)]
pub struct Svd {
    /// Left singular vectors, `m x rank` (orthonormal columns).
    pub u: DenseMatrix,
    /// Singular values, descending.
    pub s: Vec<f64>,
    /// Right singular vectors transposed, `rank x n` (orthonormal rows).
    pub vt: DenseMatrix,
}

impl Svd {
    /// Effective rank of the decomposition.
    pub fn rank(&self) -> usize {
        self.s.len()
    }

    /// Reconstruction `U diag(S) Vᵀ x` — used by tests and by baselines
    /// that need the approximated operator. Fails typed
    /// ([`LinalgError::DimensionMismatch`]) when `x` does not match the
    /// decomposition's column count.
    pub fn apply(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut tmp = self.vt.matvec(x)?;
        for (t, s) in tmp.iter_mut().zip(&self.s) {
            *t *= s;
        }
        self.u.matvec(&tmp)
    }

    /// Dense reconstruction, `O(m · n · rank)` — test helper.
    pub fn to_dense(&self) -> DenseMatrix {
        let m = self.u.nrows();
        let n = self.vt.ncols();
        DenseMatrix::from_fn(m, n, |i, j| {
            (0..self.rank()).map(|k| self.u.get(i, k) * self.s[k] * self.vt.get(k, j)).sum()
        })
    }
}

/// Computes a rank-`target_rank` randomized SVD of `op`.
#[allow(clippy::needless_range_loop)] // sketch-column loops index several arrays
pub fn randomized_svd<O: LinearOperator>(
    op: &O,
    target_rank: usize,
    options: SvdOptions,
) -> Result<Svd> {
    let m = op.nrows();
    let n = op.ncols();
    if target_rank == 0 {
        return Err(LinalgError::InvalidParameter("target rank must be >= 1".into()));
    }
    if m == 0 || n == 0 {
        return Err(LinalgError::InvalidParameter("empty operator".into()));
    }
    let k = (target_rank + options.oversample).min(m).min(n);
    let mut rng = StdRng::seed_from_u64(options.seed);

    // Gaussian sketch Ω (n x k) and sample Y = A Ω (m x k).
    let mut y = DenseMatrix::zeros(m, k);
    {
        let mut omega_col = vec![0.0; n];
        let mut y_col = vec![0.0; m];
        for c in 0..k {
            for v in omega_col.iter_mut() {
                *v = standard_normal(&mut rng);
            }
            op.apply(&omega_col, &mut y_col);
            y.set_col(c, &y_col);
        }
    }
    let (mut q, _) = thin_qr(&y);

    // Power iterations with re-orthonormalisation: (A Aᵀ)^p A Ω.
    let mut z = DenseMatrix::zeros(n, k);
    let mut zi = vec![0.0; n];
    let mut yi = vec![0.0; m];
    for _ in 0..options.power_iterations {
        for c in 0..k {
            op.apply_transpose(&q.col(c), &mut zi);
            z.set_col(c, &zi);
        }
        let (qz, _) = thin_qr(&z);
        for c in 0..k {
            op.apply(&qz.col(c), &mut yi);
            y.set_col(c, &yi);
        }
        let (qy, _) = thin_qr(&y);
        q = qy;
    }

    // B = Qᵀ A, stored as Bt = Aᵀ Q (n x k).
    let mut bt = DenseMatrix::zeros(n, k);
    for c in 0..k {
        op.apply_transpose(&q.col(c), &mut zi);
        bt.set_col(c, &zi);
    }

    // Small symmetric eigenproblem: G = B Bᵀ = Btᵀ Bt (k x k).
    let g = bt.transpose_matmul(&bt)?;
    let eig = jacobi_symmetric(&g)?;

    // Effective rank: positive eigenvalues above a relative floor.
    let sigma_max = eig.values.first().copied().unwrap_or(0.0).max(0.0).sqrt();
    let floor = (1e-12 * sigma_max).max(f64::MIN_POSITIVE);
    let mut rank = 0usize;
    for &lambda in eig.values.iter().take(target_rank) {
        if lambda > 0.0 && lambda.sqrt() > floor {
            rank += 1;
        } else {
            break;
        }
    }
    if rank == 0 {
        // Zero operator: represent it with a single zero triple.
        return Ok(Svd { u: DenseMatrix::zeros(m, 0), s: Vec::new(), vt: DenseMatrix::zeros(0, n) });
    }

    let s: Vec<f64> = eig.values[..rank].iter().map(|&l| l.sqrt()).collect();
    // U = Q · U_B[:, :rank]
    let mut ub = DenseMatrix::zeros(k, rank);
    for c in 0..rank {
        ub.set_col(c, &eig.vectors.col(c));
    }
    let u = q.matmul(&ub)?;
    // Row i of Vᵀ = (Bt · u_B_i)ᵀ / σ_i
    let mut vt = DenseMatrix::zeros(rank, n);
    for i in 0..rank {
        let bi = bt.matvec(&ub.col(i))?;
        for (j, &v) in bi.iter().enumerate() {
            vt.set(i, j, v / s[i]);
        }
    }
    Ok(Svd { u, s, vt })
}

/// Box–Muller standard normal draw.
fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let v = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if v.is_finite() {
            return v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qr::orthonormality_defect;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn exact_rank_one_matrix() {
        // A = u vᵀ with ||u|| = 2, ||v|| = 3 -> sigma_1 = 6.
        let u = [1.0, 1.0, 1.0, 1.0];
        let v = [3.0f64 / 3f64.sqrt(), 3.0 / 3f64.sqrt(), 3.0 / 3f64.sqrt()];
        let a = DenseMatrix::from_fn(4, 3, |i, j| u[i] * v[j]);
        let svd = randomized_svd(&a, 2, SvdOptions::default()).unwrap();
        assert_eq!(svd.rank(), 1, "numerically rank-1 input");
        assert!((svd.s[0] - 6.0).abs() < 1e-9, "sigma {}", svd.s[0]);
        let err = a.sub(&svd.to_dense()).unwrap().max_abs();
        assert!(err < 1e-9, "reconstruction error {err}");
    }

    #[test]
    fn full_rank_reconstruction() {
        let mut rng = StdRng::seed_from_u64(17);
        let a = DenseMatrix::from_fn(8, 8, |_, _| rng.gen_range(-1.0..1.0));
        let svd = randomized_svd(&a, 8, SvdOptions::default()).unwrap();
        let err = a.sub(&svd.to_dense()).unwrap().max_abs();
        assert!(err < 1e-8, "reconstruction error {err}");
        assert!(orthonormality_defect(&svd.u) < 1e-9);
        assert!(orthonormality_defect(&svd.vt.transpose()) < 1e-9);
    }

    #[test]
    fn truncation_captures_dominant_directions() {
        // Diagonal matrix with widely spread singular values.
        let diag = [100.0, 10.0, 1.0, 0.1, 0.01];
        let a = DenseMatrix::from_fn(5, 5, |i, j| if i == j { diag[i] } else { 0.0 });
        let svd = randomized_svd(&a, 2, SvdOptions::default()).unwrap();
        assert_eq!(svd.rank(), 2);
        assert!((svd.s[0] - 100.0).abs() < 1e-6);
        assert!((svd.s[1] - 10.0).abs() < 1e-6);
        // Error of the best rank-2 approximation is sigma_3 = 1.
        let err = a.sub(&svd.to_dense()).unwrap().max_abs();
        assert!(err < 1.0 + 1e-6);
    }

    #[test]
    fn singular_values_descend() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = DenseMatrix::from_fn(10, 6, |_, _| rng.gen_range(-1.0..1.0));
        let svd = randomized_svd(&a, 6, SvdOptions::default()).unwrap();
        for w in svd.s.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        assert!(svd.s.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn apply_matches_dense_reconstruction() {
        let mut rng = StdRng::seed_from_u64(33);
        let a = DenseMatrix::from_fn(7, 5, |_, _| rng.gen_range(-1.0..1.0));
        let svd = randomized_svd(&a, 5, SvdOptions::default()).unwrap();
        let x: Vec<f64> = (0..5).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let via_apply = svd.apply(&x).unwrap();
        let via_dense = svd.to_dense().matvec(&x).unwrap();
        for (p, q) in via_apply.iter().zip(&via_dense) {
            assert!((p - q).abs() < 1e-10);
        }
        // A mismatched input is a typed error, not a panic.
        assert!(svd.apply(&[1.0]).is_err());
    }

    #[test]
    fn zero_matrix_yields_empty_svd() {
        let a = DenseMatrix::zeros(4, 4);
        let svd = randomized_svd(&a, 2, SvdOptions::default()).unwrap();
        assert_eq!(svd.rank(), 0);
    }

    #[test]
    fn invalid_rank_rejected() {
        let a = DenseMatrix::identity(3);
        assert!(randomized_svd(&a, 0, SvdOptions::default()).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = DenseMatrix::from_fn(6, 6, |_, _| rng.gen_range(-1.0..1.0));
        let s1 = randomized_svd(&a, 3, SvdOptions::default()).unwrap();
        let s2 = randomized_svd(&a, 3, SvdOptions::default()).unwrap();
        assert_eq!(s1.s, s2.s);
        assert_eq!(s1.u, s2.u);
    }
}
