//! Row-major dense matrices.

use crate::{LinalgError, Result};

/// A dense `nrows x ncols` matrix stored row-major in one contiguous `Vec`.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// All-zero matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DenseMatrix { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds from a closure over `(row, col)`.
    pub fn from_fn(nrows: usize, ncols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in 0..nrows {
            for c in 0..ncols {
                data.push(f(r, c));
            }
        }
        DenseMatrix { nrows, ncols, data }
    }

    /// Builds from nested row vectors (all rows must have equal length).
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(LinalgError::DimensionMismatch(format!(
                    "row {i} has {} entries, expected {ncols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix { nrows, ncols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.nrows && c < self.ncols);
        self.data[r * self.ncols + c]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.nrows && c < self.ncols);
        self.data[r * self.ncols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.ncols..(r + 1) * self.ncols]
    }

    /// Copy of column `c`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.nrows).map(|r| self.get(r, c)).collect()
    }

    /// Writes `values` into column `c`.
    pub fn set_col(&mut self, c: usize, values: &[f64]) {
        assert_eq!(values.len(), self.nrows);
        for (r, &v) in values.iter().enumerate() {
            self.set(r, c, v);
        }
    }

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.ncols != rhs.nrows {
            return Err(LinalgError::DimensionMismatch(format!(
                "{}x{} · {}x{}",
                self.nrows, self.ncols, rhs.nrows, rhs.ncols
            )));
        }
        let mut out = DenseMatrix::zeros(self.nrows, rhs.ncols);
        // i-k-j loop order: streams through both row-major operands.
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                let rhs_row = rhs.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += aik * b;
                }
            }
        }
        Ok(out)
    }

    /// `selfᵀ · rhs` without materialising the transpose.
    pub fn transpose_matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.nrows != rhs.nrows {
            return Err(LinalgError::DimensionMismatch(format!(
                "({}x{})ᵀ · {}x{}",
                self.nrows, self.ncols, rhs.nrows, rhs.ncols
            )));
        }
        let mut out = DenseMatrix::zeros(self.ncols, rhs.ncols);
        for k in 0..self.nrows {
            let lhs_row = self.row(k);
            let rhs_row = rhs.row(k);
            for (i, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix–vector product `self · x`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(LinalgError::DimensionMismatch(format!(
                "matvec: {}x{} · len-{}",
                self.nrows,
                self.ncols,
                x.len()
            )));
        }
        Ok((0..self.nrows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// `selfᵀ · x`.
    pub fn transpose_matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.nrows {
            return Err(LinalgError::DimensionMismatch(format!(
                "transpose_matvec: ({}x{})ᵀ · len-{}",
                self.nrows,
                self.ncols,
                x.len()
            )));
        }
        let mut out = vec![0.0; self.ncols];
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += a * xr;
            }
        }
        Ok(out)
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        DenseMatrix::from_fn(self.ncols, self.nrows, |r, c| self.get(c, r))
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
    }

    /// Element-wise difference `self − rhs`.
    pub fn sub(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.nrows != rhs.nrows || self.ncols != rhs.ncols {
            return Err(LinalgError::DimensionMismatch("sub: shape mismatch".into()));
        }
        let data = self.data.iter().zip(&rhs.data).map(|(a, b)| a - b).collect();
        Ok(DenseMatrix { nrows: self.nrows, ncols: self.ncols, data })
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
        assert!(DenseMatrix::from_rows(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn matmul_small() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let ab = a.matmul(&b).unwrap();
        assert_eq!(ab, DenseMatrix::from_rows(vec![vec![2.0, 1.0], vec![4.0, 3.0]]).unwrap());
        assert!(a.matmul(&DenseMatrix::zeros(3, 3)).is_err());
    }

    #[test]
    fn transpose_matmul_matches_explicit() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        let b = DenseMatrix::from_rows(vec![vec![1.0], vec![0.5], vec![-1.0]]).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        let fused = a.transpose_matmul(&b).unwrap();
        assert_eq!(explicit, fused);
    }

    #[test]
    fn matvec_variants() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]).unwrap();
        assert_eq!(a.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.transpose_matvec(&[1.0, 1.0, 1.0]).unwrap(), vec![9.0, 12.0]);
        assert!(a.matvec(&[1.0]).is_err());
    }

    #[test]
    fn identity_is_neutral() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i).unwrap(), a);
        assert_eq!(i.matmul(&a).unwrap(), a);
    }

    #[test]
    fn norms() {
        let a = DenseMatrix::from_rows(vec![vec![3.0, 0.0], vec![0.0, -4.0]]).unwrap();
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-15);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn set_col_roundtrip() {
        let mut m = DenseMatrix::zeros(3, 2);
        m.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(m.col(0), vec![0.0, 0.0, 0.0]);
    }
}
