//! Thin QR factorisation via Modified Gram–Schmidt.
//!
//! Used to orthonormalise the sketch matrices of the randomized SVD. MGS
//! with a single re-orthogonalisation pass ("twice is enough", Kahan) is
//! accurate to machine precision for the well-conditioned tall-skinny
//! matrices that arise there.

use crate::DenseMatrix;

/// Relative threshold below which a column is treated as linearly dependent.
const RANK_TOL: f64 = 1e-12;

/// Computes a thin QR factorisation of a tall matrix `a` (`m x k`, `m >= k`).
///
/// Returns `(q, r)` with `q` of shape `m x k` having orthonormal (or zero)
/// columns and `r` upper triangular `k x k` such that `a ≈ q · r`. Columns
/// that become numerically zero during orthogonalisation (rank deficiency)
/// are left as zero columns with a zero diagonal in `r`; downstream code
/// treats the corresponding directions as discarded.
pub fn thin_qr(a: &DenseMatrix) -> (DenseMatrix, DenseMatrix) {
    let m = a.nrows();
    let k = a.ncols();
    // Work on columns; q starts as a copy of a.
    let mut q_cols: Vec<Vec<f64>> = (0..k).map(|c| a.col(c)).collect();
    let mut r = DenseMatrix::zeros(k, k);
    let col_scale = a.max_abs().max(f64::MIN_POSITIVE);
    for j in 0..k {
        // Two orthogonalisation passes against previous columns.
        for _pass in 0..2 {
            for i in 0..j {
                let (head, tail) = q_cols.split_at_mut(j);
                let qi = &head[i];
                let qj = &mut tail[0];
                let proj: f64 = qi.iter().zip(qj.iter()).map(|(a, b)| a * b).sum();
                if proj != 0.0 {
                    for (x, &y) in qj.iter_mut().zip(qi) {
                        *x -= proj * y;
                    }
                    let rij = r.get(i, j);
                    r.set(i, j, rij + proj);
                }
            }
        }
        let norm: f64 = q_cols[j].iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > RANK_TOL * col_scale * (m as f64).sqrt() {
            r.set(j, j, norm);
            for v in &mut q_cols[j] {
                *v /= norm;
            }
        } else {
            // Rank-deficient direction: zero it out.
            r.set(j, j, 0.0);
            q_cols[j].fill(0.0);
        }
    }
    let mut q = DenseMatrix::zeros(m, k);
    for (j, col) in q_cols.iter().enumerate() {
        q.set_col(j, col);
    }
    (q, r)
}

/// Orthonormality defect `‖QᵀQ − I‖_max` over the non-zero columns —
/// diagnostic used in tests.
pub fn orthonormality_defect(q: &DenseMatrix) -> f64 {
    let k = q.ncols();
    let mut worst = 0.0f64;
    for i in 0..k {
        let ci = q.col(i);
        let ni: f64 = ci.iter().map(|v| v * v).sum();
        if ni == 0.0 {
            continue; // discarded column
        }
        for j in i..k {
            let cj = q.col(j);
            let nj: f64 = cj.iter().map(|v| v * v).sum();
            if nj == 0.0 {
                continue;
            }
            let dot: f64 = ci.iter().zip(&cj).map(|(a, b)| a * b).sum();
            let expect = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((dot - expect).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn qr_reconstructs_input() {
        let a = DenseMatrix::from_rows(vec![
            vec![1.0, 2.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![2.0, 1.0],
        ])
        .unwrap();
        let (q, r) = thin_qr(&a);
        assert!(orthonormality_defect(&q) < 1e-12);
        let qr = q.matmul(&r).unwrap();
        assert!(a.sub(&qr).unwrap().max_abs() < 1e-12);
    }

    #[test]
    fn random_tall_matrices() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let m = rng.gen_range(5..40);
            let k = rng.gen_range(1..=m.min(12));
            let a = DenseMatrix::from_fn(m, k, |_, _| rng.gen_range(-1.0..1.0));
            let (q, r) = thin_qr(&a);
            assert!(orthonormality_defect(&q) < 1e-10);
            let qr = q.matmul(&r).unwrap();
            assert!(a.sub(&qr).unwrap().max_abs() < 1e-10);
            // R is upper triangular.
            for i in 0..k {
                for j in 0..i {
                    assert_eq!(r.get(i, j), 0.0);
                }
            }
        }
    }

    #[test]
    fn rank_deficiency_yields_zero_columns() {
        // Second column is a multiple of the first.
        let a = DenseMatrix::from_rows(vec![
            vec![1.0, 2.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0],
        ])
        .unwrap();
        let (q, r) = thin_qr(&a);
        assert_eq!(r.get(1, 1), 0.0);
        assert!(q.col(1).iter().all(|&v| v == 0.0));
        // First column still orthonormal and reconstructs.
        assert!(orthonormality_defect(&q) < 1e-12);
    }

    #[test]
    fn already_orthonormal_input_is_fixed_point() {
        let a = DenseMatrix::from_rows(vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![0.0, 0.0],
        ])
        .unwrap();
        let (q, r) = thin_qr(&a);
        assert!(a.sub(&q).unwrap().max_abs() < 1e-15);
        assert!((r.get(0, 0) - 1.0).abs() < 1e-15);
        assert!((r.get(1, 1) - 1.0).abs() < 1e-15);
    }
}
