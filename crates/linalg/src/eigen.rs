//! Cyclic Jacobi eigensolver for symmetric matrices.
//!
//! The randomized SVD reduces the big sparse problem to a small symmetric
//! eigenproblem `B Bᵀ = V Λ Vᵀ`; Jacobi rotations are simple, numerically
//! robust, and plenty fast at the `(rank + oversample)²` sizes that occur.

use crate::{DenseMatrix, LinalgError, Result};

/// Eigen-decomposition of a symmetric matrix: eigenvalues descending, and
/// the orthonormal eigenvector matrix (columns).
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues sorted in descending order.
    pub values: Vec<f64>,
    /// Column `i` is the eigenvector for `values[i]`.
    pub vectors: DenseMatrix,
}

/// Maximum number of full Jacobi sweeps before giving up.
const MAX_SWEEPS: usize = 64;

/// Diagonalises a symmetric matrix with the cyclic Jacobi method.
///
/// `a` must be square; symmetry is assumed (only the upper triangle is
/// trusted, deviations below `1e-9 · max|a|` are tolerated and symmetrised
/// away). Converges quadratically; typical inputs need < 10 sweeps.
pub fn jacobi_symmetric(a: &DenseMatrix) -> Result<SymmetricEigen> {
    let n = a.nrows();
    if a.ncols() != n {
        return Err(LinalgError::DimensionMismatch(format!(
            "jacobi: matrix is {}x{}",
            a.nrows(),
            a.ncols()
        )));
    }
    // Symmetrise defensively.
    let mut m = DenseMatrix::from_fn(n, n, |i, j| 0.5 * (a.get(i, j) + a.get(j, i)));
    let mut v = DenseMatrix::identity(n);
    let scale = m.max_abs().max(f64::MIN_POSITIVE);
    let tol = 1e-14 * scale;

    for _sweep in 0..MAX_SWEEPS {
        let mut off = 0.0f64;
        for i in 0..n {
            for j in i + 1..n {
                off = off.max(m.get(i, j).abs());
            }
        }
        if off <= tol {
            return Ok(sorted_eigen(m, v));
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m.get(p, q);
                if apq.abs() <= tol {
                    continue;
                }
                let app = m.get(p, p);
                let aqq = m.get(q, q);
                // Rotation angle: standard Rutishauser formulas.
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    1.0 / (theta - (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply the rotation to rows/columns p and q of M.
                for k in 0..n {
                    let mkp = m.get(k, p);
                    let mkq = m.get(k, q);
                    m.set(k, p, c * mkp - s * mkq);
                    m.set(k, q, s * mkp + c * mkq);
                }
                for k in 0..n {
                    let mpk = m.get(p, k);
                    let mqk = m.get(q, k);
                    m.set(p, k, c * mpk - s * mqk);
                    m.set(q, k, s * mpk + c * mqk);
                }
                // Accumulate the eigenvectors.
                for k in 0..n {
                    let vkp = v.get(k, p);
                    let vkq = v.get(k, q);
                    v.set(k, p, c * vkp - s * vkq);
                    v.set(k, q, s * vkp + c * vkq);
                }
            }
        }
    }
    let mut off = 0.0f64;
    for i in 0..n {
        for j in i + 1..n {
            off = off.max(m.get(i, j).abs());
        }
    }
    Err(LinalgError::NoConvergence { iterations: MAX_SWEEPS, residual: off })
}

fn sorted_eigen(m: DenseMatrix, v: DenseMatrix) -> SymmetricEigen {
    let n = m.nrows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| m.get(b, b).partial_cmp(&m.get(a, a)).expect("finite eigenvalues"));
    let values: Vec<f64> = order.iter().map(|&i| m.get(i, i)).collect();
    let mut vectors = DenseMatrix::zeros(n, n);
    for (new, &old) in order.iter().enumerate() {
        vectors.set_col(new, &v.col(old));
    }
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn check_decomposition(a: &DenseMatrix, e: &SymmetricEigen, tol: f64) {
        let n = a.nrows();
        // A v_i = lambda_i v_i
        for i in 0..n {
            let vi = e.vectors.col(i);
            let av = a.matvec(&vi).unwrap();
            for k in 0..n {
                assert!(
                    (av[k] - e.values[i] * vi[k]).abs() < tol,
                    "eigpair {i} row {k}: {} vs {}",
                    av[k],
                    e.values[i] * vi[k]
                );
            }
        }
        // descending order
        for w in e.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = DenseMatrix::from_rows(vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ])
        .unwrap();
        let e = jacobi_symmetric(&a).unwrap();
        assert_eq!(e.values, vec![3.0, 2.0, -1.0]);
        check_decomposition(&a, &e, 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_rows(vec![vec![2.0, 1.0], vec![1.0, 2.0]]).unwrap();
        let e = jacobi_symmetric(&a).unwrap();
        assert!((e.values[0] - 3.0).abs() < 1e-12);
        assert!((e.values[1] - 1.0).abs() < 1e-12);
        check_decomposition(&a, &e, 1e-12);
    }

    #[test]
    fn random_symmetric() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10 {
            let n = rng.gen_range(2..15);
            let raw = DenseMatrix::from_fn(n, n, |_, _| rng.gen_range(-1.0..1.0));
            let a = DenseMatrix::from_fn(n, n, |i, j| 0.5 * (raw.get(i, j) + raw.get(j, i)));
            let e = jacobi_symmetric(&a).unwrap();
            check_decomposition(&a, &e, 1e-9);
            // trace preserved
            let trace: f64 = (0..n).map(|i| a.get(i, i)).sum();
            let sum: f64 = e.values.iter().sum();
            assert!((trace - sum).abs() < 1e-9);
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = DenseMatrix::from_rows(vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 1.0],
            vec![0.5, 1.0, 2.0],
        ])
        .unwrap();
        let e = jacobi_symmetric(&a).unwrap();
        assert!(crate::qr::orthonormality_defect(&e.vectors) < 1e-12);
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(jacobi_symmetric(&a).is_err());
    }
}
