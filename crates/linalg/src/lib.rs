//! # kdash-linalg
//!
//! Dense linear algebra built from scratch for the K-dash reproduction.
//! The approximate baselines of the paper (NB_LIN / B_LIN, Tong et al.,
//! ICDM 2006) need a low-rank SVD of the transition matrix and small dense
//! inverses; no external BLAS/LAPACK is permitted in this workspace, so the
//! required kernels are implemented here:
//!
//! * [`DenseMatrix`] — row-major dense matrices with the usual operations,
//! * [`qr::thin_qr`] — Modified Gram–Schmidt with re-orthogonalisation,
//! * [`eigen::jacobi_symmetric`] — cyclic Jacobi eigensolver,
//! * [`svd::randomized_svd`] — Halko–Martinsson–Tropp style randomized SVD
//!   over sparse matrices (power iterations + small eigenproblem),
//! * [`solve`] — dense LU with partial pivoting (solve / invert).
//!
//! Accuracy targets are those of the baselines: a good rank-`t`
//! approximation, not bit-exact LAPACK parity.

pub mod dense;
pub mod eigen;
pub mod qr;
pub mod solve;
pub mod svd;

pub use dense::DenseMatrix;
pub use eigen::jacobi_symmetric;
pub use qr::thin_qr;
pub use solve::{invert_dense, solve_dense, DenseLu};
pub use svd::{randomized_svd, Svd, SvdOptions};

/// Errors from dense kernels.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// Dimension mismatch between operands.
    DimensionMismatch(String),
    /// Matrix was singular to working precision.
    Singular { pivot: usize },
    /// An iterative routine failed to converge.
    NoConvergence { iterations: usize, residual: f64 },
    /// Invalid parameter (rank 0, oversampling, ...).
    InvalidParameter(String),
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::DimensionMismatch(m) => write!(f, "dimension mismatch: {m}"),
            LinalgError::Singular { pivot } => write!(f, "singular matrix at pivot {pivot}"),
            LinalgError::NoConvergence { iterations, residual } => {
                write!(f, "no convergence after {iterations} iterations (residual {residual})")
            }
            LinalgError::InvalidParameter(m) => write!(f, "invalid parameter: {m}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LinalgError>;
