//! Dense LU with partial pivoting: solve and invert.
//!
//! NB_LIN's core matrix `Λ = (S⁻¹ − (1−c) Vᵀ U)⁻¹` is a small dense
//! `t x t` inverse, and B_LIN additionally inverts each within-partition
//! block of `W₁`; both go through this module.

use crate::{DenseMatrix, LinalgError, Result};

/// An LU factorisation `P · A = L · U` with partial pivoting, reusable for
/// multiple right-hand sides.
#[derive(Debug, Clone)]
pub struct DenseLu {
    /// Packed factors: strictly-lower L (unit diagonal) + upper U.
    lu: DenseMatrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
}

impl DenseLu {
    /// Factors a square matrix. Fails with [`LinalgError::Singular`] if a
    /// pivot column is entirely (numerically) zero.
    pub fn new(a: &DenseMatrix) -> Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "LU requires square input, got {}x{}",
                a.nrows(),
                a.ncols()
            )));
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let scale = a.max_abs().max(f64::MIN_POSITIVE);
        for k in 0..n {
            // Partial pivot: largest magnitude in column k at or below row k.
            let (mut pivot_row, mut pivot_val) = (k, lu.get(k, k).abs());
            for i in k + 1..n {
                let v = lu.get(i, k).abs();
                if v > pivot_val {
                    pivot_row = i;
                    pivot_val = v;
                }
            }
            if pivot_val <= 1e-14 * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                for j in 0..n {
                    let tmp = lu.get(k, j);
                    lu.set(k, j, lu.get(pivot_row, j));
                    lu.set(pivot_row, j, tmp);
                }
            }
            let pivot = lu.get(k, k);
            for i in k + 1..n {
                let factor = lu.get(i, k) / pivot;
                lu.set(i, k, factor);
                if factor != 0.0 {
                    for j in k + 1..n {
                        let v = lu.get(i, j) - factor * lu.get(k, j);
                        lu.set(i, j, v);
                    }
                }
            }
        }
        Ok(DenseLu { lu, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.perm.len()
    }

    /// Solves `A x = b`.
    #[allow(clippy::needless_range_loop)] // triangular index patterns
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(format!(
                "rhs has length {}, expected {n}",
                b.len()
            )));
        }
        // Apply the permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&i| b[i]).collect();
        for i in 1..n {
            let mut acc = x[i];
            for j in 0..i {
                acc -= self.lu.get(i, j) * x[j];
            }
            x[i] = acc;
        }
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in i + 1..n {
                acc -= self.lu.get(i, j) * x[j];
            }
            x[i] = acc / self.lu.get(i, i);
        }
        Ok(x)
    }

    /// Solves for every column of the identity, producing `A⁻¹`.
    pub fn inverse(&self) -> Result<DenseMatrix> {
        let n = self.dim();
        let mut inv = DenseMatrix::zeros(n, n);
        let mut e = vec![0.0; n];
        for c in 0..n {
            e[c] = 1.0;
            let x = self.solve(&e)?;
            inv.set_col(c, &x);
            e[c] = 0.0;
        }
        Ok(inv)
    }
}

/// One-shot solve `A x = b`.
pub fn solve_dense(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>> {
    DenseLu::new(a)?.solve(b)
}

/// One-shot inverse.
pub fn invert_dense(a: &DenseMatrix) -> Result<DenseMatrix> {
    DenseLu::new(a)?.inverse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    #[test]
    fn solves_known_system() {
        // x + 2y = 5 ; 3x + 4y = 11  ->  x = 1, y = 2
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        let x = solve_dense(&a, &[5.0, 11.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = DenseMatrix::from_rows(vec![vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve_dense(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = DenseMatrix::from_rows(vec![vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(DenseLu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn inverse_roundtrip() {
        let a = DenseMatrix::from_rows(vec![
            vec![4.0, 7.0, 2.0],
            vec![3.0, 5.0, 1.0],
            vec![1.0, 1.0, 3.0],
        ])
        .unwrap();
        let inv = invert_dense(&a).unwrap();
        let prod = a.matmul(&inv).unwrap();
        let defect = prod.sub(&DenseMatrix::identity(3)).unwrap().max_abs();
        assert!(defect < 1e-12, "defect {defect}");
    }

    #[test]
    fn random_systems_have_small_residuals() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..15 {
            let n = rng.gen_range(1..25);
            // Diagonally dominated to stay well-conditioned.
            let a = DenseMatrix::from_fn(n, n, |i, j| {
                if i == j {
                    (n as f64) + rng.gen_range(0.0..1.0)
                } else {
                    rng.gen_range(-1.0..1.0)
                }
            });
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let x = solve_dense(&a, &b).unwrap();
            let recon = a.matvec(&x).unwrap();
            for (r, e) in recon.iter().zip(&b) {
                assert!((r - e).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn factorisation_is_reusable() {
        let a = DenseMatrix::from_rows(vec![vec![2.0, 0.0], vec![0.0, 4.0]]).unwrap();
        let lu = DenseLu::new(&a).unwrap();
        assert_eq!(lu.solve(&[2.0, 4.0]).unwrap(), vec![1.0, 1.0]);
        assert_eq!(lu.solve(&[4.0, 8.0]).unwrap(), vec![2.0, 2.0]);
    }
}
