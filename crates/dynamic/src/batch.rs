//! Validated edge-mutation logs.
//!
//! An [`UpdateBatch`] is the unit of incremental maintenance: one ordered
//! list of [`EdgeEdit`]s that is applied atomically (all edits validate
//! against the sequentially edited graph or none apply) and advances the
//! index's update epoch by one. Structural validation — finite, strictly
//! positive weights — happens at construction; graph-dependent validation
//! (unknown nodes, absent edges, duplicate inserts) happens inside
//! [`DynamicIndex::apply`](crate::DynamicIndex::apply), where the current
//! graph is known.

use crate::{KdashError, Result};
use kdash_graph::{EdgeEdit, GraphError, NodeId};

/// An ordered, structurally validated log of edge mutations.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateBatch {
    edits: Vec<EdgeEdit>,
}

impl UpdateBatch {
    /// Wraps an edit list, validating every carried weight (finite and
    /// strictly positive — the same rule graph construction enforces).
    pub fn new(edits: Vec<EdgeEdit>) -> Result<UpdateBatch> {
        for e in &edits {
            if let Some(w) = e.weight() {
                if !(w.is_finite() && w > 0.0) {
                    return Err(KdashError::Graph(GraphError::InvalidWeight {
                        src: e.src(),
                        dst: e.dst(),
                        weight: w,
                    }));
                }
            }
        }
        Ok(UpdateBatch { edits })
    }

    /// The edits, in application order.
    pub fn edits(&self) -> &[EdgeEdit] {
        &self.edits
    }

    /// Number of edits.
    pub fn len(&self) -> usize {
        self.edits.len()
    }

    /// True when the batch carries no edits.
    pub fn is_empty(&self) -> bool {
        self.edits.is_empty()
    }

    /// The distinct edited source nodes — the transition-matrix columns
    /// the batch renormalises (in the caller's id space).
    pub fn touched_sources(&self) -> Vec<NodeId> {
        let mut sources: Vec<NodeId> = self.edits.iter().map(|e| e.src()).collect();
        sources.sort_unstable();
        sources.dedup();
        sources
    }

    /// Parses an edit stream into batches. One edit per line:
    ///
    /// ```text
    /// + src dst weight    # insert
    /// - src dst           # delete
    /// = src dst weight    # reweight
    /// ```
    ///
    /// `#` starts a comment (whole-line or trailing; comment-only lines
    /// are skipped); **blank** lines separate batches, so a file is a
    /// sequence of atomically applied batches. Parse failures carry the
    /// 1-based line number.
    pub fn parse_stream(text: &str) -> Result<Vec<UpdateBatch>> {
        let mut batches = Vec::new();
        let mut current: Vec<EdgeEdit> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            if raw.trim().is_empty() {
                // Only a genuinely blank line closes the open batch.
                if !current.is_empty() {
                    batches.push(UpdateBatch::new(std::mem::take(&mut current))?);
                }
                continue;
            }
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue; // comment-only line: no batch boundary
            }
            current.push(parse_edit(line, lineno + 1)?);
        }
        if !current.is_empty() {
            batches.push(UpdateBatch::new(current)?);
        }
        Ok(batches)
    }
}

fn parse_edit(line: &str, lineno: usize) -> Result<EdgeEdit> {
    let parse_err = |message: String| {
        KdashError::Graph(GraphError::Parse { line: lineno, message })
    };
    let mut tokens = line.split_whitespace();
    let op = tokens.next().expect("caller skips empty lines");
    let mut node = |what: &str| -> Result<NodeId> {
        tokens
            .next()
            .ok_or_else(|| parse_err(format!("missing {what}")))?
            .parse()
            .map_err(|_| parse_err(format!("invalid {what}")))
    };
    let (src, dst) = (node("source node")?, node("target node")?);
    let edit = match op {
        "+" | "=" => {
            let weight: f64 = tokens
                .next()
                .ok_or_else(|| parse_err("missing weight".into()))?
                .parse()
                .map_err(|_| parse_err("invalid weight".into()))?;
            if op == "+" {
                EdgeEdit::Insert { src, dst, weight }
            } else {
                EdgeEdit::Reweight { src, dst, weight }
            }
        }
        "-" => EdgeEdit::Delete { src, dst },
        other => return Err(parse_err(format!("unknown edit op '{other}' (expected + - =)"))),
    };
    if let Some(extra) = tokens.next() {
        return Err(parse_err(format!("unexpected trailing token '{extra}'")));
    }
    Ok(edit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_weights() {
        assert!(UpdateBatch::new(vec![EdgeEdit::Insert { src: 0, dst: 1, weight: 1.0 }]).is_ok());
        for bad in [0.0, -2.0, f64::NAN, f64::INFINITY] {
            let err = UpdateBatch::new(vec![EdgeEdit::Reweight { src: 0, dst: 1, weight: bad }]);
            assert!(
                matches!(err, Err(KdashError::Graph(GraphError::InvalidWeight { .. }))),
                "weight {bad} must be rejected"
            );
        }
        // Deletes carry no weight to validate.
        assert!(UpdateBatch::new(vec![EdgeEdit::Delete { src: 0, dst: 1 }]).is_ok());
    }

    #[test]
    fn touched_sources_dedup_and_sort() {
        let batch = UpdateBatch::new(vec![
            EdgeEdit::Insert { src: 5, dst: 1, weight: 1.0 },
            EdgeEdit::Delete { src: 2, dst: 0 },
            EdgeEdit::Reweight { src: 5, dst: 9, weight: 2.0 },
        ])
        .unwrap();
        assert_eq!(batch.touched_sources(), vec![2, 5]);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
    }

    #[test]
    fn parse_stream_splits_batches_and_strips_comments() {
        let text = "\
# header comment
+ 0 1 2.5
# a comment between edits does NOT split the batch
= 2 3 0.25   # trailing comment

- 4 5
";
        let batches = UpdateBatch::parse_stream(text).unwrap();
        assert_eq!(batches.len(), 2);
        assert_eq!(
            batches[0].edits(),
            &[
                EdgeEdit::Insert { src: 0, dst: 1, weight: 2.5 },
                EdgeEdit::Reweight { src: 2, dst: 3, weight: 0.25 },
            ]
        );
        assert_eq!(batches[1].edits(), &[EdgeEdit::Delete { src: 4, dst: 5 }]);
        assert!(UpdateBatch::parse_stream("  \n# only comments\n").unwrap().is_empty());
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let cases = [
            ("? 0 1", 1),
            ("+ 0 1", 1),          // missing weight
            ("+ 0 1 x", 1),        // bad weight
            ("- 0", 1),            // missing target
            ("+ a 1 1.0", 1),      // bad node
            ("+ 0 1 1.0 extra", 1),
            ("+ 0 1 1.0\n- 2", 2), // error on the second line
        ];
        for (text, line) in cases {
            match UpdateBatch::parse_stream(text) {
                Err(KdashError::Graph(GraphError::Parse { line: l, .. })) => {
                    assert_eq!(l, line, "{text:?}")
                }
                other => panic!("{text:?}: expected parse error, got {other:?}"),
            }
        }
        // Structural weight validation also fires from the parser.
        assert!(matches!(
            UpdateBatch::parse_stream("+ 0 1 -3.0"),
            Err(KdashError::Graph(GraphError::InvalidWeight { .. }))
        ));
    }
}
