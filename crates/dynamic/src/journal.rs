//! The write-ahead update journal: durable [`UpdateBatch`] records for
//! deterministic crash recovery.
//!
//! A journal is a sidecar file (`<index>.kdash.journal` by convention —
//! see [`Journal::sidecar_path`]) holding the batches applied since the
//! last snapshot checkpoint. In journaled mode the dynamic engine
//! appends and fsyncs each batch's frame *before* installing the patch,
//! so an acknowledged apply is durable by definition; after a successful
//! [`save_atomic`](kdash_core::persist::save_atomic) checkpoint the
//! journal is truncated (atomically, by renaming a fresh header-only
//! journal into place). Recovery loads the last snapshot, replays the
//! frames above its epoch in one coalesced pass — bit-identical to
//! having applied them live — and reattaches the journal.
//!
//! ## On-disk format
//!
//! All integers little-endian, CRCs the same table-driven IEEE CRC32
//! the index snapshot format uses ([`kdash_core::persist::crc32`]).
//!
//! ```text
//! header (24 bytes, fixed):
//!   magic            8B  "KDASHJNL"
//!   version          4B  u32 (currently 1)
//!   checkpoint epoch 8B  u64 — epoch of the snapshot this journal
//!                        continues from
//!   header crc       4B  CRC32 of the preceding 20 bytes
//! frame (one per batch, appended in epoch order):
//!   payload length   4B  u32
//!   payload              epoch u64, edit count u32, then per edit:
//!                        op u8 (0 insert / 1 delete / 2 reweight),
//!                        src u32, dst u32, weight f64 (insert/reweight)
//!   frame crc        4B  CRC32 of length field + payload
//! ```
//!
//! Frames record *user-space* batches (original node ids, exactly what
//! [`DynamicIndex::apply`](crate::DynamicIndex::apply) received), so
//! replay goes through the full validation and permutation path and the
//! journal stays meaningful if the snapshot is rebuilt under a new node
//! order. Epochs within a journal are contiguous and ascending; the
//! first frame continues the header's checkpoint epoch. A torn tail — a
//! crash mid-append leaves a prefix of a frame — is detected by the
//! length/CRC framing, reported (never a panic), and truncated away on
//! reopen; the torn frame was by construction never acknowledged.
//!
//! Every write, fsync, rename and truncate routes through a
//! [`FaultInjector`], so the crash-point sweep in
//! `tests/failure_injection.rs` can tear this protocol at every byte
//! and assert recovery.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use kdash_core::fault::{
    injected_write, is_injected_crash, retry_transient, sync_parent_dir, FaultInjector, NoFaults,
};
use kdash_core::persist::crc32;
use kdash_core::{KdashError, PersistError};
use kdash_graph::EdgeEdit;

use crate::batch::UpdateBatch;

/// First bytes of every journal file.
pub const JOURNAL_MAGIC: &[u8; 8] = b"KDASHJNL";
/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;
/// Fixed byte length of the journal header.
pub const HEADER_LEN: u64 = 24;
/// Upper bound on a single frame's payload, rejected as torn beyond it —
/// a length field this large is damage, not data (it would be a single
/// batch of ~16M edits).
const MAX_PAYLOAD: u32 = 1 << 28;

const OP_INSERT: u8 = 0;
const OP_DELETE: u8 = 1;
const OP_REWEIGHT: u8 = 2;

/// Why a journal operation failed. Everything an operator can hit has a
/// typed shape; `Display` renders the operator-facing message.
#[derive(Debug)]
pub enum JournalError {
    /// An underlying I/O failure; `op` names the operation.
    Io {
        /// The journal operation that failed (`"read"`, `"append"`, …).
        op: &'static str,
        /// The journal file involved.
        path: String,
        /// The underlying error.
        error: io::Error,
    },
    /// The file exists but does not begin with the `KDASHJNL` magic —
    /// almost certainly not a journal at all, so it is *not* treated as
    /// a torn header (which would repair-overwrite it).
    NotAJournal {
        /// The offending path.
        path: String,
    },
    /// The journal's format version is newer than this build reads.
    UnsupportedVersion {
        /// The version recorded in the header.
        version: u32,
    },
    /// A previous append failed and the torn tail could not be healed
    /// in place; the journal refuses further appends. Reopen (which
    /// truncates the tail) or run recovery.
    Poisoned,
    /// The journal's tail epoch does not match the index epoch it is
    /// being attached to (or an append skipped an epoch). Run recovery
    /// instead of attaching blindly.
    EpochMismatch {
        /// The journal's last durable epoch.
        journal: u64,
        /// The index's (or the appended batch's) epoch.
        index: u64,
    },
    /// The journal's surviving records skip epochs immediately above the
    /// snapshot: acknowledged history was lost out-of-band (a deleted or
    /// swapped journal). Recovery refuses rather than silently skipping.
    EpochGap {
        /// The snapshot's update epoch.
        snapshot: u64,
        /// The first journal epoch above it.
        first_record: u64,
    },
    /// A journaled operation needs journaled mode, but no journal is
    /// attached to the engine.
    NotJournaled,
    /// Loading or checkpointing the snapshot failed.
    Persist(PersistError),
    /// Replaying journal records through the update engine failed.
    Index(KdashError),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io { op, path, error } => {
                write!(f, "journal {op} failed for {path}: {error}")
            }
            JournalError::NotAJournal { path } => {
                write!(f, "{path} is not a K-dash update journal (bad magic)")
            }
            JournalError::UnsupportedVersion { version } => {
                write!(
                    f,
                    "unsupported journal version {version} (this build reads {JOURNAL_VERSION})"
                )
            }
            JournalError::Poisoned => write!(
                f,
                "journal is poisoned by an unhealed append failure — reopen it (which \
                 truncates the torn tail) or run recovery"
            ),
            JournalError::EpochMismatch { journal, index } => write!(
                f,
                "journal tail epoch {journal} does not continue index epoch {index} — \
                 run `kdash recover` (or DynamicIndex::recover) instead of attaching"
            ),
            JournalError::EpochGap { snapshot, first_record } => write!(
                f,
                "journal records jump from snapshot epoch {snapshot} to {first_record}: \
                 acknowledged batches are missing — restore the matching journal or \
                 accept the snapshot state by deleting the sidecar"
            ),
            JournalError::NotJournaled => {
                write!(f, "no journal attached — enable journaled mode first")
            }
            JournalError::Persist(e) => write!(f, "snapshot error during journal operation: {e}"),
            JournalError::Index(e) => write!(f, "replay error during recovery: {e}"),
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { error, .. } => Some(error),
            JournalError::Persist(e) => Some(e),
            JournalError::Index(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PersistError> for JournalError {
    fn from(e: PersistError) -> Self {
        JournalError::Persist(e)
    }
}

impl From<KdashError> for JournalError {
    fn from(e: KdashError) -> Self {
        JournalError::Index(e)
    }
}

/// Where and why a scan stopped believing the journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset of the first bad frame (or 0 for a torn header).
    pub offset: u64,
    /// What was wrong there.
    pub detail: String,
}

/// The result of scanning a journal file without loading an index:
/// everything `kdash verify --journal` and `kdash info` print, and
/// everything recovery needs to decide what to replay.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalScan {
    /// Whether the 24-byte header parsed and its CRC matched.
    pub header_ok: bool,
    /// The checkpoint epoch recorded in the header (`None` if the
    /// header was torn).
    pub checkpoint_epoch: Option<u64>,
    /// Number of intact frames.
    pub records: u64,
    /// Epoch of the first intact frame.
    pub first_epoch: Option<u64>,
    /// Epoch of the last intact frame.
    pub last_epoch: Option<u64>,
    /// Total edits across intact frames.
    pub edits: u64,
    /// Offset one past the last intact frame (== the offset reopening
    /// truncates to). `HEADER_LEN` for an empty journal.
    pub good_bytes: u64,
    /// The file's actual length.
    pub file_bytes: u64,
    /// Set iff the scan stopped early at damage.
    pub torn: Option<TornTail>,
}

impl JournalScan {
    /// The epoch the journal's durable history ends at: the last frame,
    /// or the checkpoint epoch of a frameless journal (0 if even the
    /// header is gone).
    pub fn tail_epoch(&self) -> u64 {
        self.last_epoch.or(self.checkpoint_epoch).unwrap_or(0)
    }
}

/// An append-only write-ahead journal, open for appending. See the
/// [module docs](self) for the format and the durability contract.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    label: String,
    file: File,
    /// Offset one past the last durable frame; appends write here.
    end: u64,
    checkpoint_epoch: u64,
    last_epoch: u64,
    records: u64,
    poisoned: bool,
    faults: Arc<dyn FaultInjector>,
}

impl Journal {
    /// The conventional sidecar journal path for an index file:
    /// `<index path>.journal`.
    pub fn sidecar_path<P: AsRef<Path>>(index_path: P) -> PathBuf {
        let mut name = index_path.as_ref().as_os_str().to_os_string();
        name.push(".journal");
        PathBuf::from(name)
    }

    /// Creates (truncating) a fresh journal whose history starts at
    /// `checkpoint_epoch` — the epoch of the snapshot it will sit next
    /// to. The header is written and fsynced before this returns.
    pub fn create<P: AsRef<Path>>(path: P, checkpoint_epoch: u64) -> Result<Journal, JournalError> {
        Self::create_with(path, checkpoint_epoch, Arc::new(NoFaults))
    }

    /// [`Journal::create`] with an injectable fault layer (see
    /// [`kdash_core::fault`]).
    pub fn create_with<P: AsRef<Path>>(
        path: P,
        checkpoint_epoch: u64,
        faults: Arc<dyn FaultInjector>,
    ) -> Result<Journal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let label = path.display().to_string();
        let io_err = |op: &'static str, error: io::Error| JournalError::Io {
            op,
            path: label.clone(),
            error,
        };
        let mut file = File::create(&path).map_err(|e| io_err("create", e))?;
        let header = encode_header(checkpoint_epoch);
        injected_write(faults.as_ref(), &label, &mut file, &header)
            .map_err(|e| io_err("create", e))?;
        retry_transient(|| {
            faults.before_fsync(&label)?;
            file.sync_all()
        })
        .map_err(|e| io_err("fsync", e))?;
        // Make the file's existence durable too.
        sync_parent_dir(&path, faults.as_ref()).map_err(|e| io_err("dir-fsync", e))?;
        Ok(Journal {
            path,
            label,
            file,
            end: HEADER_LEN,
            checkpoint_epoch,
            last_epoch: checkpoint_epoch,
            records: 0,
            poisoned: false,
            faults,
        })
    }

    /// Opens an existing journal for appending, healing crash debris:
    /// a torn tail is truncated away and a torn header is rewritten in
    /// place (its fixed 24-byte size means frames never move). The
    /// repairs are fsynced before this returns. Fails typed — never
    /// panics — on real I/O errors, a non-journal file, or a version
    /// from the future.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Journal, JournalError> {
        Self::open_with(path, Arc::new(NoFaults))
    }

    /// [`Journal::open`] with an injectable fault layer.
    pub fn open_with<P: AsRef<Path>>(
        path: P,
        faults: Arc<dyn FaultInjector>,
    ) -> Result<Journal, JournalError> {
        let path = path.as_ref().to_path_buf();
        let label = path.display().to_string();
        let io_err = |op: &'static str, error: io::Error| JournalError::Io {
            op,
            path: label.clone(),
            error,
        };
        let bytes = fs::read(&path).map_err(|e| io_err("read", e))?;
        let (_, scan) = parse_journal(&bytes, &label)?;

        // History resumes after the last intact frame; a frameless
        // journal (torn header included) restarts from what the frames
        // imply: first frame's epoch − 1, or 0 when nothing survived.
        let checkpoint_epoch = scan
            .checkpoint_epoch
            .or_else(|| scan.first_epoch.map(|e| e.saturating_sub(1)))
            .unwrap_or(0);
        let last_epoch = scan.last_epoch.unwrap_or(checkpoint_epoch);
        let end = scan.good_bytes.max(HEADER_LEN);

        let mut file =
            OpenOptions::new().read(true).write(true).open(&path).map_err(|e| io_err("open", e))?;
        let mut dirty = false;
        if !scan.header_ok {
            let header = encode_header(checkpoint_epoch);
            file.seek(SeekFrom::Start(0)).map_err(|e| io_err("repair", e))?;
            injected_write(faults.as_ref(), &label, &mut file, &header)
                .map_err(|e| io_err("repair", e))?;
            dirty = true;
        }
        if scan.file_bytes != end {
            retry_transient(|| {
                faults.before_truncate(&label)?;
                file.set_len(end)
            })
            .map_err(|e| io_err("truncate", e))?;
            dirty = true;
        }
        if dirty {
            retry_transient(|| {
                faults.before_fsync(&label)?;
                file.sync_all()
            })
            .map_err(|e| io_err("fsync", e))?;
        }
        Ok(Journal {
            path,
            label,
            file,
            end,
            checkpoint_epoch,
            last_epoch,
            records: scan.records,
            poisoned: false,
            faults,
        })
    }

    /// Scans a journal file read-only: header validity, frame CRCs,
    /// epoch contiguity, torn tail. Touches nothing on disk and loads
    /// no index — this is `kdash verify --journal`.
    pub fn scan_path<P: AsRef<Path>>(path: P) -> Result<JournalScan, JournalError> {
        let label = path.as_ref().display().to_string();
        let bytes = fs::read(path.as_ref()).map_err(|error| JournalError::Io {
            op: "read",
            path: label.clone(),
            error,
        })?;
        parse_journal(&bytes, &label).map(|(_, scan)| scan)
    }

    /// Reads every intact `(epoch, batch)` record plus the scan summary,
    /// read-only. The recovery entry point.
    pub fn read_records<P: AsRef<Path>>(
        path: P,
    ) -> Result<(Vec<(u64, UpdateBatch)>, JournalScan), JournalError> {
        let label = path.as_ref().display().to_string();
        let bytes = fs::read(path.as_ref()).map_err(|error| JournalError::Io {
            op: "read",
            path: label.clone(),
            error,
        })?;
        parse_journal(&bytes, &label)
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Intact records currently in the journal.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The snapshot epoch this journal's history starts after.
    pub fn checkpoint_epoch(&self) -> u64 {
        self.checkpoint_epoch
    }

    /// The epoch of the last durable frame (the checkpoint epoch when
    /// the journal is empty) — the epoch an index must be at to attach.
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch
    }

    /// The fault layer this journal writes through.
    pub fn fault_injector(&self) -> &Arc<dyn FaultInjector> {
        &self.faults
    }

    /// Appends one frame per batch — epochs `first_epoch`,
    /// `first_epoch + 1`, … — then fsyncs **once**. Nothing is
    /// acknowledged until the fsync returns: on any failure the caller
    /// must treat every batch of the call as not-journaled (the engine
    /// then refuses to install the patch, keeping acknowledgement and
    /// durability in agreement).
    ///
    /// On a real write error the torn tail is healed in place
    /// (truncated back to the last durable frame); if healing fails the
    /// journal is poisoned and refuses further appends. An *injected*
    /// crash skips healing — the simulated process is dead, and
    /// recovery must cope with the debris.
    pub fn append_batches(
        &mut self,
        batches: &[UpdateBatch],
        first_epoch: u64,
    ) -> Result<(), JournalError> {
        if batches.is_empty() {
            return Ok(());
        }
        if self.poisoned {
            return Err(JournalError::Poisoned);
        }
        if first_epoch != self.last_epoch + 1 {
            return Err(JournalError::EpochMismatch {
                journal: self.last_epoch,
                index: first_epoch,
            });
        }
        // One buffer, one write call: the fault layer sees every torn
        // prefix of the whole append as a distinct crash point.
        let mut frames = Vec::new();
        for (i, batch) in batches.iter().enumerate() {
            frames.extend_from_slice(&encode_frame(first_epoch + i as u64, batch));
        }
        let result = (|| {
            self.file.seek(SeekFrom::Start(self.end))?;
            injected_write(self.faults.as_ref(), &self.label, &mut self.file, &frames)?;
            retry_transient(|| {
                self.faults.before_fsync(&self.label)?;
                self.file.sync_all()
            })
        })();
        match result {
            Ok(()) => {
                self.end += frames.len() as u64;
                self.records += batches.len() as u64;
                self.last_epoch = first_epoch + batches.len() as u64 - 1;
                Ok(())
            }
            Err(error) => {
                if !is_injected_crash(&error) {
                    // Heal: cut the file back to the last durable frame
                    // so the next append (or a scan) sees no torn bytes.
                    let healed = retry_transient(|| {
                        self.faults.before_truncate(&self.label)?;
                        self.file.set_len(self.end)?;
                        self.faults.before_fsync(&self.label)?;
                        self.file.sync_all()
                    });
                    self.poisoned = healed.is_err();
                } else {
                    self.poisoned = true;
                }
                Err(JournalError::Io { op: "append", path: self.label.clone(), error })
            }
        }
    }

    /// Truncates the journal after a durable snapshot at `epoch`:
    /// writes a fresh header-only journal to `<path>.tmp`, fsyncs it,
    /// and renames it over the old journal — atomically, so a crash
    /// leaves either the full old journal or the empty new one, and
    /// recovery's epoch filtering makes both consistent with the
    /// snapshot. Refuses (typed) if `epoch` is *behind* the journal's
    /// tail: that would discard acknowledged records no snapshot holds.
    /// (An `epoch` ahead of the tail is legal — it means a snapshot
    /// newer than the journal exists, and every record is redundant.)
    pub fn checkpoint(&mut self, epoch: u64) -> Result<(), JournalError> {
        if epoch < self.last_epoch {
            return Err(JournalError::EpochMismatch { journal: self.last_epoch, index: epoch });
        }
        let mut tmp_name = self.path.as_os_str().to_os_string();
        tmp_name.push(".tmp");
        let tmp = PathBuf::from(tmp_name);
        let tmp_label = tmp.display().to_string();
        let io_err = |op: &'static str, error: io::Error| JournalError::Io {
            op,
            path: tmp_label.clone(),
            error,
        };
        let header = encode_header(epoch);
        let mut file = File::create(&tmp).map_err(|e| io_err("checkpoint", e))?;
        injected_write(self.faults.as_ref(), &tmp_label, &mut file, &header)
            .map_err(|e| io_err("checkpoint", e))?;
        retry_transient(|| {
            self.faults.before_fsync(&tmp_label)?;
            file.sync_all()
        })
        .map_err(|e| io_err("fsync", e))?;
        retry_transient(|| {
            self.faults.before_rename(&tmp_label, &self.label)?;
            fs::rename(&tmp, &self.path)
        })
        .map_err(|e| io_err("rename", e))?;
        sync_parent_dir(&self.path, self.faults.as_ref()).map_err(|e| io_err("dir-fsync", e))?;
        // Keep appending to the *renamed* file, not the replaced inode.
        self.file = file;
        self.end = HEADER_LEN;
        self.checkpoint_epoch = epoch;
        self.last_epoch = epoch;
        self.records = 0;
        self.poisoned = false;
        Ok(())
    }
}

fn encode_header(checkpoint_epoch: u64) -> [u8; HEADER_LEN as usize] {
    let mut header = [0u8; HEADER_LEN as usize];
    header[..8].copy_from_slice(JOURNAL_MAGIC);
    header[8..12].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
    header[12..20].copy_from_slice(&checkpoint_epoch.to_le_bytes());
    let crc = crc32(&header[..20]);
    header[20..24].copy_from_slice(&crc.to_le_bytes());
    header
}

fn encode_frame(epoch: u64, batch: &UpdateBatch) -> Vec<u8> {
    let mut payload = Vec::with_capacity(12 + batch.len() * 17);
    payload.extend_from_slice(&epoch.to_le_bytes());
    payload.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for edit in batch.edits() {
        match *edit {
            EdgeEdit::Insert { src, dst, weight } => {
                payload.push(OP_INSERT);
                payload.extend_from_slice(&src.to_le_bytes());
                payload.extend_from_slice(&dst.to_le_bytes());
                payload.extend_from_slice(&weight.to_le_bytes());
            }
            EdgeEdit::Delete { src, dst } => {
                payload.push(OP_DELETE);
                payload.extend_from_slice(&src.to_le_bytes());
                payload.extend_from_slice(&dst.to_le_bytes());
            }
            EdgeEdit::Reweight { src, dst, weight } => {
                payload.push(OP_REWEIGHT);
                payload.extend_from_slice(&src.to_le_bytes());
                payload.extend_from_slice(&dst.to_le_bytes());
                payload.extend_from_slice(&weight.to_le_bytes());
            }
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame
}

/// Decodes one frame payload into `(epoch, batch)`. `Err` carries the
/// torn-tail detail — structural damage a CRC collision let through, or
/// a writer-side bug; either way the scan stops trusting the file here.
fn decode_payload(payload: &[u8]) -> Result<(u64, UpdateBatch), String> {
    fn take<'a>(payload: &'a [u8], at: &mut usize, n: usize) -> Result<&'a [u8], String> {
        match at.checked_add(n).filter(|&e| e <= payload.len()) {
            Some(end) => {
                let slice = &payload[*at..end];
                *at = end;
                Ok(slice)
            }
            None => Err("frame payload shorter than its own structure".to_string()),
        }
    }
    let mut at = 0usize;
    let epoch = u64::from_le_bytes(fixed8(take(payload, &mut at, 8)?));
    let n_edits = u32::from_le_bytes(fixed4(take(payload, &mut at, 4)?)) as usize;
    // Cheapest structural bound: every edit costs at least 9 bytes.
    if n_edits > payload.len().saturating_sub(at) / 9 {
        return Err(format!("frame claims {n_edits} edits but is too short to hold them"));
    }
    let mut edits = Vec::with_capacity(n_edits);
    for _ in 0..n_edits {
        let op = take(payload, &mut at, 1)?[0];
        let src = u32::from_le_bytes(fixed4(take(payload, &mut at, 4)?));
        let dst = u32::from_le_bytes(fixed4(take(payload, &mut at, 4)?));
        let edit = match op {
            OP_INSERT => {
                let weight = f64::from_le_bytes(fixed8(take(payload, &mut at, 8)?));
                EdgeEdit::Insert { src, dst, weight }
            }
            OP_DELETE => EdgeEdit::Delete { src, dst },
            OP_REWEIGHT => {
                let weight = f64::from_le_bytes(fixed8(take(payload, &mut at, 8)?));
                EdgeEdit::Reweight { src, dst, weight }
            }
            other => return Err(format!("unknown edit opcode {other}")),
        };
        edits.push(edit);
    }
    if at != payload.len() {
        return Err(format!("{} trailing bytes after the last edit", payload.len() - at));
    }
    // Re-run batch validation: the writer only journals validated
    // batches, so a failure here is structural damage.
    let batch = UpdateBatch::new(edits).map_err(|e| format!("invalid journaled batch: {e}"))?;
    Ok((epoch, batch))
}

fn fixed4(slice: &[u8]) -> [u8; 4] {
    let mut b = [0u8; 4];
    b.copy_from_slice(slice);
    b
}

fn fixed8(slice: &[u8]) -> [u8; 8] {
    let mut b = [0u8; 8];
    b.copy_from_slice(slice);
    b
}

/// Parses a whole journal image: header, then frames until damage or
/// EOF. Returns `Err` only for "wrong file entirely" conditions
/// ([`JournalError::NotAJournal`], [`JournalError::UnsupportedVersion`]);
/// crash debris of every kind — empty file, short or CRC-failed header,
/// torn or corrupt frames, epoch discontinuities — is reported in the
/// scan's `torn` field with the intact prefix intact. Never panics.
fn parse_journal(
    bytes: &[u8],
    path: &str,
) -> Result<(Vec<(u64, UpdateBatch)>, JournalScan), JournalError> {
    let mut scan = JournalScan {
        header_ok: false,
        checkpoint_epoch: None,
        records: 0,
        first_epoch: None,
        last_epoch: None,
        edits: 0,
        good_bytes: 0,
        file_bytes: bytes.len() as u64,
        torn: None,
    };
    // Distinguish "some other file" from "our file, torn": any byte
    // that *is* present must agree with the magic.
    let probe = bytes.len().min(JOURNAL_MAGIC.len());
    if probe > 0 && bytes[..probe] != JOURNAL_MAGIC[..probe] {
        return Err(JournalError::NotAJournal { path: path.to_string() });
    }
    if (bytes.len() as u64) < HEADER_LEN {
        scan.torn = Some(TornTail {
            offset: 0,
            detail: format!("truncated header ({} of {HEADER_LEN} bytes)", bytes.len()),
        });
        return Ok((Vec::new(), scan));
    }
    let stored_crc = u32::from_le_bytes(fixed4(&bytes[20..24]));
    if crc32(&bytes[..20]) != stored_crc {
        scan.torn = Some(TornTail { offset: 0, detail: "header checksum mismatch".to_string() });
        // The header is fixed-size, so the frames behind it are still
        // where they always are — scan them anyway; recovery can use
        // them even though the checkpoint epoch is unreadable.
    } else {
        let version = u32::from_le_bytes(fixed4(&bytes[8..12]));
        if version != JOURNAL_VERSION {
            return Err(JournalError::UnsupportedVersion { version });
        }
        scan.header_ok = true;
        scan.checkpoint_epoch = Some(u64::from_le_bytes(fixed8(&bytes[12..20])));
    }
    scan.good_bytes = HEADER_LEN;

    let mut records = Vec::new();
    let mut at = HEADER_LEN as usize;
    let torn = |offset: usize, detail: String| TornTail { offset: offset as u64, detail };
    while at < bytes.len() {
        let frame_start = at;
        if bytes.len() - at < 4 {
            scan.torn = Some(torn(frame_start, "truncated frame length field".to_string()));
            break;
        }
        let len = u32::from_le_bytes(fixed4(&bytes[at..at + 4]));
        if len > MAX_PAYLOAD {
            scan.torn =
                Some(torn(frame_start, format!("implausible frame length {len}")));
            break;
        }
        let total = 4 + len as usize + 4;
        if bytes.len() - at < total {
            scan.torn = Some(torn(
                frame_start,
                format!("frame overruns the file ({} of {total} bytes)", bytes.len() - at),
            ));
            break;
        }
        let crc_at = at + 4 + len as usize;
        let stored = u32::from_le_bytes(fixed4(&bytes[crc_at..crc_at + 4]));
        let computed = crc32(&bytes[at..crc_at]);
        if stored != computed {
            scan.torn = Some(torn(frame_start, "frame checksum mismatch".to_string()));
            break;
        }
        let (epoch, batch) = match decode_payload(&bytes[at + 4..crc_at]) {
            Ok(decoded) => decoded,
            Err(detail) => {
                scan.torn = Some(torn(frame_start, detail));
                break;
            }
        };
        // Epochs are contiguous ascending; the first frame continues
        // the header's checkpoint (when the header survived).
        let expected = match (scan.last_epoch, scan.checkpoint_epoch) {
            (Some(prev), _) => Some(prev + 1),
            (None, Some(checkpoint)) => Some(checkpoint + 1),
            (None, None) => None,
        };
        if expected.is_some_and(|want| epoch != want) {
            scan.torn = Some(torn(
                frame_start,
                format!(
                    "epoch discontinuity: frame has epoch {epoch}, expected {}",
                    expected.unwrap_or(0)
                ),
            ));
            break;
        }
        scan.records += 1;
        scan.edits += batch.len() as u64;
        scan.first_epoch = scan.first_epoch.or(Some(epoch));
        scan.last_epoch = Some(epoch);
        at += total;
        scan.good_bytes = at as u64;
        records.push((epoch, batch));
    }
    Ok((records, scan))
}

/// What [`DynamicIndex::recover`](crate::DynamicIndex::recover) did:
/// enough for an operator (or the crash-point sweep) to audit the
/// recovered state's provenance.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The snapshot's update epoch before replay.
    pub snapshot_epoch: u64,
    /// The recovered engine's epoch (snapshot + replayed batches).
    pub final_epoch: u64,
    /// Journal records replayed (epoch above the snapshot's).
    pub replayed_batches: usize,
    /// Total edits across the replayed records.
    pub replayed_edits: usize,
    /// Journal records skipped as already contained in the snapshot.
    pub skipped_records: usize,
    /// Human-readable description of a torn tail, if the scan found one
    /// (the tail was truncated away when the journal was reattached).
    pub torn_tail: Option<String>,
    /// Whether the journal header itself was damaged and rewritten.
    pub header_repaired: bool,
    /// Wall-clock time of the whole recovery (scan + replay + reattach).
    pub replay_time: std::time::Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch(edits: Vec<EdgeEdit>) -> UpdateBatch {
        UpdateBatch::new(edits).expect("valid batch")
    }

    fn sample_batches() -> Vec<UpdateBatch> {
        vec![
            batch(vec![EdgeEdit::Insert { src: 0, dst: 1, weight: 1.5 }]),
            batch(vec![
                EdgeEdit::Delete { src: 2, dst: 3 },
                EdgeEdit::Reweight { src: 4, dst: 5, weight: 0.25 },
            ]),
        ]
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("kdash-journal-tests-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn frame_roundtrip_preserves_batches_bitwise() {
        for (i, b) in sample_batches().iter().enumerate() {
            let frame = encode_frame(7 + i as u64, b);
            let len = u32::from_le_bytes(fixed4(&frame[..4])) as usize;
            assert_eq!(frame.len(), 4 + len + 4);
            let (epoch, decoded) = decode_payload(&frame[4..4 + len]).expect("decode");
            assert_eq!(epoch, 7 + i as u64);
            assert_eq!(decoded.edits(), b.edits());
        }
    }

    #[test]
    fn create_append_scan_roundtrip() {
        let path = temp_path("roundtrip.journal");
        let mut journal = Journal::create(&path, 5).expect("create");
        journal.append_batches(&sample_batches(), 6).expect("append");
        assert_eq!(journal.records(), 2);
        assert_eq!(journal.last_epoch(), 7);

        let scan = Journal::scan_path(&path).expect("scan");
        assert!(scan.header_ok);
        assert_eq!(scan.checkpoint_epoch, Some(5));
        assert_eq!(scan.records, 2);
        assert_eq!(scan.first_epoch, Some(6));
        assert_eq!(scan.last_epoch, Some(7));
        assert_eq!(scan.edits, 3);
        assert!(scan.torn.is_none());
        assert_eq!(scan.good_bytes, scan.file_bytes);

        let (records, _) = Journal::read_records(&path).expect("read");
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].0, 6);
        assert_eq!(records[0].1.edits(), sample_batches()[0].edits());
    }

    #[test]
    fn append_rejects_epoch_gaps() {
        let path = temp_path("epoch-gap.journal");
        let mut journal = Journal::create(&path, 0).expect("create");
        let err = journal.append_batches(&sample_batches()[..1], 3).unwrap_err();
        assert!(matches!(err, JournalError::EpochMismatch { journal: 0, index: 3 }));
    }

    #[test]
    fn torn_tail_is_reported_and_healed_on_open() {
        let path = temp_path("torn.journal");
        let mut journal = Journal::create(&path, 0).expect("create");
        journal.append_batches(&sample_batches(), 1).expect("append");
        let good = std::fs::metadata(&path).expect("meta").len();
        // Simulate a crash mid-append: half a frame of garbage.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&[0x2a; 9]);
        std::fs::write(&path, &bytes).expect("write");

        let scan = Journal::scan_path(&path).expect("scan");
        assert_eq!(scan.records, 2);
        assert_eq!(scan.good_bytes, good);
        let torn = scan.torn.expect("torn tail detected");
        assert_eq!(torn.offset, good);

        let journal = Journal::open(&path).expect("open heals");
        assert_eq!(journal.records(), 2);
        assert_eq!(journal.last_epoch(), 2);
        assert_eq!(std::fs::metadata(&path).expect("meta").len(), good);
        let rescan = Journal::scan_path(&path).expect("rescan");
        assert!(rescan.torn.is_none());
    }

    #[test]
    fn corrupt_frame_crc_stops_the_scan() {
        let path = temp_path("crc.journal");
        let mut journal = Journal::create(&path, 0).expect("create");
        journal.append_batches(&sample_batches(), 1).expect("append");
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a bit in the first frame's payload.
        let at = HEADER_LEN as usize + 6;
        bytes[at] ^= 0x01;
        std::fs::write(&path, &bytes).expect("write");
        let scan = Journal::scan_path(&path).expect("scan");
        assert_eq!(scan.records, 0);
        assert_eq!(scan.torn.expect("torn").detail, "frame checksum mismatch");
    }

    #[test]
    fn torn_header_keeps_frames_and_repairs() {
        let path = temp_path("header.journal");
        let mut journal = Journal::create(&path, 3).expect("create");
        journal.append_batches(&sample_batches(), 4).expect("append");
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[15] ^= 0xff; // damage the checkpoint-epoch field
        std::fs::write(&path, &bytes).expect("write");

        let scan = Journal::scan_path(&path).expect("scan");
        assert!(!scan.header_ok);
        assert_eq!(scan.records, 2, "frames behind a torn header still scan");
        assert_eq!(scan.first_epoch, Some(4));

        let journal = Journal::open(&path).expect("open repairs header");
        assert_eq!(journal.checkpoint_epoch(), 3, "checkpoint restored from first frame");
        let rescan = Journal::scan_path(&path).expect("rescan");
        assert!(rescan.header_ok);
        assert_eq!(rescan.checkpoint_epoch, Some(3));
        assert!(rescan.torn.is_none());
    }

    #[test]
    fn non_journal_file_is_a_typed_error_not_a_repair() {
        let path = temp_path("not-a-journal");
        std::fs::write(&path, b"KDASHIDX this is an index, not a journal").expect("write");
        assert!(matches!(
            Journal::scan_path(&path),
            Err(JournalError::NotAJournal { .. })
        ));
        assert!(Journal::open(&path).is_err());
    }

    #[test]
    fn empty_file_is_torn_debris_not_an_error() {
        let path = temp_path("empty.journal");
        std::fs::write(&path, b"").expect("write");
        let scan = Journal::scan_path(&path).expect("scan");
        assert!(!scan.header_ok);
        assert!(scan.torn.is_some());
        assert_eq!(scan.records, 0);
        // Reopening writes a fresh epoch-0 header.
        let journal = Journal::open(&path).expect("open");
        assert_eq!(journal.last_epoch(), 0);
        assert!(Journal::scan_path(&path).expect("rescan").header_ok);
    }

    #[test]
    fn checkpoint_truncates_atomically_and_appends_continue() {
        let path = temp_path("checkpoint.journal");
        let mut journal = Journal::create(&path, 0).expect("create");
        journal.append_batches(&sample_batches(), 1).expect("append");
        journal.checkpoint(2).expect("checkpoint");
        assert_eq!(journal.records(), 0);
        assert_eq!(journal.checkpoint_epoch(), 2);
        let scan = Journal::scan_path(&path).expect("scan");
        assert_eq!(scan.records, 0);
        assert_eq!(scan.checkpoint_epoch, Some(2));

        // The renamed file accepts further appends.
        journal.append_batches(&sample_batches()[..1], 3).expect("append after checkpoint");
        let scan = Journal::scan_path(&path).expect("scan");
        assert_eq!(scan.records, 1);
        assert_eq!(scan.first_epoch, Some(3));
    }

    #[test]
    fn checkpoint_refuses_wrong_epoch() {
        let path = temp_path("checkpoint-epoch.journal");
        let mut journal = Journal::create(&path, 0).expect("create");
        journal.append_batches(&sample_batches(), 1).expect("append");
        assert!(matches!(
            journal.checkpoint(1).unwrap_err(),
            JournalError::EpochMismatch { journal: 2, index: 1 }
        ));
    }

    #[test]
    fn epoch_discontinuity_inside_frames_is_torn() {
        let path = temp_path("discontinuity.journal");
        let mut journal = Journal::create(&path, 0).expect("create");
        journal.append_batches(&sample_batches()[..1], 1).expect("append");
        // Hand-append a frame that skips epoch 2.
        let rogue = encode_frame(3, &sample_batches()[1]);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&rogue);
        std::fs::write(&path, &bytes).expect("write");
        let scan = Journal::scan_path(&path).expect("scan");
        assert_eq!(scan.records, 1);
        let torn = scan.torn.expect("torn");
        assert!(torn.detail.contains("epoch discontinuity"), "{}", torn.detail);
    }

    #[test]
    fn sidecar_path_appends_journal_suffix() {
        assert_eq!(
            Journal::sidecar_path("/tmp/x/index.kdash"),
            PathBuf::from("/tmp/x/index.kdash.journal")
        );
    }
}
