//! The incremental update engine.
//!
//! [`DynamicIndex`] wraps a built [`KdashIndex`] together with the live
//! LU factors of its system matrix and turns it into a mutable,
//! incrementally maintained structure: [`DynamicIndex::apply`] runs one
//! [`UpdateBatch`] through the reach-bounded pipeline
//!
//! ```text
//! edit graph → incremental refactorisation (dirty-W forward reach)
//!            → inverse reach analysis → re-solve dirty inverse columns
//!            → splice → estimator refresh
//! ```
//!
//! and commits the patched components atomically (the index is untouched
//! on any error). Every stage is timed and counted in the returned
//! [`UpdateReport`] — the dirty-column fractions are the observable that
//! makes the update-vs-rebuild speedups legible.
//!
//! The factorisation stage is itself reach-bounded
//! ([`kdash_sparse::refactor_columns_with`]): only factor columns in the
//! forward reach of the edited `W` columns through the left-looking
//! column-dependency DAG are re-eliminated, and the surviving columns
//! are spliced from the old factors bit-for-bit. This killed the one
//! full-`n` stage the engine had — previously ~96% of small-batch update
//! time went into refactorising all of `W` just to discover that a
//! handful of columns changed.
//!
//! [`DynamicIndex::apply_coalesced`] merges a queue of batches into one
//! pass: one merged dirty-`W` set, one incremental refactorisation, one
//! reach analysis, one re-solve — the per-pass overheads are paid once
//! instead of once per batch, while validation still checks each edit
//! against the sequentially edited graph (a delete in batch 3 of an edge
//! inserted in batch 1 validates, exactly as it would applied one by
//! one). [`DynamicIndex::predict`] runs the analysis stages alone and
//! reports the predicted dirty fractions without mutating anything.

use crate::journal::{Journal, JournalError, RecoveryReport};
use crate::{KdashError, Result, UpdateBatch};
use kdash_core::persist::save_atomic_with;
use kdash_core::{IndexPatch, KdashIndex};
use kdash_graph::{EdgeEdit, NodeId};
use kdash_sparse::{
    inverse_dirty_columns, refactor_candidates, refactor_columns_with, sparsify_columns_with,
    transition_matrix, w_matrix, Index, InvertOptions, LuFactors, ProximityStore, RowUpdate,
    Triangle,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Default auto-checkpoint threshold (journal records), for
/// [`DynamicIndex::auto_checkpoint`] callers that don't want to tune
/// it: ~16 journaled batches is the measured recovery crossover
/// (BENCH_PR9.json) where replaying the journal starts costing more
/// than loading a fresh snapshot.
pub const AUTO_CHECKPOINT_DEFAULT_RECORDS: u64 = 16;

/// What one applied batch did, stage by stage — the freshness audit
/// trail. All column counts are out of [`UpdateReport::num_columns`]
/// (= the node count), so `dirty_linv_columns as f64 / num_columns as
/// f64` is the dirty fraction the benchmarks report.
#[derive(Debug, Clone, Default)]
pub struct UpdateReport {
    /// Edits the batch carried (summed over all batches when coalesced).
    pub edits: usize,
    /// Update batches this pass represented: `1` for [`DynamicIndex::apply`],
    /// the queue length for [`DynamicIndex::apply_coalesced`]. The index's
    /// update epoch advances by exactly this much.
    pub batches: usize,
    /// Matrix dimension (columns per triangular factor).
    pub num_columns: usize,
    /// Transition-matrix columns the batch renormalised (distinct edited
    /// source nodes).
    pub dirty_w_columns: usize,
    /// Factor columns the incremental refactorisation re-eliminated —
    /// the dirty-`W` columns plus their forward reach through the
    /// column-dependency DAG. Everything outside this set was spliced
    /// from the old factors untouched.
    pub dirty_factor_columns_recomputed: usize,
    /// Columns of the factor `L` that changed under refactorisation.
    pub dirty_l_columns: usize,
    /// Columns of the factor `U` that changed under refactorisation.
    pub dirty_u_columns: usize,
    /// Columns of `L⁻¹` inside the Gilbert–Peierls reach of the dirty
    /// `L` columns — exactly the columns re-solved and spliced.
    pub dirty_linv_columns: usize,
    /// Columns of `U⁻¹` inside the reach of the dirty `U` columns.
    pub dirty_uinv_columns: usize,
    /// Rows of the stored `U⁻¹` re-encoded by the splice (rows holding
    /// entries in a dirty column, before or after the update).
    pub dirty_uinv_rows: usize,
    /// Stored entries the dirty-column re-solves produced (the numeric
    /// work actually paid, against `nnz(L⁻¹) + nnz(U⁻¹)` for a rebuild).
    pub resolved_nnz: usize,
    /// Graph edit + validation time.
    pub graph_time: Duration,
    /// Transition assembly + incremental LU refactorisation time (the
    /// whole stage; [`Self::refactor_time`] and
    /// [`Self::factor_splice_time`] subdivide its LU part).
    pub factorization_time: Duration,
    /// Dependency analysis + dirty-column re-elimination inside the
    /// factorisation stage. A *subdivision* of
    /// [`Self::factorization_time`] — not added again by
    /// [`Self::total_time`].
    pub refactor_time: Duration,
    /// Splicing the recomputed factor columns into the old `L`/`U`.
    /// Also a subdivision of [`Self::factorization_time`].
    pub factor_splice_time: Duration,
    /// Factor column diff time. Always zero since the incremental
    /// refactorisation: changed column sets fall out of the
    /// re-elimination itself instead of a separate full-factor diff.
    /// Kept so longitudinal benchmark series keep their shape.
    pub diff_time: Duration,
    /// Reach-analysis time (both triangles).
    pub reach_time: Duration,
    /// Dirty-column re-solve time (the work-stealing pool).
    pub resolve_time: Duration,
    /// Splice time (`L⁻¹` columns + `U⁻¹` rows + policy refresh).
    pub splice_time: Duration,
    /// Estimator-refresh + commit time.
    pub estimator_time: Duration,
    /// Write-ahead journal append + fsync time (zero when journaled
    /// mode is off) — the durability tax the `recovery_time` bench
    /// series measures.
    pub journal_time: Duration,
    /// True when this apply tripped the auto-checkpoint policy
    /// ([`DynamicIndex::auto_checkpoint`]): the index was snapshotted
    /// and the journal truncated after the commit.
    pub checkpointed: bool,
    /// Auto-checkpoint time (atomic snapshot save + journal
    /// truncation); zero unless [`Self::checkpointed`].
    pub checkpoint_time: Duration,
}

impl UpdateReport {
    /// Total wall-clock of the batch.
    pub fn total_time(&self) -> Duration {
        self.graph_time
            + self.factorization_time
            + self.diff_time
            + self.reach_time
            + self.resolve_time
            + self.splice_time
            + self.estimator_time
            + self.journal_time
            + self.checkpoint_time
    }

    /// Fraction of `L⁻¹` columns the update had to re-solve.
    pub fn linv_dirty_fraction(&self) -> f64 {
        self.dirty_linv_columns as f64 / self.num_columns.max(1) as f64
    }

    /// Fraction of `U⁻¹` columns the update had to re-solve.
    pub fn uinv_dirty_fraction(&self) -> f64 {
        self.dirty_uinv_columns as f64 / self.num_columns.max(1) as f64
    }

    /// Fraction of factor columns the refactorisation re-eliminated.
    pub fn factor_recompute_fraction(&self) -> f64 {
        self.dirty_factor_columns_recomputed as f64 / self.num_columns.max(1) as f64
    }
}

/// What [`DynamicIndex::predict`] reports: the analysis-stage footprint
/// of a (coalesced) update, computed without mutating the index. The
/// factor count is the *scheduled candidate* set — a provable superset
/// of what an actual apply would recompute; the inverse counts use the
/// current factor patterns and upper-bound the real dirty sets whenever
/// the update leaves those patterns unchanged.
#[derive(Debug, Clone, Default)]
pub struct UpdatePrediction {
    /// Edits across all predicted batches.
    pub edits: usize,
    /// Batches the prediction coalesced.
    pub batches: usize,
    /// Matrix dimension (columns per triangular factor).
    pub num_columns: usize,
    /// Transition-matrix columns the edits renormalise.
    pub dirty_w_columns: usize,
    /// Factor columns the incremental refactorisation would schedule.
    pub candidate_factor_columns: usize,
    /// `L⁻¹` columns predicted inside the dirty reach.
    pub predicted_linv_columns: usize,
    /// `U⁻¹` columns predicted inside the dirty reach.
    pub predicted_uinv_columns: usize,
}

impl UpdatePrediction {
    /// Fraction of `W` columns the edits touch.
    pub fn w_fraction(&self) -> f64 {
        self.dirty_w_columns as f64 / self.num_columns.max(1) as f64
    }

    /// Fraction of factor columns scheduled for re-elimination.
    pub fn factor_fraction(&self) -> f64 {
        self.candidate_factor_columns as f64 / self.num_columns.max(1) as f64
    }

    /// Fraction of `L⁻¹` columns predicted dirty.
    pub fn linv_fraction(&self) -> f64 {
        self.predicted_linv_columns as f64 / self.num_columns.max(1) as f64
    }

    /// Fraction of `U⁻¹` columns predicted dirty.
    pub fn uinv_fraction(&self) -> f64 {
        self.predicted_uinv_columns as f64 / self.num_columns.max(1) as f64
    }
}

/// A [`KdashIndex`] plus the live LU factors of its system matrix —
/// everything needed to patch the stored inverses in place. See the
/// crate docs for the exactness argument.
#[derive(Debug)]
pub struct DynamicIndex {
    index: KdashIndex,
    /// Factors of `W` for the *current* graph — but only when the index
    /// does not already keep its own copy
    /// ([`kdash_core::IndexOptions::keep_factors`]): factor state is
    /// `O(nnz(L) + nnz(U))`, so holding it twice would double a large
    /// resident allocation for nothing. [`Self::current_factors`] reads
    /// whichever copy exists.
    factors: Option<LuFactors>,
    /// Worker threads for the dirty-column re-solves (`0` = all cores).
    threads: usize,
    /// Run the full structural audit after every committed batch.
    verify_after_apply: bool,
    /// The write-ahead journal, when journaled mode is on
    /// ([`Self::journaled`]).
    journal: Option<Journal>,
    /// Auto-checkpoint policy: snapshot path + journal record
    /// threshold ([`Self::auto_checkpoint`]); inert without a journal.
    auto_checkpoint: Option<(PathBuf, u64)>,
}

/// Cloning duplicates the in-memory engine state but **detaches the
/// journal**: two engines appending interleaved epochs to one journal
/// file could not both be telling the truth about durability. The clone
/// is a plain un-journaled engine; attach a separate journal explicitly
/// if the copy needs one.
impl Clone for DynamicIndex {
    fn clone(&self) -> Self {
        DynamicIndex {
            index: self.index.clone(),
            factors: self.factors.clone(),
            threads: self.threads,
            verify_after_apply: self.verify_after_apply,
            journal: None,
            // The policy rides the journal: detached with it (two
            // engines checkpointing to one snapshot path would race).
            auto_checkpoint: None,
        }
    }
}

impl DynamicIndex {
    /// Attaches the update engine to an index. If the index kept its LU
    /// factors ([`kdash_core::IndexOptions::keep_factors`]) they are
    /// used in place; otherwise `W` is refactorised once — the cheap
    /// stage, a few percent of a full build — so loaded (persisted)
    /// indexes attach without a rebuild.
    ///
    /// Attachment then **probes** the stored inverses against the
    /// factors: a few columns are re-solved and bit-compared. This
    /// catches the one silent-corruption hazard of the format history —
    /// a pre-v3 file built with [`DanglingPolicy::SelfLoop`] loads with
    /// the default `Keep` policy (v1/v2 never recorded it), and updating
    /// under the wrong policy would splice mixed-normalisation columns.
    /// The probe always includes dangling nodes (the only nodes whose
    /// transition column the policies disagree on), so a mismatched
    /// policy fails attachment with a typed error instead of serving
    /// wrong proximities later.
    ///
    /// [`DanglingPolicy::SelfLoop`]: kdash_sparse::DanglingPolicy::SelfLoop
    pub fn new(index: KdashIndex) -> Result<DynamicIndex> {
        let factors = match index.factors() {
            Some(_) => None, // read the index's copy, never duplicate it
            None => {
                let a = transition_matrix(index.permuted_graph(), index.dangling_policy());
                let w = w_matrix(&a, index.restart_probability())?;
                Some(kdash_sparse::sparse_lu(&w)?)
            }
        };
        let engine = DynamicIndex {
            index,
            factors,
            threads: 1,
            verify_after_apply: false,
            journal: None,
            auto_checkpoint: None,
        };
        engine.probe_consistency()?;
        Ok(engine)
    }

    /// Bit-compares a handful of re-solved inverse columns against the
    /// stored arrays (see [`DynamicIndex::new`]). Probe set: up to four
    /// dangling nodes — where a mismatched dangling policy *must* show
    /// (their `W` columns differ at the diagonal, so the `U` pivots and
    /// with them `1/U_qq` differ by construction) — plus the first and
    /// last column as general corruption canaries.
    fn probe_consistency(&self) -> Result<()> {
        let n = self.index.num_nodes();
        if n == 0 {
            return Ok(());
        }
        let graph = self.index.permuted_graph();
        let mut probes: Vec<Index> = (0..n as Index)
            .filter(|&v| graph.out_degree(v) == 0)
            .take(4)
            .collect();
        probes.push(0);
        probes.push(n as Index - 1);
        probes.sort_unstable();
        probes.dedup();
        let factors = self.current_factors();
        // The stored columns carry the index's drop tolerance, so the
        // probe solves must truncate identically — a dense solve against
        // a sparsified store would flag every truncated column as
        // corruption. With ε = 0 these are bit-for-bit the plain solves.
        let eps = self.index.drop_tolerance();
        let mut ws = kdash_sparse::SolveWorkspace::new(n);
        let (mut xi, mut xv) = (Vec::new(), Vec::new());
        let mismatch = |q: Index| {
            KdashError::Sparse(kdash_sparse::SparseError::Malformed(format!(
                "stored inverses disagree with the refactorised W at column {q} — was this \
                 index built under a different dangling policy and saved in a pre-v3 format \
                 (which did not record the policy)? Rebuild it, or re-save it under the \
                 current format before attaching the update engine"
            )))
        };
        for &q in &probes {
            // L⁻¹ column q, bit-for-bit.
            ws.solve_unit_truncated(&factors.l, Triangle::Lower, true, q, eps, &mut xi, &mut xv)?;
            let (rows, vals) = self.index.linv_cols().col(q);
            if xi != rows || xv.iter().zip(vals).any(|(a, b)| a.to_bits() != b.to_bits()) {
                return Err(mismatch(q));
            }
            // U⁻¹ diagonal entry of column q (= first stored entry of the
            // upper-triangular row q). The diagonal is the protected seed,
            // so truncation cannot touch it.
            ws.solve_unit_truncated(&factors.u, Triangle::Upper, false, q, eps, &mut xi, &mut xv)?;
            let solved_diag = xi
                .iter()
                .position(|&r| r == q)
                .map(|at| xv[at])
                .ok_or_else(|| mismatch(q))?;
            // Diagonal of stored row q via a single-element merge join —
            // the row is upper triangular, so this reads one entry.
            let stored_diag = self.index.uinv_rows().row_dot_sparse(q, &[q], &[1.0]);
            if stored_diag == 0.0 || solved_diag.to_bits() != stored_diag.to_bits() {
                return Err(mismatch(q));
            }
        }
        Ok(())
    }

    /// The factors of the current graph: the index's kept copy when it
    /// has one, the engine's otherwise.
    fn current_factors(&self) -> &LuFactors {
        self.index
            .factors()
            .or(self.factors.as_ref())
            .expect("exactly one factor copy exists at all times")
    }

    /// Worker threads for the dirty-column re-solves: `0` = one per
    /// available core, `1` (default) = sequential. The patched arrays
    /// are bit-identical at any thread count (same contract as the
    /// build pipeline's inversion stage).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Opt into running the full structural audit
    /// ([`kdash_core::IndexAudit`]) after every committed batch:
    /// triangularity of the spliced inverses, blocked-encoding decode
    /// contract, policy-table and estimator coherence. The audit runs
    /// *after* the patch is installed — a finding means the committed
    /// state is damaged and [`apply`](Self::apply) returns
    /// [`kdash_core::KdashError::AuditFailed`]; treat the index as
    /// suspect and rebuild or reload it. Costs one full pass over the
    /// stored arrays per batch (off by default).
    pub fn verify_after_apply(mut self, verify: bool) -> Self {
        self.verify_after_apply = verify;
        self
    }

    /// Turns on journaled mode: every subsequent [`apply`](Self::apply)
    /// / [`apply_coalesced`](Self::apply_coalesced) appends its batches
    /// to `journal` and fsyncs **before** installing the patch, so an
    /// acknowledged apply is durable by definition (see the
    /// [`journal`](crate::journal) module for the full contract).
    ///
    /// The journal's tail epoch must equal the index's current epoch —
    /// attaching a journal that is ahead (unreplayed records) or behind
    /// (stale truncation) would let acknowledgement and durability
    /// disagree, so it fails with
    /// [`JournalError::EpochMismatch`]; run [`Self::recover`] instead.
    pub fn journaled(mut self, journal: Journal) -> std::result::Result<Self, JournalError> {
        if journal.last_epoch() != self.index.update_epoch() {
            return Err(JournalError::EpochMismatch {
                journal: journal.last_epoch(),
                index: self.index.update_epoch(),
            });
        }
        self.journal = Some(journal);
        Ok(self)
    }

    /// The attached journal, when journaled mode is on.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    /// Turns on the auto-checkpoint policy: after any journaled apply
    /// that leaves **more than** `max_records` records in the journal,
    /// the engine runs [`checkpoint`](Self::checkpoint) to `path`
    /// automatically, so serving-mode journals (and with them, crash
    /// recovery's replay time) stay bounded.
    /// [`AUTO_CHECKPOINT_DEFAULT_RECORDS`] is the measured default.
    ///
    /// The checkpoint runs strictly *after* the commit: a checkpoint
    /// failure surfaces as [`kdash_core::KdashError::JournalFailed`],
    /// but the apply it rode on is already installed and durable (the
    /// journal keeps its records; the next apply or an explicit
    /// [`checkpoint`](Self::checkpoint) retries). Inert without a
    /// journal, and detached by `clone()` along with it.
    pub fn auto_checkpoint<P: Into<PathBuf>>(mut self, path: P, max_records: u64) -> Self {
        self.auto_checkpoint = Some((path.into(), max_records));
        self
    }

    /// Checkpoints journaled state: persists the index to `path` via
    /// the atomic save protocol, then truncates the journal (itself
    /// atomically — rename of a fresh header-only journal). A crash
    /// between the two steps leaves snapshot *and* records; recovery
    /// skips the already-contained records, so nothing is applied
    /// twice. Requires journaled mode
    /// ([`JournalError::NotJournaled`] otherwise).
    pub fn checkpoint<P: AsRef<Path>>(&mut self, path: P) -> std::result::Result<(), JournalError> {
        let journal = self.journal.as_mut().ok_or(JournalError::NotJournaled)?;
        let faults = std::sync::Arc::clone(journal.fault_injector());
        save_atomic_with(&self.index, path, faults.as_ref())?;
        journal.checkpoint(self.index.update_epoch())
    }

    /// Deterministic crash recovery: rebuilds the journaled engine from
    /// a snapshot plus its sidecar journal.
    ///
    /// Scans the journal tolerating a torn tail (a crash mid-append
    /// truncates at the first bad frame — typed handling, never a
    /// panic), replays every intact record above the snapshot's epoch
    /// in **one coalesced pass** — bit-identical to having applied them
    /// live, the property `tests/failure_injection.rs` pins with
    /// `check_index_bit_identity` — and reattaches the (healed) journal
    /// for further journaled applies. Records at or below the
    /// snapshot's epoch are skipped (a crash between snapshot save and
    /// journal truncation leaves both; replay is idempotent), and a
    /// journal strictly *behind* the snapshot (updates ran without
    /// journaling) is resynced by truncating it at the snapshot epoch.
    /// Surviving records that *skip* epochs above the snapshot mean
    /// acknowledged history was lost out-of-band:
    /// [`JournalError::EpochGap`], never a silent skip.
    pub fn recover<P: AsRef<Path>>(
        index: KdashIndex,
        journal_path: P,
    ) -> std::result::Result<(DynamicIndex, RecoveryReport), JournalError> {
        Self::recover_with(index, journal_path, std::sync::Arc::new(kdash_core::NoFaults))
    }

    /// [`Self::recover`] with an injectable fault layer for the
    /// reattached journal (see [`kdash_core::fault`]). Recovery's own
    /// reads are not fault-injected — the sweep injects faults while
    /// *writing* state and asserts recovery afterwards.
    pub fn recover_with<P: AsRef<Path>>(
        index: KdashIndex,
        journal_path: P,
        faults: std::sync::Arc<dyn kdash_core::FaultInjector>,
    ) -> std::result::Result<(DynamicIndex, RecoveryReport), JournalError> {
        let t = Instant::now();
        let snapshot_epoch = index.update_epoch();
        let (records, scan) = Journal::read_records(journal_path.as_ref())?;

        let mut skipped = 0usize;
        let mut replay: Vec<UpdateBatch> = Vec::new();
        for (epoch, batch) in records {
            if epoch <= snapshot_epoch {
                skipped += 1;
            } else {
                if replay.is_empty() && epoch != snapshot_epoch + 1 {
                    return Err(JournalError::EpochGap {
                        snapshot: snapshot_epoch,
                        first_record: epoch,
                    });
                }
                replay.push(batch);
            }
        }

        let mut engine = DynamicIndex::new(index)?;
        let replayed_batches = replay.len();
        let replayed_edits = replay.iter().map(|b| b.len()).sum();
        if !replay.is_empty() {
            engine.apply_coalesced(&replay)?;
        }

        // Reattach for further journaled applies; opening heals the
        // torn tail and a damaged header. A journal strictly behind the
        // recovered epoch (snapshot newer than its sidecar) restarts
        // from the snapshot.
        let mut journal = Journal::open_with(journal_path.as_ref(), faults)?;
        if journal.last_epoch() < engine.index.update_epoch() {
            journal.checkpoint(engine.index.update_epoch())?;
        }
        let report = RecoveryReport {
            snapshot_epoch,
            final_epoch: engine.index.update_epoch(),
            replayed_batches,
            replayed_edits,
            skipped_records: skipped,
            torn_tail: scan
                .torn
                .as_ref()
                .map(|t| format!("{} (byte {})", t.detail, t.offset)),
            header_repaired: !scan.header_ok,
            replay_time: t.elapsed(),
        };
        let engine = engine.journaled(journal)?;
        Ok((engine, report))
    }

    /// The maintained index.
    pub fn index(&self) -> &KdashIndex {
        &self.index
    }

    /// Consumes the engine, returning the index (e.g. to persist it).
    pub fn into_index(self) -> KdashIndex {
        self.index
    }

    /// Applies one batch: validates every edit against the sequentially
    /// edited graph (original node ids in every error), patches the
    /// index, bumps its update epoch, and reports what was touched. On
    /// any error the index is unchanged.
    pub fn apply(&mut self, batch: &UpdateBatch) -> Result<UpdateReport> {
        self.apply_batches(std::slice::from_ref(batch))
    }

    /// Applies a queue of batches in one coalesced pass: the merged edit
    /// list is validated against the sequentially edited graph exactly as
    /// `batches.iter().map(|b| engine.apply(b))` would validate it, but
    /// the pipeline runs **once** — one merged dirty-`W` set, one
    /// incremental refactorisation, one reach analysis, one re-solve,
    /// one splice. The committed index is bit-identical to the
    /// one-by-one sequence and the update epoch advances by
    /// `batches.len()`, so coalescing is observationally equivalent —
    /// with one deliberate exception: application is all-or-nothing. An
    /// invalid edit in *any* batch fails the whole pass with the index
    /// untouched, where the sequential loop would have committed the
    /// batches preceding the bad one.
    ///
    /// Errors with [`kdash_core::KdashError::Sparse`] (malformed) on an
    /// empty queue — an accidental no-op epoch bump would corrupt the
    /// freshness audit trail.
    pub fn apply_coalesced(&mut self, batches: &[UpdateBatch]) -> Result<UpdateReport> {
        if batches.is_empty() {
            return Err(KdashError::Sparse(kdash_sparse::SparseError::Malformed(
                "apply_coalesced needs at least one batch".into(),
            )));
        }
        self.apply_batches(batches)
    }

    /// Runs the analysis stages of a (coalesced) update without touching
    /// the index: validates the edits, assembles the edited `W`, and
    /// reports the dirty-`W` columns, the factor columns the incremental
    /// refactorisation would *schedule* (the pattern-reach candidate
    /// superset — the recomputed count of a real apply is at most this),
    /// and the inverse columns inside their reach. The inverse counts
    /// are the reach of the *candidate* set over the **current** factor
    /// patterns: an upper bound whenever the update leaves factor
    /// sparsity patterns unchanged (reweights; most small edits), an
    /// estimate otherwise.
    ///
    /// Multiple batches are predicted as one coalesced pass. Errors on
    /// an empty queue, and on invalid edits exactly as
    /// [`Self::apply_coalesced`] would.
    pub fn predict(&self, batches: &[UpdateBatch]) -> Result<UpdatePrediction> {
        if batches.is_empty() {
            return Err(KdashError::Sparse(kdash_sparse::SparseError::Malformed(
                "predict needs at least one batch".into(),
            )));
        }
        let mut overlay = HashMap::new();
        let mut permuted_edits = Vec::new();
        for batch in batches {
            permuted_edits.extend(self.validate_and_permute(&mut overlay, batch.edits())?);
        }
        let new_graph = self.index.permuted_graph().apply_edits(&permuted_edits)?;
        let mut dirty_w: Vec<Index> = permuted_edits.iter().map(|e| e.src()).collect();
        dirty_w.sort_unstable();
        dirty_w.dedup();
        let a = transition_matrix(&new_graph, self.index.dangling_policy());
        let w = w_matrix(&a, self.index.restart_probability())?;
        let old = self.current_factors();
        let candidates = refactor_candidates(&old.l, &w, &dirty_w);
        let predicted_linv = inverse_dirty_columns(&old.l, &candidates);
        let predicted_uinv = inverse_dirty_columns(&old.u, &candidates);
        Ok(UpdatePrediction {
            edits: permuted_edits.len(),
            batches: batches.len(),
            num_columns: self.index.num_nodes(),
            dirty_w_columns: dirty_w.len(),
            candidate_factor_columns: candidates.len(),
            predicted_linv_columns: predicted_linv.len(),
            predicted_uinv_columns: predicted_uinv.len(),
        })
    }

    /// The shared pipeline behind [`Self::apply`] (one batch) and
    /// [`Self::apply_coalesced`] (a merged queue).
    fn apply_batches(&mut self, batches: &[UpdateBatch]) -> Result<UpdateReport> {
        let mut report = UpdateReport {
            edits: batches.iter().map(|b| b.len()).sum(),
            batches: batches.len(),
            num_columns: self.index.num_nodes(),
            ..Default::default()
        };

        // Stage 1 — validate in user id space against the *running*
        // edge-presence overlay (so batch k sees the edits of batches
        // 0..k, same as applying them one by one), map to permuted ids,
        // edit the permuted graph. (An edited original graph permuted by
        // the frozen order equals the edited permuted graph, so the
        // rebuild reference in the equivalence suite compares apples to
        // apples.)
        let t = Instant::now();
        let mut overlay = HashMap::new();
        let mut permuted_edits = Vec::new();
        for batch in batches {
            permuted_edits.extend(self.validate_and_permute(&mut overlay, batch.edits())?);
        }
        let new_graph = self.index.permuted_graph().apply_edits(&permuted_edits)?;
        let mut dirty_w: Vec<Index> = permuted_edits.iter().map(|e| e.src()).collect();
        dirty_w.sort_unstable();
        dirty_w.dedup();
        report.dirty_w_columns = dirty_w.len();
        report.graph_time = t.elapsed();

        // Stage 2 — incremental refactorisation: only factor columns in
        // the forward reach of the dirty W columns through the
        // column-dependency DAG are re-eliminated; the rest are spliced
        // from the current factors bit-for-bit. The changed column sets
        // fall out of the re-elimination directly, so the old bit-level
        // full-factor diff stage is gone (diff_time stays zero).
        let t = Instant::now();
        let a = transition_matrix(&new_graph, self.index.dangling_policy());
        let w = w_matrix(&a, self.index.restart_probability())?;
        let (new_factors, refactor) = refactor_columns_with(
            self.current_factors(),
            &w,
            &dirty_w,
            InvertOptions { threads: self.threads },
        )?;
        report.factorization_time = t.elapsed();
        report.dirty_factor_columns_recomputed = refactor.recomputed_columns;
        report.refactor_time = refactor.analysis_time + refactor.solve_time;
        report.factor_splice_time = refactor.splice_time;
        let dirty_l = refactor.changed_l_columns;
        let dirty_u = refactor.changed_u_columns;
        report.dirty_l_columns = dirty_l.len();
        report.dirty_u_columns = dirty_u.len();

        // Stage 3 — reach analysis: the exact dirty inverse column sets.
        let t = Instant::now();
        let dirty_linv = inverse_dirty_columns(&new_factors.l, &dirty_l);
        let dirty_uinv = inverse_dirty_columns(&new_factors.u, &dirty_u);
        report.dirty_linv_columns = dirty_linv.len();
        report.dirty_uinv_columns = dirty_uinv.len();
        report.reach_time = t.elapsed();

        // Stage 4 — re-solve only the dirty inverse columns, on the same
        // per-column solves (hence the same bits) the build pipeline runs,
        // under the index's drop tolerance so sparsified stores stay
        // sparsified (ε = 0 delegates to the plain dense solves).
        let t = Instant::now();
        let opts = InvertOptions { threads: self.threads };
        let eps = self.index.drop_tolerance();
        let linv_sparsified =
            sparsify_columns_with(&new_factors.l, Triangle::Lower, true, &dirty_linv, eps, opts)?;
        let uinv_sparsified =
            sparsify_columns_with(&new_factors.u, Triangle::Upper, false, &dirty_uinv, eps, opts)?;
        let linv_updates = linv_sparsified.updates;
        let uinv_updates = uinv_sparsified.updates;
        report.resolved_nnz = linv_updates.iter().chain(&uinv_updates).map(|u| u.rows.len()).sum();
        report.resolve_time = t.elapsed();

        // Stage 5 — splice. L⁻¹ is column-major storage, so the solved
        // columns drop straight in. U⁻¹ is stored row-major behind the
        // ProximityStore: the solved columns are scattered into per-row
        // updates, merged with each dirty row's surviving entries, and
        // spliced with per-row blocked re-encoding + RowStat refresh.
        let t = Instant::now();
        let new_linv = self.index.linv_cols().splice_columns(&linv_updates)?;
        let row_updates = uinv_row_updates(self.index.uinv_rows(), &dirty_uinv, &uinv_updates);
        report.dirty_uinv_rows = row_updates.len();
        let new_uinv = self.index.uinv_rows().splice_rows(&row_updates)?;
        report.splice_time = t.elapsed();

        // Stage 6 — estimator refresh on the dirty transition columns
        // only, then the atomic commit (which advances the update epoch
        // by the number of batches this pass represented).
        let t = Instant::now();
        let (a_col_max_old, _, c_prime_old) = self.index.estimator_constants();
        let mut a_col_max = a_col_max_old.to_vec();
        let mut c_prime = c_prime_old.to_vec();
        let c = self.index.restart_probability();
        for &j in &dirty_w {
            a_col_max[j as usize] = a.col(j).1.iter().copied().fold(0.0f64, f64::max);
            let a_jj = a.get(j, j).unwrap_or(0.0);
            c_prime[j as usize] = (1.0 - c) / (1.0 - a_jj + c * a_jj);
        }
        let a_max = a_col_max.iter().copied().fold(0.0f64, f64::max);
        let (nnz_l, nnz_u) = (new_factors.l.nnz(), new_factors.u.nnz());
        // Whichever side held the factor state keeps holding it — the
        // fresh factors move (never clone) into the index's slot when it
        // kept factors, or into the engine's otherwise.
        let (patch_factors, engine_factors) = if self.index.factors().is_some() {
            (Some(new_factors), None)
        } else {
            (None, Some(new_factors))
        };
        // Per-column dropped ℓ₁ masses: carry the old vectors forward and
        // overwrite just the re-solved columns with their fresh masses.
        let (old_linv_dropped, old_uinv_dropped) = self.index.dropped_masses();
        let mut linv_dropped = old_linv_dropped.to_vec();
        for (upd, &mass) in linv_updates.iter().zip(&linv_sparsified.dropped) {
            linv_dropped[upd.col as usize] = mass;
        }
        let mut uinv_dropped = old_uinv_dropped.to_vec();
        for (upd, &mass) in uinv_updates.iter().zip(&uinv_sparsified.dropped) {
            uinv_dropped[upd.col as usize] = mass;
        }
        let patch = IndexPatch {
            graph: new_graph,
            linv: new_linv,
            uinv: new_uinv,
            a_col_max,
            a_max,
            c_prime,
            factors: patch_factors,
            linv_dropped,
            uinv_dropped,
            nnz_l,
            nnz_u,
            epochs: batches.len() as u64,
        };
        report.estimator_time = t.elapsed();
        // Write-ahead: the batches become durable (appended + fsynced)
        // strictly before the patch is installed. On journal failure
        // the patch is dropped and the index stays at its old epoch —
        // acknowledgement and durability cannot disagree. (If the
        // install below were ever to fail, the journal would be ahead
        // of the index; recovery replays the surplus records, so even
        // that window converges to the correct state.)
        if let Some(journal) = self.journal.as_mut() {
            let t = Instant::now();
            journal
                .append_batches(batches, self.index.update_epoch() + 1)
                .map_err(|e| KdashError::JournalFailed { detail: e.to_string() })?;
            report.journal_time = t.elapsed();
        }
        let t = Instant::now();
        self.index.install_patch(patch)?;
        self.factors = engine_factors;
        report.estimator_time += t.elapsed();
        if self.verify_after_apply {
            kdash_core::IndexAudit::run_with_factors(&self.index, self.factors.as_ref())
                .into_result()?;
        }
        // Auto-checkpoint policy: bound journal growth (and with it,
        // recovery replay time) once the record count passes the
        // threshold. Strictly after the commit — on checkpoint failure
        // the apply is already installed and durable, the journal keeps
        // its records, and the error says exactly that.
        if let Some((path, max_records)) = self.auto_checkpoint.clone() {
            if self.journal.as_ref().is_some_and(|j| j.records() > max_records) {
                let t = Instant::now();
                self.checkpoint(&path).map_err(|e| KdashError::JournalFailed {
                    detail: format!(
                        "auto-checkpoint to {} failed after a committed apply (the update \
                         itself is installed and durable; the journal retains its records): {e}",
                        path.display()
                    ),
                })?;
                report.checkpoint_time = t.elapsed();
                report.checkpointed = true;
            }
        }
        Ok(report)
    }

    /// Validates edits against the sequentially edited graph, reporting
    /// errors in *original* node ids, and returns them mapped into the
    /// index's permuted id space. `overlay` is the edge-presence overlay
    /// over all edits validated so far, keyed by the *permuted* pair
    /// (what the graph is indexed by) — callers pass one overlay per
    /// logical pass, so a coalesced queue validates each batch against
    /// the graph as edited by its predecessors.
    fn validate_and_permute(
        &self,
        overlay: &mut HashMap<(NodeId, NodeId), bool>,
        edits: &[EdgeEdit],
    ) -> Result<Vec<EdgeEdit>> {
        let n = self.index.num_nodes();
        let perm = self.index.permutation();
        let graph = self.index.permuted_graph();
        let mut permuted = Vec::with_capacity(edits.len());
        for edit in edits {
            let (src, dst) = (edit.src(), edit.dst());
            for node in [src, dst] {
                if (node as usize) >= n {
                    return Err(KdashError::NodeOutOfBounds { node, num_nodes: n });
                }
            }
            let key = (perm.new_of(src), perm.new_of(dst));
            let present =
                *overlay.entry(key).or_insert_with(|| graph.has_edge(key.0, key.1));
            match edit {
                EdgeEdit::Insert { weight, .. } => {
                    if present {
                        return Err(KdashError::Graph(
                            kdash_graph::GraphError::DuplicateEdge { src, dst },
                        ));
                    }
                    if !(weight.is_finite() && *weight > 0.0) {
                        return Err(KdashError::Graph(
                            kdash_graph::GraphError::InvalidWeight { src, dst, weight: *weight },
                        ));
                    }
                    overlay.insert(key, true);
                }
                EdgeEdit::Delete { .. } => {
                    if !present {
                        return Err(KdashError::Graph(kdash_graph::GraphError::EdgeNotFound {
                            src,
                            dst,
                        }));
                    }
                    overlay.insert(key, false);
                }
                EdgeEdit::Reweight { weight, .. } => {
                    if !present {
                        return Err(KdashError::Graph(kdash_graph::GraphError::EdgeNotFound {
                            src,
                            dst,
                        }));
                    }
                    if !(weight.is_finite() && *weight > 0.0) {
                        return Err(KdashError::Graph(
                            kdash_graph::GraphError::InvalidWeight { src, dst, weight: *weight },
                        ));
                    }
                }
            }
            permuted.push(edit.map_endpoints(|v| perm.new_of(v)));
        }
        Ok(permuted)
    }
}

/// Builds the per-row replacement set for the stored `U⁻¹` from the
/// re-solved dirty columns: a row is dirty iff it holds an entry in a
/// dirty column before or after the update; its new content is its
/// surviving clean-column entries merged (by column) with the re-solved
/// entries. Both sides are sorted and live in disjoint column sets, so
/// the merge is a linear zip — and the result is exactly the row a full
/// `U⁻¹` rebuild would store.
fn uinv_row_updates(
    store: &ProximityStore,
    dirty_cols: &[Index],
    solved: &[kdash_sparse::ColumnUpdate],
) -> Vec<RowUpdate> {
    let n = store.nrows();
    if dirty_cols.is_empty() {
        return Vec::new();
    }
    let mut dirty_flag = vec![false; store.ncols()];
    for &c in dirty_cols {
        dirty_flag[c as usize] = true;
    }
    let (min_dirty, max_dirty) =
        (*dirty_cols.first().expect("non-empty"), *dirty_cols.last().expect("non-empty"));

    // New entries bucketed by row. Columns are processed in ascending
    // order, so each bucket is ascending in column.
    let mut new_by_row: HashMap<Index, Vec<(Index, f64)>> = HashMap::new();
    for u in solved {
        for (&r, &v) in u.rows.iter().zip(&u.vals) {
            new_by_row.entry(r).or_default().push((u.col, v));
        }
    }

    // Rows with old entries in a dirty column. The row-stat span check
    // skips most clean rows without decoding them.
    let mut affected: Vec<Index> = new_by_row.keys().copied().collect();
    let mut decode_scratch: Vec<Index> = Vec::with_capacity(store.max_row_nnz());
    for r in 0..n as Index {
        let stat = store.row_stat(r);
        if stat.nnz == 0 || stat.last < min_dirty || stat.first > max_dirty {
            continue;
        }
        let (cols, _) = row_view(store, r, &mut decode_scratch);
        if cols.iter().any(|&c| dirty_flag[c as usize]) {
            affected.push(r);
        }
    }
    affected.sort_unstable();
    affected.dedup();

    affected
        .into_iter()
        .map(|r| {
            let (cols, vals) = row_view(store, r, &mut decode_scratch);
            let kept: Vec<(Index, f64)> = cols
                .iter()
                .zip(vals)
                .filter(|(&c, _)| !dirty_flag[c as usize])
                .map(|(&c, &v)| (c, v))
                .collect();
            let added = new_by_row.remove(&r).unwrap_or_default();
            // Sorted merge of two column-disjoint runs.
            let mut merged_cols = Vec::with_capacity(kept.len() + added.len());
            let mut merged_vals = Vec::with_capacity(kept.len() + added.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < kept.len() || j < added.len() {
                let take_kept = match (kept.get(i), added.get(j)) {
                    (Some(&(ck, _)), Some(&(ca, _))) => ck < ca,
                    (Some(_), None) => true,
                    _ => false,
                };
                let (c, v) = if take_kept {
                    i += 1;
                    kept[i - 1]
                } else {
                    j += 1;
                    added[j - 1]
                };
                merged_cols.push(c);
                merged_vals.push(v);
            }
            RowUpdate { row: r, cols: merged_cols, vals: merged_vals }
        })
        .collect()
}

/// A row's columns and values under either layout. The blocked layout
/// decodes into `scratch`; the flat layout borrows directly.
fn row_view<'a>(
    store: &'a ProximityStore,
    r: Index,
    scratch: &'a mut Vec<Index>,
) -> (&'a [Index], &'a [f64]) {
    match (store.as_flat(), store.as_blocked()) {
        (Some(m), _) => m.row(r),
        (_, Some(b)) => {
            b.decode_row_into(r, scratch);
            (scratch.as_slice(), b.row_values(r))
        }
        _ => unreachable!("a store is always one of the two layouts"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_core::{IndexBuilder, IndexOptions, NodeOrdering};
    use kdash_graph::{CsrGraph, GraphBuilder};

    fn chorded_ring(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as NodeId {
            b.add_edge(v, (v + 1) % n as NodeId, 1.0);
            if v % 3 == 0 {
                b.add_edge(v, (v + n as NodeId / 2) % n as NodeId, 0.5);
            }
        }
        b.build().unwrap()
    }

    /// The core contract on a small graph: after a batch, the index
    /// equals a from-scratch rebuild of the edited graph under the same
    /// permutation — arrays and answers. (The broad property version
    /// lives in `tests/dynamic_equivalence.rs`.)
    #[test]
    fn apply_matches_pinned_rebuild() {
        let graph = chorded_ring(30);
        let options = IndexOptions { ordering: NodeOrdering::Degree, ..Default::default() };
        let index = KdashIndex::build(&graph, options).unwrap();
        let perm = index.permutation().clone();
        let mut dynamic = DynamicIndex::new(index).unwrap();
        let batch = UpdateBatch::new(vec![
            EdgeEdit::Insert { src: 4, dst: 20, weight: 2.0 },
            EdgeEdit::Delete { src: 6, dst: 7 },
            EdgeEdit::Reweight { src: 0, dst: 1, weight: 3.0 },
        ])
        .unwrap();
        let report = dynamic.apply(&batch).unwrap();
        assert_eq!(report.edits, 3);
        assert_eq!(report.dirty_w_columns, 3);
        assert!(report.dirty_linv_columns >= report.dirty_l_columns);
        assert_eq!(dynamic.index().update_epoch(), 1);

        let edited = graph
            .apply_edits(&[
                EdgeEdit::Insert { src: 4, dst: 20, weight: 2.0 },
                EdgeEdit::Delete { src: 6, dst: 7 },
                EdgeEdit::Reweight { src: 0, dst: 1, weight: 3.0 },
            ])
            .unwrap();
        let rebuilt =
            IndexBuilder::from_options(options).permutation(perm).build(&edited).unwrap();
        let (ap, ai, av) = dynamic.index().linv_cols().raw();
        let (bp, bi, bv) = rebuilt.linv_cols().raw();
        assert_eq!((ap, ai), (bp, bi), "L⁻¹ structure must match the rebuild");
        assert!(av.iter().zip(bv).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(dynamic.index().uinv_rows(), rebuilt.uinv_rows());
        for q in 0..30u32 {
            let a = dynamic.index().top_k(q, 8).unwrap();
            let b = rebuilt.top_k(q, 8).unwrap();
            assert_eq!(a.items, b.items, "q {q}");
            assert_eq!(a.stats, b.stats, "q {q}");
        }
    }

    /// Same pinned-rebuild contract on a *sparsified* index: the engine's
    /// stage-4 re-solves must truncate under the index's drop tolerance,
    /// carry per-column dropped masses through the patch, and keep the
    /// consistency probes honest — so the patched index stays bit-identical
    /// to a from-scratch sparsified rebuild of the edited graph.
    /// A chorded ring with node-dependent weights: the uniform ring is so
    /// symmetric that distinct nodes share *exactly* equal proximities,
    /// which the refined path refuses to certify (by design — exact ties
    /// have no positive gap to separate). Irregular weights break the ties.
    fn weighted_chorded_ring(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as NodeId {
            b.add_edge(v, (v + 1) % n as NodeId, 1.0 + 0.03 * v as f64);
            if v % 3 == 0 {
                b.add_edge(v, (v + n as NodeId / 2) % n as NodeId, 0.5 + 0.01 * v as f64);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn apply_matches_pinned_rebuild_sparsified() {
        let graph = weighted_chorded_ring(30);
        let options = IndexOptions {
            ordering: NodeOrdering::Degree,
            drop_tolerance: 1e-4,
            ..Default::default()
        };
        let index = KdashIndex::build(&graph, options).unwrap();
        assert!(index.needs_refinement(), "ε = 1e-4 must actually drop mass on this graph");
        let perm = index.permutation().clone();
        let mut dynamic = DynamicIndex::new(index).unwrap();
        let edits = vec![
            EdgeEdit::Insert { src: 4, dst: 20, weight: 2.0 },
            EdgeEdit::Delete { src: 6, dst: 7 },
            EdgeEdit::Reweight { src: 0, dst: 1, weight: 3.0 },
        ];
        let report = dynamic.apply(&UpdateBatch::new(edits.clone()).unwrap()).unwrap();
        assert_eq!(report.edits, 3);

        let edited = graph.apply_edits(&edits).unwrap();
        let rebuilt =
            IndexBuilder::from_options(options).permutation(perm).build(&edited).unwrap();
        let (ap, ai, av) = dynamic.index().linv_cols().raw();
        let (bp, bi, bv) = rebuilt.linv_cols().raw();
        assert_eq!((ap, ai), (bp, bi), "sparsified L⁻¹ structure must match the rebuild");
        assert!(av.iter().zip(bv).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(dynamic.index().uinv_rows(), rebuilt.uinv_rows());
        let (ald, aud) = dynamic.index().dropped_masses();
        let (bld, bud) = rebuilt.dropped_masses();
        assert!(ald.iter().zip(bld).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert!(aud.iter().zip(bud).all(|(a, b)| a.to_bits() == b.to_bits()));
        for q in 0..30u32 {
            let a = dynamic.index().top_k(q, 8).unwrap();
            let b = rebuilt.top_k(q, 8).unwrap();
            assert_eq!(a.items, b.items, "q {q}");
        }
        // The audit re-run against the patched store must stay green.
        let mut dynamic = dynamic.verify_after_apply(true);
        dynamic
            .apply(&UpdateBatch::new(vec![EdgeEdit::Insert { src: 1, dst: 9, weight: 0.7 }]).unwrap())
            .unwrap();
    }

    /// Auto-checkpoint: once the journal holds more than the threshold,
    /// the next committed apply snapshots and truncates it — and the
    /// snapshot + healed journal recover to the same epoch.
    #[test]
    fn auto_checkpoint_bounds_the_journal() {
        let dir = std::env::temp_dir()
            .join(format!("kdash-auto-ckpt-{}-{}", std::process::id(), std::line!()));
        std::fs::create_dir_all(&dir).unwrap();
        let snapshot = dir.join("index.kdash");
        let journal_path = crate::Journal::sidecar_path(&snapshot);
        let graph = chorded_ring(16);
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        kdash_core::save_atomic(&index, &snapshot).unwrap();
        let journal = crate::Journal::create(&journal_path, 0).unwrap();
        let mut dynamic = DynamicIndex::new(index)
            .unwrap()
            .journaled(journal)
            .unwrap()
            .auto_checkpoint(&snapshot, 2);

        let mut checkpoints = 0;
        for i in 0..6u32 {
            let batch = UpdateBatch::new(vec![EdgeEdit::Insert {
                src: i,
                dst: (i + 5) % 16,
                weight: 1.0,
            }])
            .unwrap();
            let report = dynamic.apply(&batch).unwrap();
            let records = dynamic.journal().unwrap().records();
            assert!(records <= 3, "journal must stay bounded, holds {records} after apply {i}");
            if report.checkpointed {
                checkpoints += 1;
                assert!(report.checkpoint_time > Duration::ZERO);
                assert_eq!(records, 0, "a checkpoint truncates the journal");
            }
        }
        assert_eq!(checkpoints, 2, "6 applies at threshold 2 checkpoint twice");
        assert_eq!(dynamic.index().update_epoch(), 6);

        // The auto-written snapshot + journal recover to the live epoch.
        let loaded = KdashIndex::load(std::fs::File::open(&snapshot).unwrap()).unwrap();
        let (recovered, _report) = DynamicIndex::recover(loaded, &journal_path).unwrap();
        assert_eq!(recovered.index().update_epoch(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn validation_reports_original_ids_and_leaves_index_untouched() {
        let graph = chorded_ring(12);
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let before = index.top_k(0, 5).unwrap();
        let mut dynamic = DynamicIndex::new(index).unwrap();
        let cases: Vec<(UpdateBatch, fn(&KdashError) -> bool)> = vec![
            (
                UpdateBatch::new(vec![EdgeEdit::Insert { src: 99, dst: 0, weight: 1.0 }]).unwrap(),
                |e| matches!(e, KdashError::NodeOutOfBounds { node: 99, .. }),
            ),
            (
                UpdateBatch::new(vec![EdgeEdit::Delete { src: 0, dst: 5 }]).unwrap(),
                |e| {
                    matches!(
                        e,
                        KdashError::Graph(kdash_graph::GraphError::EdgeNotFound {
                            src: 0,
                            dst: 5
                        })
                    )
                },
            ),
            (
                UpdateBatch::new(vec![EdgeEdit::Insert { src: 0, dst: 1, weight: 1.0 }]).unwrap(),
                |e| {
                    matches!(
                        e,
                        KdashError::Graph(kdash_graph::GraphError::DuplicateEdge {
                            src: 0,
                            dst: 1
                        })
                    )
                },
            ),
        ];
        for (batch, check) in cases {
            let err = dynamic.apply(&batch).unwrap_err();
            assert!(check(&err), "unexpected error {err:?}");
        }
        assert_eq!(dynamic.index().update_epoch(), 0, "failed batches must not bump the epoch");
        assert_eq!(dynamic.index().top_k(0, 5).unwrap().items, before.items);
    }

    #[test]
    fn sequential_semantics_within_a_batch() {
        let graph = chorded_ring(10);
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let mut dynamic = DynamicIndex::new(index).unwrap();
        // Insert then delete: validates and nets out to the weight change
        // of nothing — the graph is unchanged, so no inverse column may
        // move.
        let batch = UpdateBatch::new(vec![
            EdgeEdit::Insert { src: 2, dst: 7, weight: 1.0 },
            EdgeEdit::Delete { src: 2, dst: 7 },
        ])
        .unwrap();
        let report = dynamic.apply(&batch).unwrap();
        assert_eq!(report.dirty_l_columns, 0, "net no-op edits must not dirty the factors");
        assert_eq!(report.dirty_linv_columns, 0);
        assert_eq!(report.dirty_uinv_rows, 0);
        assert_eq!(dynamic.index().update_epoch(), 1, "the batch still counts");
    }

    #[test]
    fn engine_reuses_kept_factors() {
        let graph = chorded_ring(14);
        let index = KdashIndex::build(
            &graph,
            IndexOptions { keep_factors: true, ..Default::default() },
        )
        .unwrap();
        let mut dynamic = DynamicIndex::new(index).unwrap();
        let batch =
            UpdateBatch::new(vec![EdgeEdit::Reweight { src: 3, dst: 4, weight: 2.5 }]).unwrap();
        dynamic.apply(&batch).unwrap();
        // The kept factors were refreshed, not dropped: the ablation
        // path still answers, on the *edited* graph.
        assert!(dynamic.index().factors().is_some());
        let via_lu = dynamic.index().proximities_via_factors(3).unwrap().unwrap();
        let via_inv = dynamic.index().full_proximities(3).unwrap();
        for (a, b) in via_lu.iter().zip(&via_inv) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn coalesced_apply_matches_the_sequential_batches_bitwise() {
        let graph = chorded_ring(36);
        let options = IndexOptions { ordering: NodeOrdering::Degree, ..Default::default() };
        let index = KdashIndex::build(&graph, options).unwrap();
        let batches = vec![
            UpdateBatch::new(vec![EdgeEdit::Insert { src: 2, dst: 19, weight: 1.25 }]).unwrap(),
            UpdateBatch::new(vec![
                EdgeEdit::Delete { src: 2, dst: 19 },
                EdgeEdit::Reweight { src: 5, dst: 6, weight: 0.75 },
            ])
            .unwrap(),
            UpdateBatch::new(vec![EdgeEdit::Insert { src: 30, dst: 1, weight: 2.0 }]).unwrap(),
        ];

        let mut sequential = DynamicIndex::new(index.clone()).unwrap();
        for batch in &batches {
            sequential.apply(batch).unwrap();
        }
        let mut coalesced = DynamicIndex::new(index).unwrap();
        let report = coalesced.apply_coalesced(&batches).unwrap();
        assert_eq!(report.batches, 3);
        assert_eq!(report.edits, 4);
        assert_eq!(
            coalesced.index().update_epoch(),
            sequential.index().update_epoch(),
            "coalescing k batches must advance the epoch by k"
        );
        assert_eq!(coalesced.index().update_epoch(), 3);

        let (sp, si, sv) = sequential.index().linv_cols().raw();
        let (cp, ci, cv) = coalesced.index().linv_cols().raw();
        assert_eq!((sp, si), (cp, ci), "L⁻¹ structure must match");
        assert!(sv.iter().zip(cv).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(coalesced.index().uinv_rows(), sequential.index().uinv_rows());
        for q in 0..36u32 {
            assert_eq!(
                coalesced.index().top_k(q, 6).unwrap().items,
                sequential.index().top_k(q, 6).unwrap().items,
                "q {q}"
            );
        }
    }

    #[test]
    fn coalesced_apply_is_all_or_nothing_and_rejects_empty_queues() {
        let graph = chorded_ring(12);
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let mut dynamic = DynamicIndex::new(index).unwrap();
        assert!(dynamic.apply_coalesced(&[]).is_err(), "empty queue must not bump the epoch");
        // First batch is fine, second is invalid: nothing may commit.
        let batches = vec![
            UpdateBatch::new(vec![EdgeEdit::Insert { src: 0, dst: 5, weight: 1.0 }]).unwrap(),
            UpdateBatch::new(vec![EdgeEdit::Delete { src: 7, dst: 0 }]).unwrap(),
        ];
        assert!(dynamic.apply_coalesced(&batches).is_err());
        assert_eq!(dynamic.index().update_epoch(), 0);
        // Cross-batch sequencing validates: delete in batch 2 of an edge
        // inserted in batch 1.
        let batches = vec![
            UpdateBatch::new(vec![EdgeEdit::Insert { src: 0, dst: 5, weight: 1.0 }]).unwrap(),
            UpdateBatch::new(vec![EdgeEdit::Delete { src: 0, dst: 5 }]).unwrap(),
        ];
        let report = dynamic.apply_coalesced(&batches).unwrap();
        assert_eq!(report.dirty_l_columns, 0, "net no-op must not dirty the factors");
        assert_eq!(dynamic.index().update_epoch(), 2);
    }

    #[test]
    fn predict_bounds_the_apply_and_does_not_mutate() {
        let graph = chorded_ring(30);
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let mut dynamic = DynamicIndex::new(index).unwrap();
        let batches = vec![
            UpdateBatch::new(vec![EdgeEdit::Reweight { src: 4, dst: 5, weight: 2.0 }]).unwrap(),
            UpdateBatch::new(vec![EdgeEdit::Reweight { src: 9, dst: 10, weight: 0.5 }]).unwrap(),
        ];
        let before = dynamic.index().top_k(0, 5).unwrap();
        let prediction = dynamic.predict(&batches).unwrap();
        assert_eq!(dynamic.index().update_epoch(), 0, "predict must not mutate");
        assert_eq!(dynamic.index().top_k(0, 5).unwrap().items, before.items);
        assert_eq!(prediction.batches, 2);
        assert_eq!(prediction.dirty_w_columns, 2);
        assert!(dynamic.predict(&[]).is_err());

        let report = dynamic.apply_coalesced(&batches).unwrap();
        assert!(
            report.dirty_factor_columns_recomputed <= prediction.candidate_factor_columns,
            "the candidate set is a superset of what the apply recomputes"
        );
        // Reweights keep the factor patterns, so the inverse prediction
        // is a true upper bound (candidates that end up bit-unchanged
        // only over-predict).
        assert!(report.dirty_linv_columns <= prediction.predicted_linv_columns);
        assert!(report.dirty_uinv_columns <= prediction.predicted_uinv_columns);
        assert!(prediction.predicted_linv_columns > 0);
        assert!(prediction.factor_fraction() <= 1.0);
        assert!(prediction.candidate_factor_columns >= report.dirty_l_columns);
    }

    #[test]
    fn threads_do_not_change_bits() {
        let graph = chorded_ring(40);
        let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
        let batch = UpdateBatch::new(vec![
            EdgeEdit::Insert { src: 1, dst: 30, weight: 1.5 },
            EdgeEdit::Delete { src: 9, dst: 10 },
        ])
        .unwrap();
        let mut seq = DynamicIndex::new(index.clone()).unwrap();
        seq.apply(&batch).unwrap();
        for threads in [2usize, 0] {
            let mut par = DynamicIndex::new(index.clone()).unwrap().threads(threads);
            par.apply(&batch).unwrap();
            assert_eq!(
                par.index().uinv_rows(),
                seq.index().uinv_rows(),
                "threads {threads}: U⁻¹ must be bit-identical"
            );
            let (sp, si, sv) = seq.index().linv_cols().raw();
            let (pp, pi, pv) = par.index().linv_cols().raw();
            assert_eq!((sp, si), (pp, pi));
            assert!(sv.iter().zip(pv).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }
}
