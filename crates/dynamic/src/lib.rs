//! # kdash-dynamic
//!
//! Dynamic-graph update engine for the K-dash index: apply edge
//! insertions, deletions and reweights to a built [`KdashIndex`] and
//! patch the stored inverses **incrementally** — with the guarantee that
//! the patched index is *bit-for-bit identical* to rebuilding from
//! scratch on the edited graph under the same node order.
//!
//! ## Why this is possible exactly
//!
//! K-dash precomputes `L⁻¹` and `U⁻¹` of `W = I − (1−c)A`. An edge edit
//! on node `u` renormalises one column of the transition matrix `A`, so
//! one column of `W` changes. The damage to the factors and their
//! inverses is bounded *structurally*:
//!
//! 1. **Incremental refactorisation** — left-looking elimination gives
//!    the factor columns a dependency DAG: column `j` of `L`/`U` is a
//!    function of `W(:, j)` and of the `L` columns in the symbolic reach
//!    of its pattern — `U` is never read back, and every `L`-dependency
//!    edge runs strictly upward in column index. So the columns that can
//!    differ after an edit are exactly the dirty `W` columns plus their
//!    forward reach through that DAG, and
//!    [`kdash_sparse::refactor_columns_with`] re-eliminates **only that
//!    set**, splicing every other column from the old factors
//!    bit-for-bit. The re-elimination reports which recomputed columns
//!    actually changed (bit-level), giving the exact dirty column sets
//!    of `L` and `U` without ever touching the clean ones.
//! 2. **Reach analysis** — column `q` of `T⁻¹` solves `T x = e_q` and
//!    reads exactly the columns in the Gilbert–Peierls reach of `q`. So
//!    the dirty columns of `L⁻¹`/`U⁻¹` are precisely the columns whose
//!    reach intersects the dirty factor columns
//!    ([`kdash_sparse::inverse_dirty_columns`]); every column outside
//!    that set is **provably untouched**, not just assumed so.
//! 3. **Re-solve + splice** — only the dirty inverse columns re-run
//!    their per-column triangular solves (the same work-stealing pool as
//!    the build pipeline), then splice into the stored arrays: `L⁻¹` by
//!    column, the `U⁻¹` [`kdash_sparse::ProximityStore`] by row with
//!    per-row blocked re-encoding and policy-table ([`RowStat`]) refresh
//!    — so the adaptive kernel policy and the byte accounting stay
//!    coherent with a from-scratch build.
//! 4. **Estimator refresh** — `A_max(v)` and `c'` are recomputed for the
//!    edited columns only; the global `A_max` folds over the per-column
//!    maxima.
//!
//! Because every stage either reuses the build pipeline's own kernels on
//! identical inputs or provably leaves bits alone, *incremental update ≡
//! from-scratch rebuild* holds at the array level — index arrays, row
//! stats, top-k items and search statistics — which
//! `tests/dynamic_equivalence.rs` pins across graph families, orderings
//! and random edit batches.
//!
//! [`RowStat`]: kdash_sparse::RowStat
//!
//! ## Quick start
//!
//! ```
//! use kdash_core::{IndexOptions, KdashIndex};
//! use kdash_dynamic::{DynamicIndex, UpdateBatch};
//! use kdash_graph::{EdgeEdit, GraphBuilder};
//!
//! let mut b = GraphBuilder::new(32);
//! for v in 0..32u32 { b.add_edge(v, (v + 1) % 32, 1.0); }
//! let graph = b.build().unwrap();
//! let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
//!
//! // Attach the engine (refactorises once), then serve fresh graphs.
//! let mut dynamic = DynamicIndex::new(index).unwrap();
//! let batch = UpdateBatch::new(vec![
//!     EdgeEdit::Insert { src: 0, dst: 16, weight: 2.0 },
//!     EdgeEdit::Reweight { src: 3, dst: 4, weight: 0.5 },
//! ]).unwrap();
//! let report = dynamic.apply(&batch).unwrap();
//! assert!(report.dirty_linv_columns <= dynamic.index().num_nodes());
//! assert_eq!(dynamic.index().update_epoch(), 1);
//!
//! // Queries see the edited graph immediately — and exactly.
//! let fresh = dynamic.index().top_k(0, 5).unwrap();
//! assert_eq!(fresh.items[0].node, 0);
//!
//! // A queue of batches coalesces into one pass (one refactorisation,
//! // one reach analysis, one re-solve) — bit-identical to applying
//! // them one by one, and the epoch still advances by the queue
//! // length. `predict` reports the expected footprint without
//! // mutating anything (the CLI's `update --coalesce --dry-run`).
//! let queue = vec![
//!     UpdateBatch::new(vec![EdgeEdit::Reweight { src: 0, dst: 16, weight: 1.0 }]).unwrap(),
//!     UpdateBatch::new(vec![EdgeEdit::Delete { src: 0, dst: 16 }]).unwrap(),
//! ];
//! let prediction = dynamic.predict(&queue).unwrap();
//! let report = dynamic.apply_coalesced(&queue).unwrap();
//! assert!(report.dirty_factor_columns_recomputed <= prediction.candidate_factor_columns);
//! assert_eq!(dynamic.index().update_epoch(), 3);
//! ```
//!
//! Batches come from code ([`UpdateBatch::new`]) or from edit-stream
//! text ([`UpdateBatch::parse_stream`], the `kdash update` CLI format):
//!
//! ```text
//! # one edit per line; blank lines separate batches
//! + 0 16 2.0     # insert 0 -> 16, weight 2
//! = 3 4 0.5      # reweight 3 -> 4
//! - 7 8          # delete 7 -> 8
//! ```
//!
//! ## Durability: the write-ahead journal
//!
//! Applies mutate memory; a crash between snapshots would silently lose
//! every acknowledged batch. Journaled mode closes that hole with a
//! sidecar write-ahead log (see the [`journal`] module for format and
//! contract): each batch's frame is appended and fsynced *before* the
//! patch is installed, a [`DynamicIndex::checkpoint`] persists the
//! snapshot via `save_atomic` and truncates the journal, and
//! [`DynamicIndex::recover`] rebuilds the pre-crash state — replaying
//! the journal's surviving records in one coalesced pass, so the
//! recovered index is **bit-identical** to the one that crashed,
//! tolerating a torn tail from a mid-append crash without panicking.
//!
//! ```no_run
//! use kdash_core::KdashIndex;
//! use kdash_dynamic::{journal::Journal, DynamicIndex, UpdateBatch};
//! use kdash_graph::EdgeEdit;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let index: KdashIndex = unimplemented!();
//! // Journal acknowledged updates next to the snapshot...
//! kdash_core::save_atomic(&index, "graph.kdash")?;
//! let journal = Journal::create(Journal::sidecar_path("graph.kdash"), index.update_epoch())?;
//! let mut dynamic = DynamicIndex::new(index)?.journaled(journal)?;
//! let batch = UpdateBatch::new(vec![EdgeEdit::Insert { src: 0, dst: 1, weight: 1.0 }])?;
//! dynamic.apply(&batch)?;            // durable in the journal before it is acknowledged
//!
//! // ...crash here, any time, at any byte...
//!
//! let snapshot = KdashIndex::load(std::fs::File::open("graph.kdash")?)?;
//! let (mut recovered, report) =
//!     DynamicIndex::recover(snapshot, Journal::sidecar_path("graph.kdash"))?;
//! assert_eq!(report.final_epoch, recovered.index().update_epoch());
//! recovered.checkpoint("graph.kdash")?; // fold the journal into a fresh snapshot
//! # Ok(()) }
//! ```
//!
//! The CLI surfaces the same flow as `kdash update --journal` (which
//! auto-recovers a pending journal before applying) and
//! `kdash recover`; `kdash verify --journal` and `kdash info` inspect a
//! journal without loading the index.

pub mod batch;
pub mod engine;
pub mod journal;

pub use batch::UpdateBatch;
pub use engine::{
    DynamicIndex, UpdatePrediction, UpdateReport, AUTO_CHECKPOINT_DEFAULT_RECORDS,
};
pub use journal::{Journal, JournalError, JournalScan, RecoveryReport};

/// This crate surfaces errors through the core error type: graph-level
/// edit failures (unknown nodes, absent edges, duplicate inserts, bad
/// weights) arrive as [`KdashError::Graph`], numeric failures as
/// [`KdashError::Sparse`].
pub use kdash_core::{KdashError, Result};
