//! Staged index construction — the build-side twin of the query engine.
//!
//! [`IndexBuilder`] decomposes index construction into five named stages,
//!
//! ```text
//! ordering → factorization → inversion → estimator → assemble
//! ```
//!
//! each individually timed and surfaced through a [`BuildReport`]
//! ([`IndexBuilder::build_with_report`]). The stages are the quantities the
//! paper's Figure 6 measures: the reordering heuristic, the sparse LU of
//! `W = I − (1−c)A`, and — dominating everything at scale — the triangular
//! inversion that materialises `L⁻¹` and `U⁻¹`.
//!
//! The inversion stage is parallel: columns of a triangular inverse are
//! independent Gilbert–Peierls solves, so [`IndexBuilder::threads`] fans
//! them out over a work-stealing chunk cursor (the same pattern
//! [`batch_top_k`](crate::batch_top_k) uses for queries), one solve
//! workspace per worker. The gathered result is **bit-identical** to the
//! sequential inversion at every thread count, which the tier-1
//! `build_determinism` suite pins.

use crate::ordering::{compute_ordering_with_stats, OrderingStats};
use crate::precompute::IndexParts;
use crate::{IndexOptions, IndexStats, KdashError, KdashIndex, NodeOrdering, Result};
use kdash_graph::{CsrGraph, NodeId, Permutation};
use kdash_sparse::{
    sparse_lu_with, sparsify_lower_unit_with, sparsify_upper_with, transition_matrix,
    validate_drop_tolerance, w_matrix, CsrMatrix, DanglingPolicy, InvertOptions, ProximityStore,
    RowLayout,
};
use std::time::{Duration, Instant};

/// The five steps of the build pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildStage {
    /// Node reordering and graph permutation (§4.2.2).
    Ordering,
    /// Transition matrix `A`, system matrix `W`, and the sparse LU `W = LU`.
    Factorization,
    /// Triangular inversion: `L⁻¹` and `U⁻¹` (Equations (4)–(5)).
    Inversion,
    /// Estimator constants `A_max`, `A_max(v)` and the `c'` factors.
    Estimator,
    /// Statistics and final index assembly.
    Assemble,
}

impl BuildStage {
    /// Every stage, in pipeline order.
    pub const ALL: [BuildStage; 5] = [
        BuildStage::Ordering,
        BuildStage::Factorization,
        BuildStage::Inversion,
        BuildStage::Estimator,
        BuildStage::Assemble,
    ];

    /// Display name used in reports and the CLI.
    pub fn name(&self) -> &'static str {
        match self {
            BuildStage::Ordering => "ordering",
            BuildStage::Factorization => "factorization",
            BuildStage::Inversion => "inversion",
            BuildStage::Estimator => "estimator",
            BuildStage::Assemble => "assemble",
        }
    }
}

/// One timed pipeline step.
#[derive(Debug, Clone, Copy)]
pub struct StageTiming {
    /// Which step.
    pub stage: BuildStage,
    /// Wall-clock the step took.
    pub duration: Duration,
}

/// What a build did, stage by stage.
#[derive(Debug, Clone, Default)]
pub struct BuildReport {
    /// Per-stage wall-clock, in pipeline order.
    pub stages: Vec<StageTiming>,
    /// What the ordering stage observed (community structure for the
    /// Louvain-backed cluster/hybrid orderings).
    pub ordering: OrderingStats,
    /// Resolved inversion worker count (after `threads = 0` auto-detect).
    pub inversion_threads: usize,
}

impl BuildReport {
    /// Wall-clock of one stage (zero if the stage was not recorded).
    pub fn duration_of(&self, stage: BuildStage) -> Duration {
        self.stages
            .iter()
            .find(|t| t.stage == stage)
            .map(|t| t.duration)
            .unwrap_or_default()
    }

    /// Total wall-clock across all stages.
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|t| t.duration).sum()
    }
}

/// Staged, parallel index construction.
///
/// ```
/// use kdash_core::{IndexBuilder, NodeOrdering};
/// use kdash_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(32);
/// for v in 0..32u32 { b.add_edge(v, (v + 1) % 32, 1.0); }
/// let graph = b.build().unwrap();
///
/// let (index, report) = IndexBuilder::new()
///     .ordering(NodeOrdering::Degree)
///     .threads(0) // parallel inversion, one worker per core
///     .build_with_report(&graph)
///     .unwrap();
/// assert_eq!(index.num_nodes(), 32);
/// assert_eq!(report.stages.len(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct IndexBuilder {
    options: IndexOptions,
    threads: usize,
    /// When set, the ordering stage is skipped and this permutation pins
    /// the node order (see [`IndexBuilder::permutation`]).
    pinned_permutation: Option<Permutation>,
}

impl Default for IndexBuilder {
    fn default() -> Self {
        IndexBuilder::new()
    }
}

impl IndexBuilder {
    /// Builder with the paper's defaults (hybrid ordering, `c = 0.95`)
    /// and sequential inversion.
    pub fn new() -> Self {
        IndexBuilder::from_options(IndexOptions::default())
    }

    /// Builder seeded from existing [`IndexOptions`].
    pub fn from_options(options: IndexOptions) -> Self {
        IndexBuilder { options, threads: 1, pinned_permutation: None }
    }

    /// Node reordering applied before LU.
    pub fn ordering(mut self, ordering: NodeOrdering) -> Self {
        self.options.ordering = ordering;
        self
    }

    /// Restart probability `c`.
    pub fn restart_probability(mut self, c: f64) -> Self {
        self.options.restart_probability = c;
        self
    }

    /// Treatment of nodes without out-edges.
    pub fn dangling(mut self, policy: DanglingPolicy) -> Self {
        self.options.dangling = policy;
        self
    }

    /// Row layout of the stored `U⁻¹` (blocked by default — see
    /// [`RowLayout`]). Results are bit-identical across layouts; only the
    /// gather path's memory traffic changes.
    pub fn layout(mut self, layout: RowLayout) -> Self {
        self.options.layout = layout;
        self
    }

    /// Pins the node order to an explicit permutation: the ordering stage
    /// skips the heuristic and uses `perm` verbatim (the configured
    /// [`NodeOrdering`] survives only as a label). This is how the
    /// dynamic-update equivalence suite rebuilds an edited graph *under
    /// the index's frozen order* — an incremental update never re-runs
    /// the ordering heuristic (edits would otherwise shift the
    /// permutation and with it every stored array), so the from-scratch
    /// reference it must match bit-for-bit has to hold the order fixed
    /// too. The permutation length is validated against the graph at
    /// build time.
    pub fn permutation(mut self, perm: Permutation) -> Self {
        self.pinned_permutation = Some(perm);
        self
    }

    /// Keep the raw LU factors alongside the inverses.
    pub fn keep_factors(mut self, keep: bool) -> Self {
        self.options.keep_factors = keep;
        self
    }

    /// Drop tolerance `ε` for the stored inverses (see
    /// [`IndexOptions::drop_tolerance`]). `0.0` (the default) builds the
    /// dense-exact index bit-for-bit; `ε > 0` truncates sub-`ε` inverse
    /// entries during inversion and routes queries through certified
    /// residual refinement, keeping answers exact.
    pub fn drop_tolerance(mut self, eps: f64) -> Self {
        self.options.drop_tolerance = eps;
        self
    }

    /// Worker threads for the inversion stage: `0` = one per available
    /// hardware thread, `1` (the default) = sequential. Output is
    /// bit-identical at every thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The effective options.
    pub fn options(&self) -> &IndexOptions {
        &self.options
    }

    /// Runs the pipeline.
    pub fn build(&self, graph: &CsrGraph) -> Result<KdashIndex> {
        self.build_with_report(graph).map(|(index, _)| index)
    }

    /// Runs the pipeline and reports per-stage timings and observations.
    pub fn build_with_report(&self, graph: &CsrGraph) -> Result<(KdashIndex, BuildReport)> {
        let options = self.options;
        validate_drop_tolerance(options.drop_tolerance)?;
        let mut report = BuildReport::default();

        // Stage 1 — ordering: permutation + permuted graph for the BFS.
        let t = Instant::now();
        let (perm, ordering_stats) = match &self.pinned_permutation {
            Some(pinned) => {
                if pinned.len() != graph.num_nodes() {
                    return Err(KdashError::Graph(kdash_graph::GraphError::InvalidPermutation(
                        format!(
                            "pinned permutation has length {} but graph has {} nodes",
                            pinned.len(),
                            graph.num_nodes()
                        ),
                    )));
                }
                (pinned.clone(), OrderingStats::default())
            }
            None => compute_ordering_with_stats(graph, options.ordering),
        };
        let permuted = graph.permute(&perm)?;
        let ordering_time = t.elapsed();
        report.ordering = ordering_stats;
        report.stages.push(StageTiming { stage: BuildStage::Ordering, duration: ordering_time });

        // Stage 2 — factorization: A, W = I − (1−c)A, and W = LU.
        let t = Instant::now();
        let a = transition_matrix(&permuted, options.dangling);
        let w = w_matrix(&a, options.restart_probability)?;
        let factors = sparse_lu_with(&w, InvertOptions { threads: self.threads })?;
        let factorization_time = t.elapsed();
        report
            .stages
            .push(StageTiming { stage: BuildStage::Factorization, duration: factorization_time });

        // Stage 3 — inversion: the independent column solves, fanned out.
        // Under a positive drop tolerance the solves truncate sub-ε
        // entries before they propagate (the sparsify drivers delegate to
        // the plain inverters at ε = 0, so the dense-exact path stays
        // bit-identical); the per-column dropped ℓ₁ masses ride along into
        // the index for the certified refinement loop.
        let t = Instant::now();
        let eps = options.drop_tolerance;
        let invert_options = InvertOptions { threads: self.threads };
        report.inversion_threads = invert_options.resolved_threads(permuted.num_nodes());
        let sparsified_l = sparsify_lower_unit_with(&factors.l, eps, invert_options)?;
        let (linv, linv_dropped) = (sparsified_l.inverse, sparsified_l.dropped);
        let sparsified_u = sparsify_upper_with(&factors.u, eps, invert_options)?;
        let (uinv_csc, uinv_dropped) = (sparsified_u.inverse, sparsified_u.dropped);
        let uinv = CsrMatrix::from_csc(&uinv_csc);
        let inversion_time = t.elapsed();
        report.stages.push(StageTiming { stage: BuildStage::Inversion, duration: inversion_time });

        // Stage 4 — estimator: the Definition 1/2 precomputed constants.
        let t = Instant::now();
        let a_col_max = a.col_max();
        let a_max = a.global_max();
        let c = options.restart_probability;
        let c_prime: Vec<f64> = (0..permuted.num_nodes() as NodeId)
            .map(|v| {
                let a_vv = a.get(v, v).unwrap_or(0.0);
                (1.0 - c) / (1.0 - a_vv + c * a_vv)
            })
            .collect();
        let estimator_time = t.elapsed();
        report.stages.push(StageTiming { stage: BuildStage::Estimator, duration: estimator_time });

        // Stage 5 — assemble: the per-row policy table, the (blocked by
        // default) proximity-store encoding of U⁻¹, statistics, and the
        // final immutable index. The timer covers the assembly itself, so
        // it is stamped into the finished index afterwards.
        let t = Instant::now();
        let uinv = ProximityStore::from_csr(uinv, options.layout)?;
        let stats = IndexStats {
            ordering_time,
            factorization_time,
            inversion_time,
            estimator_time,
            nnz_l: factors.l.nnz(),
            nnz_u: factors.u.nnz(),
            nnz_l_inv: linv.nnz(),
            nnz_u_inv: uinv.nnz(),
            num_edges: graph.num_edges(),
            num_nodes: graph.num_nodes(),
            inverse_heap_bytes: linv.heap_bytes() + uinv.heap_bytes(),
            uinv_index_bytes: uinv.index_bytes(),
            ..Default::default()
        };
        let mut index = KdashIndex::from_parts(IndexParts {
            c,
            ordering: options.ordering,
            dangling: options.dangling,
            update_epoch: 0,
            perm,
            graph: permuted,
            linv,
            uinv,
            a_col_max,
            a_max,
            c_prime,
            factors: options.keep_factors.then_some(factors),
            drop_tolerance: eps,
            linv_dropped,
            uinv_dropped,
            stats,
        });
        let assemble_time = t.elapsed();
        index.stats_mut().assemble_time = assemble_time;
        report.stages.push(StageTiming { stage: BuildStage::Assemble, duration: assemble_time });
        Ok((index, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_graph::GraphBuilder;

    fn ring(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n as NodeId {
            b.add_edge(v, (v + 1) % n as NodeId, 1.0);
            if v % 3 == 0 {
                b.add_edge(v, (v + n as NodeId / 2) % n as NodeId, 0.5);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn report_covers_every_stage() {
        let g = ring(30);
        let (index, report) = IndexBuilder::new().build_with_report(&g).unwrap();
        assert_eq!(report.stages.len(), BuildStage::ALL.len());
        for (timing, stage) in report.stages.iter().zip(BuildStage::ALL) {
            assert_eq!(timing.stage, stage, "stages must report in pipeline order");
        }
        assert_eq!(report.inversion_threads, 1);
        assert_eq!(report.total(), index.stats().total_time());
    }

    #[test]
    fn builder_matches_legacy_build_bitwise() {
        let g = ring(40);
        for ordering in [NodeOrdering::Natural, NodeOrdering::Degree, NodeOrdering::Hybrid] {
            let options = IndexOptions { ordering, ..Default::default() };
            let legacy = KdashIndex::build(&g, options).unwrap();
            for threads in [1usize, 2, 0] {
                let staged =
                    IndexBuilder::from_options(options).threads(threads).build(&g).unwrap();
                for q in [0u32, 7, 21] {
                    let a = legacy.top_k(q, 6).unwrap();
                    let b = staged.top_k(q, 6).unwrap();
                    assert_eq!(a.nodes(), b.nodes(), "{ordering:?} threads {threads}");
                    for (x, y) in a.items.iter().zip(&b.items) {
                        assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
                    }
                }
                assert_eq!(legacy.stats().nnz_l_inv, staged.stats().nnz_l_inv);
                assert_eq!(legacy.stats().nnz_u_inv, staged.stats().nnz_u_inv);
            }
        }
    }

    #[test]
    fn community_stats_flow_through_report() {
        let g = ring(24);
        let (_, hybrid) =
            IndexBuilder::new().ordering(NodeOrdering::Hybrid).build_with_report(&g).unwrap();
        assert!(hybrid.ordering.communities.is_some());
        let (_, degree) =
            IndexBuilder::new().ordering(NodeOrdering::Degree).build_with_report(&g).unwrap();
        assert_eq!(degree.ordering, OrderingStats::default());
    }

    #[test]
    fn builder_setters_compose() {
        let b = IndexBuilder::new()
            .ordering(NodeOrdering::Degree)
            .restart_probability(0.8)
            .keep_factors(true)
            .threads(4);
        assert_eq!(b.options().ordering, NodeOrdering::Degree);
        assert_eq!(b.options().restart_probability, 0.8);
        assert!(b.options().keep_factors);
        let g = ring(12);
        let index = b.build(&g).unwrap();
        assert!(index.proximities_via_factors(3).unwrap().is_some());
    }

    #[test]
    fn pinned_permutation_reproduces_the_heuristic_build() {
        let g = ring(36);
        let (reference, report) =
            IndexBuilder::new().ordering(NodeOrdering::Hybrid).build_with_report(&g).unwrap();
        assert!(report.ordering.communities.is_some());
        // Pinning the exact permutation the heuristic chose must
        // reproduce the index bit-for-bit (the equivalence-suite rebuild
        // path), while skipping the heuristic itself.
        let (pinned, pinned_report) = IndexBuilder::new()
            .ordering(NodeOrdering::Hybrid)
            .permutation(reference.permutation().clone())
            .build_with_report(&g)
            .unwrap();
        assert_eq!(pinned_report.ordering, OrderingStats::default());
        let (ap, ai, av) = reference.linv_cols().raw();
        let (bp, bi, bv) = pinned.linv_cols().raw();
        assert_eq!((ap, ai), (bp, bi));
        assert!(av.iter().zip(bv).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(reference.uinv_rows(), pinned.uinv_rows());
        for q in [0u32, 17, 35] {
            let (a, b) = (reference.top_k(q, 5).unwrap(), pinned.top_k(q, 5).unwrap());
            assert_eq!(a.items, b.items);
        }
        // Wrong-length pins are typed errors.
        let err = IndexBuilder::new()
            .permutation(kdash_graph::Permutation::identity(7))
            .build(&g);
        assert!(matches!(err, Err(KdashError::Graph(_))));
    }

    #[test]
    fn fresh_builds_start_at_epoch_zero() {
        let g = ring(12);
        let index = IndexBuilder::new().build(&g).unwrap();
        assert_eq!(index.update_epoch(), 0);
        assert_eq!(index.dangling_policy(), DanglingPolicy::Keep);
    }

    #[test]
    fn duration_of_unknown_stage_is_zero() {
        let report = BuildReport::default();
        assert_eq!(report.duration_of(BuildStage::Inversion), Duration::ZERO);
        assert_eq!(report.total(), Duration::ZERO);
    }

    #[test]
    fn build_errors_propagate_through_pipeline() {
        let g = ring(10);
        let err = IndexBuilder::new().restart_probability(2.0).build(&g);
        assert!(err.is_err());
    }
}
