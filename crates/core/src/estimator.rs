//! The proximity upper-bound estimators.
//!
//! [`LayerEstimator`] implements the paper's Definition 1 with the `O(1)`
//! incremental update of Definition 2: when nodes are visited (and
//! selected) in BFS-layer order from the query node, the estimate of the
//! next node derives from the previous node's three terms
//!
//! ```text
//! p̄_u = c'_u · ( Σ_{v ∈ V_{l−1}(u)} p_v·A_max(v)     (term 1)
//!              + Σ_{v ∈ V_l(u)}     p_v·A_max(v)      (term 2)
//!              + (1 − Σ_{v ∈ V_s} p_v) · A_max )      (term 3)
//! ```
//!
//! Lemma 1 guarantees `p̄_u ≥ p_u`; Lemma 2 guarantees the sequence of
//! bounds is non-increasing across the visit order, which is what lets the
//! search *terminate* the first time a bound drops below θ.
//!
//! Note on the paper text: Definition 2's root case writes the third term
//! as `(1 − p_q)·A_max(u)`; consistency with Definition 1 and with Lemma 2
//! requires the **global** `A_max` there, which is what this implementation
//! (and the paper's own Definition 1) uses.
//!
//! [`ArbitraryOrderBound`] is the weaker bound used by the random-root
//! ablation (paper Appendix D.1): it stays valid for *any* visit order but
//! is not monotone, so it can only skip individual nodes, never terminate.

/// Incremental Definition 1 / Definition 2 estimator.
///
/// The implementation generalises the paper's `u′ = q` special case into
/// the uniform rule "fold the previous node into term 2, rotate terms on a
/// layer change": starting from `(0, 0, A_max)` with the root recorded as
/// an ordinary layer-0 selection reproduces Definition 2 exactly for a
/// single root *and* stays correct when several nodes occupy layer 0 —
/// which is what the multi-source (restart-set) extension needs.
#[derive(Debug, Clone)]
pub struct LayerEstimator {
    /// Global maximum of the transition matrix (`A_max`).
    a_max: f64,
    /// Three terms of the *previous* visited node's estimate.
    term1: f64,
    term2: f64,
    term3: f64,
    /// Previous node's layer, exact proximity and column maximum.
    prev: Option<Prev>,
}

#[derive(Debug, Clone, Copy)]
struct Prev {
    layer: u32,
    proximity: f64,
    col_max: f64,
}

impl LayerEstimator {
    /// A fresh estimator for one query; `a_max` is the global maximum
    /// element of the transition matrix. Initial terms are
    /// `(0, 0, A_max)` — no mass selected yet.
    pub fn new(a_max: f64) -> Self {
        LayerEstimator { a_max, term1: 0.0, term2: 0.0, term3: a_max, prev: None }
    }

    /// Records the root (query) node: its exact proximity and its column
    /// maximum `A_max(q)`. Equivalent to
    /// [`record_selected`](Self::record_selected) at layer 0; kept as a
    /// named entry point for readability at call sites.
    pub fn record_root(&mut self, p_q: f64, col_max_q: f64) {
        debug_assert!(self.prev.is_none(), "root recorded twice");
        self.record_selected(0, p_q, col_max_q);
    }

    /// Advances to the node about to be visited at `layer` and returns the
    /// raw term sum `term1 + term2 + term3`. The caller multiplies by the
    /// node-specific `c'_u = (1−c)/(1 − A_uu + c·A_uu)` to get `p̄_u`.
    ///
    /// Panics in debug builds if the visit order violates BFS layering.
    pub fn advance(&mut self, layer: u32) -> f64 {
        let prev = self.prev.expect("advance called before recording a first node");
        debug_assert!(
            layer == prev.layer || layer == prev.layer + 1,
            "BFS order violated: layer {layer} after {}",
            prev.layer
        );
        if layer == prev.layer {
            self.term2 += prev.proximity * prev.col_max;
            self.term3 -= prev.proximity * self.a_max;
        } else {
            self.term1 = self.term2 + prev.proximity * prev.col_max;
            self.term2 = 0.0;
            self.term3 -= prev.proximity * self.a_max;
        }
        // Floating-point cancellation may push term3 a hair negative once
        // almost all probability mass is accounted for; the mathematical
        // value is >= 0 and clamping keeps the bound sound.
        if self.term3 < 0.0 {
            self.term3 = 0.0;
        }
        self.term1 + self.term2 + self.term3
    }

    /// Records the node just visited (after its exact proximity was
    /// computed) so the next [`advance`](LayerEstimator::advance) can build
    /// on it.
    pub fn record_selected(&mut self, layer: u32, proximity: f64, col_max: f64) {
        self.prev = Some(Prev { layer, proximity, col_max });
    }
}

/// Order-agnostic upper bound:
/// `p_u ≤ c'_u · ( Σ_{v ∈ V_s} p_v·A_max(v) + (1 − Σ_{v ∈ V_s} p_v)·A_max )`
/// for every non-query `u`. Every in-neighbour of `u` is either selected
/// (covered by the first sum) or not (covered by the remainder term), so no
/// layer structure is needed — at the price of a much looser bound and no
/// termination guarantee.
#[derive(Debug, Clone)]
pub struct ArbitraryOrderBound {
    a_max: f64,
    /// `Σ_{v ∈ V_s} p_v · A_max(v)`.
    selected_sum: f64,
    /// `1 − Σ_{v ∈ V_s} p_v`.
    remainder: f64,
}

impl ArbitraryOrderBound {
    /// Fresh bound state (no nodes selected yet).
    pub fn new(a_max: f64) -> Self {
        ArbitraryOrderBound { a_max, selected_sum: 0.0, remainder: 1.0 }
    }

    /// The raw bound term; multiply by the node's `c'_u`.
    /// Only valid for non-query nodes.
    pub fn bound_term(&self) -> f64 {
        self.selected_sum + self.remainder.max(0.0) * self.a_max
    }

    /// Accounts a newly selected node.
    pub fn record(&mut self, proximity: f64, col_max: f64) {
        self.selected_sum += proximity * col_max;
        self.remainder -= proximity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Re-computes Definition 1 from scratch for a visit trace and checks
    /// the incremental estimator agrees at every step.
    #[test]
    fn incremental_matches_definition_one() {
        let a_max = 0.9;
        // Synthetic visit trace: (layer, exact proximity, col_max).
        let trace: &[(u32, f64, f64)] = &[
            (0, 0.5, 0.7),  // root
            (1, 0.2, 0.6),
            (1, 0.1, 0.9),
            (2, 0.05, 0.5),
            (2, 0.04, 0.4),
            (2, 0.03, 0.3),
            (3, 0.02, 0.8),
        ];
        let mut est = LayerEstimator::new(a_max);
        est.record_root(trace[0].1, trace[0].2);
        for i in 1..trace.len() {
            let (layer, p, cm) = trace[i];
            let got = est.advance(layer);
            // Definition 1 from scratch over the prefix [0, i).
            let selected = &trace[..i];
            let t1: f64 = selected
                .iter()
                .filter(|(l, _, _)| *l + 1 == layer)
                .map(|(_, p, cm)| p * cm)
                .sum();
            let t2: f64 = selected
                .iter()
                .filter(|(l, _, _)| *l == layer)
                .map(|(_, p, cm)| p * cm)
                .sum();
            let total_p: f64 = selected.iter().map(|(_, p, _)| p).sum();
            let t3 = (1.0 - total_p) * a_max;
            let expect = t1 + t2 + t3;
            assert!((got - expect).abs() < 1e-12, "step {i}: {got} vs {expect}");
            est.record_selected(layer, p, cm);
        }
    }

    #[test]
    fn bounds_are_monotone_non_increasing() {
        // Lemma 2 at the raw-term level (equal c' across nodes).
        let mut est = LayerEstimator::new(0.8);
        est.record_root(0.6, 0.8);
        let trace: &[(u32, f64, f64)] =
            &[(1, 0.15, 0.5), (1, 0.1, 0.7), (2, 0.05, 0.6), (2, 0.02, 0.8), (3, 0.01, 0.4)];
        let mut last = f64::INFINITY;
        for &(layer, p, cm) in trace {
            let term = est.advance(layer);
            assert!(term <= last + 1e-12, "bound increased: {term} > {last}");
            last = term;
            est.record_selected(layer, p, cm);
        }
    }

    #[test]
    fn term3_clamps_at_zero() {
        let mut est = LayerEstimator::new(1.0);
        est.record_root(0.9, 1.0);
        let _ = est.advance(1);
        est.record_selected(1, 0.2, 1.0); // total p now > 1 (adversarial input)
        let term = est.advance(1);
        assert!(term >= 0.0);
    }

    #[test]
    #[should_panic(expected = "advance called before recording")]
    fn advance_requires_root() {
        let mut est = LayerEstimator::new(0.5);
        let _ = est.advance(1);
    }

    /// The generalised chain handles several layer-0 nodes (multi-source
    /// search): after recording all sources, the first layer-1 bound must
    /// cover every source in its first term, exactly as Definition 1.
    #[test]
    fn multi_source_layer_zero_accumulates() {
        let a_max = 0.9;
        let sources = [(0.30, 0.8), (0.20, 0.5), (0.10, 0.9)];
        let mut est = LayerEstimator::new(a_max);
        est.record_root(sources[0].0, sources[0].1);
        for &(p, cm) in &sources[1..] {
            let _ = est.advance(0); // bound unused for sources
            est.record_selected(0, p, cm);
        }
        let got = est.advance(1);
        let t1: f64 = sources.iter().map(|(p, cm)| p * cm).sum();
        let total_p: f64 = sources.iter().map(|(p, _)| p).sum();
        let expect = t1 + (1.0 - total_p) * a_max;
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn arbitrary_bound_shrinks_as_mass_accumulates() {
        let mut b = ArbitraryOrderBound::new(0.9);
        let before = b.bound_term();
        assert!((before - 0.9).abs() < 1e-15);
        b.record(0.5, 0.3);
        let after = b.bound_term();
        // 0.5·0.3 + 0.5·0.9 = 0.6 < 0.9
        assert!((after - 0.6).abs() < 1e-12);
        assert!(after < before);
    }

    #[test]
    fn arbitrary_bound_never_negative() {
        let mut b = ArbitraryOrderBound::new(0.9);
        b.record(0.8, 0.1);
        b.record(0.3, 0.1); // over-accounted mass
        assert!(b.bound_term() >= 0.0);
    }
}
