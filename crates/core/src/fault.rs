//! Injectable I/O faults for crash testing the durability paths.
//!
//! The persistence layer ([`save_atomic_with`](crate::persist::save_atomic_with))
//! and the update journal (`kdash-dynamic`) route every write, fsync,
//! rename and truncate through a [`FaultInjector`] before touching the
//! file system. Production code passes [`NoFaults`], which compiles down
//! to straight-line I/O. Tests pass a [`CrashPlan`], which simulates a
//! power cut at an exact byte offset (a *torn write*: a prefix of the
//! payload reaches the disk, then the process "dies"), on the nth fsync,
//! or between the rename and its directory fsync — and then keeps
//! failing every later operation, because a crashed process does not get
//! to run its cleanup code either.
//!
//! The sweep protocol is two-pass: run the scenario once with
//! [`CrashPlan::count_only`] to enumerate every injectable point, then
//! re-run it once per point with [`CrashPlan::crash_at`] and assert that
//! recovery restores an audited, bit-identical state. Each byte of each
//! write is its own point, so a frame torn mid-CRC and a frame torn
//! mid-length-field are distinct scenarios.
//!
//! Injected failures are ordinary [`io::Error`]s wrapping the
//! [`InjectedCrash`] marker so durability code can distinguish "the
//! process is gone" (leave the torn bytes for recovery to find) from a
//! real transient error (heal and retry): see [`is_injected_crash`].

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// What a [`FaultInjector`] decides about an impending write of `len`
/// payload bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteRuling {
    /// Write all `len` bytes normally.
    Proceed,
    /// Write only the first `keep` bytes (`keep < len`), then fail with
    /// an injected-crash error — the on-disk effect of losing power
    /// mid-write.
    Tear {
        /// Number of payload bytes that reach the file before the crash.
        keep: usize,
    },
}

/// A hook invoked before each durability-relevant file operation.
///
/// `label` is a human-readable name for the file being operated on
/// (usually its path); [`CrashPlan`] records it so a sweep can report
/// *which* operation each crash point interrupted and filter points by
/// file.
pub trait FaultInjector: Send + Sync + std::fmt::Debug {
    /// Called before writing `len` payload bytes to `label`.
    fn before_write(&self, label: &str, len: usize) -> WriteRuling {
        let _ = (label, len);
        WriteRuling::Proceed
    }

    /// Called before fsyncing `label` (a file or a directory).
    fn before_fsync(&self, label: &str) -> io::Result<()> {
        let _ = label;
        Ok(())
    }

    /// Called before renaming `from` over `to`.
    fn before_rename(&self, from: &str, to: &str) -> io::Result<()> {
        let _ = (from, to);
        Ok(())
    }

    /// Called before truncating `label` (journal tail self-heal).
    fn before_truncate(&self, label: &str) -> io::Result<()> {
        let _ = label;
        Ok(())
    }
}

/// The production injector: every operation proceeds untouched.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl FaultInjector for NoFaults {}

/// Marker payload inside every injected-crash [`io::Error`], so callers
/// can tell a simulated power cut from a genuine I/O failure.
#[derive(Debug)]
pub struct InjectedCrash {
    /// Description of the interrupted operation (file label + op kind).
    pub point: String,
}

impl std::fmt::Display for InjectedCrash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected crash at {}", self.point)
    }
}

impl std::error::Error for InjectedCrash {}

/// Builds the [`io::Error`] a tripped failpoint returns.
pub fn injected_crash_error(point: impl Into<String>) -> io::Error {
    io::Error::other(InjectedCrash { point: point.into() })
}

/// `true` iff `e` (or its source chain root) is an injected crash rather
/// than a real I/O failure. Durability code uses this to *skip* healing
/// and cleanup: a crashed process leaves its torn bytes behind, and the
/// recovery path must cope with exactly that debris.
pub fn is_injected_crash(e: &io::Error) -> bool {
    e.get_ref().is_some_and(|inner| inner.is::<InjectedCrash>())
}

/// One recorded injectable operation: `(first point id, width in points,
/// label)`. Writes are `len` points wide (one per torn-prefix length);
/// fsync / rename / truncate are one point each.
pub type PlannedPoint = (u64, u64, String);

/// A deterministic crash scenario for the two-pass sweep protocol.
///
/// Points are numbered in execution order. A write of `len` bytes
/// occupies `len` consecutive points: point `p` within it means "crash
/// after `p - start` bytes reached the file" (so the first point of a
/// write is a zero-byte torn write, and a crash *after* the final byte
/// is represented by the following operation's point). fsync, rename and
/// truncate each occupy one point. After the planned point trips, every
/// subsequent operation fails too — the process is dead.
#[derive(Debug)]
pub struct CrashPlan {
    crash_at: Option<u64>,
    cursor: AtomicU64,
    tripped: Mutex<Option<String>>,
    log: Mutex<Vec<PlannedPoint>>,
}

impl CrashPlan {
    /// A counting pass: no operation fails; afterwards [`Self::points`]
    /// and [`Self::planned`] describe every injectable point the
    /// scenario executed.
    pub fn count_only() -> Self {
        CrashPlan {
            crash_at: None,
            cursor: AtomicU64::new(0),
            tripped: Mutex::new(None),
            log: Mutex::new(Vec::new()),
        }
    }

    /// A crash pass: the operation covering `point` fails as a simulated
    /// power cut, and every operation after it fails as well.
    pub fn crash_at(point: u64) -> Self {
        CrashPlan {
            crash_at: Some(point),
            cursor: AtomicU64::new(0),
            tripped: Mutex::new(None),
            log: Mutex::new(Vec::new()),
        }
    }

    /// Total injectable points consumed so far.
    pub fn points(&self) -> u64 {
        self.cursor.load(Ordering::SeqCst)
    }

    /// The recorded `(start, width, label)` of every operation, in
    /// execution order.
    pub fn planned(&self) -> Vec<PlannedPoint> {
        lock_unpoisoned(&self.log).clone()
    }

    /// Description of the operation the plan crashed, if it fired.
    pub fn tripped(&self) -> Option<String> {
        lock_unpoisoned(&self.tripped).clone()
    }

    fn dead(&self) -> bool {
        lock_unpoisoned(&self.tripped).is_some()
    }

    fn trip(&self, what: String) -> io::Error {
        let mut tripped = lock_unpoisoned(&self.tripped);
        if tripped.is_none() {
            *tripped = Some(what.clone());
        }
        drop(tripped);
        injected_crash_error(what)
    }

    /// Claims `width` points for an operation described by `label`;
    /// returns the offset of the planned crash within the claim, if the
    /// crash lands inside it.
    fn claim(&self, width: u64, label: &str, op: &str) -> Option<u64> {
        let start = self.cursor.fetch_add(width, Ordering::SeqCst);
        lock_unpoisoned(&self.log).push((start, width, format!("{op} {label}")));
        match self.crash_at {
            Some(p) if p >= start && p < start + width => Some(p - start),
            _ => None,
        }
    }
}

/// A mutex-poisoning panic in a *fault injector* must not masquerade as
/// a durability bug; recover the data instead.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl FaultInjector for CrashPlan {
    fn before_write(&self, label: &str, len: usize) -> WriteRuling {
        if self.dead() {
            return WriteRuling::Tear { keep: 0 };
        }
        // A write of n bytes has n distinct torn prefixes (0..n kept
        // bytes); "all n bytes landed" is the next operation's point.
        // Zero-length writes still claim one point so they are sweepable.
        let width = (len as u64).max(1);
        match self.claim(width, label, "write") {
            Some(offset) => {
                self.trip(format!("write {label} (torn after {offset} of {len} bytes)"));
                WriteRuling::Tear { keep: (offset as usize).min(len) }
            }
            None => WriteRuling::Proceed,
        }
    }

    fn before_fsync(&self, label: &str) -> io::Result<()> {
        if self.dead() {
            return Err(injected_crash_error(format!("fsync {label} (process dead)")));
        }
        match self.claim(1, label, "fsync") {
            Some(_) => Err(self.trip(format!("fsync {label}"))),
            None => Ok(()),
        }
    }

    fn before_rename(&self, from: &str, to: &str) -> io::Result<()> {
        if self.dead() {
            return Err(injected_crash_error(format!("rename {from} (process dead)")));
        }
        match self.claim(1, from, "rename") {
            Some(_) => Err(self.trip(format!("rename {from} -> {to}"))),
            None => Ok(()),
        }
    }

    fn before_truncate(&self, label: &str) -> io::Result<()> {
        if self.dead() {
            return Err(injected_crash_error(format!("truncate {label} (process dead)")));
        }
        match self.claim(1, label, "truncate") {
            Some(_) => Err(self.trip(format!("truncate {label}"))),
            None => Ok(()),
        }
    }
}

/// Writes `bytes` to `file` under the injector's ruling. On
/// [`WriteRuling::Tear`] the kept prefix is written and flushed — the
/// simulated crash must leave exactly those bytes durable-visible — and
/// an injected-crash error is returned.
pub fn injected_write(
    faults: &dyn FaultInjector,
    label: &str,
    file: &mut File,
    bytes: &[u8],
) -> io::Result<()> {
    match faults.before_write(label, bytes.len()) {
        WriteRuling::Proceed => file.write_all(bytes),
        WriteRuling::Tear { keep } => {
            let keep = keep.min(bytes.len());
            file.write_all(&bytes[..keep])?;
            file.flush()?;
            Err(injected_crash_error(format!("write {label} (torn after {keep} bytes)")))
        }
    }
}

/// How many times [`retry_transient`] attempts an operation before
/// giving up.
pub const RETRY_ATTEMPTS: u32 = 3;

/// Base backoff between retry attempts; doubles each attempt.
pub const RETRY_BASE_BACKOFF: Duration = Duration::from_millis(2);

/// `true` for error kinds that a bounded retry can reasonably clear.
///
/// Deliberately narrow: `Interrupted` (EINTR), `WouldBlock` and
/// `TimedOut`. A *failed* fsync in particular is never retried — after
/// the kernel reports an fsync error, dirty pages may already have been
/// dropped, so "retry until it succeeds" silently converts data loss
/// into a success report (the fsyncgate failure mode). Injected crashes
/// are not transient either: the process is supposed to be dead.
pub fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Runs `op`, retrying up to [`RETRY_ATTEMPTS`] times with doubling
/// backoff while it fails with a [transient](is_transient) error.
pub fn retry_transient<T>(mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut attempt = 0;
    loop {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if attempt + 1 < RETRY_ATTEMPTS && is_transient(&e) => {
                std::thread::sleep(RETRY_BASE_BACKOFF * (1 << attempt));
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// Fsyncs the directory containing `path` through the injector, making
/// a just-completed rename durable. Filesystem refusal to fsync a
/// directory (`Unsupported` / `InvalidInput` / `PermissionDenied`) is
/// tolerated — on such filesystems there is nothing stronger to do —
/// but real failures and injected crashes propagate.
pub fn sync_parent_dir(path: &Path, faults: &dyn FaultInjector) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let label = parent.display().to_string();
    let result = retry_transient(|| {
        faults.before_fsync(&label)?;
        File::open(parent)?.sync_all()
    });
    match result {
        Err(e)
            if !is_injected_crash(&e)
                && matches!(
                    e.kind(),
                    io::ErrorKind::Unsupported
                        | io::ErrorKind::InvalidInput
                        | io::ErrorKind::PermissionDenied
                ) =>
        {
            Ok(())
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_lets_everything_through() {
        let f = NoFaults;
        assert_eq!(f.before_write("x", 100), WriteRuling::Proceed);
        assert!(f.before_fsync("x").is_ok());
        assert!(f.before_rename("a", "b").is_ok());
        assert!(f.before_truncate("x").is_ok());
    }

    #[test]
    fn count_only_enumerates_points_without_failing() {
        let plan = CrashPlan::count_only();
        assert_eq!(plan.before_write("f", 10), WriteRuling::Proceed);
        assert!(plan.before_fsync("f").is_ok());
        assert!(plan.before_rename("f", "g").is_ok());
        assert!(plan.before_truncate("f").is_ok());
        assert_eq!(plan.points(), 13); // 10 write bytes + 3 single-point ops
        assert!(plan.tripped().is_none());
        let planned = plan.planned();
        assert_eq!(planned.len(), 4);
        assert_eq!(planned[0], (0, 10, "write f".to_string()));
        assert_eq!(planned[1], (10, 1, "fsync f".to_string()));
    }

    #[test]
    fn crash_at_tears_the_covering_write_and_kills_later_ops() {
        let plan = CrashPlan::crash_at(3);
        assert_eq!(plan.before_write("f", 10), WriteRuling::Tear { keep: 3 });
        assert!(plan.tripped().is_some());
        // The process is dead: later operations fail even though their
        // points were never planned.
        assert_eq!(plan.before_write("f", 10), WriteRuling::Tear { keep: 0 });
        let err = plan.before_fsync("f").unwrap_err();
        assert!(is_injected_crash(&err));
    }

    #[test]
    fn crash_on_fsync_point() {
        let plan = CrashPlan::crash_at(10);
        assert_eq!(plan.before_write("f", 10), WriteRuling::Proceed);
        let err = plan.before_fsync("f").unwrap_err();
        assert!(is_injected_crash(&err));
        assert_eq!(plan.tripped().as_deref(), Some("fsync f"));
    }

    #[test]
    fn injected_crash_marker_is_detectable() {
        let e = injected_crash_error("fsync x");
        assert!(is_injected_crash(&e));
        assert!(!is_injected_crash(&io::Error::other("plain")));
        assert!(format!("{e}").contains("injected crash"));
    }

    #[test]
    fn retry_transient_retries_eintr_then_succeeds() {
        let mut calls = 0;
        let result = retry_transient(|| {
            calls += 1;
            if calls < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(result.unwrap(), 42);
        assert_eq!(calls, 3);
    }

    #[test]
    fn retry_transient_gives_up_after_bounded_attempts() {
        let mut calls = 0;
        let result: io::Result<()> = retry_transient(|| {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::Interrupted, "eintr forever"))
        });
        assert!(result.is_err());
        assert_eq!(calls, RETRY_ATTEMPTS as usize);
    }

    #[test]
    fn retry_transient_never_retries_real_or_injected_failures() {
        let mut calls = 0;
        let _ = retry_transient(|| -> io::Result<()> {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::NotFound, "gone"))
        });
        assert_eq!(calls, 1);
        calls = 0;
        let _ = retry_transient(|| -> io::Result<()> {
            calls += 1;
            Err(injected_crash_error("fsync f"))
        });
        assert_eq!(calls, 1);
    }
}
