//! Deep structural auditing of a built (or loaded, or patched) index.
//!
//! The persistence layer checks what can be checked *while streaming* —
//! counts, checksums, and the component validators' invariants. This
//! module is the fsck counterpart: given a fully assembled
//! [`KdashIndex`], [`IndexAudit::run`] re-derives every invariant the
//! query path silently relies on and reports violations as findings
//! instead of panicking or, worse, returning wrong proximities:
//!
//! * the permutation is a bijection;
//! * the permuted graph's CSR arrays are monotone, sorted, in bounds,
//!   with finite positive weights;
//! * `L⁻¹` is genuinely lower triangular with an exact unit diagonal
//!   leading every column (the scatter path assumes `x_q = 1`);
//! * `U⁻¹` is genuinely upper triangular with a nonzero diagonal leading
//!   every row, and — in the blocked layout — the run encoding obeys the
//!   decode contract (aligned anchors, full coverage, strictly ascending
//!   decoded columns);
//! * the per-row policy stats and `max_row_nnz` agree with the rows they
//!   summarise (a wrong table mis-steers the adaptive kernel);
//! * the estimator constants are **bit-identical** to a recomputation
//!   from the stored graph — the Lemma 1/2 bounds are only sound for the
//!   matrix actually indexed;
//! * the header scalars (restart probability, cached `c'_max`) are
//!   coherent.
//!
//! The audit never panics and allocates only small per-section scratch.
//! It is exposed three ways: `kdash verify <index>` (the operational
//! fsck), `DynamicIndex::verify_after_apply` (opt-in post-update check),
//! and directly through this API.

use crate::KdashIndex;
use kdash_sparse::{transition_matrix, w_matrix, LuFactors, RowLayout, BLOCK_COLS};
use std::time::{Duration, Instant};

/// Cap on stored findings: a corrupted index tends to violate one
/// invariant thousands of times; the first handful identify the damage
/// and the rest are noise. The total count is still reported.
const MAX_FINDINGS: usize = 64;

/// One audited section: what was checked, how many elementary checks ran,
/// and how long it took (the `kdash verify` per-section report lines).
#[derive(Debug, Clone)]
pub struct AuditSection {
    /// Section name, aligned with the on-disk section names of
    /// [`crate::persist::Section`] where the two overlap.
    pub name: &'static str,
    /// Elementary invariant checks evaluated.
    pub checks: usize,
    /// Wall-clock the section took.
    pub duration: Duration,
}

/// One violated invariant.
#[derive(Debug, Clone)]
pub struct AuditFinding {
    /// The section the violation was found in.
    pub section: &'static str,
    /// What exactly is wrong, with the offending row/column/node.
    pub detail: String,
}

/// The result of a full structural audit: per-section accounting plus
/// every finding (violations), capped at [`MAX_FINDINGS`] stored entries.
#[derive(Debug, Clone)]
pub struct IndexAudit {
    /// Per-section accounting, in execution order.
    pub sections: Vec<AuditSection>,
    /// The violations found (first [`MAX_FINDINGS`]; see `suppressed`).
    pub findings: Vec<AuditFinding>,
    /// Findings beyond the storage cap (count only).
    pub suppressed: usize,
}

/// Collects findings during a run, enforcing the storage cap.
struct Collector {
    findings: Vec<AuditFinding>,
    suppressed: usize,
    checks: usize,
}

impl Collector {
    fn new() -> Self {
        Collector { findings: Vec::new(), suppressed: 0, checks: 0 }
    }

    fn check(&mut self, section: &'static str, ok: bool, detail: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            if self.findings.len() < MAX_FINDINGS {
                self.findings.push(AuditFinding { section, detail: detail() });
            } else {
                self.suppressed += 1;
            }
        }
    }
}

impl IndexAudit {
    /// Runs the full audit. Never panics; violations become findings.
    pub fn run(index: &KdashIndex) -> IndexAudit {
        let (sections, col) = Self::run_core(index);
        IndexAudit { sections, findings: col.findings, suppressed: col.suppressed }
    }

    /// Runs the full audit plus the factor-consistency section
    /// (`kdash verify --factors`): the LU factors are checked for
    /// triangularity, the diagonal-last `U` layout, agreement with the
    /// stored nnz stats, and — the expensive part — `W = L·U` is
    /// spot-recomputed on a deterministic sample of columns against a
    /// fresh rebuild of `W` from the stored graph.
    ///
    /// `factors` overrides the source: pass `Some` to audit factors held
    /// outside the index (the dynamic engine's kept copy), or `None` to
    /// use `index.factors()`. When neither is available the `"factors"`
    /// section is reported with zero checks — an index without kept
    /// factors (every persisted index) has nothing to verify, which is
    /// not a finding.
    pub fn run_with_factors(index: &KdashIndex, factors: Option<&LuFactors>) -> IndexAudit {
        let (mut sections, mut col) = Self::run_core(index);
        let before = col.checks;
        let t = Instant::now();
        if let Some(f) = factors.or_else(|| index.factors()) {
            audit_factors(index, f, &mut col);
        }
        sections.push(AuditSection {
            name: "factors",
            checks: col.checks - before,
            duration: t.elapsed(),
        });
        IndexAudit { sections, findings: col.findings, suppressed: col.suppressed }
    }

    fn run_core(index: &KdashIndex) -> (Vec<AuditSection>, Collector) {
        let mut col = Collector::new();
        let mut sections = Vec::with_capacity(9);
        let steps: [(&'static str, fn(&KdashIndex, &mut Collector)); 8] = [
            ("header", audit_header),
            ("permutation", audit_permutation),
            ("graph", audit_graph),
            ("linv", audit_linv),
            ("uinv", audit_uinv),
            ("row-stats", audit_row_stats),
            ("estimator", audit_estimator),
            ("sparsify", audit_sparsify),
        ];
        for (name, step) in steps {
            let before = col.checks;
            let t = Instant::now();
            step(index, &mut col);
            sections.push(AuditSection {
                name,
                checks: col.checks - before,
                duration: t.elapsed(),
            });
        }
        (sections, col)
    }

    /// True when no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.suppressed == 0
    }

    /// Total findings including the ones beyond the storage cap.
    pub fn total_findings(&self) -> usize {
        self.findings.len() + self.suppressed
    }

    /// Converts a dirty audit into [`crate::KdashError::AuditFailed`]
    /// carrying the `"section: detail"` strings (clean audits pass).
    pub fn into_result(self) -> crate::Result<()> {
        if self.is_clean() {
            return Ok(());
        }
        let mut findings: Vec<String> = self
            .findings
            .iter()
            .map(|f| format!("{}: {}", f.section, f.detail))
            .collect();
        if self.suppressed > 0 {
            findings.push(format!("… and {} further finding(s) suppressed", self.suppressed));
        }
        Err(crate::KdashError::AuditFailed { findings })
    }
}

/// Header scalars: restart probability in range, cached `c'_max` coherent
/// with the per-node array, component dimensions agreeing.
fn audit_header(index: &KdashIndex, col: &mut Collector) {
    const S: &str = "header";
    let n = index.num_nodes();
    let c = index.restart_probability();
    col.check(S, c.is_finite() && 0.0 < c && c < 1.0, || {
        format!("restart probability {c} outside (0, 1)")
    });
    col.check(S, index.permutation().len() == n, || {
        format!("permutation covers {} nodes, graph has {n}", index.permutation().len())
    });
    let linv = index.linv();
    col.check(S, linv.nrows() == n && linv.ncols() == n, || {
        format!("L⁻¹ is {}×{}, expected {n}×{n}", linv.nrows(), linv.ncols())
    });
    let uinv = index.uinv();
    col.check(S, uinv.nrows() == n && uinv.ncols() == n, || {
        format!("U⁻¹ is {}×{}, expected {n}×{n}", uinv.nrows(), uinv.ncols())
    });
    col.check(S, index.a_col_max().len() == n, || {
        format!("A_max(v) has {} entries, expected {n}", index.a_col_max().len())
    });
    col.check(S, index.c_prime().len() == n, || {
        format!("c' has {} entries, expected {n}", index.c_prime().len())
    });
    let expect_max = index.c_prime().iter().copied().fold(0.0f64, f64::max);
    col.check(S, index.c_prime_max().to_bits() == expect_max.to_bits(), || {
        format!(
            "cached c'_max {} disagrees with max over c' entries {}",
            index.c_prime_max(),
            expect_max
        )
    });
}

/// The permutation must be a bijection on `0..n` — a repeated or
/// out-of-range id silently aliases two nodes' proximities.
fn audit_permutation(index: &KdashIndex, col: &mut Collector) {
    const S: &str = "permutation";
    let n = index.num_nodes();
    let order = index.permutation().order();
    let mut seen = vec![false; n];
    for (new, &old) in order.iter().enumerate() {
        let ok = (old as usize) < n && !seen[(old as usize).min(n.saturating_sub(1))];
        if (old as usize) < n {
            seen[old as usize] = true;
        }
        col.check(S, ok, || format!("position {new} maps to invalid or repeated node {old}"));
    }
}

/// The permuted graph's CSR arrays: monotone covering row pointers,
/// strictly ascending in-bounds targets, finite positive weights — the
/// invariants [`kdash_graph::CsrGraph::from_raw_parts`] enforces,
/// re-proved on the live arrays.
fn audit_graph(index: &KdashIndex, col: &mut Collector) {
    const S: &str = "graph";
    let g = index.permuted_graph();
    let n = g.num_nodes();
    let (row_ptr, col_idx, weights) = g.raw();
    col.check(S, row_ptr.len() == n + 1, || {
        format!("row pointer array has {} entries, expected {}", row_ptr.len(), n + 1)
    });
    col.check(
        S,
        row_ptr.first() == Some(&0) && row_ptr.last() == Some(&col_idx.len()),
        || "row pointers do not cover the edge arrays".to_string(),
    );
    col.check(S, col_idx.len() == weights.len(), || {
        format!("{} targets but {} weights", col_idx.len(), weights.len())
    });
    for v in 0..n {
        let (lo, hi) = (row_ptr[v.min(row_ptr.len() - 1)], row_ptr[(v + 1).min(row_ptr.len() - 1)]);
        col.check(S, lo <= hi && hi <= col_idx.len(), || {
            format!("row {v}: pointer range {lo}..{hi} invalid")
        });
        if lo > hi || hi > col_idx.len() {
            continue;
        }
        let mut prev: Option<u32> = None;
        for i in lo..hi {
            let (t, w) = (col_idx[i], weights[i]);
            col.check(S, (t as usize) < n, || format!("row {v}: target {t} out of bounds"));
            col.check(S, w.is_finite() && w > 0.0, || {
                format!("row {v}: weight {w} not finite-positive")
            });
            col.check(S, prev.is_none_or(|p| p < t), || {
                format!("row {v}: targets not strictly ascending at {t}")
            });
            prev = Some(t);
        }
    }
}

/// `L⁻¹` must be lower triangular with an exact unit diagonal *leading*
/// each column: the query scatter assumes column `q` starts with
/// `(q, 1.0)` (forward substitution on a unit-lower factor never scales
/// the seed entry, so equality is exact, not approximate).
fn audit_linv(index: &KdashIndex, col: &mut Collector) {
    const S: &str = "linv";
    let linv = index.linv();
    let n = linv.ncols();
    let (col_ptr, row_idx, values) = linv.raw();
    col.check(
        S,
        col_ptr.len() == n + 1
            && col_ptr.first() == Some(&0)
            && col_ptr.last() == Some(&row_idx.len())
            && row_idx.len() == values.len(),
        || "column pointers do not cover the entry arrays".to_string(),
    );
    for j in 0..n {
        let (lo, hi) = (col_ptr[j.min(col_ptr.len() - 1)], col_ptr[(j + 1).min(col_ptr.len() - 1)]);
        if lo > hi || hi > row_idx.len() {
            col.check(S, false, || format!("column {j}: pointer range {lo}..{hi} invalid"));
            continue;
        }
        col.check(S, lo < hi, || format!("column {j}: empty (diagonal entry missing)"));
        let mut prev: Option<u32> = None;
        for i in lo..hi {
            let (r, v) = (row_idx[i], values[i]);
            col.check(S, (r as usize) < n, || format!("column {j}: row {r} out of bounds"));
            col.check(S, (r as usize) >= j, || {
                format!("column {j}: entry at row {r} above the diagonal")
            });
            col.check(S, v.is_finite(), || format!("column {j}: non-finite value at row {r}"));
            col.check(S, prev.is_none_or(|p| p < r), || {
                format!("column {j}: rows not strictly ascending at {r}")
            });
            prev = Some(r);
        }
        if lo < hi {
            col.check(S, row_idx[lo] as usize == j && values[lo].to_bits() == 1.0f64.to_bits(), || {
                format!(
                    "column {j}: leading entry ({}, {}) is not the exact unit diagonal",
                    row_idx[lo], values[lo]
                )
            });
        }
    }
}

/// `U⁻¹` must be upper triangular with a nonzero diagonal leading every
/// row; in the blocked layout the run encoding must additionally obey the
/// decode contract (aligned anchors, runs covering exactly the row's
/// span, strictly ascending decoded columns in bounds).
fn audit_uinv(index: &KdashIndex, col: &mut Collector) {
    const S: &str = "uinv";
    let store = index.uinv();
    let n = store.nrows();
    match store.layout() {
        RowLayout::Flat => {
            let Some(csr) = store.as_flat() else {
                col.check(S, false, || "layout says flat but no flat matrix is stored".into());
                return;
            };
            for r in 0..n as u32 {
                let (cols, vals) = csr.row(r);
                audit_uinv_row(S, col, n, r, cols.iter().copied(), vals);
            }
        }
        RowLayout::Blocked => {
            let Some(blocked) = store.as_blocked() else {
                col.check(S, false, || {
                    "layout says blocked but no blocked matrix is stored".into()
                });
                return;
            };
            let (row_ptr, run_ptr, run_base, run_end, deltas, values) = blocked.raw();
            col.check(
                S,
                row_ptr.len() == n + 1
                    && run_ptr.len() == n + 1
                    && run_base.len() == run_end.len()
                    && deltas.len() == values.len()
                    && row_ptr.last() == Some(&deltas.len())
                    && run_ptr.last() == Some(&run_base.len()),
                || "blocked arrays do not cover each other".to_string(),
            );
            let mut decoded: Vec<u32> = Vec::new();
            for r in 0..n {
                let (lo, hi) =
                    (row_ptr[r.min(row_ptr.len() - 1)], row_ptr[(r + 1).min(row_ptr.len() - 1)]);
                let (rlo, rhi) =
                    (run_ptr[r.min(run_ptr.len() - 1)], run_ptr[(r + 1).min(run_ptr.len() - 1)]);
                if lo > hi || hi > deltas.len() || rlo > rhi || rhi > run_base.len() {
                    col.check(S, false, || format!("row {r}: invalid pointer ranges"));
                    continue;
                }
                col.check(S, (lo < hi) == (rlo < rhi), || {
                    format!("row {r}: runs and nonzeros disagree")
                });
                decoded.clear();
                let mut start = lo;
                let mut runs_ok = true;
                for k in rlo..rhi {
                    let (base, end) = (run_base[k], run_end[k] as usize);
                    col.check(S, base % BLOCK_COLS == 0, || {
                        format!("row {r}: unaligned run anchor {base}")
                    });
                    if end <= start || end > hi {
                        col.check(S, false, || format!("row {r}: run end {end} outside row"));
                        runs_ok = false;
                        break;
                    }
                    for i in start..end {
                        decoded.push(base + deltas[i] as u32);
                    }
                    start = end;
                }
                if !runs_ok {
                    continue;
                }
                col.check(S, start == hi, || format!("row {r}: runs do not cover the row"));
                audit_uinv_row(S, col, n, r as u32, decoded.iter().copied(), &values[lo..hi]);
            }
        }
    }
}

/// Shared per-row triangularity check for both `U⁻¹` layouts.
fn audit_uinv_row(
    section: &'static str,
    col: &mut Collector,
    n: usize,
    r: u32,
    cols: impl Iterator<Item = u32>,
    vals: &[f64],
) {
    let mut prev: Option<u32> = None;
    let mut count = 0usize;
    for (i, c) in cols.enumerate() {
        col.check(section, (c as usize) < n, || format!("row {r}: column {c} out of bounds"));
        col.check(section, c >= r, || format!("row {r}: entry in column {c} below the diagonal"));
        col.check(section, prev.is_none_or(|p| p < c), || {
            format!("row {r}: columns not strictly ascending at {c}")
        });
        if i == 0 {
            col.check(section, c == r, || {
                format!("row {r}: leading column is {c}, not the diagonal")
            });
        }
        prev = Some(c);
        count += 1;
    }
    col.check(section, count > 0, || format!("row {r}: empty (diagonal entry missing)"));
    col.check(section, vals.len() == count, || {
        format!("row {r}: {} values for {count} columns", vals.len())
    });
    for (i, v) in vals.iter().enumerate() {
        col.check(section, v.is_finite(), || format!("row {r}: non-finite value at entry {i}"));
    }
    if let Some(first) = vals.first() {
        col.check(section, *first != 0.0, || format!("row {r}: zero diagonal value"));
    }
}

/// The stored per-row policy table (and the cached `max_row_nnz`) must
/// describe the rows actually stored — a skewed table silently steers the
/// adaptive kernel into the wrong gather strategy.
fn audit_row_stats(index: &KdashIndex, col: &mut Collector) {
    const S: &str = "row-stats";
    let store = index.uinv();
    let n = store.nrows();
    let stats = store.row_stats();
    col.check(S, stats.len() == n, || {
        format!("stats table has {} rows, store has {n}", stats.len())
    });
    let mut max_nnz = 0usize;
    for r in 0..n.min(stats.len()) {
        let stat = stats[r];
        max_nnz = max_nnz.max(stat.nnz as usize);
        let (nnz, first, last) = match store.layout() {
            RowLayout::Flat => match store.as_flat() {
                Some(csr) => {
                    let (cols, _) = csr.row(r as u32);
                    (cols.len(), cols.first().copied(), cols.last().copied())
                }
                None => continue,
            },
            RowLayout::Blocked => match store.as_blocked() {
                Some(b) => {
                    let r = r as u32;
                    (b.row_nnz(r), b.row_first_col(r), b.row_last_col(r))
                }
                None => continue,
            },
        };
        col.check(S, stat.nnz as usize == nnz, || {
            format!("row {r}: stat nnz {} but {nnz} stored entries", stat.nnz)
        });
        if nnz > 0 {
            col.check(
                S,
                first == Some(stat.first) && last == Some(stat.last),
                || {
                    format!(
                        "row {r}: stat span [{}, {}] but stored span [{:?}, {:?}]",
                        stat.first, stat.last, first, last
                    )
                },
            );
        }
    }
    col.check(S, store.max_row_nnz() == max_nnz, || {
        format!("cached max_row_nnz {} but widest row has {max_nnz}", store.max_row_nnz())
    });
}

/// The estimator constants must be **bit-identical** to a recomputation
/// from the stored permuted graph under the recorded dangling policy —
/// the same derivation the build pipeline runs. Anything else means the
/// Lemma 1/2 bounds describe a different matrix than the one indexed,
/// and "exact top-k" is no longer a theorem.
fn audit_estimator(index: &KdashIndex, col: &mut Collector) {
    const S: &str = "estimator";
    let n = index.num_nodes();
    let a = transition_matrix(index.permuted_graph(), index.dangling_policy());
    let expect_col_max = a.col_max();
    let expect_a_max = a.global_max();
    let c = index.restart_probability();
    col.check(S, index.a_max().to_bits() == expect_a_max.to_bits(), || {
        format!("A_max {} disagrees with recomputed {}", index.a_max(), expect_a_max)
    });
    let stored = index.a_col_max();
    for v in 0..n.min(stored.len()).min(expect_col_max.len()) {
        col.check(S, stored[v].to_bits() == expect_col_max[v].to_bits(), || {
            format!("A_max(v) at node {v}: stored {} recomputed {}", stored[v], expect_col_max[v])
        });
    }
    let c_prime = index.c_prime();
    for v in 0..n.min(c_prime.len()) {
        let a_vv = a.get(v as u32, v as u32).unwrap_or(0.0);
        let expect = (1.0 - c) / (1.0 - a_vv + c * a_vv);
        col.check(S, c_prime[v].to_bits() == expect.to_bits(), || {
            format!("c' at node {v}: stored {} recomputed {}", c_prime[v], expect)
        });
    }
}

/// The sparsification record: the drop tolerance is finite and
/// non-negative, both dropped-mass vectors cover every node with finite
/// non-negative entries, and a dense-exact build (`ε = 0`) dropped
/// nothing — mass under a zero tolerance means the inverses and the
/// record disagree about what was stored.
fn audit_sparsify(index: &KdashIndex, col: &mut Collector) {
    const S: &str = "sparsify";
    let n = index.num_nodes();
    let eps = index.drop_tolerance();
    col.check(S, eps.is_finite() && eps >= 0.0, || {
        format!("drop tolerance {eps} not finite and non-negative")
    });
    let (linv_dropped, uinv_dropped) = index.dropped_masses();
    col.check(S, linv_dropped.len() == n, || {
        format!("L⁻¹ dropped-mass vector has {} entries, expected {n}", linv_dropped.len())
    });
    col.check(S, uinv_dropped.len() == n, || {
        format!("U⁻¹ dropped-mass vector has {} entries, expected {n}", uinv_dropped.len())
    });
    for (label, masses) in [("L⁻¹", linv_dropped), ("U⁻¹", uinv_dropped)] {
        for (j, &m) in masses.iter().enumerate() {
            col.check(S, m.is_finite() && m >= 0.0, || {
                format!("{label} column {j}: dropped mass {m} not finite and non-negative")
            });
            if eps == 0.0 {
                col.check(S, m == 0.0, || {
                    format!("{label} column {j}: dropped mass {m} under a zero drop tolerance")
                });
            }
        }
    }
    let total = linv_dropped.iter().sum::<f64>() + uinv_dropped.iter().sum::<f64>();
    col.check(S, index.dropped_mass().to_bits() == total.to_bits(), || {
        format!(
            "cached dropped-mass total {} disagrees with recomputed {total}",
            index.dropped_mass()
        )
    });
}

/// Spot-check columns for [`audit_factors`]: deterministic, always the
/// first and last column plus an even stride between them, at most `cap`.
fn sampled_columns(n: usize, cap: usize) -> Vec<u32> {
    if n == 0 || cap == 0 {
        return Vec::new();
    }
    if n <= cap {
        return (0..n as u32).collect();
    }
    let mut cols: Vec<u32> = (0..cap).map(|i| (i * (n - 1) / (cap - 1)) as u32).collect();
    cols.dedup();
    cols
}

/// Relative tolerance for the `W = L·U` spot check. The factorisation is
/// exact left-looking elimination, so the residual is pure rounding —
/// well under this bound on diagonally dominant `W`.
const FACTOR_SPOT_TOL: f64 = 1e-10;

/// Kept LU factors (`kdash verify --factors` / the dynamic engine's
/// post-apply check): both triangles structurally sound (`L` strictly
/// lower and unit-diagonal by convention, `U` upper with its diagonal
/// stored *last* per column, exactly as the left-looking factorisation
/// emits them), the stored nnz stats in agreement, and `W = L·U`
/// spot-recomputed on sampled columns against a fresh `W` rebuilt from
/// the stored graph — stale factors from before a graph change fail this
/// even when they are perfectly well-formed.
fn audit_factors(index: &KdashIndex, f: &LuFactors, col: &mut Collector) {
    const S: &str = "factors";
    let n = index.num_nodes();
    col.check(S, f.l.nrows() == n && f.l.ncols() == n, || {
        format!("L is {}×{}, expected {n}×{n}", f.l.nrows(), f.l.ncols())
    });
    col.check(S, f.u.nrows() == n && f.u.ncols() == n, || {
        format!("U is {}×{}, expected {n}×{n}", f.u.nrows(), f.u.ncols())
    });
    if f.l.ncols() != n || f.u.ncols() != n || f.l.nrows() != n || f.u.nrows() != n {
        return;
    }
    for j in 0..n as u32 {
        let (rows, vals) = f.l.col(j);
        let mut prev: Option<u32> = None;
        for (&r, &v) in rows.iter().zip(vals) {
            col.check(S, r > j, || format!("L column {j}: entry at row {r} not strictly below"));
            col.check(S, v.is_finite(), || format!("L column {j}: non-finite value at row {r}"));
            col.check(S, prev.is_none_or(|p| p < r), || {
                format!("L column {j}: rows not strictly ascending at {r}")
            });
            prev = Some(r);
        }
    }
    for j in 0..n as u32 {
        let (rows, vals) = f.u.col(j);
        col.check(S, !rows.is_empty(), || format!("U column {j}: diagonal entry missing"));
        let mut prev: Option<u32> = None;
        for (i, (&r, &v)) in rows.iter().zip(vals).enumerate() {
            col.check(S, v.is_finite(), || format!("U column {j}: non-finite value at row {r}"));
            if i + 1 == rows.len() {
                col.check(S, r == j, || {
                    format!("U column {j}: last entry at row {r} is not the diagonal")
                });
                col.check(S, v != 0.0, || format!("U column {j}: zero diagonal"));
            } else {
                col.check(S, r < j, || {
                    format!("U column {j}: off-diagonal entry at row {r} not above the diagonal")
                });
                col.check(S, prev.is_none_or(|p| p < r), || {
                    format!("U column {j}: rows not strictly ascending at {r}")
                });
                prev = Some(r);
            }
        }
    }
    let stats = index.stats();
    col.check(S, stats.nnz_l == f.l.nnz(), || {
        format!("stats record {} L entries, factors hold {}", stats.nnz_l, f.l.nnz())
    });
    col.check(S, stats.nnz_u == f.u.nnz(), || {
        format!("stats record {} U entries, factors hold {}", stats.nnz_u, f.u.nnz())
    });

    // Spot-recompute W = L·U on sampled columns against a fresh W.
    let a = transition_matrix(index.permuted_graph(), index.dangling_policy());
    let w = match w_matrix(&a, index.restart_probability()) {
        Ok(w) => w,
        Err(e) => {
            col.check(S, false, || format!("cannot rebuild W for the spot check: {e}"));
            return;
        }
    };
    if w.ncols() != n {
        col.check(S, false, || {
            format!("rebuilt W has {} columns, expected {n}", w.ncols())
        });
        return;
    }
    let mut x = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();
    for j in sampled_columns(n, 16) {
        // (L·U)(:, j) with L's implicit unit diagonal.
        let (urows, uvals) = f.u.col(j);
        for (&k, &uv) in urows.iter().zip(uvals) {
            x[k as usize] += uv;
            touched.push(k);
            let (lrows, lvals) = f.l.col(k);
            for (&r, &lv) in lrows.iter().zip(lvals) {
                x[r as usize] += lv * uv;
                touched.push(r);
            }
        }
        let (wrows, wvals) = w.col(j);
        for (&r, &wv) in wrows.iter().zip(wvals) {
            let diff = (x[r as usize] - wv).abs();
            col.check(S, diff <= FACTOR_SPOT_TOL * wv.abs().max(1.0), || {
                format!(
                    "column {j}: (L·U)[{r}] = {} but W[{r}] = {wv} (|Δ| = {diff:.3e})",
                    x[r as usize]
                )
            });
            x[r as usize] = 0.0;
        }
        for &r in &touched {
            col.check(S, x[r as usize].abs() <= FACTOR_SPOT_TOL, || {
                format!(
                    "column {j}: product has entry {} at row {r} where W has none",
                    x[r as usize]
                )
            });
            x[r as usize] = 0.0;
        }
        touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexOptions, KdashError};
    use kdash_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sample_index_with(options: IndexOptions) -> KdashIndex {
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = GraphBuilder::new(50);
        for v in 0..50u32 {
            for _ in 0..4 {
                let t = rng.gen_range(0..50);
                if t != v {
                    b.add_edge(v, t, rng.gen_range(0.5..2.0));
                }
            }
        }
        KdashIndex::build(&b.build().unwrap(), options).unwrap()
    }

    fn sample_index() -> KdashIndex {
        sample_index_with(IndexOptions::default())
    }

    #[test]
    fn fresh_index_audits_clean() {
        let audit = IndexAudit::run(&sample_index());
        assert!(audit.is_clean(), "findings: {:?}", audit.findings);
        assert_eq!(audit.sections.len(), 8);
        assert!(audit.sections.iter().all(|s| s.checks > 0));
        assert!(audit.clone().into_result().is_ok());
    }

    #[test]
    fn both_layouts_audit_clean() {
        let index = sample_index();
        for layout in [RowLayout::Flat, RowLayout::Blocked] {
            let audit = IndexAudit::run(&index.with_layout(layout));
            assert!(audit.is_clean(), "{layout:?}: {:?}", audit.findings);
        }
    }

    #[test]
    fn reloaded_index_audits_clean() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        assert!(IndexAudit::run(&loaded).is_clean());
        // The v1 upgrade path too.
        let mut v1 = Vec::new();
        index.save_v1(&mut v1).unwrap();
        let upgraded = KdashIndex::load(v1.as_slice()).unwrap();
        assert!(IndexAudit::run(&upgraded).is_clean());
    }

    #[test]
    fn kept_factors_audit_clean() {
        let index =
            sample_index_with(IndexOptions { keep_factors: true, ..Default::default() });
        let audit = IndexAudit::run_with_factors(&index, None);
        assert!(audit.is_clean(), "findings: {:?}", audit.findings);
        assert_eq!(audit.sections.len(), 9);
        let last = &audit.sections[8];
        assert_eq!(last.name, "factors");
        assert!(last.checks > 0, "factors present ⇒ checks must run");
    }

    #[test]
    fn absent_factors_report_a_zero_check_section() {
        let audit = IndexAudit::run_with_factors(&sample_index(), None);
        assert!(audit.is_clean());
        assert_eq!(audit.sections.len(), 9);
        let last = &audit.sections[8];
        assert_eq!(last.name, "factors");
        assert_eq!(last.checks, 0, "no factors ⇒ section is skipped, not failed");
    }

    #[test]
    fn corrupted_factors_are_found() {
        let index =
            sample_index_with(IndexOptions { keep_factors: true, ..Default::default() });
        let mut factors = index.factors().unwrap().clone();
        // Perturb one U value: structure stays legal, W = L·U breaks.
        let (cp, ri, mut vals) = {
            let (cp, ri, vals) = factors.u.raw();
            (cp.to_vec(), ri.to_vec(), vals.to_vec())
        };
        vals[0] += 0.25;
        factors.u = kdash_sparse::CscMatrix::from_raw_parts(
            factors.u.nrows(),
            factors.u.ncols(),
            cp,
            ri,
            vals,
        )
        .unwrap();
        let audit = IndexAudit::run_with_factors(&index, Some(&factors));
        assert!(!audit.is_clean(), "perturbed factors must be flagged");
        assert!(audit.findings.iter().all(|f| f.section == "factors"));
    }

    #[test]
    fn dirty_audit_becomes_typed_error() {
        let audit = IndexAudit {
            sections: Vec::new(),
            findings: vec![AuditFinding { section: "linv", detail: "zero diagonal".into() }],
            suppressed: 2,
        };
        assert!(!audit.is_clean());
        assert_eq!(audit.total_findings(), 3);
        let err = audit.into_result().unwrap_err();
        match err {
            KdashError::AuditFailed { findings } => {
                assert_eq!(findings.len(), 2, "one finding + the suppression note");
                assert!(findings[0].contains("linv: zero diagonal"));
                assert!(findings[1].contains("2 further"));
            }
            other => panic!("expected AuditFailed, got {other:?}"),
        }
    }
}
