//! Parallel batch queries.
//!
//! A built [`KdashIndex`] is immutable, hence `Sync`: independent queries
//! can run on separate threads with zero coordination. This module chunks
//! a query batch over scoped `std::thread`s — the natural serving pattern
//! for the recommender / captioning workloads the paper motivates.

use crate::{KdashIndex, Result, TopKResult};
use kdash_graph::NodeId;

/// Runs `top_k` for every query, fanning out over at most `threads`
/// worker threads. Results are returned in query order; the first error
/// (e.g. an out-of-bounds query) aborts the batch.
pub fn batch_top_k(
    index: &KdashIndex,
    queries: &[NodeId],
    k: usize,
    threads: usize,
) -> Result<Vec<TopKResult>> {
    let threads = threads.max(1).min(queries.len().max(1));
    if threads == 1 {
        return queries.iter().map(|&q| index.top_k(q, k)).collect();
    }
    let chunk_size = queries.len().div_ceil(threads);
    let chunk_results: Vec<Result<Vec<TopKResult>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = queries
            .chunks(chunk_size)
            .map(|chunk| {
                scope.spawn(move || chunk.iter().map(|&q| index.top_k(q, k)).collect())
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("query worker panicked")).collect()
    });
    let mut out = Vec::with_capacity(queries.len());
    for chunk in chunk_results {
        out.extend(chunk?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexOptions;
    use kdash_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn graph(n: usize, seed: u64) -> kdash_graph::CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            for _ in 0..3 {
                let t = rng.gen_range(0..n);
                if t != v {
                    b.add_edge(v as NodeId, t as NodeId, 1.0);
                }
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = graph(120, 4);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries: Vec<NodeId> = (0..40).map(|i| i * 3).collect();
        let sequential = batch_top_k(&index, &queries, 5, 1).unwrap();
        let parallel = batch_top_k(&index, &queries, 5, 4).unwrap();
        assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            assert_eq!(s.nodes(), p.nodes());
            for (a, b) in s.items.iter().zip(&p.items) {
                assert_eq!(a.proximity, b.proximity);
            }
        }
    }

    #[test]
    fn batch_errors_propagate() {
        let g = graph(10, 5);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries = vec![0, 5, 99]; // 99 out of bounds
        assert!(batch_top_k(&index, &queries, 3, 2).is_err());
    }

    #[test]
    fn empty_batch_and_excess_threads() {
        let g = graph(10, 6);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        assert!(batch_top_k(&index, &[], 3, 8).unwrap().is_empty());
        let one = batch_top_k(&index, &[2], 3, 64).unwrap();
        assert_eq!(one.len(), 1);
    }
}
