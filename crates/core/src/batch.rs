//! Parallel batch queries with per-query failure isolation.
//!
//! A built [`KdashIndex`] is immutable, hence `Sync`: independent queries
//! can run on separate threads with zero coordination. Queries are handed
//! out through a **work-stealing cursor** (a shared `AtomicUsize` each
//! worker `fetch_add`s): K-dash query latency is wildly skewed — a hub
//! query can visit thousands of candidates while a leaf query terminates
//! after a handful — so static chunking serialises the batch on whichever
//! chunk drew the expensive queries. With a shared cursor, a worker that
//! finishes early simply claims the next pending query.
//!
//! Each worker owns one [`Searcher`], so the per-query `O(n)` BFS and
//! scatter buffers are allocated `threads` times per *batch*, not once per
//! *query*.
//!
//! Two failure models are offered:
//!
//! * [`batch_top_k`] / [`batch_top_k_with_kernel`] — fail-fast: the first
//!   error (by lowest query index, deterministically) aborts the batch.
//! * [`batch_top_k_outcomes`] — isolated: every query reports its own
//!   [`BatchOutcome`]; one poisoned query (even one that *panics* inside
//!   the search) costs exactly that query, the other N−1 results are
//!   bit-identical to running them alone. Each query additionally runs
//!   wrapped in `catch_unwind`, and a worker whose query panicked
//!   discards its [`Searcher`] (the panic may have left its scratch
//!   buffers mid-update) and rebuilds a fresh one for the next claim.

use crate::{GatherKernel, KdashError, KdashIndex, QueryBudget, Result, Searcher, TopKResult};
use kdash_graph::NodeId;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Batch execution options: worker count, gather kernel, per-query
/// budget. The default is "auto threads, adaptive kernel, unlimited
/// budget" — the fail-fast [`batch_top_k`] semantics.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions {
    /// Worker threads; `0` means one per available hardware thread. Any
    /// requested count is capped at the batch size, and a single worker
    /// runs inline on the calling thread.
    pub threads: usize,
    /// Gather-kernel selection for every worker, resolved against the
    /// host once up front (an unsupported request fails typed before any
    /// thread spawns).
    pub kernel: GatherKernel,
    /// Per-query work budget, applied to every query in the batch. A
    /// query that exceeds it fails with [`KdashError::BudgetExceeded`] —
    /// under [`batch_top_k_outcomes`] that is one failed outcome, not a
    /// lost batch.
    pub budget: QueryBudget,
}

/// How one query of an isolated batch ended.
#[derive(Debug, Clone)]
pub enum BatchOutcome {
    /// The query completed; the result is bit-identical to running it
    /// alone with the same kernel and budget.
    Ok(TopKResult),
    /// The query failed — invalid input, exceeded budget, or a panic
    /// inside the search ([`KdashError::QueryPanicked`]). Other queries
    /// in the batch are unaffected.
    Failed(KdashError),
}

impl BatchOutcome {
    /// True when the query completed.
    pub fn is_ok(&self) -> bool {
        matches!(self, BatchOutcome::Ok(_))
    }

    /// The result, if the query completed.
    pub fn ok(self) -> Option<TopKResult> {
        match self {
            BatchOutcome::Ok(r) => Some(r),
            BatchOutcome::Failed(_) => None,
        }
    }

    /// The error, if the query failed.
    pub fn err(&self) -> Option<&KdashError> {
        match self {
            BatchOutcome::Ok(_) => None,
            BatchOutcome::Failed(e) => Some(e),
        }
    }
}

/// Runs `top_k` for every query, fanning out over at most `threads`
/// worker threads with the default ([`GatherKernel::Adaptive`]) gather
/// kernel. Results are returned in query order; the first error (e.g. an
/// out-of-bounds query, by lowest query index) aborts the batch. A panic
/// inside any query surfaces as [`KdashError::QueryPanicked`] instead of
/// tearing down the caller.
///
/// `threads == 0` means "auto": one worker per available hardware thread
/// (`std::thread::available_parallelism`). Any requested count is capped
/// at the batch size, and a single worker runs inline on the calling
/// thread with one reused [`Searcher`].
pub fn batch_top_k(
    index: &KdashIndex,
    queries: &[NodeId],
    k: usize,
    threads: usize,
) -> Result<Vec<TopKResult>> {
    batch_top_k_with_kernel(index, queries, k, threads, GatherKernel::default())
}

/// [`batch_top_k`] with an explicit gather-kernel selection for every
/// worker. The selection is resolved against the host once, up front —
/// an unsupported request (e.g. `simd` without AVX2) fails typed before
/// any thread spawns; only `auto`/`adaptive` fall back.
pub fn batch_top_k_with_kernel(
    index: &KdashIndex,
    queries: &[NodeId],
    k: usize,
    threads: usize,
    kernel: GatherKernel,
) -> Result<Vec<TopKResult>> {
    let options = BatchOptions { threads, kernel, budget: QueryBudget::default() };
    let slots = run_batch(index, queries, k, &options, true, &|_, _| {})?;
    // Stitch back into query order. Indices are claimed in increasing
    // cursor order, so if any query failed, every lower index was claimed
    // too — scanning in order yields the lowest-index error
    // deterministically, and reaches it before any index left unclaimed
    // by the poisoned cursor or by workers stopping on errors.
    let mut out = Vec::with_capacity(queries.len());
    for slot in slots {
        match slot {
            Some(BatchOutcome::Ok(result)) => out.push(result),
            Some(BatchOutcome::Failed(e)) => return Err(e),
            None => {
                // Unreachable under fail-fast stitching (an unclaimed
                // index implies an error at a lower index), but a typed
                // error is the robust answer if the invariant ever broke.
                return Err(KdashError::QueryPanicked {
                    message: "worker terminated before reporting a result".into(),
                });
            }
        }
    }
    Ok(out)
}

/// Runs `top_k` for every query with **per-query failure isolation**: the
/// returned vector has one [`BatchOutcome`] per query, in query order. A
/// query that fails — invalid input, exceeded [`BatchOptions::budget`],
/// or a panic inside the search — yields [`BatchOutcome::Failed`] while
/// every other query still completes, bit-identical to running it alone.
pub fn batch_top_k_outcomes(
    index: &KdashIndex,
    queries: &[NodeId],
    k: usize,
    options: &BatchOptions,
) -> Result<Vec<BatchOutcome>> {
    batch_top_k_outcomes_with_hook(index, queries, k, options, &|_, _| {})
}

/// [`batch_top_k_outcomes`] with a pre-query hook `(query index, query
/// node)` invoked on the worker thread *inside* the panic isolation
/// boundary. Hidden: exists so the failure-injection tests can make a
/// chosen query panic without needing a corrupt index.
#[doc(hidden)]
pub fn batch_top_k_outcomes_with_hook(
    index: &KdashIndex,
    queries: &[NodeId],
    k: usize,
    options: &BatchOptions,
    hook: &(dyn Fn(usize, NodeId) + Sync),
) -> Result<Vec<BatchOutcome>> {
    let slots = run_batch(index, queries, k, options, false, hook)?;
    let mut out = Vec::with_capacity(queries.len());
    for slot in slots {
        out.push(slot.unwrap_or_else(|| BatchOutcome::Failed(KdashError::QueryPanicked {
            message: "worker terminated before reporting a result".into(),
        })));
    }
    Ok(out)
}

/// Runs one claimed query inside the panic isolation boundary. On a
/// panic the worker's searcher is discarded (`None`) — the unwound stack
/// may have left its scratch buffers mid-update — and rebuilt on the
/// next claim, so one poisoned query cannot contaminate the next.
fn run_one<'a>(
    index: &'a KdashIndex,
    searcher: &mut Option<Searcher<'a>>,
    options: &BatchOptions,
    q: NodeId,
    i: usize,
    k: usize,
    hook: &(dyn Fn(usize, NodeId) + Sync),
) -> BatchOutcome {
    if searcher.is_none() {
        match Searcher::with_kernel(index, options.kernel) {
            Ok(mut s) => {
                s.set_budget(options.budget);
                *searcher = Some(s);
            }
            Err(e) => return BatchOutcome::Failed(KdashError::from(e)),
        }
    }
    let Some(s) = searcher.as_mut() else {
        return BatchOutcome::Failed(KdashError::QueryPanicked {
            message: "searcher unavailable".into(),
        });
    };
    let attempt = catch_unwind(AssertUnwindSafe(|| {
        hook(i, q);
        s.top_k(q, k)
    }));
    match attempt {
        Ok(Ok(result)) => BatchOutcome::Ok(result),
        Ok(Err(e)) => BatchOutcome::Failed(e),
        Err(payload) => {
            *searcher = None;
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            BatchOutcome::Failed(KdashError::QueryPanicked { message })
        }
    }
}

/// A reusable single-query executor with the exact failure semantics of
/// one [`batch_top_k_outcomes`] worker: per-query `catch_unwind`
/// isolation, [`BatchOptions::budget`] enforcement, and a persistent
/// [`Searcher`] that survives across calls (so the `O(n)` scratch
/// buffers are paid once per executor, not once per query) but is
/// discarded and rebuilt after a panic.
///
/// This is the building block the serving tier (`kdash-serve`) drains
/// its request queue through: each worker thread pins an index epoch,
/// wraps it in one `IsolatedExecutor`, and folds queued queries through
/// [`run`](Self::run) — identical outcome semantics to submitting the
/// same queries as one `batch_top_k_outcomes` batch, but without
/// requiring the whole batch up front.
pub struct IsolatedExecutor<'a> {
    index: &'a KdashIndex,
    options: BatchOptions,
    searcher: Option<Searcher<'a>>,
}

impl<'a> IsolatedExecutor<'a> {
    /// Creates an executor over `index`. The kernel selection in
    /// `options` is resolved against the host up front — an unsupported
    /// request fails typed here, never per query. (`options.threads` is
    /// ignored: an executor *is* one worker.)
    pub fn new(index: &'a KdashIndex, options: BatchOptions) -> Result<Self> {
        options.kernel.resolve().map_err(KdashError::from)?;
        Ok(IsolatedExecutor { index, options, searcher: None })
    }

    /// The index this executor queries.
    pub fn index(&self) -> &'a KdashIndex {
        self.index
    }

    /// Runs one query. Never panics: invalid input, an exceeded budget,
    /// or a panic inside the search all come back as
    /// [`BatchOutcome::Failed`], and the result of a completed query is
    /// bit-identical to running it alone with the same kernel/budget.
    pub fn run(&mut self, query: NodeId, k: usize) -> BatchOutcome {
        run_one(self.index, &mut self.searcher, &self.options, query, 0, k, &|_, _| {})
    }
}

/// The shared execution engine: claims queries off the stealing cursor,
/// runs each through [`run_one`], and returns per-index outcome slots.
/// With `abort_on_error` the cursor is poisoned on the first failure so
/// the other workers stop claiming (the batch is doomed; computing the
/// tail would be wasted work) — unclaimed tail slots stay `None`.
fn run_batch(
    index: &KdashIndex,
    queries: &[NodeId],
    k: usize,
    options: &BatchOptions,
    abort_on_error: bool,
    hook: &(dyn Fn(usize, NodeId) + Sync),
) -> Result<Vec<Option<BatchOutcome>>> {
    options.kernel.resolve().map_err(KdashError::from)?;
    let threads = resolve_threads(options.threads, queries.len());
    if threads <= 1 {
        let mut searcher: Option<Searcher<'_>> = None;
        let mut slots: Vec<Option<BatchOutcome>> = (0..queries.len()).map(|_| None).collect();
        for (i, &q) in queries.iter().enumerate() {
            let outcome = run_one(index, &mut searcher, options, q, i, k, hook);
            let failed = !outcome.is_ok();
            slots[i] = Some(outcome);
            if failed && abort_on_error {
                break;
            }
        }
        return Ok(slots);
    }

    // The work-stealing queue is just a claim cursor: fetch_add hands every
    // index to exactly one worker, in order.
    let cursor = AtomicUsize::new(0);
    let worker_outputs: Vec<Vec<(usize, BatchOutcome)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut searcher: Option<Searcher<'_>> = None;
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let outcome =
                            run_one(index, &mut searcher, options, queries[i], i, k, hook);
                        let failed = !outcome.is_ok();
                        produced.push((i, outcome));
                        if failed && abort_on_error {
                            // Poison the cursor so the other workers stop
                            // claiming. Indices below the error were
                            // already handed out (the cursor is
                            // sequential), so the lowest-index error is
                            // still recorded deterministically.
                            cursor.fetch_max(queries.len(), Ordering::Relaxed);
                            break;
                        }
                    }
                    produced
                })
            })
            .collect();
        // Workers never unwind — run_one catches query panics — so a
        // failed join can only mean a panic in the claim loop itself;
        // treat its claims as lost rather than tearing down the caller.
        handles.into_iter().map(|h| h.join().unwrap_or_default()).collect()
    });

    let mut slots: Vec<Option<BatchOutcome>> = (0..queries.len()).map(|_| None).collect();
    for (i, outcome) in worker_outputs.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "query {i} claimed twice");
        slots[i] = Some(outcome);
    }
    Ok(slots)
}

/// Resolves the requested worker count: `0` = auto-detect, always at least
/// 1, never more than the batch size.
fn resolve_threads(threads: usize, batch_len: usize) -> usize {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    threads.max(1).min(batch_len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexOptions;
    use kdash_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn graph(n: usize, seed: u64) -> kdash_graph::CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            for _ in 0..3 {
                let t = rng.gen_range(0..n);
                if t != v {
                    b.add_edge(v as NodeId, t as NodeId, 1.0);
                }
            }
        }
        b.build().unwrap()
    }

    fn assert_same_results(a: &[TopKResult], b: &[TopKResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.nodes(), y.nodes());
            for (i, j) in x.items.iter().zip(&y.items) {
                assert_eq!(i.proximity.to_bits(), j.proximity.to_bits());
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = graph(120, 4);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries: Vec<NodeId> = (0..40).map(|i| i * 3).collect();
        let sequential = batch_top_k(&index, &queries, 5, 1).unwrap();
        let parallel = batch_top_k(&index, &queries, 5, 4).unwrap();
        assert_same_results(&sequential, &parallel);
    }

    #[test]
    fn zero_threads_means_auto() {
        let g = graph(80, 11);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries: Vec<NodeId> = (0..30).collect();
        let auto = batch_top_k(&index, &queries, 4, 0).unwrap();
        let sequential = batch_top_k(&index, &queries, 4, 1).unwrap();
        assert_same_results(&auto, &sequential);
    }

    #[test]
    fn skewed_batches_stay_correct_under_stealing() {
        // Hub-heavy community graph: query latencies vary wildly, which is
        // exactly the shape work stealing exists for. Repeating the hub
        // query many times also makes claim interleavings collide.
        let mut b = GraphBuilder::new(200);
        for i in 1..200u32 {
            b.add_edge(0, i, 1.0); // node 0 reaches everything
            b.add_edge(i, (i % 10) + 1, 1.0);
        }
        let g = b.build().unwrap();
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries: Vec<NodeId> = (0..60).map(|i| if i % 2 == 0 { 0 } else { i }).collect();
        let sequential = batch_top_k(&index, &queries, 8, 1).unwrap();
        for threads in [2, 3, 7, 16] {
            let parallel = batch_top_k(&index, &queries, 8, threads).unwrap();
            assert_same_results(&sequential, &parallel);
        }
    }

    #[test]
    fn batch_errors_propagate() {
        let g = graph(10, 5);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries = vec![0, 5, 99]; // 99 out of bounds
        assert!(batch_top_k(&index, &queries, 3, 2).is_err());
        assert!(batch_top_k(&index, &queries, 3, 0).is_err());
    }

    #[test]
    fn error_is_deterministically_the_lowest_index() {
        let g = graph(10, 7);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries = vec![0, 77, 3, 99, 1]; // two bad queries
        for threads in [1, 2, 4] {
            match batch_top_k(&index, &queries, 3, threads) {
                Err(crate::KdashError::NodeOutOfBounds { node, .. }) => {
                    assert_eq!(node, 77, "threads {threads}: lowest-index error wins");
                }
                other => panic!("expected NodeOutOfBounds, got {other:?}"),
            }
        }
    }

    #[test]
    fn all_workers_erroring_still_returns_cleanly() {
        // With two workers and the two leading queries invalid, both
        // workers stop before the tail is claimed; the stitch must still
        // surface the lowest-index error instead of panicking.
        let g = graph(10, 8);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries = vec![50, 60, 1, 2, 3, 4];
        match batch_top_k(&index, &queries, 3, 2) {
            Err(crate::KdashError::NodeOutOfBounds { node, .. }) => assert_eq!(node, 50),
            other => panic!("expected NodeOutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn empty_batch_and_excess_threads() {
        let g = graph(10, 6);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        assert!(batch_top_k(&index, &[], 3, 8).unwrap().is_empty());
        assert!(batch_top_k(&index, &[], 3, 0).unwrap().is_empty());
        let one = batch_top_k(&index, &[2], 3, 64).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn resolve_threads_rules() {
        // 0 = auto: at least one worker, capped by the batch.
        assert!(resolve_threads(0, 100) >= 1);
        assert_eq!(resolve_threads(0, 1), 1);
        assert_eq!(resolve_threads(5, 2), 2);
        assert_eq!(resolve_threads(5, 100), 5);
        assert_eq!(resolve_threads(1, 0), 1);
    }

    #[test]
    fn outcomes_isolate_bad_queries() {
        let g = graph(30, 9);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries = vec![0, 99, 5, 200, 11]; // two out of bounds
        for threads in [1, 3] {
            let options = BatchOptions { threads, ..Default::default() };
            let outcomes = batch_top_k_outcomes(&index, &queries, 4, &options).unwrap();
            assert_eq!(outcomes.len(), queries.len());
            assert!(outcomes[0].is_ok() && outcomes[2].is_ok() && outcomes[4].is_ok());
            assert!(matches!(
                outcomes[1].err(),
                Some(KdashError::NodeOutOfBounds { node: 99, .. })
            ));
            assert!(matches!(
                outcomes[3].err(),
                Some(KdashError::NodeOutOfBounds { node: 200, .. })
            ));
            // The good outcomes are bit-identical to solo runs.
            let solo = batch_top_k(&index, &[0, 5, 11], 4, 1).unwrap();
            let good: Vec<TopKResult> = outcomes
                .into_iter()
                .filter_map(|o| o.ok())
                .collect();
            assert_same_results(&good, &solo);
        }
    }

    #[test]
    fn outcomes_apply_the_budget_per_query() {
        let g = graph(60, 12);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let options = BatchOptions {
            threads: 1,
            budget: QueryBudget { max_frontier_nodes: Some(1), ..Default::default() },
            ..Default::default()
        };
        let outcomes = batch_top_k_outcomes(&index, &[0, 1], 5, &options).unwrap();
        for o in &outcomes {
            assert!(matches!(o.err(), Some(KdashError::BudgetExceeded { .. })), "{o:?}");
        }
    }

    #[test]
    fn panicking_query_costs_only_itself() {
        let g = graph(40, 13);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries: Vec<NodeId> = (0..10).collect();
        for threads in [1, 4] {
            let options = BatchOptions { threads, ..Default::default() };
            let outcomes = batch_top_k_outcomes_with_hook(
                &index,
                &queries,
                3,
                &options,
                &|i, _q| {
                    if i == 4 {
                        panic!("injected failure for query 4");
                    }
                },
            )
            .unwrap();
            for (i, o) in outcomes.iter().enumerate() {
                if i == 4 {
                    match o.err() {
                        Some(KdashError::QueryPanicked { message }) => {
                            assert!(message.contains("injected failure"), "{message}");
                        }
                        other => panic!("expected QueryPanicked, got {other:?}"),
                    }
                } else {
                    assert!(o.is_ok(), "query {i} must survive the poisoned neighbour");
                }
            }
        }
    }

    #[test]
    fn fail_fast_batch_reports_panic_as_typed_error() {
        // The fail-fast API must also survive a panicking query: the
        // whole batch errors, but with a typed error, not an unwind.
        let g = graph(20, 14);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let options = BatchOptions { threads: 2, ..Default::default() };
        let slots = run_batch(&index, &[0, 1, 2, 3], 3, &options, true, &|i, _| {
            if i == 1 {
                panic!("boom");
            }
        })
        .unwrap();
        let failed: Vec<_> =
            slots.iter().flatten().filter(|o| !o.is_ok()).collect();
        assert_eq!(failed.len(), 1);
        assert!(matches!(
            failed[0].err(),
            Some(KdashError::QueryPanicked { .. })
        ));
    }
}
