//! Parallel batch queries.
//!
//! A built [`KdashIndex`] is immutable, hence `Sync`: independent queries
//! can run on separate threads with zero coordination. Queries are handed
//! out through a **work-stealing cursor** (a shared `AtomicUsize` each
//! worker `fetch_add`s): K-dash query latency is wildly skewed — a hub
//! query can visit thousands of candidates while a leaf query terminates
//! after a handful — so static chunking serialises the batch on whichever
//! chunk drew the expensive queries. With a shared cursor, a worker that
//! finishes early simply claims the next pending query.
//!
//! Each worker owns one [`Searcher`], so the per-query `O(n)` BFS and
//! scatter buffers are allocated `threads` times per *batch*, not once per
//! *query*.

use crate::{GatherKernel, KdashIndex, Result, Searcher, TopKResult};
use kdash_graph::NodeId;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `top_k` for every query, fanning out over at most `threads`
/// worker threads with the default ([`GatherKernel::Adaptive`]) gather
/// kernel. Results are returned in query order; the first error (e.g. an
/// out-of-bounds query, by lowest query index) aborts the batch.
///
/// `threads == 0` means "auto": one worker per available hardware thread
/// (`std::thread::available_parallelism`). Any requested count is capped
/// at the batch size, and a single worker runs inline on the calling
/// thread with one reused [`Searcher`].
pub fn batch_top_k(
    index: &KdashIndex,
    queries: &[NodeId],
    k: usize,
    threads: usize,
) -> Result<Vec<TopKResult>> {
    batch_top_k_with_kernel(index, queries, k, threads, GatherKernel::default())
}

/// [`batch_top_k`] with an explicit gather-kernel selection for every
/// worker. The selection is resolved against the host once, up front —
/// an unsupported request (e.g. `simd` without AVX2) fails typed before
/// any thread spawns; only `auto`/`adaptive` fall back.
pub fn batch_top_k_with_kernel(
    index: &KdashIndex,
    queries: &[NodeId],
    k: usize,
    threads: usize,
    kernel: GatherKernel,
) -> Result<Vec<TopKResult>> {
    kernel.resolve().map_err(crate::KdashError::from)?;
    let threads = resolve_threads(threads, queries.len());
    if threads <= 1 {
        let mut searcher = Searcher::with_kernel(index, kernel).expect("validated above");
        return queries.iter().map(|&q| searcher.top_k(q, k)).collect();
    }

    // The work-stealing queue is just a claim cursor: fetch_add hands every
    // index to exactly one worker, in order.
    let cursor = AtomicUsize::new(0);
    let worker_outputs: Vec<Vec<(usize, Result<TopKResult>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut searcher =
                        Searcher::with_kernel(index, kernel).expect("validated above");
                    let mut produced = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= queries.len() {
                            break;
                        }
                        let result = searcher.top_k(queries[i], k);
                        let failed = result.is_err();
                        produced.push((i, result));
                        if failed {
                            // Poison the cursor so the other workers stop
                            // claiming: the batch is doomed, computing the
                            // tail would be wasted work. Indices below the
                            // error were already handed out (the cursor is
                            // sequential), so the lowest-index error is
                            // still recorded deterministically.
                            cursor.fetch_max(queries.len(), Ordering::Relaxed);
                            break;
                        }
                    }
                    produced
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("query worker panicked")).collect()
    });

    // Stitch back into query order. Indices are claimed in increasing
    // cursor order, so if any query failed, every lower index was claimed
    // too — scanning in order yields the lowest-index error
    // deterministically, and reaches it before any index left unclaimed
    // by the poisoned cursor or by workers stopping on errors.
    let mut slots: Vec<Option<Result<TopKResult>>> = (0..queries.len()).map(|_| None).collect();
    for (i, result) in worker_outputs.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "query {i} claimed twice");
        slots[i] = Some(result);
    }
    let mut out = Vec::with_capacity(queries.len());
    for slot in slots {
        match slot {
            Some(Ok(result)) => out.push(result),
            Some(Err(e)) => return Err(e),
            None => unreachable!("an unclaimed index implies an error at a lower index"),
        }
    }
    Ok(out)
}

/// Resolves the requested worker count: `0` = auto-detect, always at least
/// 1, never more than the batch size.
fn resolve_threads(threads: usize, batch_len: usize) -> usize {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    threads.max(1).min(batch_len.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexOptions;
    use kdash_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn graph(n: usize, seed: u64) -> kdash_graph::CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            for _ in 0..3 {
                let t = rng.gen_range(0..n);
                if t != v {
                    b.add_edge(v as NodeId, t as NodeId, 1.0);
                }
            }
        }
        b.build().unwrap()
    }

    fn assert_same_results(a: &[TopKResult], b: &[TopKResult]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.nodes(), y.nodes());
            for (i, j) in x.items.iter().zip(&y.items) {
                assert_eq!(i.proximity.to_bits(), j.proximity.to_bits());
            }
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = graph(120, 4);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries: Vec<NodeId> = (0..40).map(|i| i * 3).collect();
        let sequential = batch_top_k(&index, &queries, 5, 1).unwrap();
        let parallel = batch_top_k(&index, &queries, 5, 4).unwrap();
        assert_same_results(&sequential, &parallel);
    }

    #[test]
    fn zero_threads_means_auto() {
        let g = graph(80, 11);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries: Vec<NodeId> = (0..30).collect();
        let auto = batch_top_k(&index, &queries, 4, 0).unwrap();
        let sequential = batch_top_k(&index, &queries, 4, 1).unwrap();
        assert_same_results(&auto, &sequential);
    }

    #[test]
    fn skewed_batches_stay_correct_under_stealing() {
        // Hub-heavy community graph: query latencies vary wildly, which is
        // exactly the shape work stealing exists for. Repeating the hub
        // query many times also makes claim interleavings collide.
        let mut b = GraphBuilder::new(200);
        for i in 1..200u32 {
            b.add_edge(0, i, 1.0); // node 0 reaches everything
            b.add_edge(i, (i % 10) + 1, 1.0);
        }
        let g = b.build().unwrap();
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries: Vec<NodeId> = (0..60).map(|i| if i % 2 == 0 { 0 } else { i }).collect();
        let sequential = batch_top_k(&index, &queries, 8, 1).unwrap();
        for threads in [2, 3, 7, 16] {
            let parallel = batch_top_k(&index, &queries, 8, threads).unwrap();
            assert_same_results(&sequential, &parallel);
        }
    }

    #[test]
    fn batch_errors_propagate() {
        let g = graph(10, 5);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries = vec![0, 5, 99]; // 99 out of bounds
        assert!(batch_top_k(&index, &queries, 3, 2).is_err());
        assert!(batch_top_k(&index, &queries, 3, 0).is_err());
    }

    #[test]
    fn error_is_deterministically_the_lowest_index() {
        let g = graph(10, 7);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries = vec![0, 77, 3, 99, 1]; // two bad queries
        for threads in [1, 2, 4] {
            match batch_top_k(&index, &queries, 3, threads) {
                Err(crate::KdashError::NodeOutOfBounds { node, .. }) => {
                    assert_eq!(node, 77, "threads {threads}: lowest-index error wins");
                }
                other => panic!("expected NodeOutOfBounds, got {other:?}"),
            }
        }
    }

    #[test]
    fn all_workers_erroring_still_returns_cleanly() {
        // With two workers and the two leading queries invalid, both
        // workers stop before the tail is claimed; the stitch must still
        // surface the lowest-index error instead of panicking.
        let g = graph(10, 8);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let queries = vec![50, 60, 1, 2, 3, 4];
        match batch_top_k(&index, &queries, 3, 2) {
            Err(crate::KdashError::NodeOutOfBounds { node, .. }) => assert_eq!(node, 50),
            other => panic!("expected NodeOutOfBounds, got {other:?}"),
        }
    }

    #[test]
    fn empty_batch_and_excess_threads() {
        let g = graph(10, 6);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        assert!(batch_top_k(&index, &[], 3, 8).unwrap().is_empty());
        assert!(batch_top_k(&index, &[], 3, 0).unwrap().is_empty());
        let one = batch_top_k(&index, &[2], 3, 64).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn resolve_threads_rules() {
        // 0 = auto: at least one worker, capped by the batch.
        assert!(resolve_threads(0, 100) >= 1);
        assert_eq!(resolve_threads(0, 1), 1);
        assert_eq!(resolve_threads(5, 2), 2);
        assert_eq!(resolve_threads(5, 100), 5);
        assert_eq!(resolve_threads(1, 0), 1);
    }
}
