//! The top-k search (Algorithm 4 of the paper) — public entry points.
//!
//! Nodes are visited in BFS-layer order from the query node. Each visited
//! node first receives the `O(1)` upper bound of Definition 2; if the bound
//! of the node about to be visited is below the current K-th candidate
//! proximity θ, the whole search terminates — Lemma 2 guarantees every
//! remaining node is bounded by the same value, so no answer can be missed
//! (Theorem 2). Surviving nodes get their exact proximity from the stored
//! sparse inverses.
//!
//! The production path expands the BFS frontier **lazily**, fused into the
//! search loop: early termination leaves every deeper layer undiscovered,
//! so [`SearchStats::reachable`] reports the discovered-so-far count on
//! early-terminated queries (exact reachability when the search runs to
//! completion) and [`SearchStats::frontier_expanded`] counts the nodes
//! actually expanded — see [`crate::SearchStats`] for the full contract.
//! The eager reference paths below ([`KdashIndex::top_k_merge_join`],
//! [`KdashIndex::top_k_from_set_replay`]) keep the original
//! whole-tree-first behaviour and full `reachable` counts.
//!
//! The algorithms live in [`crate::searcher`]: a [`Searcher`] holds the
//! reusable per-query state (epoch-stamped BFS buffers, the scattered
//! query column, the candidate heap) and serves every query kind. The
//! `KdashIndex` methods below are thin conveniences that run a transient
//! workspace per call — serving loops should hold a `Searcher` instead:
//!
//! * [`KdashIndex::top_k`] — the real algorithm,
//! * [`KdashIndex::top_k_unpruned`] — pruning disabled (Figure 7 ablation),
//! * [`KdashIndex::nodes_above`] — exact threshold queries,
//! * [`KdashIndex::top_k_from_set`] — restart sets (Personalized PageRank),
//! * [`KdashIndex::top_k_random_root`] — BFS tree rooted away from the
//!   query (Appendix D.1 / Figure 9 ablation). A tree rooted elsewhere
//!   breaks the layer structure Definition 1 needs, so this variant uses
//!   the weaker order-agnostic bound of
//!   [`ArbitraryOrderBound`](crate::ArbitraryOrderBound): still exact, can
//!   skip individual nodes, but can never terminate early — which is
//!   precisely why it performs many more proximity computations.
//!
//! [`KdashIndex::top_k_merge_join`] preserves the original per-candidate
//! merge-join kernel. It is deliberately *not* routed through the
//! [`Searcher`]: it is the independent reference implementation the
//! equivalence suite cross-checks the scatter/gather path against
//! (bit-identical proximities), and the baseline the `query_engine`
//! benchmark measures the new kernel's speedup from.

use crate::{KdashIndex, LayerEstimator, Result, SearchStats, Searcher};
use crate::searcher::TopKHeap;
use kdash_graph::{bfs::UNREACHABLE, BfsTree, NodeId};

/// One answer entry: a node and its exact RWR proximity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedNode {
    /// Node id in the caller's (original) id space.
    pub node: NodeId,
    /// Exact proximity `p_node` with respect to the query.
    pub proximity: f64,
}

/// The result of a top-k query.
#[derive(Debug, Clone, Default)]
pub struct TopKResult {
    /// Exactly `min(k, n)` nodes in descending proximity order.
    pub items: Vec<RankedNode>,
    /// Work counters for this query.
    pub stats: SearchStats,
}

impl TopKResult {
    /// Just the node ids, in rank order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.items.iter().map(|r| r.node).collect()
    }
}

impl KdashIndex {
    /// A reusable query workspace over this index — the preferred way to
    /// serve many queries (see [`Searcher`]).
    pub fn searcher(&self) -> Searcher<'_> {
        Searcher::new(self)
    }

    /// Exact top-k search (Algorithm 4). Returns `min(k, n)` nodes in
    /// descending proximity order; when fewer than `k` nodes are reachable
    /// the remainder is padded with unreachable nodes at proximity 0.
    ///
    /// Convenience wrapper over a transient [`Searcher`]; hold one
    /// yourself to amortise the `O(n)` workspace setup across queries.
    pub fn top_k(&self, q: NodeId, k: usize) -> Result<TopKResult> {
        self.searcher().top_k(q, k)
    }

    /// Algorithm 4 with the termination test removed: computes the exact
    /// proximity of every reachable node. This is the "Without pruning"
    /// series of Figure 7.
    pub fn top_k_unpruned(&self, q: NodeId, k: usize) -> Result<TopKResult> {
        self.searcher().top_k_unpruned(q, k)
    }

    /// Exact *threshold* query: every node whose proximity is at least
    /// `theta`, in descending order. Non-positive or non-finite `theta`
    /// returns [`KdashError::InvalidThreshold`](crate::KdashError).
    pub fn nodes_above(&self, q: NodeId, theta: f64) -> Result<TopKResult> {
        self.searcher().nodes_above(q, theta)
    }

    /// Exact top-k for a *restart set*: the walk restarts uniformly over
    /// `sources` (Personalized PageRank in the sense of the paper's
    /// footnote 6).
    pub fn top_k_from_set(&self, sources: &[NodeId], k: usize) -> Result<TopKResult> {
        self.searcher().top_k_from_set(sources, k)
    }

    /// The Appendix D.1 ablation: the search tree is rooted at a random
    /// node instead of the query.
    pub fn top_k_random_root(&self, q: NodeId, k: usize, seed: u64) -> Result<TopKResult> {
        self.searcher().top_k_random_root(q, k, seed)
    }

    /// Random-root search with an explicit root (exposed for tests).
    pub fn top_k_from_root(&self, q: NodeId, k: usize, root: NodeId) -> Result<TopKResult> {
        self.searcher().top_k_from_root(q, k, root)
    }

    /// The original Algorithm 4 implementation with the per-candidate
    /// merge-join proximity kernel (`O(nnz(row) + nnz(col))` per node),
    /// per-query buffer allocation, and the **eager** BFS tree (the whole
    /// reachable set is enumerated up front — its `reachable` is always
    /// the full count and `frontier_expanded` equals it, unlike the lazy
    /// production path, which stops discovering on early termination).
    ///
    /// Kept as the independent exactness reference for the scatter/gather
    /// path and the lazy driver's oracle: results must be bit-identical to
    /// [`top_k`](Self::top_k) under the scalar kernel, and
    /// `tests/query_engine_equivalence.rs` plus the `query_engine`
    /// benchmark hold the two implementations against each other.
    pub fn top_k_merge_join(&self, q: NodeId, k: usize) -> Result<TopKResult> {
        self.check_node(q)?;
        // Mirror the Searcher's k = 0 short-circuit so the two paths stay
        // comparable down to their work counters.
        if k == 0 {
            return Ok(TopKResult::default());
        }
        if self.needs_refinement() {
            // The merge join reads raw sparsified rows, so its "reference"
            // values would be approximate — route through the certified
            // searcher instead. The equivalence contract on sparsified
            // tiers is set-and-order, not bitwise.
            return self.searcher().top_k(q, k);
        }
        let qp = self.permutation().new_of(q);
        let bfs = BfsTree::new(self.permuted_graph(), qp);
        let (col_idx, col_val) = self.linv().col(qp);
        let c = self.restart_probability();

        let mut heap = TopKHeap::new(k);
        let mut estimator = LayerEstimator::new(self.a_max());
        // Eager semantics: the whole tree exists before the search starts.
        let mut stats = SearchStats {
            reachable: bfs.num_reachable(),
            frontier_expanded: bfs.num_reachable(),
            ..Default::default()
        };

        for (pos, &u) in bfs.order.iter().enumerate() {
            stats.visited += 1;
            let layer = bfs.layer[u as usize];
            if pos == 0 {
                let p = c * self.uinv().row_dot_sparse(u, col_idx, col_val);
                stats.proximity_computations += 1;
                estimator.record_root(p, self.a_col_max()[u as usize]);
                heap.offer(p, u);
                continue;
            }
            let terms = estimator.advance(layer);
            if heap.is_full() && self.c_prime_max() * terms < heap.threshold() {
                stats.terminated_early = true;
                break;
            }
            let p = c * self.uinv().row_dot_sparse(u, col_idx, col_val);
            stats.proximity_computations += 1;
            estimator.record_selected(layer, p, self.a_col_max()[u as usize]);
            heap.offer(p, u);
        }

        // Same epilogue as the Searcher: rank order, original ids, padded
        // with unreachable nodes (which can never collide with heap
        // entries — those are all reachable).
        let mut items: Vec<RankedNode> = heap
            .sorted_entries()
            .iter()
            .map(|&(p, u)| RankedNode { node: self.permutation().old_of(u), proximity: p })
            .collect();
        if items.len() < k {
            for v in 0..self.num_nodes() as NodeId {
                if items.len() >= k {
                    break;
                }
                if bfs.layer[v as usize] == UNREACHABLE {
                    items.push(RankedNode {
                        node: self.permutation().old_of(v),
                        proximity: 0.0,
                    });
                }
            }
        }
        Ok(TopKResult { items, stats })
    }

    /// The eager-BFS, merge-join replay of
    /// [`top_k_from_set`](Self::top_k_from_set): the multi-root tree
    /// ([`BfsTree::new_multi`]) is built in full before the search starts
    /// and every proximity is a two-pointer merge join. The multi-root
    /// counterpart of [`top_k_merge_join`](Self::top_k_merge_join), kept
    /// (hidden) as the oracle the lazy restart-set search is property-
    /// tested against: results are bit-identical under the scalar kernel,
    /// and `visited`/`proximity_computations`/`terminated_early` agree,
    /// while `reachable`/`frontier_expanded` carry the eager semantics
    /// (always the full reachable count).
    #[doc(hidden)]
    pub fn top_k_from_set_replay(&self, sources: &[NodeId], k: usize) -> Result<TopKResult> {
        let (col_idx, col_val) = self.merged_query_column(sources)?;
        if k == 0 {
            return Ok(TopKResult::default());
        }
        if self.needs_refinement() {
            // Same routing as `top_k_merge_join`: raw sparsified gathers
            // cannot serve as a reference, the certified path can.
            return self.searcher().top_k_from_set(sources, k);
        }
        let roots: Vec<NodeId> =
            sources.iter().map(|&s| self.permutation().new_of(s)).collect();
        let bfs = BfsTree::new_multi(self.permuted_graph(), &roots);
        let c = self.restart_probability();

        let mut heap = TopKHeap::new(k);
        let mut estimator = LayerEstimator::new(self.a_max());
        let mut stats = SearchStats {
            reachable: bfs.num_reachable(),
            frontier_expanded: bfs.num_reachable(),
            ..Default::default()
        };

        for (pos, &u) in bfs.order.iter().enumerate() {
            stats.visited += 1;
            let layer = bfs.layer[u as usize];
            if layer == 0 {
                let p = c * self.uinv().row_dot_sparse(u, &col_idx, &col_val);
                stats.proximity_computations += 1;
                if pos > 0 {
                    let _ = estimator.advance(0);
                }
                estimator.record_selected(0, p, self.a_col_max()[u as usize]);
                heap.offer(p, u);
                continue;
            }
            let terms = estimator.advance(layer);
            if heap.is_full() && self.c_prime_max() * terms < heap.threshold() {
                stats.terminated_early = true;
                break;
            }
            let p = c * self.uinv().row_dot_sparse(u, &col_idx, &col_val);
            stats.proximity_computations += 1;
            estimator.record_selected(layer, p, self.a_col_max()[u as usize]);
            heap.offer(p, u);
        }

        let mut items: Vec<RankedNode> = heap
            .sorted_entries()
            .iter()
            .map(|&(p, u)| RankedNode { node: self.permutation().old_of(u), proximity: p })
            .collect();
        if items.len() < k {
            for v in 0..self.num_nodes() as NodeId {
                if items.len() >= k {
                    break;
                }
                if bfs.layer[v as usize] == UNREACHABLE {
                    items.push(RankedNode {
                        node: self.permutation().old_of(v),
                        proximity: 0.0,
                    });
                }
            }
        }
        Ok(TopKResult { items, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexOptions, KdashError, KdashIndex, NodeOrdering};
    use kdash_graph::{CsrGraph, GraphBuilder};
    use kdash_sparse::{rwr::rwr_step, transition_matrix, DanglingPolicy};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(n: usize, avg_deg: usize, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            for _ in 0..rng.gen_range(1..=avg_deg * 2) {
                let t = rng.gen_range(0..n);
                if t != v {
                    b.add_edge(v as NodeId, t as NodeId, rng.gen_range(0.5..2.0));
                }
            }
        }
        b.build().unwrap()
    }

    fn iterative_top_k(g: &CsrGraph, c: f64, q: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let a = transition_matrix(g, DanglingPolicy::Keep);
        let n = g.num_nodes();
        let mut p = vec![0.0; n];
        p[q as usize] = 1.0;
        let mut next = vec![0.0; n];
        for _ in 0..3000 {
            rwr_step(&a, c, q, &p, &mut next);
            std::mem::swap(&mut p, &mut next);
        }
        let mut pairs: Vec<(NodeId, f64)> =
            p.iter().enumerate().map(|(i, &v)| (i as NodeId, v)).collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }

    /// The exactness contract: the returned proximity multiset must match
    /// the iterative ground truth (ids may differ under exact ties).
    fn assert_matches_ground_truth(result: &TopKResult, truth: &[(NodeId, f64)]) {
        assert_eq!(result.items.len(), truth.len());
        for (got, want) in result.items.iter().zip(truth) {
            assert!(
                (got.proximity - want.1).abs() < 1e-9,
                "proximity mismatch: {} vs {}",
                got.proximity,
                want.1
            );
        }
    }

    #[test]
    fn exact_against_iterative_many_graphs() {
        for seed in 0..5u64 {
            let g = random_graph(60, 3, seed);
            let index = KdashIndex::build(
                &g,
                IndexOptions { restart_probability: 0.9, ..Default::default() },
            )
            .unwrap();
            for q in [0u32, 17, 42] {
                for k in [1usize, 5, 12] {
                    let result = index.top_k(q, k).unwrap();
                    let truth = iterative_top_k(&g, 0.9, q, k);
                    assert_matches_ground_truth(&result, &truth);
                }
            }
        }
    }

    #[test]
    fn query_node_ranks_first_under_high_restart() {
        let g = random_graph(40, 3, 9);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        for q in 0..40u32 {
            let r = index.top_k(q, 3).unwrap();
            assert_eq!(r.items[0].node, q, "c = 0.95 makes the query dominate");
        }
    }

    #[test]
    fn unpruned_agrees_with_pruned() {
        let g = random_graph(80, 4, 3);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        for q in [2u32, 31, 77] {
            let a = index.top_k(q, 8).unwrap();
            let b = index.top_k_unpruned(q, 8).unwrap();
            for (x, y) in a.items.iter().zip(&b.items) {
                assert!((x.proximity - y.proximity).abs() < 1e-12);
            }
            // Pruning can only reduce work.
            assert!(a.stats.proximity_computations <= b.stats.proximity_computations);
        }
    }

    #[test]
    fn merge_join_reference_is_bit_identical() {
        for seed in [0u64, 4, 8] {
            let g = random_graph(90, 4, seed);
            let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
            // The scalar kernel is the one with a bit-identity contract
            // against the merge join (the wide kernels re-associate).
            let mut searcher =
                Searcher::with_kernel(&index, crate::GatherKernel::Scalar).unwrap();
            for q in [0u32, 33, 71] {
                for k in [1usize, 6, 90, 120] {
                    let new = searcher.top_k(q, k).unwrap();
                    let old = index.top_k_merge_join(q, k).unwrap();
                    assert_eq!(new.items.len(), old.items.len());
                    for (x, y) in new.items.iter().zip(&old.items) {
                        assert_eq!(x.node, y.node, "seed {seed} q {q} k {k}");
                        assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
                    }
                    // Work counters agree; the traversal counters follow
                    // lazy vs eager semantics (see SearchStats::reachable).
                    assert_eq!(new.stats.visited, old.stats.visited);
                    assert_eq!(
                        new.stats.proximity_computations,
                        old.stats.proximity_computations
                    );
                    assert_eq!(new.stats.terminated_early, old.stats.terminated_early);
                    assert_eq!(old.stats.frontier_expanded, old.stats.reachable);
                    if new.stats.terminated_early {
                        assert!(new.stats.reachable <= old.stats.reachable);
                        assert!(
                            new.stats.frontier_expanded < new.stats.reachable,
                            "early termination must leave the last layer unexpanded"
                        );
                    } else {
                        // The merge join never runs the gather kernel, so
                        // its byte counters stay zero — everything else
                        // must agree exactly on complete runs.
                        assert_eq!(
                            new.stats.without_gather(),
                            old.stats.without_gather(),
                            "full runs agree exactly"
                        );
                        assert!(new.stats.bytes_touched > 0, "gather path must account bytes");
                        assert_eq!(new.stats.kernel, "scalar");
                    }
                }
            }
        }
    }

    #[test]
    fn pruning_terminates_early_on_community_graphs() {
        // A graph with strong locality: pruning must kick in.
        let mut b = GraphBuilder::new(300);
        for blk in 0..30 {
            let base = blk * 10;
            for i in 0..10u32 {
                for j in 0..10u32 {
                    if i != j {
                        b.add_edge(base + i, base + j, 1.0);
                    }
                }
            }
            let next = ((blk + 1) % 30) * 10;
            b.add_edge(base, next, 0.1);
        }
        let g = b.build().unwrap();
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let r = index.top_k(5, 5).unwrap();
        assert!(r.stats.terminated_early, "expected early termination");
        assert!(
            r.stats.proximity_computations < g.num_nodes(),
            "visited {} of {}",
            r.stats.proximity_computations,
            g.num_nodes()
        );
        // And still exact.
        let truth = iterative_top_k(&g, 0.95, 5, 5);
        assert_matches_ground_truth(&r, &truth);
    }

    #[test]
    fn random_root_is_exact_but_works_harder() {
        let g = random_graph(100, 4, 7);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        for q in [4u32, 55] {
            let normal = index.top_k(q, 5).unwrap();
            for root in [0u32, 50, 99] {
                let rr = index.top_k_from_root(q, 5, root).unwrap();
                for (x, y) in normal.items.iter().zip(&rr.items) {
                    assert!(
                        (x.proximity - y.proximity).abs() < 1e-9,
                        "root {root}: {} vs {}",
                        x.proximity,
                        y.proximity
                    );
                }
                assert!(rr.stats.proximity_computations >= normal.stats.proximity_computations);
            }
        }
    }

    #[test]
    fn k_larger_than_reachable_pads_with_zeros() {
        // 0 -> 1 -> 2, node 3 isolated.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build().unwrap();
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let r = index.top_k(0, 4).unwrap();
        assert_eq!(r.items.len(), 4);
        assert_eq!(r.items[3].proximity, 0.0);
        assert_eq!(r.items[3].node, 3);
        assert_eq!(r.stats.reachable, 3);
    }

    #[test]
    fn k_zero_and_k_equals_n() {
        let g = random_graph(25, 3, 1);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        assert!(index.top_k(0, 0).unwrap().items.is_empty());
        let all = index.top_k(0, 25).unwrap();
        assert_eq!(all.items.len(), 25);
        let truth = iterative_top_k(&g, 0.95, 0, 25);
        assert_matches_ground_truth(&all, &truth);
    }

    #[test]
    fn results_identical_across_orderings() {
        let g = random_graph(70, 3, 12);
        let mut reference: Option<Vec<f64>> = None;
        for ordering in [
            NodeOrdering::Natural,
            NodeOrdering::Random { seed: 5 },
            NodeOrdering::Degree,
            NodeOrdering::Cluster,
            NodeOrdering::Hybrid,
            NodeOrdering::ReverseCuthillMcKee,
            NodeOrdering::MinDegree,
        ] {
            let index =
                KdashIndex::build(&g, IndexOptions { ordering, ..Default::default() }).unwrap();
            let r = index.top_k(11, 6).unwrap();
            let proximities: Vec<f64> = r.items.iter().map(|i| i.proximity).collect();
            match &reference {
                None => reference = Some(proximities),
                Some(expect) => {
                    for (a, b) in proximities.iter().zip(expect) {
                        assert!((a - b).abs() < 1e-9, "{ordering:?}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn estimator_upper_bounds_hold_during_search() {
        // Instrument a manual replay of the search loop: every bound must
        // dominate the node's exact proximity (Lemma 1).
        let g = random_graph(50, 3, 21);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let q = 13u32;
        let qp = index.permutation().new_of(q);
        let bfs = BfsTree::new(index.permuted_graph(), qp);
        let (ci, cv) = index.linv().col(qp);
        let c = index.restart_probability();
        let mut est = LayerEstimator::new(index.a_max());
        for (pos, &u) in bfs.order.iter().enumerate() {
            let p = c * index.uinv().row_dot_sparse(u, ci, cv);
            if pos == 0 {
                est.record_root(p, index.a_col_max()[u as usize]);
                continue;
            }
            let layer = bfs.layer[u as usize];
            let bound = index.c_prime()[u as usize] * est.advance(layer);
            assert!(
                bound >= p - 1e-12,
                "Lemma 1 violated at node {u}: bound {bound} < p {p}"
            );
            est.record_selected(layer, p, index.a_col_max()[u as usize]);
        }
    }

    #[test]
    fn threshold_query_matches_filtered_ground_truth() {
        let g = random_graph(80, 3, 14);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        for q in [0u32, 25, 77] {
            let full = index.full_proximities(q).unwrap();
            for theta in [1e-2, 1e-4, 1e-7] {
                let got = index.nodes_above(q, theta).unwrap();
                let mut expect: Vec<(NodeId, f64)> = full
                    .iter()
                    .enumerate()
                    .filter(|&(_, &p)| p >= theta)
                    .map(|(i, &p)| (i as NodeId, p))
                    .collect();
                expect.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                assert_eq!(got.items.len(), expect.len(), "q={q} theta={theta}");
                for (g_, e) in got.items.iter().zip(&expect) {
                    assert!((g_.proximity - e.1).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn threshold_query_terminates_early_for_high_theta() {
        let g = random_graph(200, 4, 15);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let r = index.nodes_above(5, 0.05).unwrap();
        assert!(r.stats.terminated_early);
        assert!(r.stats.proximity_computations < 200);
        // The query itself always clears any theta <= c.
        assert_eq!(r.items[0].node, 5);
    }

    #[test]
    fn threshold_query_rejects_nonpositive_theta() {
        // A library query API must not panic on bad input: non-positive
        // and non-finite thresholds come back as typed errors.
        let g = random_graph(10, 2, 16);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        for theta in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            match index.nodes_above(0, theta) {
                Err(KdashError::InvalidThreshold { .. }) => {}
                other => panic!("theta {theta}: expected InvalidThreshold, got {other:?}"),
            }
        }
    }

    #[test]
    fn multi_source_matches_averaged_singles() {
        // Linearity: the restart-set vector is the average of the
        // single-source vectors, so its top-k must match the top-k of the
        // averaged iterative solutions.
        let g = random_graph(70, 3, 31);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let sources = [3u32, 40, 66];
        let n = g.num_nodes();
        let mut avg = vec![0.0; n];
        for &s in &sources {
            let a = transition_matrix(&g, DanglingPolicy::Keep);
            let mut p = vec![0.0; n];
            p[s as usize] = 1.0;
            let mut next = vec![0.0; n];
            for _ in 0..3000 {
                rwr_step(&a, 0.95, s, &p, &mut next);
                std::mem::swap(&mut p, &mut next);
            }
            for (acc, v) in avg.iter_mut().zip(&p) {
                *acc += v / sources.len() as f64;
            }
        }
        // Full-vector check.
        let full = index.full_proximities_from_set(&sources).unwrap();
        for (i, (a, b)) in full.iter().zip(&avg).enumerate() {
            assert!((a - b).abs() < 1e-9, "node {i}: {a} vs {b}");
        }
        // Search check: proximities of the returned top-k match the truth.
        let mut truth: Vec<(NodeId, f64)> =
            avg.iter().enumerate().map(|(i, &v)| (i as NodeId, v)).collect();
        truth.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let result = index.top_k_from_set(&sources, 8).unwrap();
        for (got, want) in result.items.iter().zip(&truth) {
            assert!(
                (got.proximity - want.1).abs() < 1e-9,
                "{} vs {}",
                got.proximity,
                want.1
            );
        }
    }

    #[test]
    fn multi_source_singleton_equals_top_k() {
        let g = random_graph(50, 3, 8);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let a = index.top_k(7, 6).unwrap();
        let b = index.top_k_from_set(&[7], 6).unwrap();
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.node, y.node);
            assert!((x.proximity - y.proximity).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_source_validates_input() {
        let g = random_graph(20, 3, 5);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        assert!(matches!(
            index.top_k_from_set(&[], 3),
            Err(crate::KdashError::InvalidRestartSet { .. })
        ));
        assert!(matches!(
            index.top_k_from_set(&[1, 1], 3),
            Err(crate::KdashError::InvalidRestartSet { .. })
        ));
        // An out-of-range member is a node error, not a set-shape error.
        assert!(matches!(
            index.top_k_from_set(&[99], 3),
            Err(crate::KdashError::NodeOutOfBounds { node: 99, .. })
        ));
    }
}
