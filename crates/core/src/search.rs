//! The top-k search (Algorithm 4 of the paper).
//!
//! Nodes are visited in BFS-layer order from the query node. Each visited
//! node first receives the `O(1)` upper bound of Definition 2; if the bound
//! of the node about to be visited is below the current K-th candidate
//! proximity θ, the whole search terminates — Lemma 2 guarantees every
//! remaining node is bounded by the same value, so no answer can be missed
//! (Theorem 2). Surviving nodes get their exact proximity from the stored
//! sparse inverses.
//!
//! Three entry points:
//! * [`KdashIndex::top_k`] — the real algorithm,
//! * [`KdashIndex::top_k_unpruned`] — pruning disabled (Figure 7 ablation),
//! * [`KdashIndex::top_k_random_root`] — BFS tree rooted away from the
//!   query (Appendix D.1 / Figure 9 ablation). A tree rooted elsewhere
//!   breaks the layer structure Definition 1 needs, so this variant uses
//!   the weaker order-agnostic bound of
//!   [`ArbitraryOrderBound`](crate::ArbitraryOrderBound): still exact, can
//!   skip individual nodes, but can never terminate early — which is
//!   precisely why it performs many more proximity computations.

use crate::{ArbitraryOrderBound, KdashIndex, LayerEstimator, Result, SearchStats};
use kdash_graph::{bfs::UNREACHABLE, BfsTree, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One answer entry: a node and its exact RWR proximity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RankedNode {
    /// Node id in the caller's (original) id space.
    pub node: NodeId,
    /// Exact proximity `p_node` with respect to the query.
    pub proximity: f64,
}

/// The result of a top-k query.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// Exactly `min(k, n)` nodes in descending proximity order.
    pub items: Vec<RankedNode>,
    /// Work counters for this query.
    pub stats: SearchStats,
}

impl TopKResult {
    /// Just the node ids, in rank order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.items.iter().map(|r| r.node).collect()
    }
}

/// Fixed-capacity min-heap keeping the K largest `(proximity, node)` pairs.
/// θ (the K-th best proximity so far) is the root once the heap is full.
struct TopKHeap {
    k: usize,
    entries: Vec<(f64, NodeId)>,
}

impl TopKHeap {
    fn new(k: usize) -> Self {
        TopKHeap { k, entries: Vec::with_capacity(k) }
    }

    fn is_full(&self) -> bool {
        self.entries.len() >= self.k
    }

    /// The paper's θ: K-th best proximity, 0 while dummies remain.
    fn threshold(&self) -> f64 {
        if self.k > 0 && self.is_full() {
            self.entries[0].0
        } else {
            0.0
        }
    }

    fn offer(&mut self, proximity: f64, node: NodeId) {
        if self.k == 0 {
            return;
        }
        if !self.is_full() {
            self.entries.push((proximity, node));
            let mut i = self.entries.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if self.entries[parent].0 <= self.entries[i].0 {
                    break;
                }
                self.entries.swap(i, parent);
                i = parent;
            }
        } else if proximity > self.entries[0].0 {
            self.entries[0] = (proximity, node);
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut smallest = i;
                if l < self.entries.len() && self.entries[l].0 < self.entries[smallest].0 {
                    smallest = l;
                }
                if r < self.entries.len() && self.entries[r].0 < self.entries[smallest].0 {
                    smallest = r;
                }
                if smallest == i {
                    break;
                }
                self.entries.swap(i, smallest);
                i = smallest;
            }
        }
    }

    /// Drains into descending proximity order (ties by ascending node id
    /// for determinism).
    fn into_sorted(mut self) -> Vec<(f64, NodeId)> {
        self.entries.sort_by(|a, b| {
            b.0.partial_cmp(&a.0).expect("finite proximities").then(a.1.cmp(&b.1))
        });
        self.entries
    }
}

impl KdashIndex {
    /// Exact top-k search (Algorithm 4). Returns `min(k, n)` nodes in
    /// descending proximity order; when fewer than `k` nodes are reachable
    /// the remainder is padded with unreachable nodes at proximity 0.
    pub fn top_k(&self, q: NodeId, k: usize) -> Result<TopKResult> {
        self.check_node(q)?;
        let qp = self.permutation().new_of(q);
        let bfs = BfsTree::new(self.permuted_graph(), qp);
        let (col_idx, col_val) = self.linv().col(qp);
        let c = self.restart_probability();

        let mut heap = TopKHeap::new(k);
        let mut estimator = LayerEstimator::new(self.a_max());
        let mut stats = SearchStats { reachable: bfs.num_reachable(), ..Default::default() };

        for (pos, &u) in bfs.order.iter().enumerate() {
            stats.visited += 1;
            let layer = bfs.layer[u as usize];
            if pos == 0 {
                // The root is the query: p̄_q = 1 by definition, never pruned.
                let p = c * self.uinv().row_dot_sparse(u, col_idx, col_val);
                stats.proximity_computations += 1;
                estimator.record_root(p, self.a_col_max()[u as usize]);
                heap.offer(p, u);
                continue;
            }
            let terms = estimator.advance(layer);
            // Termination must cover every unvisited node, whose c' may
            // exceed this node's when self-loops are present — use max c'.
            if heap.is_full() && self.c_prime_max() * terms < heap.threshold() {
                // Lemma 2: every unvisited node is bounded by this too.
                stats.terminated_early = true;
                break;
            }
            let p = c * self.uinv().row_dot_sparse(u, col_idx, col_val);
            stats.proximity_computations += 1;
            estimator.record_selected(layer, p, self.a_col_max()[u as usize]);
            heap.offer(p, u);
        }

        Ok(self.finish(heap, k, &bfs.layer, stats))
    }

    /// Algorithm 4 with the termination test removed: computes the exact
    /// proximity of every reachable node. This is the "Without pruning"
    /// series of Figure 7.
    pub fn top_k_unpruned(&self, q: NodeId, k: usize) -> Result<TopKResult> {
        self.check_node(q)?;
        let qp = self.permutation().new_of(q);
        let bfs = BfsTree::new(self.permuted_graph(), qp);
        let (col_idx, col_val) = self.linv().col(qp);
        let c = self.restart_probability();

        let mut heap = TopKHeap::new(k);
        let mut stats = SearchStats { reachable: bfs.num_reachable(), ..Default::default() };
        for &u in &bfs.order {
            stats.visited += 1;
            let p = c * self.uinv().row_dot_sparse(u, col_idx, col_val);
            stats.proximity_computations += 1;
            heap.offer(p, u);
        }
        Ok(self.finish(heap, k, &bfs.layer, stats))
    }

    /// Exact *threshold* query: every node whose proximity is at least
    /// `theta`, in descending order. Extension beyond the paper, enabled
    /// by the same machinery: visit in BFS-layer order and stop as soon as
    /// the Lemma 2 bound falls below `theta` — every unvisited node is
    /// then provably below the threshold.
    pub fn nodes_above(&self, q: NodeId, theta: f64) -> Result<TopKResult> {
        self.check_node(q)?;
        assert!(theta > 0.0 && theta.is_finite(), "threshold must be positive and finite");
        let qp = self.permutation().new_of(q);
        let bfs = BfsTree::new(self.permuted_graph(), qp);
        let (col_idx, col_val) = self.linv().col(qp);
        let c = self.restart_probability();

        let mut hits: Vec<(f64, NodeId)> = Vec::new();
        let mut estimator = LayerEstimator::new(self.a_max());
        let mut stats = SearchStats { reachable: bfs.num_reachable(), ..Default::default() };
        for (pos, &u) in bfs.order.iter().enumerate() {
            stats.visited += 1;
            let layer = bfs.layer[u as usize];
            if pos > 0 {
                let bound = self.c_prime_max() * estimator.advance(layer);
                if bound < theta {
                    stats.terminated_early = true;
                    break;
                }
            }
            let p = c * self.uinv().row_dot_sparse(u, col_idx, col_val);
            stats.proximity_computations += 1;
            if pos == 0 {
                estimator.record_root(p, self.a_col_max()[u as usize]);
            } else {
                estimator.record_selected(layer, p, self.a_col_max()[u as usize]);
            }
            if p >= theta {
                hits.push((p, u));
            }
        }
        hits.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
        let items = hits
            .into_iter()
            .map(|(p, u)| RankedNode { node: self.permutation().old_of(u), proximity: p })
            .collect();
        Ok(TopKResult { items, stats })
    }

    /// Exact top-k for a *restart set*: the walk restarts uniformly over
    /// `sources` (Personalized PageRank in the sense of the paper's
    /// footnote 6). All sources form layer 0 of the search tree and are
    /// computed exactly; pruning starts at layer 1, where Lemma 1/2 hold
    /// unchanged (every non-source node still satisfies
    /// `p_u = c'_u Σ_v A_uv p_v`).
    pub fn top_k_from_set(&self, sources: &[NodeId], k: usize) -> Result<TopKResult> {
        let (col_idx, col_val) = self.merged_query_column(sources)?;
        let sources_p: Vec<NodeId> =
            sources.iter().map(|&s| self.permutation().new_of(s)).collect();
        let bfs = BfsTree::new_multi(self.permuted_graph(), &sources_p);
        let c = self.restart_probability();

        let mut heap = TopKHeap::new(k);
        let mut estimator = LayerEstimator::new(self.a_max());
        let mut stats = SearchStats { reachable: bfs.num_reachable(), ..Default::default() };

        for (pos, &u) in bfs.order.iter().enumerate() {
            stats.visited += 1;
            let layer = bfs.layer[u as usize];
            if layer == 0 {
                // Sources carry the restart term; their proximities are
                // computed unconditionally and feed the estimator chain.
                let p = c * self.uinv().row_dot_sparse(u, &col_idx, &col_val);
                stats.proximity_computations += 1;
                if pos > 0 {
                    let _ = estimator.advance(0);
                }
                estimator.record_selected(0, p, self.a_col_max()[u as usize]);
                heap.offer(p, u);
                continue;
            }
            let terms = estimator.advance(layer);
            if heap.is_full() && self.c_prime_max() * terms < heap.threshold() {
                stats.terminated_early = true;
                break;
            }
            let p = c * self.uinv().row_dot_sparse(u, &col_idx, &col_val);
            stats.proximity_computations += 1;
            estimator.record_selected(layer, p, self.a_col_max()[u as usize]);
            heap.offer(p, u);
        }
        Ok(self.finish(heap, k, &bfs.layer, stats))
    }

    /// The Appendix D.1 ablation: the search tree is rooted at a random
    /// node instead of the query. The layer bound is no longer valid, so an
    /// order-agnostic bound is used — exact answers, per-node skipping
    /// only, and every node must still be visited.
    pub fn top_k_random_root(&self, q: NodeId, k: usize, seed: u64) -> Result<TopKResult> {
        let n = self.num_nodes();
        self.check_node(q)?;
        let root = StdRng::seed_from_u64(seed).gen_range(0..n) as NodeId;
        self.top_k_from_root(q, k, root)
    }

    /// Random-root search with an explicit root (exposed for tests).
    pub fn top_k_from_root(&self, q: NodeId, k: usize, root: NodeId) -> Result<TopKResult> {
        self.check_node(q)?;
        self.check_node(root)?;
        let qp = self.permutation().new_of(q);
        let rootp = self.permutation().new_of(root);
        let bfs = BfsTree::new(self.permuted_graph(), rootp);
        let (col_idx, col_val) = self.linv().col(qp);
        let c = self.restart_probability();

        // Visit order: BFS from the root, then every node the root cannot
        // reach (they may still be answers — the walk starts at q, not at
        // the root).
        let mut order = bfs.order.clone();
        order.extend(
            (0..self.num_nodes() as NodeId).filter(|&v| bfs.layer[v as usize] == UNREACHABLE),
        );

        let mut heap = TopKHeap::new(k);
        let mut bound_state = ArbitraryOrderBound::new(self.a_max());
        let mut stats = SearchStats { reachable: bfs.num_reachable(), ..Default::default() };
        for &u in &order {
            stats.visited += 1;
            // The order-agnostic bound only holds for non-query nodes.
            if u != qp {
                let bound = self.c_prime()[u as usize] * bound_state.bound_term();
                if heap.is_full() && bound < heap.threshold() {
                    stats.skipped += 1;
                    continue;
                }
            }
            let p = c * self.uinv().row_dot_sparse(u, col_idx, col_val);
            stats.proximity_computations += 1;
            bound_state.record(p, self.a_col_max()[u as usize]);
            heap.offer(p, u);
        }
        // Every node was visited (or skipped soundly); no padding needed
        // beyond the usual zero-fill for tiny graphs.
        let layers = vec![0u32; self.num_nodes()];
        Ok(self.finish(heap, k, &layers, stats))
    }

    /// Shared epilogue: pads with unreachable (zero-proximity) nodes when
    /// fewer than `k` candidates exist, sorts, and maps back to original
    /// ids.
    fn finish(
        &self,
        heap: TopKHeap,
        k: usize,
        layer: &[u32],
        stats: SearchStats,
    ) -> TopKResult {
        let mut sorted = heap.into_sorted();
        if sorted.len() < k {
            let have: std::collections::HashSet<NodeId> =
                sorted.iter().map(|&(_, u)| u).collect();
            for v in 0..self.num_nodes() as NodeId {
                if sorted.len() >= k {
                    break;
                }
                if layer[v as usize] == UNREACHABLE && !have.contains(&v) {
                    sorted.push((0.0, v));
                }
            }
        }
        let items = sorted
            .into_iter()
            .map(|(p, u)| RankedNode { node: self.permutation().old_of(u), proximity: p })
            .collect();
        TopKResult { items, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IndexOptions, KdashIndex, NodeOrdering};
    use kdash_graph::{CsrGraph, GraphBuilder};
    use kdash_sparse::{rwr::rwr_step, transition_matrix, DanglingPolicy};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_graph(n: usize, avg_deg: usize, seed: u64) -> CsrGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            for _ in 0..rng.gen_range(1..=avg_deg * 2) {
                let t = rng.gen_range(0..n);
                if t != v {
                    b.add_edge(v as NodeId, t as NodeId, rng.gen_range(0.5..2.0));
                }
            }
        }
        b.build().unwrap()
    }

    fn iterative_top_k(g: &CsrGraph, c: f64, q: NodeId, k: usize) -> Vec<(NodeId, f64)> {
        let a = transition_matrix(g, DanglingPolicy::Keep);
        let n = g.num_nodes();
        let mut p = vec![0.0; n];
        p[q as usize] = 1.0;
        let mut next = vec![0.0; n];
        for _ in 0..3000 {
            rwr_step(&a, c, q, &p, &mut next);
            std::mem::swap(&mut p, &mut next);
        }
        let mut pairs: Vec<(NodeId, f64)> =
            p.iter().enumerate().map(|(i, &v)| (i as NodeId, v)).collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        pairs.truncate(k);
        pairs
    }

    /// The exactness contract: the returned proximity multiset must match
    /// the iterative ground truth (ids may differ under exact ties).
    fn assert_matches_ground_truth(result: &TopKResult, truth: &[(NodeId, f64)]) {
        assert_eq!(result.items.len(), truth.len());
        for (got, want) in result.items.iter().zip(truth) {
            assert!(
                (got.proximity - want.1).abs() < 1e-9,
                "proximity mismatch: {} vs {}",
                got.proximity,
                want.1
            );
        }
    }

    #[test]
    fn exact_against_iterative_many_graphs() {
        for seed in 0..5u64 {
            let g = random_graph(60, 3, seed);
            let index = KdashIndex::build(
                &g,
                IndexOptions { restart_probability: 0.9, ..Default::default() },
            )
            .unwrap();
            for q in [0u32, 17, 42] {
                for k in [1usize, 5, 12] {
                    let result = index.top_k(q, k).unwrap();
                    let truth = iterative_top_k(&g, 0.9, q, k);
                    assert_matches_ground_truth(&result, &truth);
                }
            }
        }
    }

    #[test]
    fn query_node_ranks_first_under_high_restart() {
        let g = random_graph(40, 3, 9);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        for q in 0..40u32 {
            let r = index.top_k(q, 3).unwrap();
            assert_eq!(r.items[0].node, q, "c = 0.95 makes the query dominate");
        }
    }

    #[test]
    fn unpruned_agrees_with_pruned() {
        let g = random_graph(80, 4, 3);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        for q in [2u32, 31, 77] {
            let a = index.top_k(q, 8).unwrap();
            let b = index.top_k_unpruned(q, 8).unwrap();
            for (x, y) in a.items.iter().zip(&b.items) {
                assert!((x.proximity - y.proximity).abs() < 1e-12);
            }
            // Pruning can only reduce work.
            assert!(a.stats.proximity_computations <= b.stats.proximity_computations);
        }
    }

    #[test]
    fn pruning_terminates_early_on_community_graphs() {
        // A graph with strong locality: pruning must kick in.
        let mut b = GraphBuilder::new(300);
        for blk in 0..30 {
            let base = blk * 10;
            for i in 0..10u32 {
                for j in 0..10u32 {
                    if i != j {
                        b.add_edge(base + i, base + j, 1.0);
                    }
                }
            }
            let next = ((blk + 1) % 30) * 10;
            b.add_edge(base, next, 0.1);
        }
        let g = b.build().unwrap();
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let r = index.top_k(5, 5).unwrap();
        assert!(r.stats.terminated_early, "expected early termination");
        assert!(
            r.stats.proximity_computations < g.num_nodes(),
            "visited {} of {}",
            r.stats.proximity_computations,
            g.num_nodes()
        );
        // And still exact.
        let truth = iterative_top_k(&g, 0.95, 5, 5);
        assert_matches_ground_truth(&r, &truth);
    }

    #[test]
    fn random_root_is_exact_but_works_harder() {
        let g = random_graph(100, 4, 7);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        for q in [4u32, 55] {
            let normal = index.top_k(q, 5).unwrap();
            for root in [0u32, 50, 99] {
                let rr = index.top_k_from_root(q, 5, root).unwrap();
                for (x, y) in normal.items.iter().zip(&rr.items) {
                    assert!(
                        (x.proximity - y.proximity).abs() < 1e-9,
                        "root {root}: {} vs {}",
                        x.proximity,
                        y.proximity
                    );
                }
                assert!(rr.stats.proximity_computations >= normal.stats.proximity_computations);
            }
        }
    }

    #[test]
    fn k_larger_than_reachable_pads_with_zeros() {
        // 0 -> 1 -> 2, node 3 isolated.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        let g = b.build().unwrap();
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let r = index.top_k(0, 4).unwrap();
        assert_eq!(r.items.len(), 4);
        assert_eq!(r.items[3].proximity, 0.0);
        assert_eq!(r.items[3].node, 3);
        assert_eq!(r.stats.reachable, 3);
    }

    #[test]
    fn k_zero_and_k_equals_n() {
        let g = random_graph(25, 3, 1);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        assert!(index.top_k(0, 0).unwrap().items.is_empty());
        let all = index.top_k(0, 25).unwrap();
        assert_eq!(all.items.len(), 25);
        let truth = iterative_top_k(&g, 0.95, 0, 25);
        assert_matches_ground_truth(&all, &truth);
    }

    #[test]
    fn results_identical_across_orderings() {
        let g = random_graph(70, 3, 12);
        let mut reference: Option<Vec<f64>> = None;
        for ordering in [
            NodeOrdering::Natural,
            NodeOrdering::Random { seed: 5 },
            NodeOrdering::Degree,
            NodeOrdering::Cluster,
            NodeOrdering::Hybrid,
            NodeOrdering::ReverseCuthillMcKee,
            NodeOrdering::MinDegree,
        ] {
            let index =
                KdashIndex::build(&g, IndexOptions { ordering, ..Default::default() }).unwrap();
            let r = index.top_k(11, 6).unwrap();
            let proximities: Vec<f64> = r.items.iter().map(|i| i.proximity).collect();
            match &reference {
                None => reference = Some(proximities),
                Some(expect) => {
                    for (a, b) in proximities.iter().zip(expect) {
                        assert!((a - b).abs() < 1e-9, "{ordering:?}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn estimator_upper_bounds_hold_during_search() {
        // Instrument a manual replay of the search loop: every bound must
        // dominate the node's exact proximity (Lemma 1).
        let g = random_graph(50, 3, 21);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let q = 13u32;
        let qp = index.permutation().new_of(q);
        let bfs = BfsTree::new(index.permuted_graph(), qp);
        let (ci, cv) = index.linv().col(qp);
        let c = index.restart_probability();
        let mut est = LayerEstimator::new(index.a_max());
        for (pos, &u) in bfs.order.iter().enumerate() {
            let p = c * index.uinv().row_dot_sparse(u, ci, cv);
            if pos == 0 {
                est.record_root(p, index.a_col_max()[u as usize]);
                continue;
            }
            let layer = bfs.layer[u as usize];
            let bound = index.c_prime()[u as usize] * est.advance(layer);
            assert!(
                bound >= p - 1e-12,
                "Lemma 1 violated at node {u}: bound {bound} < p {p}"
            );
            est.record_selected(layer, p, index.a_col_max()[u as usize]);
        }
    }

    #[test]
    fn threshold_query_matches_filtered_ground_truth() {
        let g = random_graph(80, 3, 14);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        for q in [0u32, 25, 77] {
            let full = index.full_proximities(q).unwrap();
            for theta in [1e-2, 1e-4, 1e-7] {
                let got = index.nodes_above(q, theta).unwrap();
                let mut expect: Vec<(NodeId, f64)> = full
                    .iter()
                    .enumerate()
                    .filter(|&(_, &p)| p >= theta)
                    .map(|(i, &p)| (i as NodeId, p))
                    .collect();
                expect.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
                assert_eq!(got.items.len(), expect.len(), "q={q} theta={theta}");
                for (g_, e) in got.items.iter().zip(&expect) {
                    assert!((g_.proximity - e.1).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn threshold_query_terminates_early_for_high_theta() {
        let g = random_graph(200, 4, 15);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let r = index.nodes_above(5, 0.05).unwrap();
        assert!(r.stats.terminated_early);
        assert!(r.stats.proximity_computations < 200);
        // The query itself always clears any theta <= c.
        assert_eq!(r.items[0].node, 5);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn threshold_query_rejects_nonpositive_theta() {
        let g = random_graph(10, 2, 16);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let _ = index.nodes_above(0, 0.0);
    }

    #[test]
    fn multi_source_matches_averaged_singles() {
        // Linearity: the restart-set vector is the average of the
        // single-source vectors, so its top-k must match the top-k of the
        // averaged iterative solutions.
        let g = random_graph(70, 3, 31);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let sources = [3u32, 40, 66];
        let n = g.num_nodes();
        let mut avg = vec![0.0; n];
        for &s in &sources {
            let a = transition_matrix(&g, DanglingPolicy::Keep);
            let mut p = vec![0.0; n];
            p[s as usize] = 1.0;
            let mut next = vec![0.0; n];
            for _ in 0..3000 {
                rwr_step(&a, 0.95, s, &p, &mut next);
                std::mem::swap(&mut p, &mut next);
            }
            for (acc, v) in avg.iter_mut().zip(&p) {
                *acc += v / sources.len() as f64;
            }
        }
        // Full-vector check.
        let full = index.full_proximities_from_set(&sources).unwrap();
        for (i, (a, b)) in full.iter().zip(&avg).enumerate() {
            assert!((a - b).abs() < 1e-9, "node {i}: {a} vs {b}");
        }
        // Search check: proximities of the returned top-k match the truth.
        let mut truth: Vec<(NodeId, f64)> =
            avg.iter().enumerate().map(|(i, &v)| (i as NodeId, v)).collect();
        truth.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let result = index.top_k_from_set(&sources, 8).unwrap();
        for (got, want) in result.items.iter().zip(&truth) {
            assert!(
                (got.proximity - want.1).abs() < 1e-9,
                "{} vs {}",
                got.proximity,
                want.1
            );
        }
    }

    #[test]
    fn multi_source_singleton_equals_top_k() {
        let g = random_graph(50, 3, 8);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let a = index.top_k(7, 6).unwrap();
        let b = index.top_k_from_set(&[7], 6).unwrap();
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.node, y.node);
            assert!((x.proximity - y.proximity).abs() < 1e-12);
        }
    }

    #[test]
    fn multi_source_validates_input() {
        let g = random_graph(20, 3, 5);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        assert!(index.top_k_from_set(&[], 3).is_err());
        assert!(index.top_k_from_set(&[1, 1], 3).is_err());
        assert!(index.top_k_from_set(&[99], 3).is_err());
    }

    #[test]
    fn heap_keeps_largest_k() {
        let mut h = TopKHeap::new(3);
        for (p, n) in [(0.1, 1u32), (0.5, 2), (0.3, 3), (0.9, 4), (0.2, 5)] {
            h.offer(p, n);
        }
        let sorted = h.into_sorted();
        let nodes: Vec<NodeId> = sorted.iter().map(|&(_, n)| n).collect();
        assert_eq!(nodes, vec![4, 2, 3]);
    }

    #[test]
    fn heap_threshold_tracks_kth_best() {
        let mut h = TopKHeap::new(2);
        assert_eq!(h.threshold(), 0.0);
        h.offer(0.4, 1);
        assert_eq!(h.threshold(), 0.0, "not full yet");
        h.offer(0.7, 2);
        assert!((h.threshold() - 0.4).abs() < 1e-15);
        h.offer(0.5, 3);
        assert!((h.threshold() - 0.5).abs() < 1e-15);
        h.offer(0.1, 4); // too small, ignored
        assert!((h.threshold() - 0.5).abs() < 1e-15);
    }
}
