//! Instrumentation records for precomputation and search.

use std::time::Duration;

/// What index construction cost and produced — the quantities behind the
/// paper's Figures 5 (nnz ratio) and 6 (precomputation time).
#[derive(Debug, Clone, Default)]
pub struct IndexStats {
    /// Time spent computing the node ordering.
    pub ordering_time: Duration,
    /// Time spent assembling `A` and `W` and factoring `W = LU`.
    pub factorization_time: Duration,
    /// Time spent inverting the triangular factors.
    pub inversion_time: Duration,
    /// Time spent precomputing the estimator constants
    /// (`A_max`, `A_max(v)`, `c'`).
    pub estimator_time: Duration,
    /// Time spent assembling and validating the final index.
    pub assemble_time: Duration,
    /// Stored entries of the factor `L` (diagonal implicit).
    pub nnz_l: usize,
    /// Stored entries of the factor `U`.
    pub nnz_u: usize,
    /// Stored entries of `L⁻¹` (diagonal explicit).
    pub nnz_l_inv: usize,
    /// Stored entries of `U⁻¹` (diagonal explicit).
    pub nnz_u_inv: usize,
    /// Edges of the indexed graph.
    pub num_edges: usize,
    /// Nodes of the indexed graph.
    pub num_nodes: usize,
    /// Approximate heap footprint of the stored inverses in bytes.
    pub inverse_heap_bytes: usize,
    /// Column-index bytes of the stored `U⁻¹` under its row layout —
    /// what a full sweep of the gather path streams from memory (flat:
    /// 4/nnz; blocked: 2/nnz + 8/run).
    pub uinv_index_bytes: usize,
}

impl IndexStats {
    /// Total wall-clock spent building the index.
    pub fn total_time(&self) -> Duration {
        self.ordering_time
            + self.factorization_time
            + self.inversion_time
            + self.estimator_time
            + self.assemble_time
    }

    /// The Figure 5 metric: stored inverse entries per graph edge.
    pub fn inverse_nnz_ratio(&self) -> f64 {
        if self.num_edges == 0 {
            return 0.0;
        }
        (self.nnz_l_inv + self.nnz_u_inv) as f64 / self.num_edges as f64
    }
}

/// Per-query counters (Figures 7 and 9).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes whose upper bound was evaluated.
    pub visited: usize,
    /// Nodes whose exact proximity was computed (Fig. 9's y-axis).
    pub proximity_computations: usize,
    /// Nodes skipped by a per-node bound without terminating
    /// (random-root variant only).
    pub skipped: usize,
    /// True when the search ended through the Lemma 2 early-termination.
    pub terminated_early: bool,
    /// Nodes the search tree had *discovered* when the search ended.
    ///
    /// The search expands its BFS frontier lazily, one layer at a time, so
    /// a query that terminates early (`terminated_early == true`) never
    /// enumerates the rest of the reachable set: this field then reports
    /// the discovered-so-far count — a lower bound on true reachability —
    /// not the size of the full reachable set. When the search ran to
    /// completion the traversal is exhaustive and this is the exact
    /// reachable count, as before. (The eager reference path
    /// `KdashIndex::top_k_merge_join` always reports the full count;
    /// consumers comparing the two — the experiment harness's
    /// "computed/reachable" ratios, the CLI stats line — must take an
    /// unpruned or merge-join run as the denominator.)
    pub reachable: usize,
    /// Nodes whose out-edges the lazy BFS frontier actually scanned.
    ///
    /// Always `<= reachable`; equal when the search ran to completion and
    /// *strictly* smaller on early-terminated queries (the layer the
    /// search died in was discovered but never expanded). The gap is the
    /// traversal work Lemma 2 saved on top of the skipped proximity
    /// computations.
    pub frontier_expanded: usize,
    /// Index bytes the proximity gathers streamed (layout-dependent:
    /// 4/nnz flat, 2/nnz + 8/run blocked). Zero on paths that never run
    /// the gather kernel (the merge-join oracles).
    pub bytes_touched: usize,
    /// Value bytes the gathers touched under the fixed accounting model
    /// (scalar rows: 8 per stamp hit; wide rows: 8 per stored entry) —
    /// machine-independent, so the cold-row regression pin can compare
    /// executed traffic across kernels.
    pub value_bytes_touched: usize,
    /// Candidate rows the (possibly adaptive) dispatch ran through the
    /// branchy scalar gather.
    pub rows_scalar: usize,
    /// Candidate rows dispatched to a wide (unrolled/AVX2) kernel.
    pub rows_wide: usize,
    /// Stored `U⁻¹` entries of every gathered row — the work metric
    /// [`QueryBudget::max_gather_nnz`](crate::QueryBudget) meters.
    /// Layout- and kernel-independent by construction (it counts stored
    /// entries, not executed loads), so the same budget admits the same
    /// queries under every execution strategy. Zero on paths that never
    /// run the gather kernel.
    pub nnz_gathered: usize,
    /// The resolved gather kernel that produced this query's proximities
    /// (e.g. `"scalar"`, `"avx2"`, `"adaptive(avx2)"`), recorded so
    /// `auto`/`adaptive` resolutions are reproducible from logs. Empty on
    /// paths that never run the gather kernel.
    pub kernel: &'static str,
    /// Certified-refinement correction passes the query ran. Zero on a
    /// dense-exact index (the classic Lemma-2 path never refines); on a
    /// sparsified index every answer was certified after this many
    /// residual/correction iterations. Independent of kernel and layout —
    /// a pure function of index content and query.
    pub refinement_iterations: usize,
    /// Stored entries the refinement loop moved: residual accumulations
    /// over the permuted graph plus `L̃⁻¹`/`Ũ⁻¹` entries scattered and
    /// gathered by the correction solves. The refinement-work currency the
    /// memory/latency tradeoff benches record. Zero when no refinement
    /// ran.
    pub refinement_nnz: usize,
}

impl SearchStats {
    /// This record with every gather-kernel field cleared (byte counters,
    /// row split, kernel label). Search-work comparisons across *different
    /// kernels, layouts or the merge-join oracles* pin everything else —
    /// visits, proximity computations, termination, traversal — while the
    /// gather fields legitimately vary with the execution strategy.
    pub fn without_gather(&self) -> SearchStats {
        SearchStats {
            bytes_touched: 0,
            value_bytes_touched: 0,
            rows_scalar: 0,
            rows_wide: 0,
            nnz_gathered: 0,
            kernel: "",
            ..self.clone()
        }
    }

    /// Total gather traffic under the accounting model: index bytes plus
    /// model value bytes. The quantity the adaptive policy minimises.
    pub fn gather_bytes(&self) -> usize {
        self.bytes_touched + self.value_bytes_touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_handles_empty_graph() {
        let s = IndexStats::default();
        assert_eq!(s.inverse_nnz_ratio(), 0.0);
    }

    #[test]
    fn ratio_and_total_time() {
        let s = IndexStats {
            ordering_time: Duration::from_millis(1),
            factorization_time: Duration::from_millis(2),
            inversion_time: Duration::from_millis(3),
            nnz_l_inv: 30,
            nnz_u_inv: 20,
            num_edges: 10,
            ..Default::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(6));
        assert!((s.inverse_nnz_ratio() - 5.0).abs() < 1e-12);
    }
}
