//! Node reordering heuristics (§4.2.2, Algorithms 1–3 of the paper).
//!
//! Finding the ordering that minimises nonzeros in `L⁻¹` / `U⁻¹` is
//! NP-complete (Theorem 1, by reduction from minimum fill-in), so the paper
//! proposes three heuristics — degree, cluster, hybrid — evaluated in
//! Figures 5 and 6. This module implements all three plus a random baseline
//! and two classic fill-reducing orderings (reverse Cuthill–McKee and
//! greedy minimum degree) as extensions for the ablation benches.

use kdash_community::{louvain, LouvainOptions};
use kdash_graph::{CsrGraph, NodeId, Permutation};
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};
use std::collections::VecDeque;

/// The reordering strategy applied before LU factorisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NodeOrdering {
    /// Keep the input order (worst case in the paper's Figure 5 after
    /// Random; useful as a control).
    Natural,
    /// Uniformly random order — the paper's "Random" baseline.
    Random {
        /// Shuffle seed.
        seed: u64,
    },
    /// Ascending total degree (Algorithm 1).
    Degree,
    /// Louvain partitions with border nodes moved to an extra partition
    /// (Algorithm 2).
    Cluster,
    /// Cluster order, then ascending degree inside each partition
    /// (Algorithm 3). The paper's default — and ours.
    #[default]
    Hybrid,
    /// Reverse Cuthill–McKee on the symmetrised graph (bandwidth
    /// minimisation). Extension beyond the paper.
    ReverseCuthillMcKee,
    /// Greedy minimum-degree elimination ordering. Extension beyond the
    /// paper; `O(fill)` work, intended for moderate graph sizes.
    MinDegree,
}

impl NodeOrdering {
    /// Display name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            NodeOrdering::Natural => "Natural",
            NodeOrdering::Random { .. } => "Random",
            NodeOrdering::Degree => "Degree",
            NodeOrdering::Cluster => "Cluster",
            NodeOrdering::Hybrid => "Hybrid",
            NodeOrdering::ReverseCuthillMcKee => "RCM",
            NodeOrdering::MinDegree => "MinDegree",
        }
    }

    /// The orderings the paper evaluates in Figures 5 and 6.
    pub const PAPER_SET: [NodeOrdering; 4] = [
        NodeOrdering::Degree,
        NodeOrdering::Cluster,
        NodeOrdering::Hybrid,
        NodeOrdering::Random { seed: 0 },
    ];
}

/// What the ordering stage observed — surfaced through the
/// [`IndexBuilder`](crate::IndexBuilder) pipeline's build report. The
/// community fields are populated only by the Louvain-backed orderings
/// (cluster / hybrid).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OrderingStats {
    /// Louvain communities κ found by the partitioner.
    pub communities: Option<usize>,
    /// Nodes moved into the extra border partition κ+1.
    pub border_nodes: Option<usize>,
    /// Size of the largest community.
    pub largest_community: Option<usize>,
}

/// Computes the permutation realising `ordering` on `graph`
/// (old id `v` maps to position `perm.new_of(v)`).
pub fn compute_ordering(graph: &CsrGraph, ordering: NodeOrdering) -> Permutation {
    compute_ordering_with_stats(graph, ordering).0
}

/// [`compute_ordering`], also reporting what the ordering saw (community
/// structure for the Louvain-backed strategies).
pub fn compute_ordering_with_stats(
    graph: &CsrGraph,
    ordering: NodeOrdering,
) -> (Permutation, OrderingStats) {
    let n = graph.num_nodes();
    let mut stats = OrderingStats::default();
    let order: Vec<NodeId> = match ordering {
        NodeOrdering::Natural => (0..n as NodeId).collect(),
        NodeOrdering::Random { seed } => {
            let mut order: Vec<NodeId> = (0..n as NodeId).collect();
            order.shuffle(&mut StdRng::seed_from_u64(seed));
            order
        }
        NodeOrdering::Degree => degree_order(graph),
        NodeOrdering::Cluster => cluster_order(graph, false, &mut stats),
        NodeOrdering::Hybrid => cluster_order(graph, true, &mut stats),
        NodeOrdering::ReverseCuthillMcKee => rcm_order(graph),
        NodeOrdering::MinDegree => min_degree_order(graph),
    };
    let perm = Permutation::from_new_order(order).expect("orderings produce bijections");
    (perm, stats)
}

/// Algorithm 1: ascending total degree, ties by node id (deterministic).
fn degree_order(graph: &CsrGraph) -> Vec<NodeId> {
    let degrees = graph.total_degrees();
    let mut order: Vec<NodeId> = (0..graph.num_nodes() as NodeId).collect();
    order.sort_by_key(|&v| (degrees[v as usize], v));
    order
}

/// Algorithms 2 and 3. Partitions with Louvain, moves every node with a
/// cross-partition edge into the extra border partition `κ+1`, orders
/// partitions consecutively (border last); `sort_by_degree` switches
/// between cluster (false) and hybrid (true).
fn cluster_order(graph: &CsrGraph, sort_by_degree: bool, stats: &mut OrderingStats) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let partition = louvain(graph, LouvainOptions::default());
    let kappa = partition.num_communities();
    // Border detection must see both directions; the paper's matrix view is
    // symmetric in its effect (an entry on either side of the diagonal
    // crossing two partitions creates fill).
    let transpose = graph.transpose();
    let mut bucket: Vec<u32> = vec![0; n]; // partition index, κ = border
    let mut border = 0usize;
    for v in 0..n as NodeId {
        let cv = partition.community_of(v);
        let crosses = graph
            .out_neighbors(v)
            .iter()
            .chain(transpose.out_neighbors(v))
            .any(|&t| partition.community_of(t) != cv);
        border += crosses as usize;
        bucket[v as usize] = if crosses { kappa as u32 } else { cv };
    }
    stats.communities = Some(kappa);
    stats.border_nodes = Some(border);
    stats.largest_community = partition.largest().map(|(_, size)| size);
    let degrees = graph.total_degrees();
    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    if sort_by_degree {
        order.sort_by_key(|&v| (bucket[v as usize], degrees[v as usize], v));
    } else {
        order.sort_by_key(|&v| (bucket[v as usize], v));
    }
    order
}

/// Reverse Cuthill–McKee over the symmetrised adjacency: BFS from a
/// minimum-degree node of every component, neighbours visited in ascending
/// degree, final order reversed.
fn rcm_order(graph: &CsrGraph) -> Vec<NodeId> {
    let sym = graph.symmetrize();
    let n = sym.num_nodes();
    let degrees = sym.total_degrees();
    let mut visited = vec![false; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut starts: Vec<NodeId> = (0..n as NodeId).collect();
    starts.sort_by_key(|&v| (degrees[v as usize], v));
    let mut neigh: Vec<NodeId> = Vec::new();
    for &s in &starts {
        if visited[s as usize] {
            continue;
        }
        visited[s as usize] = true;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neigh.clear();
            neigh.extend(sym.out_neighbors(v).iter().copied().filter(|&t| !visited[t as usize]));
            neigh.sort_by_key(|&t| (degrees[t as usize], t));
            for &t in &neigh {
                if !visited[t as usize] {
                    visited[t as usize] = true;
                    queue.push_back(t);
                }
            }
        }
    }
    order.reverse();
    order
}

/// Greedy minimum-degree elimination on the symmetrised graph: repeatedly
/// eliminate the lowest-degree node, connecting its remaining neighbours
/// into a clique (the fill its elimination would cause).
fn min_degree_order(graph: &CsrGraph) -> Vec<NodeId> {
    use std::collections::BTreeSet;
    let sym = graph.symmetrize();
    let n = sym.num_nodes();
    let mut adj: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); n];
    for (u, v, _) in sym.edges() {
        if u != v {
            adj[u as usize].insert(v);
        }
    }
    let mut eliminated = vec![false; n];
    let mut order: Vec<NodeId> = Vec::with_capacity(n);
    // Simple priority structure: degree buckets with lazy revalidation.
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<(usize, NodeId)>> =
        (0..n as NodeId).map(|v| std::cmp::Reverse((adj[v as usize].len(), v))).collect();
    while let Some(std::cmp::Reverse((deg, v))) = heap.pop() {
        if eliminated[v as usize] || adj[v as usize].len() != deg {
            continue; // stale entry
        }
        eliminated[v as usize] = true;
        order.push(v);
        let neighbours: Vec<NodeId> = adj[v as usize].iter().copied().collect();
        for &u in &neighbours {
            adj[u as usize].remove(&v);
        }
        // Clique the neighbourhood (this simulates elimination fill).
        for i in 0..neighbours.len() {
            for j in i + 1..neighbours.len() {
                let (a, b) = (neighbours[i], neighbours[j]);
                if adj[a as usize].insert(b) {
                    adj[b as usize].insert(a);
                }
            }
        }
        for &u in &neighbours {
            if !eliminated[u as usize] {
                heap.push(std::cmp::Reverse((adj[u as usize].len(), u)));
            }
        }
        adj[v as usize].clear();
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_graph::GraphBuilder;

    fn star_plus_path() -> CsrGraph {
        // Node 0 is a hub to 1..=4; 5 -> 6 path.
        let mut b = GraphBuilder::new(7);
        for t in 1..=4 {
            b.add_undirected_edge(0, t, 1.0);
        }
        b.add_undirected_edge(5, 6, 1.0);
        b.build().unwrap()
    }

    fn assert_valid_permutation(graph: &CsrGraph, ordering: NodeOrdering) {
        let p = compute_ordering(graph, ordering);
        assert_eq!(p.len(), graph.num_nodes(), "{ordering:?}");
        // from_new_order validates bijectivity; also spot check inverses.
        for v in 0..graph.num_nodes() as NodeId {
            assert_eq!(p.old_of(p.new_of(v)), v);
        }
    }

    #[test]
    fn all_orderings_are_bijections() {
        let g = star_plus_path();
        for ord in [
            NodeOrdering::Natural,
            NodeOrdering::Random { seed: 3 },
            NodeOrdering::Degree,
            NodeOrdering::Cluster,
            NodeOrdering::Hybrid,
            NodeOrdering::ReverseCuthillMcKee,
            NodeOrdering::MinDegree,
        ] {
            assert_valid_permutation(&g, ord);
        }
    }

    #[test]
    fn degree_order_puts_hub_last() {
        let g = star_plus_path();
        let p = compute_ordering(&g, NodeOrdering::Degree);
        // hub 0 has total degree 8 (4 out + 4 in), the largest
        assert_eq!(p.new_of(0), 6);
    }

    #[test]
    fn degree_order_is_ascending() {
        let g = star_plus_path();
        let p = compute_ordering(&g, NodeOrdering::Degree);
        let deg = g.total_degrees();
        let seq: Vec<usize> = p.order().iter().map(|&v| deg[v as usize]).collect();
        assert!(seq.windows(2).all(|w| w[0] <= w[1]), "{seq:?}");
    }

    #[test]
    fn cluster_order_groups_partitions() {
        // Two cliques, one bridge: bridge endpoints go to the border
        // partition at the end.
        let mut b = GraphBuilder::new(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    b.add_undirected_edge(base + i, base + j, 1.0);
                }
            }
        }
        b.add_undirected_edge(3, 4, 1.0);
        let g = b.build().unwrap();
        let p = compute_ordering(&g, NodeOrdering::Cluster);
        // Bridge endpoints 3 and 4 must occupy the last two positions.
        let last_two: Vec<NodeId> = vec![p.old_of(6), p.old_of(7)];
        assert!(last_two.contains(&3) && last_two.contains(&4), "{last_two:?}");
        // Non-border members of each clique are contiguous.
        let pos: Vec<NodeId> = (0..8).map(|v| p.new_of(v)).collect();
        let c1: Vec<NodeId> = (0..3).map(|v| pos[v as usize]).collect();
        let c2: Vec<NodeId> = (5..8).map(|v| pos[v as usize]).collect();
        let spread = |v: &[NodeId]| v.iter().max().unwrap() - v.iter().min().unwrap();
        assert_eq!(spread(&c1), 2, "{c1:?}");
        assert_eq!(spread(&c2), 2, "{c2:?}");
    }

    #[test]
    fn hybrid_sorts_by_degree_within_partition() {
        // One community: a star of 4 leaves; hybrid must place the hub last.
        let mut b = GraphBuilder::new(5);
        for t in 1..=4 {
            b.add_undirected_edge(0, t, 1.0);
        }
        let g = b.build().unwrap();
        let p = compute_ordering(&g, NodeOrdering::Hybrid);
        assert_eq!(p.new_of(0), 4, "hub must come last within its partition");
    }

    #[test]
    fn random_orders_differ_by_seed() {
        let g = star_plus_path();
        let p1 = compute_ordering(&g, NodeOrdering::Random { seed: 1 });
        let p2 = compute_ordering(&g, NodeOrdering::Random { seed: 2 });
        assert_ne!(p1.order(), p2.order());
        let p1b = compute_ordering(&g, NodeOrdering::Random { seed: 1 });
        assert_eq!(p1.order(), p1b.order());
    }

    #[test]
    fn rcm_keeps_path_contiguous() {
        // A path graph reordered by RCM stays a path enumeration
        // (bandwidth 1).
        let mut b = GraphBuilder::new(6);
        for v in 0..5u32 {
            b.add_undirected_edge(v, v + 1, 1.0);
        }
        let g = b.build().unwrap();
        let p = compute_ordering(&g, NodeOrdering::ReverseCuthillMcKee);
        for (u, v, _) in g.edges() {
            let d = (p.new_of(u) as i64 - p.new_of(v) as i64).abs();
            assert!(d <= 1, "bandwidth violated: {u}->{v} maps to distance {d}");
        }
    }

    #[test]
    fn min_degree_starts_at_leaves() {
        let g = star_plus_path();
        let p = compute_ordering(&g, NodeOrdering::MinDegree);
        // The star hub (degree 4) cannot be eliminated first.
        assert_ne!(p.old_of(0), 0);
    }

    #[test]
    fn ordering_stats_report_communities() {
        // Two cliques joined by a bridge: Louvain finds two communities,
        // the two bridge endpoints land in the border partition.
        let mut b = GraphBuilder::new(8);
        for base in [0u32, 4] {
            for i in 0..4 {
                for j in i + 1..4 {
                    b.add_undirected_edge(base + i, base + j, 1.0);
                }
            }
        }
        b.add_undirected_edge(3, 4, 1.0);
        let g = b.build().unwrap();
        for ord in [NodeOrdering::Cluster, NodeOrdering::Hybrid] {
            let (_, stats) = compute_ordering_with_stats(&g, ord);
            assert_eq!(stats.communities, Some(2), "{ord:?}");
            assert_eq!(stats.border_nodes, Some(2), "{ord:?}");
            assert_eq!(stats.largest_community, Some(4), "{ord:?}");
        }
        // Non-community orderings report nothing.
        let (_, stats) = compute_ordering_with_stats(&g, NodeOrdering::Degree);
        assert_eq!(stats, OrderingStats::default());
    }

    #[test]
    fn empty_graph_orderings() {
        let g = GraphBuilder::new(0).build().unwrap();
        for ord in [NodeOrdering::Degree, NodeOrdering::Hybrid, NodeOrdering::MinDegree] {
            assert_eq!(compute_ordering(&g, ord).len(), 0);
        }
    }
}
