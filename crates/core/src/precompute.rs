//! Index construction (§4.2 of the paper).
//!
//! Builds everything a query needs: the reordering permutation, the
//! permuted graph (for BFS), the sparse triangular inverses `L⁻¹` / `U⁻¹`,
//! and the estimator's precomputed quantities `A_max`, `A_max(v)` and the
//! per-node `c'` factors.

use crate::{IndexBuilder, IndexStats, KdashError, NodeOrdering, Result};
use kdash_graph::{CsrGraph, NodeId, Permutation};
use kdash_sparse::{CscMatrix, DanglingPolicy, LuFactors, ProximityStore, RowLayout};

/// Index construction options. Defaults follow the paper's evaluation:
/// hybrid reordering, `c = 0.95`, dangling nodes kept as-is.
#[derive(Debug, Clone, Copy)]
pub struct IndexOptions {
    /// Node reordering applied before LU (Figure 5/6 variable).
    pub ordering: NodeOrdering,
    /// Restart probability `c` (the paper uses 0.95 throughout).
    pub restart_probability: f64,
    /// Treatment of nodes without out-edges.
    pub dangling: DanglingPolicy,
    /// Keep the raw LU factors alongside the inverses. Costs extra memory;
    /// enables [`KdashIndex::proximities_via_factors`], the
    /// "solve instead of stored inverses" ablation.
    pub keep_factors: bool,
    /// Row layout of the stored `U⁻¹` ([`RowLayout::Blocked`] by default:
    /// ~half the index traffic on the gather hot path, bit-identical
    /// results — [`RowLayout::Flat`] is kept for cross-layout equivalence
    /// checks and benchmarks).
    pub layout: RowLayout,
    /// Drop tolerance `ε` for the stored inverses: entries of `L⁻¹`/`U⁻¹`
    /// below `ε` in magnitude are truncated *during* inversion (before
    /// they propagate), shrinking the index far below the dense-exact
    /// wall. Queries stay **exact**: the per-column dropped ℓ₁ masses are
    /// recorded and every answer on a sparsified index passes through the
    /// certified residual-refinement loop, which repairs and proves the
    /// top-k set and order. `0.0` (the default) keeps the classic
    /// dense-exact index bit-for-bit.
    pub drop_tolerance: f64,
}

impl Default for IndexOptions {
    fn default() -> Self {
        IndexOptions {
            ordering: NodeOrdering::Hybrid,
            restart_probability: 0.95,
            dangling: DanglingPolicy::Keep,
            keep_factors: false,
            layout: RowLayout::default(),
            drop_tolerance: 0.0,
        }
    }
}

/// The precomputed K-dash index: everything needed to answer exact top-k
/// RWR queries without touching the original graph again.
///
/// All internal state lives in *permuted* node ids; the public API
/// translates at the boundary, so callers only ever see original ids.
#[derive(Debug, Clone)]
pub struct KdashIndex {
    c: f64,
    ordering: NodeOrdering,
    /// Dangling-node treatment the transition matrix was built with —
    /// recorded so incremental updates renormalise edited columns the
    /// same way a rebuild would.
    dangling: DanglingPolicy,
    /// How many update batches have been applied since the from-scratch
    /// build (0 for a fresh index). Bumped by
    /// [`install_patch`](Self::install_patch), persisted from format v3.
    update_epoch: u64,
    perm: Permutation,
    /// The permuted graph (drives the BFS tree construction per query).
    graph: CsrGraph,
    /// `L⁻¹`, column-major: column `q` is `L⁻¹ e_q`.
    linv: CscMatrix,
    /// `U⁻¹`, row-major, behind the layout-aware proximity store (blocked
    /// index encoding by default): a node's proximity is one gather of a
    /// stored row against the scattered query column.
    uinv: ProximityStore,
    /// `A_max(v)` per (permuted) node.
    a_col_max: Vec<f64>,
    /// Global `A_max`.
    a_max: f64,
    /// Per-node `c'_u = (1−c)/(1 − A_uu + c·A_uu)`.
    c_prime: Vec<f64>,
    /// `max_u c'_u` — the factor the *termination* test must use: Lemma 2
    /// makes the term sum monotone, but with self-loops `c'` varies per
    /// node, so a later node may carry a larger factor than the node that
    /// triggered termination. Multiplying the monotone terms by the
    /// maximum keeps the early exit sound for every unvisited node (and
    /// degenerates to the paper's constant `1−c` on self-loop-free
    /// graphs).
    c_prime_max: f64,
    /// Raw factors, kept only when requested.
    factors: Option<LuFactors>,
    /// Drop tolerance `ε` the stored inverses were truncated with
    /// (`0.0` = dense-exact).
    drop_tolerance: f64,
    /// Dropped ℓ₁ mass per `L⁻¹` column (all zeros when dense-exact).
    linv_dropped: Vec<f64>,
    /// Dropped ℓ₁ mass per `U⁻¹` solve lane (CSC column of the inversion;
    /// all zeros when dense-exact).
    uinv_dropped: Vec<f64>,
    /// Cached `Σ linv_dropped + Σ uinv_dropped` — the routing switch:
    /// `> 0` sends every query through certified refinement.
    dropped_total: f64,
    stats: IndexStats,
}

/// A full replacement set for the mutable components of a [`KdashIndex`]
/// — what one incremental update batch produces. Consumed by
/// [`KdashIndex::install_patch`]; construct one only from spliced
/// components that a from-scratch rebuild would reproduce.
#[doc(hidden)]
pub struct IndexPatch {
    /// The edited permuted graph.
    pub graph: CsrGraph,
    /// `L⁻¹` with the dirty columns re-solved and spliced.
    pub linv: CscMatrix,
    /// `U⁻¹` with the dirty rows re-encoded and spliced.
    pub uinv: ProximityStore,
    /// `A_max(v)` with the dirty entries recomputed.
    pub a_col_max: Vec<f64>,
    /// Global `A_max` over the patched transition matrix.
    pub a_max: f64,
    /// `c'` with the dirty entries recomputed.
    pub c_prime: Vec<f64>,
    /// Fresh factors to keep on the index (`None` drops any kept ones —
    /// stale factors must never survive a graph change).
    pub factors: Option<LuFactors>,
    /// Full replacement for the per-column `L⁻¹` dropped masses (dirty
    /// columns re-sparsified under the index's `ε`, clean ones copied).
    pub linv_dropped: Vec<f64>,
    /// Full replacement for the per-lane `U⁻¹` dropped masses.
    pub uinv_dropped: Vec<f64>,
    /// Stored entries of the fresh factor `L` (stats refresh).
    pub nnz_l: usize,
    /// Stored entries of the fresh factor `U` (stats refresh).
    pub nnz_u: usize,
    /// Update batches this patch represents — the epoch advance. A plain
    /// apply is 1; a coalesced apply of `k` batches is `k`, so the epoch
    /// counts *batches*, identically whether they were applied one by
    /// one or merged into a single pass. Must be at least 1.
    pub epochs: u64,
}

/// Everything the build pipeline (or deserialisation) hands over to become
/// a [`KdashIndex`]. Components are assumed structurally consistent; the
/// persistence path validates before constructing one.
pub(crate) struct IndexParts {
    pub c: f64,
    pub ordering: NodeOrdering,
    pub dangling: DanglingPolicy,
    pub update_epoch: u64,
    pub perm: Permutation,
    pub graph: CsrGraph,
    pub linv: CscMatrix,
    pub uinv: ProximityStore,
    pub a_col_max: Vec<f64>,
    pub a_max: f64,
    pub c_prime: Vec<f64>,
    pub factors: Option<LuFactors>,
    pub drop_tolerance: f64,
    pub linv_dropped: Vec<f64>,
    pub uinv_dropped: Vec<f64>,
    pub stats: IndexStats,
}

impl KdashIndex {
    /// Builds the index with the paper's monolithic entry point: runs the
    /// reordering, assembles `W = I − (1−c)A`, factors it and inverts the
    /// triangular factors — sequentially. Staged construction, per-stage
    /// timings and parallel inversion live on [`IndexBuilder`].
    pub fn build(graph: &CsrGraph, options: IndexOptions) -> Result<KdashIndex> {
        IndexBuilder::from_options(options).build(graph)
    }

    /// Finalises an index from pipeline (or deserialisation) output.
    pub(crate) fn from_parts(parts: IndexParts) -> KdashIndex {
        let c_prime_max = parts.c_prime.iter().copied().fold(0.0f64, f64::max);
        let dropped_total = parts.linv_dropped.iter().sum::<f64>()
            + parts.uinv_dropped.iter().sum::<f64>();
        KdashIndex {
            c: parts.c,
            ordering: parts.ordering,
            dangling: parts.dangling,
            update_epoch: parts.update_epoch,
            perm: parts.perm,
            graph: parts.graph,
            linv: parts.linv,
            uinv: parts.uinv,
            a_col_max: parts.a_col_max,
            a_max: parts.a_max,
            c_prime: parts.c_prime,
            c_prime_max,
            factors: parts.factors,
            drop_tolerance: parts.drop_tolerance,
            linv_dropped: parts.linv_dropped,
            uinv_dropped: parts.uinv_dropped,
            dropped_total,
            stats: parts.stats,
        }
    }

    /// Number of indexed nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The restart probability the index was built with.
    pub fn restart_probability(&self) -> f64 {
        self.c
    }

    /// The reordering strategy the index was built with.
    pub fn ordering(&self) -> NodeOrdering {
        self.ordering
    }

    /// The dangling-node policy the transition matrix was built with.
    pub fn dangling_policy(&self) -> DanglingPolicy {
        self.dangling
    }

    /// How many update batches have been applied since the from-scratch
    /// build: `0` for a fresh index, incremented once per
    /// [`install_patch`](Self::install_patch) (i.e. per `kdash-dynamic`
    /// batch). Persisted from index-format v3, so freshness survives a
    /// save/load round trip.
    pub fn update_epoch(&self) -> u64 {
        self.update_epoch
    }

    /// The row layout of the stored `U⁻¹`.
    pub fn layout(&self) -> RowLayout {
        self.uinv.layout()
    }

    /// The drop tolerance `ε` the stored inverses were truncated with
    /// (`0.0` for a dense-exact index).
    pub fn drop_tolerance(&self) -> f64 {
        self.drop_tolerance
    }

    /// Whether the index was built under a positive drop tolerance — the
    /// *tier* label (`ε > 0` ⇒ "sparsified", else "dense-exact"). Note an
    /// `ε > 0` build may still have dropped nothing (every inverse entry
    /// cleared the bar); [`needs_refinement`](Self::needs_refinement) is
    /// the routing switch.
    pub fn is_sparsified(&self) -> bool {
        self.drop_tolerance > 0.0
    }

    /// Whether queries must pass through the certified refinement loop:
    /// true exactly when the stored inverses dropped any ℓ₁ mass. When
    /// false the stored inverses are bit-for-bit the dense-exact ones and
    /// every query takes the classic path unchanged.
    pub fn needs_refinement(&self) -> bool {
        self.dropped_total > 0.0
    }

    /// Total ℓ₁ mass the truncated inversion dropped across both stored
    /// inverses (`0.0` for a dense-exact index).
    pub fn dropped_mass(&self) -> f64 {
        self.dropped_total
    }

    /// The per-column dropped ℓ₁ masses `(L⁻¹, U⁻¹ solve lanes)`. Hidden:
    /// the persistence and audit paths serialise/validate them, and the
    /// dynamic engine splices replacements for dirty columns.
    #[doc(hidden)]
    pub fn dropped_masses(&self) -> (&[f64], &[f64]) {
        (&self.linv_dropped, &self.uinv_dropped)
    }

    /// A copy of this index with `U⁻¹` re-encoded into `layout` — values
    /// bit-identical, every query answer unchanged. Cheap relative to a
    /// build (`O(nnz)`), so benchmarks and layout-equivalence checks can
    /// compare both layouts from one expensive construction.
    pub fn with_layout(&self, layout: RowLayout) -> KdashIndex {
        let mut copy = self.clone();
        copy.uinv = self.uinv.relayout(layout);
        copy.stats.uinv_index_bytes = copy.uinv.index_bytes();
        copy.stats.inverse_heap_bytes = copy.linv.heap_bytes() + copy.uinv.heap_bytes();
        copy
    }

    /// Build-time statistics (Figure 5/6 quantities).
    pub fn stats(&self) -> &IndexStats {
        &self.stats
    }

    /// Pipeline access: the assemble stage stamps its own duration after
    /// the index exists.
    pub(crate) fn stats_mut(&mut self) -> &mut IndexStats {
        &mut self.stats
    }

    /// Exact proximity of a single node `u` with respect to query `q`
    /// (both in original ids): `c · (U⁻¹)ᵤ,⋆ · (L⁻¹ e_q)`. On a
    /// sparsified index the raw dot product is only approximate, so the
    /// value is refined to the certified residual floor first (see
    /// [`full_proximities`](Self::full_proximities)).
    pub fn proximity(&self, q: NodeId, u: NodeId) -> Result<f64> {
        self.check_node(q)?;
        self.check_node(u)?;
        if self.needs_refinement() {
            return Ok(self.searcher().refined_full_proximities(&[q])?[u as usize]);
        }
        let (qi, ui) = (self.perm.new_of(q), self.perm.new_of(u));
        let (idx, val) = self.linv.col(qi);
        Ok(self.c * self.uinv.row_dot_sparse(ui, idx, val))
    }

    /// The full proximity vector for `q` in original id space,
    /// `p = c · U⁻¹ (L⁻¹ e_q)`. `O(nnz(L⁻¹ column) + nnz(U⁻¹))` on a
    /// dense-exact index; on a sparsified one the vector is refined until
    /// the residual bound drops below `1e-13`, so every entry is within
    /// that distance of exact (and the call can fail with
    /// [`KdashError::RefinementFailed`](crate::KdashError) if the
    /// tolerance was set too aggressively for the loop to contract).
    pub fn full_proximities(&self, q: NodeId) -> Result<Vec<f64>> {
        self.check_node(q)?;
        if self.needs_refinement() {
            return self.searcher().refined_full_proximities(&[q]);
        }
        let qi = self.perm.new_of(q);
        let (idx, val) = self.linv.col(qi);
        Ok(self.proximities_from_query_column(idx, val))
    }

    /// Full proximity vector for a *restart set*: the walk restarts
    /// uniformly over `sources` (`q = (1/|S|) Σ_s e_s`), the Personalized
    /// PageRank generalisation the paper's footnote 6 mentions. By
    /// linearity this is the average of the single-source vectors, but it
    /// is computed in one pass over the merged `L⁻¹` columns.
    pub fn full_proximities_from_set(&self, sources: &[NodeId]) -> Result<Vec<f64>> {
        if self.needs_refinement() {
            return self.searcher().refined_full_proximities(sources);
        }
        let (idx, val) = self.merged_query_column(sources)?;
        Ok(self.proximities_from_query_column(&idx, &val))
    }

    /// Shared tail of the `full_proximities*` paths: scatters a (merged)
    /// query column of `L⁻¹`, applies `U⁻¹`, scales by `c`, and un-permutes
    /// the result into original node ids.
    fn proximities_from_query_column(&self, idx: &[NodeId], val: &[f64]) -> Vec<f64> {
        let n = self.num_nodes();
        let mut y = vec![0.0; n];
        for (&i, &v) in idx.iter().zip(val) {
            y[i as usize] = v;
        }
        let mut permuted = self.uinv.matvec(&y);
        for p in &mut permuted {
            *p *= self.c;
        }
        self.perm.unpermute_values(&permuted)
    }

    /// Merges the `L⁻¹` columns of a restart set into one sorted sparse
    /// vector `(1/|S|) Σ_s L⁻¹ e_s` (permuted index space). Validates and
    /// rejects empty or duplicate-containing sets.
    pub(crate) fn merged_query_column(
        &self,
        sources: &[NodeId],
    ) -> Result<(Vec<NodeId>, Vec<f64>)> {
        if sources.is_empty() {
            return Err(KdashError::InvalidRestartSet {
                reason: "restart set must be non-empty".into(),
            });
        }
        let mut seen = std::collections::HashSet::with_capacity(sources.len());
        for &s in sources {
            self.check_node(s)?;
            if !seen.insert(s) {
                return Err(KdashError::InvalidRestartSet {
                    reason: format!("node {s} appears twice in the restart set"),
                });
            }
        }
        let weight = 1.0 / sources.len() as f64;
        let mut pairs: Vec<(NodeId, f64)> = Vec::new();
        for &s in sources {
            let (idx, val) = self.linv.col(self.perm.new_of(s));
            pairs.extend(idx.iter().zip(val).map(|(&i, &v)| (i, v * weight)));
        }
        pairs.sort_unstable_by_key(|&(i, _)| i);
        let mut out_idx: Vec<NodeId> = Vec::with_capacity(pairs.len());
        let mut out_val: Vec<f64> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            if out_idx.last() == Some(&i) {
                *out_val.last_mut().expect("parallel arrays") += v;
            } else {
                out_idx.push(i);
                out_val.push(v);
            }
        }
        Ok((out_idx, out_val))
    }

    /// The "no stored inverses" alternative: solves `L y = e_q`, `U x = y`
    /// per query via Gilbert–Peierls. Requires `keep_factors`; returns the
    /// full proximity vector in original ids. Benchmarked against
    /// [`full_proximities`](Self::full_proximities) by
    /// `ablation_solve_vs_inverse`.
    pub fn proximities_via_factors(&self, q: NodeId) -> Result<Option<Vec<f64>>> {
        self.check_node(q)?;
        let Some(factors) = &self.factors else {
            return Ok(None);
        };
        let qi = self.perm.new_of(q);
        let mut ws = kdash_sparse::SolveWorkspace::new(self.num_nodes());
        let (xi, xv) = factors.solve_unit_sparse(&mut ws, qi)?;
        let mut out = vec![0.0; self.num_nodes()];
        for (&i, &v) in xi.iter().zip(&xv) {
            out[self.perm.old_of(i) as usize] = self.c * v;
        }
        Ok(Some(out))
    }

    /// Reassembles an index from previously validated components
    /// (deserialisation path). Statistics carry the nnz counts but zero
    /// durations. Fails when component dimensions disagree.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        c: f64,
        ordering: NodeOrdering,
        dangling: DanglingPolicy,
        update_epoch: u64,
        perm: Permutation,
        graph: CsrGraph,
        linv: CscMatrix,
        uinv: ProximityStore,
        a_col_max: Vec<f64>,
        a_max: f64,
        c_prime: Vec<f64>,
        drop_tolerance: f64,
        linv_dropped: Vec<f64>,
        uinv_dropped: Vec<f64>,
    ) -> Result<KdashIndex> {
        let n = graph.num_nodes();
        kdash_sparse::rwr::validate_restart(c)?;
        kdash_sparse::validate_drop_tolerance(drop_tolerance)?;
        if perm.len() != n
            || linv.nrows() != n
            || linv.ncols() != n
            || uinv.nrows() != n
            || uinv.ncols() != n
            || a_col_max.len() != n
            || c_prime.len() != n
            || linv_dropped.len() != n
            || uinv_dropped.len() != n
        {
            return Err(KdashError::Sparse(kdash_sparse::SparseError::Malformed(
                "component dimensions disagree".into(),
            )));
        }
        if linv_dropped.iter().chain(&uinv_dropped).any(|m| !(m.is_finite() && *m >= 0.0)) {
            return Err(KdashError::Sparse(kdash_sparse::SparseError::Malformed(
                "dropped-mass entries must be finite and non-negative".into(),
            )));
        }
        let stats = IndexStats {
            nnz_l_inv: linv.nnz(),
            nnz_u_inv: uinv.nnz(),
            uinv_index_bytes: uinv.index_bytes(),
            num_edges: graph.num_edges(),
            num_nodes: n,
            inverse_heap_bytes: linv.heap_bytes() + uinv.heap_bytes(),
            ..Default::default()
        };
        Ok(KdashIndex::from_parts(IndexParts {
            c,
            ordering,
            dangling,
            update_epoch,
            perm,
            graph,
            linv,
            uinv,
            a_col_max,
            a_max,
            c_prime,
            factors: None,
            drop_tolerance,
            linv_dropped,
            uinv_dropped,
            stats,
        }))
    }

    /// Validates a caller-supplied node id.
    pub(crate) fn check_node(&self, v: NodeId) -> Result<()> {
        if (v as usize) < self.num_nodes() {
            Ok(())
        } else {
            Err(KdashError::NodeOutOfBounds { node: v, num_nodes: self.num_nodes() })
        }
    }

    /// Installs an incrementally patched component set — the commit stage
    /// of the `kdash-dynamic` update engine. Validates structural
    /// consistency, refreshes the derived statistics and the cached
    /// `c'_max`, replaces the kept LU factors (stale ones must never
    /// survive a graph change) and bumps the update epoch. On any
    /// validation error the index is left untouched.
    ///
    /// Hidden: the only supported caller is `kdash_dynamic::DynamicIndex`,
    /// which is what upholds the "patched ≡ rebuilt" guarantee; splicing
    /// arbitrary components through this API forfeits it.
    #[doc(hidden)]
    pub fn install_patch(&mut self, patch: IndexPatch) -> Result<()> {
        let n = self.num_nodes();
        if patch.graph.num_nodes() != n
            || patch.linv.nrows() != n
            || patch.linv.ncols() != n
            || patch.uinv.nrows() != n
            || patch.uinv.ncols() != n
            || patch.a_col_max.len() != n
            || patch.c_prime.len() != n
            || patch.linv_dropped.len() != n
            || patch.uinv_dropped.len() != n
        {
            return Err(KdashError::Sparse(kdash_sparse::SparseError::Malformed(
                "patch component dimensions disagree with the index".into(),
            )));
        }
        if patch
            .linv_dropped
            .iter()
            .chain(&patch.uinv_dropped)
            .any(|m| !(m.is_finite() && *m >= 0.0))
        {
            return Err(KdashError::Sparse(kdash_sparse::SparseError::Malformed(
                "patch dropped-mass entries must be finite and non-negative".into(),
            )));
        }
        if !(patch.a_max.is_finite() && patch.a_max >= 0.0) {
            return Err(KdashError::Sparse(kdash_sparse::SparseError::Malformed(
                format!("patch A_max {} is not a finite non-negative value", patch.a_max),
            )));
        }
        if patch.epochs == 0 {
            return Err(KdashError::Sparse(kdash_sparse::SparseError::Malformed(
                "patch must advance the update epoch by at least one batch".into(),
            )));
        }
        self.graph = patch.graph;
        self.linv = patch.linv;
        self.uinv = patch.uinv;
        self.a_col_max = patch.a_col_max;
        self.a_max = patch.a_max;
        self.c_prime = patch.c_prime;
        self.c_prime_max = self.c_prime.iter().copied().fold(0.0f64, f64::max);
        self.factors = patch.factors;
        self.linv_dropped = patch.linv_dropped;
        self.uinv_dropped = patch.uinv_dropped;
        self.dropped_total = self.linv_dropped.iter().sum::<f64>()
            + self.uinv_dropped.iter().sum::<f64>();
        self.update_epoch += patch.epochs;
        self.stats.num_edges = self.graph.num_edges();
        self.stats.nnz_l = patch.nnz_l;
        self.stats.nnz_u = patch.nnz_u;
        self.stats.nnz_l_inv = self.linv.nnz();
        self.stats.nnz_u_inv = self.uinv.nnz();
        self.stats.uinv_index_bytes = self.uinv.index_bytes();
        self.stats.inverse_heap_bytes = self.linv.heap_bytes() + self.uinv.heap_bytes();
        Ok(())
    }

    /// The kept LU factors, if the index was built with
    /// [`IndexOptions::keep_factors`]. Hidden: the dynamic engine uses
    /// this to seed its factor state without refactorising.
    #[doc(hidden)]
    pub fn factors(&self) -> Option<&LuFactors> {
        self.factors.as_ref()
    }

    /// Benchmark/diagnostic access to the stored `U⁻¹` (row-major). Hidden:
    /// layout and permutation are internal; use the query API for answers.
    #[doc(hidden)]
    pub fn uinv_rows(&self) -> &ProximityStore {
        &self.uinv
    }

    /// Benchmark/diagnostic access to the stored `L⁻¹` (column-major).
    /// Hidden for the same reason as [`uinv_rows`](Self::uinv_rows); the
    /// determinism tests use it to compare raw inverse arrays across
    /// thread counts.
    #[doc(hidden)]
    pub fn linv_cols(&self) -> &CscMatrix {
        &self.linv
    }

    /// Benchmark/diagnostic access to the permuted query column `L⁻¹ e_q`
    /// for original node id `q`. Hidden for the same reason as
    /// [`uinv_rows`](Self::uinv_rows).
    #[doc(hidden)]
    pub fn linv_query_column(&self, q: NodeId) -> (&[NodeId], &[f64]) {
        self.linv.col(self.perm.new_of(q))
    }

    /// The estimator's precomputed constants `(A_max(v), A_max, c')`, in
    /// permuted node order. Hidden: the dynamic engine reads them to
    /// recompute only the dirty entries.
    #[doc(hidden)]
    pub fn estimator_constants(&self) -> (&[f64], f64, &[f64]) {
        (&self.a_col_max, self.a_max, &self.c_prime)
    }

    // Internal accessors for the search module (`pub` + hidden: the
    // dynamic engine maps edits into permuted space through them).
    #[doc(hidden)]
    pub fn permutation(&self) -> &Permutation {
        &self.perm
    }
    #[doc(hidden)]
    pub fn permuted_graph(&self) -> &CsrGraph {
        &self.graph
    }
    pub(crate) fn linv(&self) -> &CscMatrix {
        &self.linv
    }
    pub(crate) fn uinv(&self) -> &ProximityStore {
        &self.uinv
    }
    pub(crate) fn a_col_max(&self) -> &[f64] {
        &self.a_col_max
    }
    pub(crate) fn a_max(&self) -> f64 {
        self.a_max
    }
    pub(crate) fn c_prime(&self) -> &[f64] {
        &self.c_prime
    }
    pub(crate) fn c_prime_max(&self) -> f64 {
        self.c_prime_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_graph::GraphBuilder;
    use kdash_sparse::rwr::rwr_step;
    use kdash_sparse::transition_matrix;

    fn ring_with_chords(n: usize) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for v in 0..n {
            b.add_edge(v as NodeId, ((v + 1) % n) as NodeId, 1.0);
            if v % 3 == 0 {
                b.add_edge(v as NodeId, ((v + n / 2) % n) as NodeId, 0.5);
            }
        }
        b.build().unwrap()
    }

    /// Ground truth via power iteration on the original graph.
    fn iterative_proximities(g: &CsrGraph, c: f64, q: NodeId) -> Vec<f64> {
        let a = transition_matrix(g, DanglingPolicy::Keep);
        let n = g.num_nodes();
        let mut p = vec![0.0; n];
        p[q as usize] = 1.0;
        let mut next = vec![0.0; n];
        for _ in 0..2000 {
            rwr_step(&a, c, q, &p, &mut next);
            std::mem::swap(&mut p, &mut next);
        }
        p
    }

    #[test]
    fn full_proximities_match_iterative() {
        let g = ring_with_chords(24);
        for ordering in [NodeOrdering::Natural, NodeOrdering::Degree, NodeOrdering::Hybrid] {
            let index = KdashIndex::build(
                &g,
                IndexOptions { ordering, restart_probability: 0.8, ..Default::default() },
            )
            .unwrap();
            for q in [0u32, 5, 13] {
                let got = index.full_proximities(q).unwrap();
                let expect = iterative_proximities(&g, 0.8, q);
                for (i, (a, b)) in got.iter().zip(&expect).enumerate() {
                    assert!((a - b).abs() < 1e-9, "{ordering:?} q={q} node {i}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn single_proximity_matches_vector() {
        let g = ring_with_chords(15);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let full = index.full_proximities(3).unwrap();
        for u in 0..15u32 {
            let single = index.proximity(3, u).unwrap();
            assert!((single - full[u as usize]).abs() < 1e-12);
        }
    }

    #[test]
    fn proximities_sum_to_one_without_dangling() {
        let g = ring_with_chords(12);
        assert_eq!(g.num_dangling(), 0);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let p = index.full_proximities(0).unwrap();
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn dangling_keep_leaks_mass_self_loop_preserves_it() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(0, 2, 1.0); // 1 and 2 dangle
        let g = b.build().unwrap();
        let keep = KdashIndex::build(
            &g,
            IndexOptions { dangling: DanglingPolicy::Keep, ..Default::default() },
        )
        .unwrap();
        let p_keep: f64 = keep.full_proximities(0).unwrap().iter().sum();
        assert!(p_keep < 1.0);
        let looped = KdashIndex::build(
            &g,
            IndexOptions { dangling: DanglingPolicy::SelfLoop, ..Default::default() },
        )
        .unwrap();
        let p_loop: f64 = looped.full_proximities(0).unwrap().iter().sum();
        assert!((p_loop - 1.0).abs() < 1e-9);
    }

    #[test]
    fn factors_path_matches_inverse_path() {
        let g = ring_with_chords(20);
        let index =
            KdashIndex::build(&g, IndexOptions { keep_factors: true, ..Default::default() })
                .unwrap();
        let via_inv = index.full_proximities(7).unwrap();
        let via_lu = index.proximities_via_factors(7).unwrap().expect("factors kept");
        for (a, b) in via_inv.iter().zip(&via_lu) {
            assert!((a - b).abs() < 1e-10);
        }
        // Without keep_factors the ablation path is unavailable.
        let plain = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        assert!(plain.proximities_via_factors(7).unwrap().is_none());
    }

    #[test]
    fn stats_are_populated() {
        let g = ring_with_chords(18);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        let s = index.stats();
        assert_eq!(s.num_nodes, 18);
        assert_eq!(s.num_edges, g.num_edges());
        assert!(s.nnz_l_inv >= 18, "diagonal alone is n entries");
        assert!(s.nnz_u_inv >= 18);
        assert!(s.inverse_heap_bytes > 0);
        assert!(s.inverse_nnz_ratio() > 0.0);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let g = ring_with_chords(6);
        let index = KdashIndex::build(&g, IndexOptions::default()).unwrap();
        assert!(matches!(
            index.proximity(9, 0),
            Err(KdashError::NodeOutOfBounds { node: 9, .. })
        ));
        assert!(index.full_proximities(6).is_err());
    }

    #[test]
    fn invalid_restart_probability_rejected() {
        let g = ring_with_chords(6);
        let r = KdashIndex::build(
            &g,
            IndexOptions { restart_probability: 1.5, ..Default::default() },
        );
        assert!(matches!(r, Err(KdashError::Sparse(_))));
    }

    #[test]
    fn self_loops_shape_c_prime() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 0, 1.0);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 0, 1.0);
        let g = b.build().unwrap();
        let c = 0.9;
        let index = KdashIndex::build(
            &g,
            IndexOptions { restart_probability: c, ..Default::default() },
        )
        .unwrap();
        // Node 0 has A_00 = 0.5 -> c' = (1-c)/(1 - 0.5 + 0.45) != (1-c).
        let new0 = index.permutation().new_of(0);
        let expect = (1.0 - c) / (1.0 - 0.5 + c * 0.5);
        assert!((index.c_prime()[new0 as usize] - expect).abs() < 1e-12);
        let new1 = index.permutation().new_of(1);
        assert!((index.c_prime()[new1 as usize] - (1.0 - c)).abs() < 1e-12);
    }
}
