//! Index persistence.
//!
//! Precomputation is the expensive phase (hours at paper scale, Figure 6);
//! a production deployment builds the index once and serves queries from
//! many processes. This module serialises a [`KdashIndex`] to a compact
//! little-endian binary format (magic + version header, then the raw
//! arrays) and validates every structural invariant on load, so a
//! corrupted or truncated file yields a typed [`PersistError`] instead of
//! wrong answers. [`save_atomic`] adds the crash-safe write protocol
//! (temp file → fsync → rename) every index-writing path should use.
//!
//! # Format versions
//!
//! * **v5** (current): v4 plus a **dropped-mass section** between the
//!   estimator constants and the trailer: the drop tolerance `ε` the
//!   stored inverses were truncated with, then the per-column dropped ℓ₁
//!   masses of `L⁻¹` and `U⁻¹` — what the certified refinement loop needs
//!   to keep sparsified answers exact. The section is checksummed like
//!   every other. v1–v4 files still load, flagged dense-exact (`ε = 0`,
//!   zero masses) — which is what they are.
//! * **v4**: v3 with integrity checksums. Every section —
//!   header, permutation, graph arrays, `L⁻¹`, `U⁻¹`, row stats,
//!   estimator constants, trailer — is followed by its CRC32 (IEEE), and
//!   the file ends with a `KDASHEND` footer carrying the CRC32 of the
//!   whole byte stream before it. Load verifies each section checksum in
//!   stream order and the footer last, so corruption is reported with
//!   the failing [`Section`] and byte offset
//!   ([`PersistError::ChecksumMismatch`]). v1–v3 files still load,
//!   reported as unchecksummed in [`LoadInfo`] — re-save to add
//!   checksums.
//! * **v3**: v2 plus a dynamic-update trailer — the dangling-node policy
//!   tag (incremental updates must renormalise edited transition columns
//!   exactly as the build did) and the **update-epoch counter** (how
//!   many `kdash-dynamic` batches have been applied since the
//!   from-scratch build; `kdash info` prints it). v1/v2 files still load
//!   with epoch 0 and the default `Keep` policy.
//! * **v2**: after the shared header and `L⁻¹`, a one-byte row
//!   **layout tag** selects how `U⁻¹` is encoded — flat CSC transpose
//!   arrays (as v1) or the blocked arrays of
//!   [`kdash_sparse::BlockedCsr`] (run anchors + `u16` deltas, the
//!   bandwidth-lean on-disk *and* in-memory form). A packed per-row
//!   **policy-stats section** ([`kdash_sparse::RowStat`]) follows; on
//!   load it is checked against the stats recomputed from the arrays, so
//!   a corrupted stats section is rejected rather than silently steering
//!   the adaptive kernel policy wrong.
//! * **v1**: the flat-only format of earlier releases. Still loads — the
//!   matrix is upgraded to the blocked layout on read, so old index files
//!   transparently gain the new read path. ([`KdashIndex::save_v1`]
//!   remains, hidden, so the compatibility path stays testable.)

use crate::{KdashIndex, NodeOrdering};
use kdash_graph::{CsrGraph, Permutation};
use kdash_sparse::{BlockedCsr, CscMatrix, CsrMatrix, ProximityStore, RowLayout, RowStat};
use std::fs::{self, File};
use std::io::{self, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"KDASHIDX";
const FOOTER_MAGIC: &[u8; 8] = b"KDASHEND";
const VERSION: u32 = 5;
/// First format version carrying the dropped-mass section.
const VERSION_SPARSIFIED: u32 = 5;
/// First format version with per-section and whole-file checksums.
const VERSION_CHECKSUMMED: u32 = 4;
const LAYOUT_FLAT: u8 = 0;
const LAYOUT_BLOCKED: u8 = 1;
const DANGLING_KEEP: u8 = 0;
const DANGLING_SELF_LOOP: u8 = 1;

/// The on-disk section an error was detected in. Section boundaries are
/// the checksum boundaries of the v4 format, in stream order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Magic, version, restart probability, ordering, node count.
    Header,
    /// The node permutation (new order).
    Permutation,
    /// The permuted graph's CSR arrays.
    Graph,
    /// `L⁻¹` in CSC form.
    Linv,
    /// `U⁻¹` under its row-layout tag (flat CSC transpose or blocked).
    Uinv,
    /// The packed per-row policy stats.
    RowStats,
    /// The estimator constants (`A_max(v)`, `A_max`, `c'`).
    Estimator,
    /// The sparsification record (v5+): drop tolerance `ε` and the
    /// per-column dropped ℓ₁ masses of both stored inverses.
    DroppedMass,
    /// The dynamic-update trailer (dangling policy, update epoch).
    Trailer,
    /// The `KDASHEND` + whole-file-CRC footer.
    Footer,
    /// Cross-section consistency (final index assembly).
    Index,
}

impl Section {
    /// Stable lowercase name, used in error messages and the
    /// `kdash verify` report.
    pub fn name(self) -> &'static str {
        match self {
            Section::Header => "header",
            Section::Permutation => "permutation",
            Section::Graph => "graph",
            Section::Linv => "linv",
            Section::Uinv => "uinv",
            Section::RowStats => "row-stats",
            Section::Estimator => "estimator",
            Section::DroppedMass => "dropped-mass",
            Section::Trailer => "trailer",
            Section::Footer => "footer",
            Section::Index => "index",
        }
    }
}

impl std::fmt::Display for Section {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The phase of a persistence operation an I/O failure occurred in.
///
/// [`save_atomic`] is a four-step protocol (write the temp file, fsync
/// it, rename it over the destination, fsync the directory) and the
/// right operator response differs per step — a full disk at tmp-write
/// is routine, a failed rename means the destination directory itself is
/// suspect — so [`PersistError::Io`] names the step instead of handing
/// back a bare `io::Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoStage {
    /// Reading an index file (load path).
    Read,
    /// Serialising into the temporary `<path>.tmp` file.
    TmpWrite,
    /// Fsyncing the fully-written temporary file.
    Fsync,
    /// Renaming the temporary file over the destination.
    Rename,
    /// Fsyncing the parent directory to make the rename durable.
    DirFsync,
}

impl IoStage {
    /// Stable lowercase name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            IoStage::Read => "read",
            IoStage::TmpWrite => "tmp-write",
            IoStage::Fsync => "fsync",
            IoStage::Rename => "rename",
            IoStage::DirFsync => "dir-fsync",
        }
    }
}

impl std::fmt::Display for IoStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an index file failed to load. Every failure names the section it
/// was detected in and (where meaningful) the byte offset, so an operator
/// can tell a truncated copy from a flipped sector from a version skew.
#[derive(Debug)]
pub enum PersistError {
    /// An underlying I/O failure that is not a malformed file (e.g. a
    /// read permission error). End-of-file inside a section is reported
    /// as [`Corrupt`](Self::Corrupt) instead. `stage` names the phase of
    /// the protocol that failed — on the save path, after transient
    /// (`EINTR`-class) failures were already retried with bounded
    /// backoff.
    Io {
        /// The protocol step the failure occurred in.
        stage: IoStage,
        /// The underlying error.
        error: io::Error,
    },
    /// The file does not start with the `KDASHIDX` magic.
    BadMagic,
    /// The file's format version is outside the supported range.
    UnsupportedVersion(u32),
    /// The file's structure is invalid: truncation, an impossible count
    /// field, a failed structural invariant, or a non-finite value.
    Corrupt {
        /// The section the damage was detected in.
        section: Section,
        /// Byte offset (from the start of the file) of the failing read
        /// or field.
        offset: u64,
        /// Human-readable description of the violated invariant.
        detail: String,
    },
    /// A stored CRC32 disagrees with the checksum of the bytes actually
    /// read — the file was modified or damaged after it was written.
    ChecksumMismatch {
        /// The section whose checksum failed (or [`Section::Footer`] for
        /// the whole-file CRC).
        section: Section,
        /// Byte offset of the stored checksum field.
        offset: u64,
        /// The checksum stored in the file.
        stored: u32,
        /// The checksum computed over the bytes read.
        computed: u32,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { stage, error } => write!(f, "i/o error during {stage}: {error}"),
            PersistError::BadMagic => write!(f, "bad magic — not a K-dash index file"),
            PersistError::UnsupportedVersion(v) => {
                write!(f, "unsupported index version {v} (this build reads 1..={VERSION})")
            }
            PersistError::Corrupt { section, offset, detail } => {
                write!(f, "corrupt index file ({section} section, byte {offset}): {detail}")
            }
            PersistError::ChecksumMismatch { section, offset, stored, computed } => {
                write!(
                    f,
                    "checksum mismatch in {section} section (crc field at byte {offset}): \
                     stored {stored:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { error, .. } => Some(error),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io { stage: IoStage::Read, error: e }
    }
}

/// What [`KdashIndex::load_with_info`] learned about the file besides the
/// index itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadInfo {
    /// The on-disk format version the file was written in.
    pub version: u32,
    /// Whether the file carried (and passed) integrity checksums. `false`
    /// for v1–v3 legacy files — structurally validated but not protected
    /// against silent bit rot; re-save to upgrade.
    pub checksummed: bool,
    /// The update epoch the snapshot was taken at (0 for an index that
    /// was never incrementally updated). Recovery tooling compares this
    /// against a sidecar journal's epoch range without re-deriving it
    /// from the index.
    pub update_epoch: u64,
}

fn corrupt(section: Section, offset: u64, detail: impl Into<String>) -> PersistError {
    PersistError::Corrupt { section, offset, detail: detail.into() }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, the polynomial zlib/PNG use), table-driven and
// dependency-free. The table is built at compile time.
// ---------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

#[derive(Clone, Copy)]
struct Crc32(u32);

impl Crc32 {
    fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut state = self.0;
        for &b in bytes {
            state = (state >> 8) ^ CRC_TABLE[((state ^ b as u32) & 0xFF) as usize];
        }
        self.0 = state;
    }

    fn value(&self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 (IEEE 802.3) of `bytes` — the same table-driven
/// implementation that checksums index sections, exported so sibling
/// formats (the `kdash-dynamic` update journal) frame their records
/// with bit-identical checksums instead of a second implementation.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.value()
}

/// A writer that tracks the running whole-file and per-section CRCs and
/// the byte offset. Section payloads go through the [`Write`] impl; the
/// CRC fields themselves are emitted by [`end_section`] /
/// [`write_footer`] (they feed the file CRC but never a section CRC).
struct SectionWriter<W: Write> {
    inner: W,
    offset: u64,
    file: Crc32,
    section: Crc32,
}

impl<W: Write> SectionWriter<W> {
    fn new(inner: W) -> Self {
        SectionWriter { inner, offset: 0, file: Crc32::new(), section: Crc32::new() }
    }

    /// Closes the current section: writes its CRC32 and resets the
    /// section state. Returns the offset *after* the CRC field — the
    /// section boundary the corruption sweep flips around.
    fn end_section(&mut self) -> io::Result<u64> {
        let crc = self.section.value().to_le_bytes();
        self.inner.write_all(&crc)?;
        self.file.update(&crc);
        self.offset += 4;
        self.section = Crc32::new();
        Ok(self.offset)
    }

    /// Writes the `KDASHEND` footer with the whole-file CRC (which covers
    /// every preceding byte, section CRC fields included).
    fn write_footer(&mut self) -> io::Result<u64> {
        let file_crc = self.file.value().to_le_bytes();
        self.inner.write_all(FOOTER_MAGIC)?;
        self.inner.write_all(&file_crc)?;
        self.offset += 12;
        Ok(self.offset)
    }
}

impl<W: Write> Write for SectionWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.inner.write_all(buf)?;
        self.file.update(buf);
        self.section.update(buf);
        self.offset += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// The reading twin: every payload read feeds both CRCs, EOF inside a
/// section is reported as [`PersistError::Corrupt`] at the failing
/// offset, and [`end_section`](Self::end_section) verifies the stored
/// section CRC (a no-op on unchecksummed legacy versions).
struct SectionReader<R: Read> {
    inner: R,
    offset: u64,
    file: Crc32,
    section: Crc32,
    /// Set once the version field is known; legacy files skip every
    /// checksum verification but share the same parse path.
    checksummed: bool,
}

impl<R: Read> SectionReader<R> {
    fn new(inner: R) -> Self {
        SectionReader {
            inner,
            offset: 0,
            file: Crc32::new(),
            section: Crc32::new(),
            checksummed: false,
        }
    }

    fn offset(&self) -> u64 {
        self.offset
    }

    /// Reads exactly `buf.len()` payload bytes for `section`.
    fn fill(&mut self, buf: &mut [u8], section: Section) -> Result<(), PersistError> {
        let at = self.offset;
        self.inner.read_exact(buf).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                corrupt(section, at, "unexpected end of file")
            } else {
                PersistError::from(e)
            }
        })?;
        self.file.update(buf);
        self.section.update(buf);
        self.offset += buf.len() as u64;
        Ok(())
    }

    /// Verifies and consumes the section's CRC field (v4+), then resets
    /// the section checksum state for the next section.
    fn end_section(&mut self, section: Section) -> Result<(), PersistError> {
        if self.checksummed {
            let computed = self.section.value();
            let at = self.offset;
            let mut b = [0u8; 4];
            self.inner.read_exact(&mut b).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    corrupt(section, at, "unexpected end of file in checksum field")
                } else {
                    PersistError::from(e)
                }
            })?;
            self.file.update(&b);
            self.offset += 4;
            let stored = u32::from_le_bytes(b);
            if stored != computed {
                return Err(PersistError::ChecksumMismatch {
                    section,
                    offset: at,
                    stored,
                    computed,
                });
            }
        }
        self.section = Crc32::new();
        Ok(())
    }

    /// Verifies the `KDASHEND` + whole-file-CRC footer (v4+).
    fn verify_footer(&mut self) -> Result<(), PersistError> {
        if !self.checksummed {
            return Ok(());
        }
        let computed = self.file.value();
        let at = self.offset;
        let mut b = [0u8; 12];
        self.inner.read_exact(&mut b).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                corrupt(Section::Footer, at, "unexpected end of file in footer")
            } else {
                PersistError::from(e)
            }
        })?;
        self.offset += 12;
        if &b[..8] != FOOTER_MAGIC {
            return Err(corrupt(Section::Footer, at, "bad footer magic"));
        }
        let stored = u32::from_le_bytes([b[8], b[9], b[10], b[11]]);
        if stored != computed {
            return Err(PersistError::ChecksumMismatch {
                section: Section::Footer,
                offset: at + 8,
                stored,
                computed,
            });
        }
        Ok(())
    }

    fn u8(&mut self, sec: Section) -> Result<u8, PersistError> {
        let mut b = [0u8; 1];
        self.fill(&mut b, sec)?;
        Ok(b[0])
    }

    fn u16(&mut self, sec: Section) -> Result<u16, PersistError> {
        let mut b = [0u8; 2];
        self.fill(&mut b, sec)?;
        Ok(u16::from_le_bytes(b))
    }

    fn u32(&mut self, sec: Section) -> Result<u32, PersistError> {
        let mut b = [0u8; 4];
        self.fill(&mut b, sec)?;
        Ok(u32::from_le_bytes(b))
    }

    fn u64(&mut self, sec: Section) -> Result<u64, PersistError> {
        let mut b = [0u8; 8];
        self.fill(&mut b, sec)?;
        Ok(u64::from_le_bytes(b))
    }

    fn f64(&mut self, sec: Section) -> Result<f64, PersistError> {
        let mut b = [0u8; 8];
        self.fill(&mut b, sec)?;
        Ok(f64::from_le_bytes(b))
    }

    fn u16_vec(&mut self, sec: Section, len: usize) -> Result<Vec<u16>, PersistError> {
        let mut out = Vec::with_capacity(len.min(MAX_TRUSTED_PREALLOC));
        for _ in 0..len {
            out.push(self.u16(sec)?);
        }
        Ok(out)
    }

    fn u32_vec(&mut self, sec: Section, len: usize) -> Result<Vec<u32>, PersistError> {
        let mut out = Vec::with_capacity(len.min(MAX_TRUSTED_PREALLOC));
        for _ in 0..len {
            out.push(self.u32(sec)?);
        }
        Ok(out)
    }

    fn usize_vec(&mut self, sec: Section, len: usize) -> Result<Vec<usize>, PersistError> {
        let mut out = Vec::with_capacity(len.min(MAX_TRUSTED_PREALLOC));
        for _ in 0..len {
            out.push(self.u64(sec)? as usize);
        }
        Ok(out)
    }

    /// Reads `len` f64s, rejecting non-finite values (nothing in the
    /// index is legitimately NaN or infinite).
    fn f64_vec(&mut self, sec: Section, len: usize) -> Result<Vec<f64>, PersistError> {
        let mut out = Vec::with_capacity(len.min(MAX_TRUSTED_PREALLOC));
        for _ in 0..len {
            let at = self.offset;
            let v = self.f64(sec)?;
            if !v.is_finite() {
                return Err(corrupt(sec, at, "non-finite value in index file"));
            }
            out.push(v);
        }
        Ok(out)
    }
}

impl KdashIndex {
    /// Serialises the index in the current (v5, checksummed) format,
    /// preserving the row layout and the update epoch. The raw LU factors
    /// (if kept) are not persisted — reload yields an index without the
    /// `proximities_via_factors` ablation path (the dynamic engine
    /// refactorises once on attach instead).
    ///
    /// For writing to a *file*, prefer [`save_atomic`], which adds the
    /// crash-safe temp-file → fsync → rename protocol.
    pub fn save<W: Write>(&self, w: W) -> io::Result<()> {
        self.save_with_section_offsets(w).map(|_| ())
    }

    /// [`save`](Self::save) that also returns the `(section name, end
    /// offset)` boundary of every checksummed section (the offset is one
    /// past the section's CRC field; the last entry is the footer).
    /// Hidden — exists so the byte-level corruption sweep in
    /// `tests/persist_roundtrip.rs` can target exact section boundaries
    /// without hardcoding the layout arithmetic.
    #[doc(hidden)]
    pub fn save_with_section_offsets<W: Write>(
        &self,
        w: W,
    ) -> io::Result<Vec<(&'static str, u64)>> {
        self.save_versioned(w, VERSION)
    }

    /// Serialises in the v4 (checksummed, pre-sparsification) format.
    /// Rejects sparsified-tier indexes — v4 has nowhere to record the
    /// drop tolerance or the dropped masses. Kept solely so the v4 → v5
    /// upgrade path stays covered by tests against real v4 bytes.
    #[doc(hidden)]
    pub fn save_v4<W: Write>(&self, w: W) -> io::Result<()> {
        if self.is_sparsified() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a sparsified-tier index cannot be saved in the v4 format (it records no \
                 drop tolerance) — use the current format",
            ));
        }
        self.save_versioned(w, VERSION_CHECKSUMMED).map(|_| ())
    }

    fn save_versioned<W: Write>(
        &self,
        w: W,
        version: u32,
    ) -> io::Result<Vec<(&'static str, u64)>> {
        let mut w = SectionWriter::new(w);
        let mut marks = Vec::with_capacity(10);

        // Header.
        w.write_all(MAGIC)?;
        write_u32(&mut w, version)?;
        write_f64(&mut w, self.restart_probability())?;
        let (tag, seed) = encode_ordering(self.ordering());
        w.write_all(&[tag])?;
        write_u64(&mut w, seed)?;
        write_u64(&mut w, self.num_nodes() as u64)?;
        marks.push((Section::Header.name(), w.end_section()?));

        // Permutation.
        write_u32_slice(&mut w, self.permutation().order())?;
        marks.push((Section::Permutation.name(), w.end_section()?));

        // Permuted graph.
        let (row_ptr, col_idx, weights) = self.permuted_graph().raw();
        write_usize_slice(&mut w, row_ptr)?;
        write_u64(&mut w, col_idx.len() as u64)?;
        write_u32_slice(&mut w, col_idx)?;
        write_f64_slice(&mut w, weights)?;
        marks.push((Section::Graph.name(), w.end_section()?));

        // L⁻¹ (CSC).
        write_csc(&mut w, self.linv())?;
        marks.push((Section::Linv.name(), w.end_section()?));

        // U⁻¹ under its layout tag.
        let uinv = self.uinv_rows();
        match uinv.layout() {
            RowLayout::Flat => {
                w.write_all(&[LAYOUT_FLAT])?;
                write_csc(&mut w, &uinv.to_csc())?;
            }
            RowLayout::Blocked => {
                w.write_all(&[LAYOUT_BLOCKED])?;
                match uinv.as_blocked() {
                    Some(blocked) => {
                        let (row_ptr, run_ptr, run_base, run_end, deltas, values) = blocked.raw();
                        write_usize_slice(&mut w, row_ptr)?;
                        write_u64(&mut w, run_base.len() as u64)?;
                        write_usize_slice(&mut w, run_ptr)?;
                        write_u32_slice(&mut w, run_base)?;
                        write_u32_slice(&mut w, run_end)?;
                        write_u64(&mut w, deltas.len() as u64)?;
                        write_u16_slice(&mut w, deltas)?;
                        write_f64_slice(&mut w, values)?;
                    }
                    None => {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidInput,
                            "layout tag says blocked but the store holds no blocked matrix",
                        ))
                    }
                }
            }
        }
        marks.push((Section::Uinv.name(), w.end_section()?));

        // The per-row policy stats the adaptive kernel reads.
        for stat in uinv.row_stats() {
            write_u32(&mut w, stat.nnz)?;
            write_u32(&mut w, stat.first)?;
            write_u32(&mut w, stat.last)?;
        }
        marks.push((Section::RowStats.name(), w.end_section()?));

        // Estimator constants.
        self.write_estimator(&mut w)?;
        marks.push((Section::Estimator.name(), w.end_section()?));

        // The sparsification record (v5): drop tolerance + per-column
        // dropped ℓ₁ masses of both inverses.
        if version >= VERSION_SPARSIFIED {
            write_f64(&mut w, self.drop_tolerance())?;
            let (linv_dropped, uinv_dropped) = self.dropped_masses();
            write_f64_slice(&mut w, linv_dropped)?;
            write_f64_slice(&mut w, uinv_dropped)?;
            marks.push((Section::DroppedMass.name(), w.end_section()?));
        }

        // The dynamic-update trailer.
        let dangling_tag = match self.dangling_policy() {
            kdash_sparse::DanglingPolicy::Keep => DANGLING_KEEP,
            kdash_sparse::DanglingPolicy::SelfLoop => DANGLING_SELF_LOOP,
        };
        w.write_all(&[dangling_tag])?;
        write_u64(&mut w, self.update_epoch())?;
        marks.push((Section::Trailer.name(), w.end_section()?));

        marks.push((Section::Footer.name(), w.write_footer()?));
        Ok(marks)
    }

    /// Serialises in the legacy v1 (flat-only, unchecksummed) format.
    /// Kept solely so the v1→v4 upgrade path stays covered by tests
    /// against real v1 bytes.
    #[doc(hidden)]
    pub fn save_v1<W: Write>(&self, mut w: W) -> io::Result<()> {
        if self.needs_refinement() {
            // The legacy format has nowhere to put the dropped masses; a
            // reload would silently skip refinement and answer wrong.
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "sparsified indexes cannot be written in the legacy v1 format",
            ));
        }
        w.write_all(MAGIC)?;
        write_u32(&mut w, 1)?;
        write_f64(&mut w, self.restart_probability())?;
        let (tag, seed) = encode_ordering(self.ordering());
        w.write_all(&[tag])?;
        write_u64(&mut w, seed)?;
        write_u64(&mut w, self.num_nodes() as u64)?;
        write_u32_slice(&mut w, self.permutation().order())?;
        let (row_ptr, col_idx, weights) = self.permuted_graph().raw();
        write_usize_slice(&mut w, row_ptr)?;
        write_u64(&mut w, col_idx.len() as u64)?;
        write_u32_slice(&mut w, col_idx)?;
        write_f64_slice(&mut w, weights)?;
        write_csc(&mut w, self.linv())?;
        write_csc(&mut w, &self.uinv_rows().to_csc())?;
        self.write_estimator(&mut w)
    }

    /// The estimator-constant section shared by every version.
    fn write_estimator<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_f64_slice(w, self.a_col_max())?;
        write_f64(w, self.a_max())?;
        write_f64_slice(w, self.c_prime())?;
        Ok(())
    }

    /// Deserialises an index previously written by [`save`](Self::save)
    /// (any version 1–4), re-validating all structural invariants and —
    /// for v4 files — every integrity checksum. A v1 file's flat `U⁻¹` is
    /// upgraded to the blocked layout on read (bit-identical values, so
    /// bit-identical answers). Build-time statistics are not stored; the
    /// loaded index reports zero durations with the correct nnz counts.
    pub fn load<R: Read>(r: R) -> Result<KdashIndex, PersistError> {
        Self::load_with_info(r).map(|(index, _)| index)
    }

    /// [`load`](Self::load) that also reports the file's format version
    /// and whether it carried (and passed) integrity checksums — the
    /// "unchecksummed legacy file" audit flag `kdash verify` surfaces.
    pub fn load_with_info<R: Read>(r: R) -> Result<(KdashIndex, LoadInfo), PersistError> {
        let mut r = SectionReader::new(r);

        // Header.
        let mut magic = [0u8; 8];
        r.fill(&mut magic, Section::Header)?;
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.u32(Section::Header)?;
        if !(1..=VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion(version));
        }
        r.checksummed = version >= VERSION_CHECKSUMMED;
        let c = r.f64(Section::Header)?;
        let tag_at = r.offset();
        let tag = r.u8(Section::Header)?;
        let seed = r.u64(Section::Header)?;
        let ordering = decode_ordering(tag, seed)
            .ok_or_else(|| corrupt(Section::Header, tag_at, format!("unknown ordering tag {tag}")))?;
        let n = r.u64(Section::Header)? as usize;
        r.end_section(Section::Header)?;

        // Permutation: checksum first, then the bijection check.
        let order = r.u32_vec(Section::Permutation, n)?;
        r.end_section(Section::Permutation)?;
        let at = r.offset();
        let perm = Permutation::from_new_order(order)
            .map_err(|e| corrupt(Section::Permutation, at, format!("corrupt permutation: {e}")))?;

        // Permuted graph. The edge-count cross-check runs before the
        // count sizes any read, so an inflated field can never trigger a
        // huge allocation — checksummed or not.
        let row_ptr = r.usize_vec(Section::Graph, n + 1)?;
        let m_at = r.offset();
        let m = r.u64(Section::Graph)? as usize;
        if m != row_ptr.last().copied().unwrap_or(0) {
            return Err(corrupt(
                Section::Graph,
                m_at,
                "graph edge count disagrees with row pointers",
            ));
        }
        let col_idx = r.u32_vec(Section::Graph, m)?;
        let weights = r.f64_vec(Section::Graph, m)?;
        r.end_section(Section::Graph)?;
        let at = r.offset();
        let graph = CsrGraph::from_raw_parts(row_ptr, col_idx, weights)
            .map_err(|e| corrupt(Section::Graph, at, format!("corrupt graph: {e}")))?;

        // L⁻¹ (CSC).
        let linv_arrays = read_csc_arrays(&mut r, Section::Linv, n)?;
        r.end_section(Section::Linv)?;
        let linv = build_csc(n, linv_arrays, Section::Linv, r.offset())?;

        // U⁻¹.
        let uinv = if version == 1 {
            // Legacy flat encoding: upgrade to the blocked layout.
            let arrays = read_csc_arrays(&mut r, Section::Uinv, n)?;
            r.end_section(Section::Uinv)?;
            let flat = CsrMatrix::from_csc(&build_csc(n, arrays, Section::Uinv, r.offset())?);
            ProximityStore::from_csr(flat, RowLayout::Blocked)
                .map_err(|e| corrupt(Section::Uinv, r.offset(), format!("corrupt U⁻¹: {e}")))?
        } else {
            let tag_at = r.offset();
            let layout_tag = r.u8(Section::Uinv)?;
            match layout_tag {
                LAYOUT_FLAT => {
                    let arrays = read_csc_arrays(&mut r, Section::Uinv, n)?;
                    r.end_section(Section::Uinv)?;
                    let flat =
                        CsrMatrix::from_csc(&build_csc(n, arrays, Section::Uinv, r.offset())?);
                    ProximityStore::from_csr(flat, RowLayout::Flat).map_err(|e| {
                        corrupt(Section::Uinv, r.offset(), format!("corrupt U⁻¹: {e}"))
                    })?
                }
                LAYOUT_BLOCKED => {
                    // The count fields are untrusted on-disk data: they
                    // are cross-checked against the pointer arrays here,
                    // and every vector read caps its pre-allocation, so
                    // a corrupted count surfaces as a typed error —
                    // never a capacity panic or an OOM abort. The format
                    // invariants: nnz ≤ u32::MAX (run offsets are u32)
                    // and every row has at most one run per nonzero.
                    let b_row_ptr = r.usize_vec(Section::Uinv, n + 1)?;
                    let expect_nnz = b_row_ptr.last().copied().unwrap_or(0);
                    if expect_nnz > u32::MAX as usize {
                        return Err(corrupt(
                            Section::Uinv,
                            r.offset(),
                            "blocked U⁻¹ claims ≥ 2^32 entries",
                        ));
                    }
                    let nruns_at = r.offset();
                    let nruns = r.u64(Section::Uinv)? as usize;
                    if nruns > expect_nnz {
                        return Err(corrupt(
                            Section::Uinv,
                            nruns_at,
                            "blocked U⁻¹ claims more runs than entries",
                        ));
                    }
                    let run_ptr = r.usize_vec(Section::Uinv, n + 1)?;
                    let run_base = r.u32_vec(Section::Uinv, nruns)?;
                    let run_end = r.u32_vec(Section::Uinv, nruns)?;
                    let nnz_at = r.offset();
                    let nnz = r.u64(Section::Uinv)? as usize;
                    if nnz != expect_nnz {
                        return Err(corrupt(
                            Section::Uinv,
                            nnz_at,
                            "blocked U⁻¹ entry count disagrees with row pointers",
                        ));
                    }
                    let deltas = r.u16_vec(Section::Uinv, nnz)?;
                    let values = r.f64_vec(Section::Uinv, nnz)?;
                    r.end_section(Section::Uinv)?;
                    let blocked = BlockedCsr::from_raw_parts(
                        n, n, b_row_ptr, run_ptr, run_base, run_end, deltas, values,
                    )
                    .map_err(|e| {
                        corrupt(Section::Uinv, r.offset(), format!("corrupt blocked U⁻¹: {e}"))
                    })?;
                    ProximityStore::from_blocked(blocked)
                }
                other => {
                    return Err(corrupt(
                        Section::Uinv,
                        tag_at,
                        format!("unknown row-layout tag {other}"),
                    ))
                }
            }
        };

        // The persisted policy stats (v2+) must match the arrays they
        // claim to describe: a mismatch means either section is corrupt,
        // and a wrong table would silently mis-steer the adaptive kernel.
        if version >= 2 {
            for (i, expect) in uinv.row_stats().iter().enumerate() {
                let at = r.offset();
                let got = RowStat {
                    nnz: r.u32(Section::RowStats)?,
                    first: r.u32(Section::RowStats)?,
                    last: r.u32(Section::RowStats)?,
                };
                if got != *expect {
                    return Err(corrupt(
                        Section::RowStats,
                        at,
                        format!("row-stats section disagrees with U⁻¹ at row {i}"),
                    ));
                }
            }
            r.end_section(Section::RowStats)?;
        }

        // Estimator constants.
        let a_col_max = r.f64_vec(Section::Estimator, n)?;
        let a_max = r.f64(Section::Estimator)?;
        let c_prime = r.f64_vec(Section::Estimator, n)?;
        r.end_section(Section::Estimator)?;

        // The v5 sparsification record; earlier versions are dense-exact
        // by construction (ε = 0, nothing dropped).
        let (drop_tolerance, linv_dropped, uinv_dropped) = if version >= VERSION_SPARSIFIED {
            let eps_at = r.offset();
            let eps = r.f64(Section::DroppedMass)?;
            if !(eps.is_finite() && eps >= 0.0) {
                return Err(corrupt(
                    Section::DroppedMass,
                    eps_at,
                    format!("drop tolerance {eps} must be finite and >= 0"),
                ));
            }
            let masses_at = r.offset();
            let linv_dropped = r.f64_vec(Section::DroppedMass, n)?;
            let uinv_dropped = r.f64_vec(Section::DroppedMass, n)?;
            if linv_dropped.iter().chain(&uinv_dropped).any(|m| *m < 0.0) {
                return Err(corrupt(
                    Section::DroppedMass,
                    masses_at,
                    "negative dropped-mass entry",
                ));
            }
            r.end_section(Section::DroppedMass)?;
            (eps, linv_dropped, uinv_dropped)
        } else {
            (0.0, vec![0.0; n], vec![0.0; n])
        };

        // The v3 dynamic-update trailer; earlier versions get the
        // defaults a from-scratch build would have.
        let (dangling, update_epoch) = if version >= 3 {
            let tag_at = r.offset();
            let tag = r.u8(Section::Trailer)?;
            let policy = match tag {
                DANGLING_KEEP => kdash_sparse::DanglingPolicy::Keep,
                DANGLING_SELF_LOOP => kdash_sparse::DanglingPolicy::SelfLoop,
                other => {
                    return Err(corrupt(
                        Section::Trailer,
                        tag_at,
                        format!("unknown dangling-policy tag {other}"),
                    ))
                }
            };
            let epoch = r.u64(Section::Trailer)?;
            r.end_section(Section::Trailer)?;
            (policy, epoch)
        } else {
            (kdash_sparse::DanglingPolicy::Keep, 0)
        };

        r.verify_footer()?;
        let end = r.offset();

        let index = KdashIndex::assemble(
            c,
            ordering,
            dangling,
            update_epoch,
            perm,
            graph,
            linv,
            uinv,
            a_col_max,
            a_max,
            c_prime,
            drop_tolerance,
            linv_dropped,
            uinv_dropped,
        )
        .map_err(|e| corrupt(Section::Index, end, format!("inconsistent index components: {e}")))?;
        Ok((
            index,
            LoadInfo { version, checksummed: version >= VERSION_CHECKSUMMED, update_epoch },
        ))
    }
}

/// Atomically writes `index` to `path`: serialise to `<path>.tmp`, flush
/// and fsync, rename over the destination, then fsync the parent
/// directory (best effort) so the rename itself is durable. A crash at
/// any point leaves either the old file or the new one — never a
/// half-written index. Transient failures (`EINTR`-class) are retried
/// with bounded backoff; everything else returns a typed
/// [`PersistError::Io`] naming the failing [`IoStage`]. On error the
/// temp file is removed.
pub fn save_atomic<P: AsRef<Path>>(index: &KdashIndex, path: P) -> Result<(), PersistError> {
    save_atomic_with(index, path, &crate::fault::NoFaults)
}

/// [`save_atomic`] with an injectable fault layer: every write, fsync
/// and rename consults `faults` first, so a crash-point sweep can tear
/// the protocol at any byte and assert the old-or-new guarantee. With
/// [`NoFaults`](crate::fault::NoFaults) this *is* the production path —
/// there is deliberately only one implementation of the protocol.
///
/// An injected crash skips the temp-file cleanup (a dead process does
/// not clean up either), leaving faithful crash debris for recovery
/// tests; real errors still remove the temp file.
pub fn save_atomic_with<P: AsRef<Path>>(
    index: &KdashIndex,
    path: P,
    faults: &dyn crate::fault::FaultInjector,
) -> Result<(), PersistError> {
    use crate::fault::{injected_write, is_injected_crash, retry_transient, sync_parent_dir};

    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_os_string();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);

    // Serialise into memory first so the file sees exactly one write
    // call — that gives the fault layer clean torn-prefix semantics
    // (crash after byte k of the file, for every k).
    let mut bytes = Vec::new();
    index.save(&mut bytes).map_err(|error| PersistError::Io { stage: IoStage::TmpWrite, error })?;

    let tmp_label = tmp.display().to_string();
    let result = (|| {
        // Each retry recreates the temp file from scratch, so a torn
        // first attempt cannot leave stale bytes beyond the new write.
        let file = retry_transient(|| {
            let mut f = File::create(&tmp)?;
            injected_write(faults, &tmp_label, &mut f, &bytes)?;
            Ok(f)
        })
        .map_err(|error| PersistError::Io { stage: IoStage::TmpWrite, error })?;
        retry_transient(|| {
            faults.before_fsync(&tmp_label)?;
            file.sync_all()
        })
        .map_err(|error| PersistError::Io { stage: IoStage::Fsync, error })?;
        drop(file);
        let path_label = path.display().to_string();
        retry_transient(|| {
            faults.before_rename(&tmp_label, &path_label)?;
            fs::rename(&tmp, path)
        })
        .map_err(|error| PersistError::Io { stage: IoStage::Rename, error })?;
        // Durability of the rename: fsync the containing directory
        // (filesystems that refuse directory fsync are tolerated inside
        // the helper).
        sync_parent_dir(path, faults)
            .map_err(|error| PersistError::Io { stage: IoStage::DirFsync, error })?;
        Ok(())
    })();
    if let Err(PersistError::Io { error, .. }) = &result {
        if !is_injected_crash(error) {
            let _ = fs::remove_file(&tmp);
        }
    }
    result
}

fn write_csc<W: Write>(w: &mut W, csc: &CscMatrix) -> io::Result<()> {
    let (col_ptr, row_idx, values) = csc.raw();
    write_usize_slice(w, col_ptr)?;
    write_u64(w, row_idx.len() as u64)?;
    write_u32_slice(w, row_idx)?;
    write_f64_slice(w, values)
}

/// Reads the raw arrays of a CSC matrix, cross-checking the count field
/// against the pointer array *before* it sizes any read. Construction
/// (and with it the full structural validation) is deferred to
/// [`build_csc`] so the caller can verify the section checksum first.
#[allow(clippy::type_complexity)]
fn read_csc_arrays<R: Read>(
    r: &mut SectionReader<R>,
    sec: Section,
    n: usize,
) -> Result<(Vec<usize>, Vec<u32>, Vec<f64>), PersistError> {
    let col_ptr = r.usize_vec(sec, n + 1)?;
    let nnz_at = r.offset();
    let nnz = r.u64(sec)? as usize;
    if nnz != col_ptr.last().copied().unwrap_or(0) {
        return Err(corrupt(sec, nnz_at, "matrix entry count disagrees with column pointers"));
    }
    let row_idx = r.u32_vec(sec, nnz)?;
    let values = r.f64_vec(sec, nnz)?;
    Ok((col_ptr, row_idx, values))
}

fn build_csc(
    n: usize,
    (col_ptr, row_idx, values): (Vec<usize>, Vec<u32>, Vec<f64>),
    sec: Section,
    offset: u64,
) -> Result<CscMatrix, PersistError> {
    CscMatrix::from_raw_parts(n, n, col_ptr, row_idx, values)
        .map_err(|e| corrupt(sec, offset, format!("corrupt matrix: {e}")))
}

fn encode_ordering(ordering: NodeOrdering) -> (u8, u64) {
    match ordering {
        NodeOrdering::Natural => (0, 0),
        NodeOrdering::Random { seed } => (1, seed),
        NodeOrdering::Degree => (2, 0),
        NodeOrdering::Cluster => (3, 0),
        NodeOrdering::Hybrid => (4, 0),
        NodeOrdering::ReverseCuthillMcKee => (5, 0),
        NodeOrdering::MinDegree => (6, 0),
    }
}

fn decode_ordering(tag: u8, seed: u64) -> Option<NodeOrdering> {
    Some(match tag {
        0 => NodeOrdering::Natural,
        1 => NodeOrdering::Random { seed },
        2 => NodeOrdering::Degree,
        3 => NodeOrdering::Cluster,
        4 => NodeOrdering::Hybrid,
        5 => NodeOrdering::ReverseCuthillMcKee,
        6 => NodeOrdering::MinDegree,
        _ => return None,
    })
}

fn write_u16<W: Write>(w: &mut W, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u16_slice<W: Write>(w: &mut W, s: &[u16]) -> io::Result<()> {
    for &v in s {
        write_u16(w, v)?;
    }
    Ok(())
}
fn write_u32_slice<W: Write>(w: &mut W, s: &[u32]) -> io::Result<()> {
    for &v in s {
        write_u32(w, v)?;
    }
    Ok(())
}
fn write_usize_slice<W: Write>(w: &mut W, s: &[usize]) -> io::Result<()> {
    for &v in s {
        write_u64(w, v as u64)?;
    }
    Ok(())
}
fn write_f64_slice<W: Write>(w: &mut W, s: &[f64]) -> io::Result<()> {
    for &v in s {
        write_f64(w, v)?;
    }
    Ok(())
}

/// Cap on the up-front capacity the readers trust an on-disk count for:
/// beyond it the vector grows as bytes actually arrive, so an inflated
/// count field runs into EOF instead of attempting a multi-gigabyte
/// allocation.
const MAX_TRUSTED_PREALLOC: usize = 1 << 20;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexOptions;
    use kdash_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sample_index() -> KdashIndex {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new(40);
        for v in 0..40u32 {
            for _ in 0..3 {
                let t = rng.gen_range(0..40);
                if t != v {
                    b.add_edge(v, t, rng.gen_range(0.5..2.0));
                }
            }
        }
        KdashIndex::build(&b.build().unwrap(), IndexOptions::default()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.num_nodes(), index.num_nodes());
        assert_eq!(loaded.restart_probability(), index.restart_probability());
        assert_eq!(loaded.ordering(), index.ordering());
        assert_eq!(loaded.layout(), index.layout());
        for q in [0u32, 13, 39] {
            let a = index.top_k(q, 7).unwrap();
            let b = loaded.top_k(q, 7).unwrap();
            assert_eq!(a.nodes(), b.nodes());
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.proximity, y.proximity, "bit-exact reload expected");
            }
        }
    }

    #[test]
    fn flat_layout_roundtrips_as_flat() {
        let g = {
            let mut b = GraphBuilder::new(20);
            for v in 0..20u32 {
                b.add_edge(v, (v + 1) % 20, 1.0);
                b.add_edge(v, (v + 5) % 20, 0.5);
            }
            b.build().unwrap()
        };
        let index = KdashIndex::build(
            &g,
            IndexOptions { layout: RowLayout::Flat, ..Default::default() },
        )
        .unwrap();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.layout(), RowLayout::Flat);
        for q in 0..20u32 {
            let (a, b) = (index.top_k(q, 5).unwrap(), loaded.top_k(q, 5).unwrap());
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
            }
        }
    }

    #[test]
    fn v1_files_load_and_upgrade_to_blocked() {
        let index = sample_index();
        let mut v1 = Vec::new();
        index.save_v1(&mut v1).unwrap();
        let loaded = KdashIndex::load(v1.as_slice()).unwrap();
        assert_eq!(loaded.layout(), RowLayout::Blocked, "v1 upgrades on read");
        assert_eq!(loaded.stats().nnz_u_inv, index.stats().nnz_u_inv);
        for q in [0u32, 21, 39] {
            let a = index.top_k(q, 6).unwrap();
            let b = loaded.top_k(q, 6).unwrap();
            assert_eq!(a.nodes(), b.nodes());
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
            }
        }
    }

    #[test]
    fn loaded_stats_carry_nnz() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.stats().nnz_l_inv, index.stats().nnz_l_inv);
        assert_eq!(loaded.stats().nnz_u_inv, index.stats().nnz_u_inv);
        assert_eq!(loaded.stats().num_edges, index.stats().num_edges);
        assert_eq!(loaded.stats().uinv_index_bytes, index.stats().uinv_index_bytes);
        assert!(loaded.stats().total_time().is_zero());
    }

    #[test]
    fn v3_trailer_roundtrips_epoch_and_dangling() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0); // nodes 2..5 dangle
        let g = b.build().unwrap();
        let index = KdashIndex::build(
            &g,
            IndexOptions {
                dangling: kdash_sparse::DanglingPolicy::SelfLoop,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(index.update_epoch(), 0);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.update_epoch(), 0);
        assert_eq!(loaded.dangling_policy(), kdash_sparse::DanglingPolicy::SelfLoop);
        // A v1 file carries no trailer: defaults on load.
        let mut v1 = Vec::new();
        index.save_v1(&mut v1).unwrap();
        let loaded_v1 = KdashIndex::load(v1.as_slice()).unwrap();
        assert_eq!(loaded_v1.update_epoch(), 0);
        assert_eq!(loaded_v1.dangling_policy(), kdash_sparse::DanglingPolicy::Keep);
        // An unknown dangling tag in the trailer is rejected. The file
        // tail is trailer payload (9) + trailer CRC (4) + footer (12) —
        // the dropped-mass section sits before the trailer.
        let tag_off = buf.len() - 25;
        let mut bad = buf.clone();
        bad[tag_off] = 7;
        assert!(KdashIndex::load(bad.as_slice()).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = KdashIndex::load(&b"NOTANIDX0000"[..]).unwrap_err();
        assert!(matches!(err, PersistError::BadMagic), "got {err:?}");
    }

    #[test]
    fn truncation_rejected() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        for cut in [10usize, buf.len() / 2, buf.len() - 3] {
            assert!(KdashIndex::load(&buf[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corruption_rejected() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        // Flip bytes inside the permutation region (the v4 header spans
        // 37 payload bytes + its 4-byte CRC): the permutation section's
        // checksum must catch the damage.
        let off = 8 + 4 + 8 + 1 + 8 + 8 + 4;
        buf[off] ^= 0xFF;
        buf[off + 1] ^= 0xFF;
        let err = KdashIndex::load(buf.as_slice()).unwrap_err();
        assert!(
            matches!(
                err,
                PersistError::ChecksumMismatch { section: Section::Permutation, .. }
            ),
            "got {err:?}"
        );
    }

    #[test]
    fn load_info_reports_version_and_checksumming() {
        let index = sample_index();
        let mut v4 = Vec::new();
        index.save(&mut v4).unwrap();
        let (_, info) = KdashIndex::load_with_info(v4.as_slice()).unwrap();
        assert_eq!(info, LoadInfo { version: 5, checksummed: true, update_epoch: 0 });

        let mut v1 = Vec::new();
        index.save_v1(&mut v1).unwrap();
        let (_, info) = KdashIndex::load_with_info(v1.as_slice()).unwrap();
        assert_eq!(info, LoadInfo { version: 1, checksummed: false, update_epoch: 0 });
    }

    #[test]
    fn section_offsets_partition_the_file() {
        let index = sample_index();
        let mut buf = Vec::new();
        let marks = index.save_with_section_offsets(&mut buf).unwrap();
        let names: Vec<&str> = marks.iter().map(|&(name, _)| name).collect();
        assert_eq!(
            names,
            [
                "header",
                "permutation",
                "graph",
                "linv",
                "uinv",
                "row-stats",
                "estimator",
                "dropped-mass",
                "trailer",
                "footer"
            ]
        );
        // Offsets are strictly increasing and the footer ends the file.
        for pair in marks.windows(2) {
            assert!(pair[0].1 < pair[1].1);
        }
        assert_eq!(marks.last().map(|&(_, off)| off), Some(buf.len() as u64));
    }

    #[test]
    fn flipped_section_crc_is_a_checksum_mismatch() {
        let index = sample_index();
        let mut buf = Vec::new();
        let marks = index.save_with_section_offsets(&mut buf).unwrap();
        // The graph section's CRC field is the 4 bytes before its end mark.
        let graph_end = marks
            .iter()
            .find(|&&(name, _)| name == "graph")
            .map(|&(_, off)| off as usize)
            .unwrap();
        let mut bad = buf.clone();
        bad[graph_end - 4] ^= 0x01;
        let err = KdashIndex::load(bad.as_slice()).unwrap_err();
        assert!(
            matches!(err, PersistError::ChecksumMismatch { section: Section::Graph, .. }),
            "got {err:?}"
        );
    }

    #[test]
    fn flipped_footer_is_detected() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        // Footer magic byte.
        let mut bad = buf.clone();
        let footer = buf.len() - 12;
        bad[footer] ^= 0x40;
        assert!(matches!(
            KdashIndex::load(bad.as_slice()).unwrap_err(),
            PersistError::Corrupt { section: Section::Footer, .. }
        ));
        // Whole-file CRC byte.
        let mut bad = buf.clone();
        bad[buf.len() - 1] ^= 0x40;
        assert!(matches!(
            KdashIndex::load(bad.as_slice()).unwrap_err(),
            PersistError::ChecksumMismatch { section: Section::Footer, .. }
        ));
    }

    #[test]
    fn save_atomic_writes_loadable_file_and_cleans_tmp() {
        let index = sample_index();
        let dir = std::env::temp_dir().join(format!("kdash-persist-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.kdash");
        save_atomic(&index, &path).unwrap();
        assert!(path.exists());
        assert!(!dir.join("sample.kdash.tmp").exists(), "temp file must be renamed away");
        let loaded = KdashIndex::load(io::BufReader::new(File::open(&path).unwrap())).unwrap();
        assert_eq!(loaded.num_nodes(), index.num_nodes());
        // Overwrite in place: still atomic, still loadable.
        save_atomic(&index, &path).unwrap();
        assert!(KdashIndex::load(io::BufReader::new(File::open(&path).unwrap())).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }
}
