//! Index persistence.
//!
//! Precomputation is the expensive phase (hours at paper scale, Figure 6);
//! a production deployment builds the index once and serves queries from
//! many processes. This module serialises a [`KdashIndex`] to a compact
//! little-endian binary format (magic + version header, then the raw
//! arrays) and validates every structural invariant on load, so a
//! corrupted or truncated file yields an error instead of wrong answers.
//!
//! # Format versions
//!
//! * **v3** (current): v2 plus a dynamic-update trailer — the
//!   dangling-node policy tag (incremental updates must renormalise
//!   edited transition columns exactly as the build did) and the
//!   **update-epoch counter** (how many `kdash-dynamic` batches have
//!   been applied since the from-scratch build; `kdash info` prints it).
//!   v1/v2 files still load with epoch 0 and the default `Keep` policy.
//! * **v2**: after the shared header and `L⁻¹`, a one-byte row
//!   **layout tag** selects how `U⁻¹` is encoded — flat CSC transpose
//!   arrays (as v1) or the blocked arrays of
//!   [`kdash_sparse::BlockedCsr`] (run anchors + `u16` deltas, the
//!   bandwidth-lean on-disk *and* in-memory form). A packed per-row
//!   **policy-stats section** ([`kdash_sparse::RowStat`]) follows; on
//!   load it is checked against the stats recomputed from the arrays, so
//!   a corrupted stats section is rejected rather than silently steering
//!   the adaptive kernel policy wrong.
//! * **v1**: the flat-only format of earlier releases. Still loads — the
//!   matrix is upgraded to the blocked layout on read, so old index files
//!   transparently gain the new read path. ([`KdashIndex::save_v1`]
//!   remains, hidden, so the compatibility path stays testable.)

use crate::{KdashIndex, NodeOrdering};
use kdash_graph::{CsrGraph, Permutation};
use kdash_sparse::{BlockedCsr, CscMatrix, CsrMatrix, ProximityStore, RowLayout, RowStat};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"KDASHIDX";
const VERSION: u32 = 3;
const LAYOUT_FLAT: u8 = 0;
const LAYOUT_BLOCKED: u8 = 1;
const DANGLING_KEEP: u8 = 0;
const DANGLING_SELF_LOOP: u8 = 1;

impl KdashIndex {
    /// Serialises the index in the current (v3) format, preserving the
    /// row layout and the update epoch. The raw LU factors (if kept) are
    /// not persisted — reload yields an index without the
    /// `proximities_via_factors` ablation path (the dynamic engine
    /// refactorises once on attach instead).
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        self.write_header(&mut w, VERSION)?;
        // U⁻¹ under its layout tag.
        let uinv = self.uinv_rows();
        match uinv.layout() {
            RowLayout::Flat => {
                w.write_all(&[LAYOUT_FLAT])?;
                write_csc(&mut w, &uinv.to_csc())?;
            }
            RowLayout::Blocked => {
                w.write_all(&[LAYOUT_BLOCKED])?;
                let blocked = uinv.as_blocked().expect("layout says blocked");
                let (row_ptr, run_ptr, run_base, run_end, deltas, values) = blocked.raw();
                write_usize_slice(&mut w, row_ptr)?;
                write_u64(&mut w, run_base.len() as u64)?;
                write_usize_slice(&mut w, run_ptr)?;
                write_u32_slice(&mut w, run_base)?;
                write_u32_slice(&mut w, run_end)?;
                write_u64(&mut w, deltas.len() as u64)?;
                write_u16_slice(&mut w, deltas)?;
                write_f64_slice(&mut w, values)?;
            }
        }
        // The per-row policy stats the adaptive kernel reads.
        for stat in uinv.row_stats() {
            write_u32(&mut w, stat.nnz)?;
            write_u32(&mut w, stat.first)?;
            write_u32(&mut w, stat.last)?;
        }
        self.write_estimator(&mut w)?;
        // The v3 dynamic-update trailer.
        let dangling_tag = match self.dangling_policy() {
            kdash_sparse::DanglingPolicy::Keep => DANGLING_KEEP,
            kdash_sparse::DanglingPolicy::SelfLoop => DANGLING_SELF_LOOP,
        };
        w.write_all(&[dangling_tag])?;
        write_u64(&mut w, self.update_epoch())
    }

    /// Serialises in the legacy v1 (flat-only) format. Kept solely so the
    /// v1→v2 upgrade path stays covered by tests against real v1 bytes.
    #[doc(hidden)]
    pub fn save_v1<W: Write>(&self, mut w: W) -> io::Result<()> {
        self.write_header(&mut w, 1)?;
        write_csc(&mut w, &self.uinv_rows().to_csc())?;
        self.write_estimator(&mut w)
    }

    /// The header + permutation + graph + `L⁻¹` prefix shared by both
    /// versions.
    fn write_header<W: Write>(&self, w: &mut W, version: u32) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(w, version)?;
        write_f64(w, self.restart_probability())?;
        let (tag, seed) = encode_ordering(self.ordering());
        w.write_all(&[tag])?;
        write_u64(w, seed)?;
        write_u64(w, self.num_nodes() as u64)?;
        write_u32_slice(w, self.permutation().order())?;
        // Permuted graph.
        let (row_ptr, col_idx, weights) = self.permuted_graph().raw();
        write_usize_slice(w, row_ptr)?;
        write_u64(w, col_idx.len() as u64)?;
        write_u32_slice(w, col_idx)?;
        write_f64_slice(w, weights)?;
        // L⁻¹ (CSC).
        let linv = self.linv();
        let (col_ptr, row_idx, values) = linv.raw();
        write_usize_slice(w, col_ptr)?;
        write_u64(w, row_idx.len() as u64)?;
        write_u32_slice(w, row_idx)?;
        write_f64_slice(w, values)?;
        Ok(())
    }

    /// The estimator-constant trailer shared by both versions.
    fn write_estimator<W: Write>(&self, w: &mut W) -> io::Result<()> {
        write_f64_slice(w, self.a_col_max())?;
        write_f64(w, self.a_max())?;
        write_f64_slice(w, self.c_prime())?;
        Ok(())
    }

    /// Deserialises an index previously written by [`save`](Self::save)
    /// (v2) or the legacy v1 writer, re-validating all structural
    /// invariants. A v1 file's flat `U⁻¹` is upgraded to the blocked
    /// layout on read (bit-identical values, so bit-identical answers).
    /// Build-time statistics are not stored; the loaded index reports
    /// zero durations with the correct nnz counts.
    pub fn load<R: Read>(mut r: R) -> io::Result<KdashIndex> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(invalid("bad magic — not a K-dash index file"));
        }
        let version = read_u32(&mut r)?;
        if !(1..=VERSION).contains(&version) {
            return Err(invalid(&format!("unsupported index version {version}")));
        }
        let c = read_f64(&mut r)?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let seed = read_u64(&mut r)?;
        let ordering = decode_ordering(tag[0], seed)?;
        let n = read_u64(&mut r)? as usize;

        let order = read_u32_vec(&mut r, n)?;
        let perm = Permutation::from_new_order(order)
            .map_err(|e| invalid(&format!("corrupt permutation: {e}")))?;

        let row_ptr = read_usize_vec(&mut r, n + 1)?;
        let m = read_u64(&mut r)? as usize;
        if m != *row_ptr.last().expect("n + 1 entries") {
            return Err(invalid("graph edge count disagrees with row pointers"));
        }
        let col_idx = read_u32_vec(&mut r, m)?;
        let weights = read_f64_vec(&mut r, m)?;
        let graph = CsrGraph::from_raw_parts(row_ptr, col_idx, weights)
            .map_err(|e| invalid(&format!("corrupt graph: {e}")))?;

        let linv = read_csc(&mut r, n)?;

        let uinv = if version == 1 {
            // Legacy flat encoding: upgrade to the blocked layout.
            let flat = CsrMatrix::from_csc(&read_csc(&mut r, n)?);
            ProximityStore::from_csr(flat, RowLayout::Blocked)
                .map_err(|e| invalid(&format!("corrupt U⁻¹: {e}")))?
        } else {
            let mut layout_tag = [0u8; 1];
            r.read_exact(&mut layout_tag)?;
            let store = match layout_tag[0] {
                LAYOUT_FLAT => {
                    let flat = CsrMatrix::from_csc(&read_csc(&mut r, n)?);
                    ProximityStore::from_csr(flat, RowLayout::Flat)
                        .map_err(|e| invalid(&format!("corrupt U⁻¹: {e}")))?
                }
                LAYOUT_BLOCKED => {
                    // The count fields are untrusted on-disk data: they
                    // are cross-checked against the pointer arrays here,
                    // and every `read_*_vec` caps its pre-allocation, so
                    // a corrupted count surfaces as InvalidData/EOF —
                    // never a capacity panic or an OOM abort. The format
                    // invariants: nnz ≤ u32::MAX (run offsets are u32)
                    // and every row has at most one run per nonzero.
                    let b_row_ptr = read_usize_vec(&mut r, n + 1)?;
                    let expect_nnz = *b_row_ptr.last().expect("n + 1 entries");
                    if expect_nnz > u32::MAX as usize {
                        return Err(invalid("blocked U⁻¹ claims ≥ 2^32 entries"));
                    }
                    let nruns = read_u64(&mut r)? as usize;
                    if nruns > expect_nnz {
                        return Err(invalid("blocked U⁻¹ claims more runs than entries"));
                    }
                    let run_ptr = read_usize_vec(&mut r, n + 1)?;
                    let run_base = read_u32_vec(&mut r, nruns)?;
                    let run_end = read_u32_vec(&mut r, nruns)?;
                    let nnz = read_u64(&mut r)? as usize;
                    if nnz != expect_nnz {
                        return Err(invalid("blocked U⁻¹ entry count disagrees with row pointers"));
                    }
                    let deltas = read_u16_vec(&mut r, nnz)?;
                    let values = read_f64_vec(&mut r, nnz)?;
                    let blocked = BlockedCsr::from_raw_parts(
                        n, n, b_row_ptr, run_ptr, run_base, run_end, deltas, values,
                    )
                    .map_err(|e| invalid(&format!("corrupt blocked U⁻¹: {e}")))?;
                    ProximityStore::from_blocked(blocked)
                }
                other => return Err(invalid(&format!("unknown row-layout tag {other}"))),
            };
            // The persisted policy stats must match the arrays they claim
            // to describe: a mismatch means either section is corrupt, and
            // a wrong table would silently mis-steer the adaptive kernel.
            for (i, expect) in store.row_stats().iter().enumerate() {
                let got = RowStat {
                    nnz: read_u32(&mut r)?,
                    first: read_u32(&mut r)?,
                    last: read_u32(&mut r)?,
                };
                if got != *expect {
                    return Err(invalid(&format!(
                        "row-stats section disagrees with U⁻¹ at row {i}"
                    )));
                }
            }
            store
        };

        let a_col_max = read_f64_vec(&mut r, n)?;
        let a_max = read_f64(&mut r)?;
        let c_prime = read_f64_vec(&mut r, n)?;

        // The v3 dynamic-update trailer; earlier versions get the
        // defaults a from-scratch build would have.
        let (dangling, update_epoch) = if version >= 3 {
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag)?;
            let policy = match tag[0] {
                DANGLING_KEEP => kdash_sparse::DanglingPolicy::Keep,
                DANGLING_SELF_LOOP => kdash_sparse::DanglingPolicy::SelfLoop,
                other => return Err(invalid(&format!("unknown dangling-policy tag {other}"))),
            };
            (policy, read_u64(&mut r)?)
        } else {
            (kdash_sparse::DanglingPolicy::Keep, 0)
        };

        KdashIndex::assemble(
            c,
            ordering,
            dangling,
            update_epoch,
            perm,
            graph,
            linv,
            uinv,
            a_col_max,
            a_max,
            c_prime,
        )
        .map_err(|e| invalid(&format!("inconsistent index components: {e}")))
    }
}

fn write_csc<W: Write>(w: &mut W, csc: &CscMatrix) -> io::Result<()> {
    let (col_ptr, row_idx, values) = csc.raw();
    write_usize_slice(w, col_ptr)?;
    write_u64(w, row_idx.len() as u64)?;
    write_u32_slice(w, row_idx)?;
    write_f64_slice(w, values)
}

fn read_csc<R: Read>(r: &mut R, n: usize) -> io::Result<CscMatrix> {
    let col_ptr = read_usize_vec(r, n + 1)?;
    let nnz = read_u64(r)? as usize;
    // Untrusted count: it must match the pointer array it describes
    // before it sizes an allocation (a corrupted count must error, not
    // panic on capacity overflow).
    if nnz != *col_ptr.last().expect("n + 1 entries") {
        return Err(invalid("matrix entry count disagrees with column pointers"));
    }
    let row_idx = read_u32_vec(r, nnz)?;
    let values = read_f64_vec(r, nnz)?;
    CscMatrix::from_raw_parts(n, n, col_ptr, row_idx, values)
        .map_err(|e| invalid(&format!("corrupt matrix: {e}")))
}

fn encode_ordering(ordering: NodeOrdering) -> (u8, u64) {
    match ordering {
        NodeOrdering::Natural => (0, 0),
        NodeOrdering::Random { seed } => (1, seed),
        NodeOrdering::Degree => (2, 0),
        NodeOrdering::Cluster => (3, 0),
        NodeOrdering::Hybrid => (4, 0),
        NodeOrdering::ReverseCuthillMcKee => (5, 0),
        NodeOrdering::MinDegree => (6, 0),
    }
}

fn decode_ordering(tag: u8, seed: u64) -> io::Result<NodeOrdering> {
    Ok(match tag {
        0 => NodeOrdering::Natural,
        1 => NodeOrdering::Random { seed },
        2 => NodeOrdering::Degree,
        3 => NodeOrdering::Cluster,
        4 => NodeOrdering::Hybrid,
        5 => NodeOrdering::ReverseCuthillMcKee,
        6 => NodeOrdering::MinDegree,
        other => return Err(invalid(&format!("unknown ordering tag {other}"))),
    })
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn write_u16<W: Write>(w: &mut W, v: u16) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u16_slice<W: Write>(w: &mut W, s: &[u16]) -> io::Result<()> {
    for &v in s {
        write_u16(w, v)?;
    }
    Ok(())
}
fn write_u32_slice<W: Write>(w: &mut W, s: &[u32]) -> io::Result<()> {
    for &v in s {
        write_u32(w, v)?;
    }
    Ok(())
}
fn write_usize_slice<W: Write>(w: &mut W, s: &[usize]) -> io::Result<()> {
    for &v in s {
        write_u64(w, v as u64)?;
    }
    Ok(())
}
fn write_f64_slice<W: Write>(w: &mut W, s: &[f64]) -> io::Result<()> {
    for &v in s {
        write_f64(w, v)?;
    }
    Ok(())
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    Ok(u16::from_le_bytes(b))
}
fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}
/// Cap on the up-front capacity the readers trust an on-disk count for:
/// beyond it the vector grows as bytes actually arrive, so an inflated
/// count field runs into EOF instead of attempting a multi-gigabyte
/// allocation.
const MAX_TRUSTED_PREALLOC: usize = 1 << 20;

fn read_u16_vec<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<u16>> {
    let mut out = Vec::with_capacity(len.min(MAX_TRUSTED_PREALLOC));
    for _ in 0..len {
        out.push(read_u16(r)?);
    }
    Ok(out)
}
fn read_u32_vec<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<u32>> {
    let mut out = Vec::with_capacity(len.min(MAX_TRUSTED_PREALLOC));
    for _ in 0..len {
        out.push(read_u32(r)?);
    }
    Ok(out)
}
fn read_usize_vec<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<usize>> {
    let mut out = Vec::with_capacity(len.min(MAX_TRUSTED_PREALLOC));
    for _ in 0..len {
        out.push(read_u64(r)? as usize);
    }
    Ok(out)
}
fn read_f64_vec<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<f64>> {
    let mut out = Vec::with_capacity(len.min(MAX_TRUSTED_PREALLOC));
    for _ in 0..len {
        let v = read_f64(r)?;
        if !v.is_finite() {
            return Err(invalid("non-finite value in index file"));
        }
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexOptions;
    use kdash_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sample_index() -> KdashIndex {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new(40);
        for v in 0..40u32 {
            for _ in 0..3 {
                let t = rng.gen_range(0..40);
                if t != v {
                    b.add_edge(v, t, rng.gen_range(0.5..2.0));
                }
            }
        }
        KdashIndex::build(&b.build().unwrap(), IndexOptions::default()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.num_nodes(), index.num_nodes());
        assert_eq!(loaded.restart_probability(), index.restart_probability());
        assert_eq!(loaded.ordering(), index.ordering());
        assert_eq!(loaded.layout(), index.layout());
        for q in [0u32, 13, 39] {
            let a = index.top_k(q, 7).unwrap();
            let b = loaded.top_k(q, 7).unwrap();
            assert_eq!(a.nodes(), b.nodes());
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.proximity, y.proximity, "bit-exact reload expected");
            }
        }
    }

    #[test]
    fn flat_layout_roundtrips_as_flat() {
        let g = {
            let mut b = GraphBuilder::new(20);
            for v in 0..20u32 {
                b.add_edge(v, (v + 1) % 20, 1.0);
                b.add_edge(v, (v + 5) % 20, 0.5);
            }
            b.build().unwrap()
        };
        let index = KdashIndex::build(
            &g,
            IndexOptions { layout: RowLayout::Flat, ..Default::default() },
        )
        .unwrap();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.layout(), RowLayout::Flat);
        for q in 0..20u32 {
            let (a, b) = (index.top_k(q, 5).unwrap(), loaded.top_k(q, 5).unwrap());
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
            }
        }
    }

    #[test]
    fn v1_files_load_and_upgrade_to_blocked() {
        let index = sample_index();
        let mut v1 = Vec::new();
        index.save_v1(&mut v1).unwrap();
        let loaded = KdashIndex::load(v1.as_slice()).unwrap();
        assert_eq!(loaded.layout(), RowLayout::Blocked, "v1 upgrades on read");
        assert_eq!(loaded.stats().nnz_u_inv, index.stats().nnz_u_inv);
        for q in [0u32, 21, 39] {
            let a = index.top_k(q, 6).unwrap();
            let b = loaded.top_k(q, 6).unwrap();
            assert_eq!(a.nodes(), b.nodes());
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
            }
        }
    }

    #[test]
    fn loaded_stats_carry_nnz() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.stats().nnz_l_inv, index.stats().nnz_l_inv);
        assert_eq!(loaded.stats().nnz_u_inv, index.stats().nnz_u_inv);
        assert_eq!(loaded.stats().num_edges, index.stats().num_edges);
        assert_eq!(loaded.stats().uinv_index_bytes, index.stats().uinv_index_bytes);
        assert!(loaded.stats().total_time().is_zero());
    }

    #[test]
    fn v3_trailer_roundtrips_epoch_and_dangling() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0); // nodes 2..5 dangle
        let g = b.build().unwrap();
        let index = KdashIndex::build(
            &g,
            IndexOptions {
                dangling: kdash_sparse::DanglingPolicy::SelfLoop,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(index.update_epoch(), 0);
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.update_epoch(), 0);
        assert_eq!(loaded.dangling_policy(), kdash_sparse::DanglingPolicy::SelfLoop);
        // A v1 file carries no trailer: defaults on load.
        let mut v1 = Vec::new();
        index.save_v1(&mut v1).unwrap();
        let loaded_v1 = KdashIndex::load(v1.as_slice()).unwrap();
        assert_eq!(loaded_v1.update_epoch(), 0);
        assert_eq!(loaded_v1.dangling_policy(), kdash_sparse::DanglingPolicy::Keep);
        // An unknown dangling tag in the trailer is rejected.
        let tag_off = buf.len() - 9;
        let mut bad = buf.clone();
        bad[tag_off] = 7;
        assert!(KdashIndex::load(bad.as_slice()).is_err());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = KdashIndex::load(&b"NOTANIDX0000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_rejected() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        for cut in [10usize, buf.len() / 2, buf.len() - 3] {
            assert!(KdashIndex::load(&buf[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corruption_rejected() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        // Flip bytes inside the permutation region: validation must catch
        // the broken bijection (or the downstream structure check fails).
        let off = 8 + 4 + 8 + 1 + 8 + 8; // header up to the permutation
        buf[off] ^= 0xFF;
        buf[off + 1] ^= 0xFF;
        assert!(KdashIndex::load(buf.as_slice()).is_err());
    }
}
