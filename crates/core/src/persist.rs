//! Index persistence.
//!
//! Precomputation is the expensive phase (hours at paper scale, Figure 6);
//! a production deployment builds the index once and serves queries from
//! many processes. This module serialises a [`KdashIndex`] to a compact
//! little-endian binary format (magic + version header, then the raw
//! arrays) and validates every structural invariant on load, so a
//! corrupted or truncated file yields an error instead of wrong answers.

use crate::{KdashIndex, NodeOrdering};
use kdash_graph::{CsrGraph, Permutation};
use kdash_sparse::{CscMatrix, CsrMatrix};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"KDASHIDX";
const VERSION: u32 = 1;

impl KdashIndex {
    /// Serialises the index. The raw LU factors (if kept) are not
    /// persisted — reload yields an index without the
    /// `proximities_via_factors` ablation path.
    pub fn save<W: Write>(&self, mut w: W) -> io::Result<()> {
        w.write_all(MAGIC)?;
        write_u32(&mut w, VERSION)?;
        write_f64(&mut w, self.restart_probability())?;
        let (tag, seed) = encode_ordering(self.ordering());
        w.write_all(&[tag])?;
        write_u64(&mut w, seed)?;
        let n = self.num_nodes() as u64;
        write_u64(&mut w, n)?;
        write_u32_slice(&mut w, self.permutation().order())?;
        // Permuted graph.
        let (row_ptr, col_idx, weights) = self.permuted_graph().raw();
        write_usize_slice(&mut w, row_ptr)?;
        write_u64(&mut w, col_idx.len() as u64)?;
        write_u32_slice(&mut w, col_idx)?;
        write_f64_slice(&mut w, weights)?;
        // L⁻¹ (CSC).
        let (col_ptr, row_idx, values) = self.linv().raw();
        write_usize_slice(&mut w, col_ptr)?;
        write_u64(&mut w, row_idx.len() as u64)?;
        write_u32_slice(&mut w, row_idx)?;
        write_f64_slice(&mut w, values)?;
        // U⁻¹ (CSR, persisted through its CSC transpose arrays).
        let uinv_csc = self.uinv().to_csc();
        let (u_ptr, u_idx, u_val) = uinv_csc.raw();
        write_usize_slice(&mut w, u_ptr)?;
        write_u64(&mut w, u_idx.len() as u64)?;
        write_u32_slice(&mut w, u_idx)?;
        write_f64_slice(&mut w, u_val)?;
        // Estimator constants.
        write_f64_slice(&mut w, self.a_col_max())?;
        write_f64(&mut w, self.a_max())?;
        write_f64_slice(&mut w, self.c_prime())?;
        Ok(())
    }

    /// Deserialises an index previously written by [`save`](Self::save),
    /// re-validating all structural invariants. Build-time statistics are
    /// not stored; the loaded index reports zero durations with the
    /// correct nnz counts.
    pub fn load<R: Read>(mut r: R) -> io::Result<KdashIndex> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(invalid("bad magic — not a K-dash index file"));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(invalid(&format!("unsupported index version {version}")));
        }
        let c = read_f64(&mut r)?;
        let mut tag = [0u8; 1];
        r.read_exact(&mut tag)?;
        let seed = read_u64(&mut r)?;
        let ordering = decode_ordering(tag[0], seed)?;
        let n = read_u64(&mut r)? as usize;

        let order = read_u32_vec(&mut r, n)?;
        let perm = Permutation::from_new_order(order)
            .map_err(|e| invalid(&format!("corrupt permutation: {e}")))?;

        let row_ptr = read_usize_vec(&mut r, n + 1)?;
        let m = read_u64(&mut r)? as usize;
        let col_idx = read_u32_vec(&mut r, m)?;
        let weights = read_f64_vec(&mut r, m)?;
        let graph = CsrGraph::from_raw_parts(row_ptr, col_idx, weights)
            .map_err(|e| invalid(&format!("corrupt graph: {e}")))?;

        let linv = read_csc(&mut r, n)?;
        let uinv_csc = read_csc(&mut r, n)?;
        let uinv = CsrMatrix::from_csc(&uinv_csc);

        let a_col_max = read_f64_vec(&mut r, n)?;
        let a_max = read_f64(&mut r)?;
        let c_prime = read_f64_vec(&mut r, n)?;

        KdashIndex::assemble(c, ordering, perm, graph, linv, uinv, a_col_max, a_max, c_prime)
            .map_err(|e| invalid(&format!("inconsistent index components: {e}")))
    }
}

fn read_csc<R: Read>(r: &mut R, n: usize) -> io::Result<CscMatrix> {
    let col_ptr = read_usize_vec(r, n + 1)?;
    let nnz = read_u64(r)? as usize;
    let row_idx = read_u32_vec(r, nnz)?;
    let values = read_f64_vec(r, nnz)?;
    CscMatrix::from_raw_parts(n, n, col_ptr, row_idx, values)
        .map_err(|e| invalid(&format!("corrupt matrix: {e}")))
}

fn encode_ordering(ordering: NodeOrdering) -> (u8, u64) {
    match ordering {
        NodeOrdering::Natural => (0, 0),
        NodeOrdering::Random { seed } => (1, seed),
        NodeOrdering::Degree => (2, 0),
        NodeOrdering::Cluster => (3, 0),
        NodeOrdering::Hybrid => (4, 0),
        NodeOrdering::ReverseCuthillMcKee => (5, 0),
        NodeOrdering::MinDegree => (6, 0),
    }
}

fn decode_ordering(tag: u8, seed: u64) -> io::Result<NodeOrdering> {
    Ok(match tag {
        0 => NodeOrdering::Natural,
        1 => NodeOrdering::Random { seed },
        2 => NodeOrdering::Degree,
        3 => NodeOrdering::Cluster,
        4 => NodeOrdering::Hybrid,
        5 => NodeOrdering::ReverseCuthillMcKee,
        6 => NodeOrdering::MinDegree,
        other => return Err(invalid(&format!("unknown ordering tag {other}"))),
    })
}

fn invalid(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_f64<W: Write>(w: &mut W, v: f64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn write_u32_slice<W: Write>(w: &mut W, s: &[u32]) -> io::Result<()> {
    for &v in s {
        write_u32(w, v)?;
    }
    Ok(())
}
fn write_usize_slice<W: Write>(w: &mut W, s: &[usize]) -> io::Result<()> {
    for &v in s {
        write_u64(w, v as u64)?;
    }
    Ok(())
}
fn write_f64_slice<W: Write>(w: &mut W, s: &[f64]) -> io::Result<()> {
    for &v in s {
        write_f64(w, v)?;
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(f64::from_le_bytes(b))
}
fn read_u32_vec<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<u32>> {
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_u32(r)?);
    }
    Ok(out)
}
fn read_usize_vec<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<usize>> {
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_u64(r)? as usize);
    }
    Ok(out)
}
fn read_f64_vec<R: Read>(r: &mut R, len: usize) -> io::Result<Vec<f64>> {
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let v = read_f64(r)?;
        if !v.is_finite() {
            return Err(invalid("non-finite value in index file"));
        }
        out.push(v);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexOptions;
    use kdash_graph::GraphBuilder;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn sample_index() -> KdashIndex {
        let mut rng = StdRng::seed_from_u64(3);
        let mut b = GraphBuilder::new(40);
        for v in 0..40u32 {
            for _ in 0..3 {
                let t = rng.gen_range(0..40);
                if t != v {
                    b.add_edge(v, t, rng.gen_range(0.5..2.0));
                }
            }
        }
        KdashIndex::build(&b.build().unwrap(), IndexOptions::default()).unwrap()
    }

    #[test]
    fn roundtrip_preserves_queries() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.num_nodes(), index.num_nodes());
        assert_eq!(loaded.restart_probability(), index.restart_probability());
        assert_eq!(loaded.ordering(), index.ordering());
        for q in [0u32, 13, 39] {
            let a = index.top_k(q, 7).unwrap();
            let b = loaded.top_k(q, 7).unwrap();
            assert_eq!(a.nodes(), b.nodes());
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.proximity, y.proximity, "bit-exact reload expected");
            }
        }
    }

    #[test]
    fn loaded_stats_carry_nnz() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        let loaded = KdashIndex::load(buf.as_slice()).unwrap();
        assert_eq!(loaded.stats().nnz_l_inv, index.stats().nnz_l_inv);
        assert_eq!(loaded.stats().nnz_u_inv, index.stats().nnz_u_inv);
        assert_eq!(loaded.stats().num_edges, index.stats().num_edges);
        assert!(loaded.stats().total_time().is_zero());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = KdashIndex::load(&b"NOTANIDX0000"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncation_rejected() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        for cut in [10usize, buf.len() / 2, buf.len() - 3] {
            assert!(KdashIndex::load(&buf[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn corruption_rejected() {
        let index = sample_index();
        let mut buf = Vec::new();
        index.save(&mut buf).unwrap();
        // Flip bytes inside the permutation region: validation must catch
        // the broken bijection (or the downstream structure check fails).
        let off = 8 + 4 + 8 + 1 + 8 + 8; // header up to the permutation
        buf[off] ^= 0xFF;
        buf[off + 1] ^= 0xFF;
        assert!(KdashIndex::load(buf.as_slice()).is_err());
    }
}
