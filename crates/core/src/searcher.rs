//! The reusable query workspace.
//!
//! A [`Searcher`] owns every piece of per-query state the top-k search
//! needs — the epoch-stamped BFS buffers ([`kdash_graph::BfsScratch`]),
//! the scattered query column ([`kdash_sparse::ScatteredColumn`]), the
//! top-k heap and the threshold-hit scratch — so a serving loop pays the
//! `O(n)` allocations once and every subsequent query touches only the
//! state it actually visits. Once the buffers have reached their
//! high-water mark (i.e. after warm-up queries covering the largest
//! reachable set and `k` the loop will serve),
//! [`Searcher::top_k_into`] performs **zero heap allocations** (the
//! `tests/zero_alloc.rs` integration test pins this down with a counting
//! allocator).
//!
//! # Lazy frontier
//!
//! The BFS that orders the visit is fused into the search loop: layers are
//! discovered on demand ([`BfsScratch::expand_next_layer`]), so a query
//! the Lemma 2 bound terminates after a few layers never enumerates —
//! never even *discovers* — the rest of the reachable set. The layer the
//! search died in is the last one discovered, and nothing below it is
//! expanded; [`SearchStats::frontier_expanded`] counts the nodes whose
//! out-edges were actually scanned, and [`SearchStats::reachable`]
//! consequently reports the discovered-so-far count on early-terminated
//! queries (exact reachability, as before, when the search runs to
//! completion). Layer-at-a-time expansion reproduces the eager queue
//! order exactly, so results and visit order are identical to the eager
//! reference — only the traversal cost shrinks.
//!
//! # Proximity kernels
//!
//! Proximities come from the scatter/gather kernel: the fixed query column
//! `L⁻¹ e_q` is scattered once per query, then each candidate costs a
//! gather over only `nnz((U⁻¹)ᵤ)` — through the workspace's selected
//! [`GatherKernel`] (default [`GatherKernel::Adaptive`]: per row, the
//! deterministic hit-rate policy picks the branchy scalar gather on
//! miss-dominated rows and a wide kernel — AVX2 where the host has it,
//! the four-accumulator unrolled twin otherwise — on hit-dominated ones;
//! see [`Searcher::set_kernel`]). The wide kernels are bit-identical to
//! each other and within `1e-12` of the scalar reference, which itself is
//! bit-identical to the merge join ([`KdashIndex::top_k_merge_join`] keeps
//! the old eager path alive as the exactness cross-check). Rows stream
//! from the index's [`ProximityStore`](kdash_sparse::ProximityStore)
//! (blocked u16-delta layout by default — bit-identical across layouts),
//! candidate rows are software-prefetched a block ahead
//! ([`PREFETCH_BLOCK`]), and every query's byte traffic, per-class row
//! split and resolved kernel land in [`SearchStats`].
//!
//! # Certified refinement (sparsified tier)
//!
//! On an index built with a positive `drop_tolerance`, the stored
//! inverses are *truncated* and a raw gather yields only an approximation
//! `x̃ ≈ W⁻¹ b`. Every entry point detects this
//! ([`KdashIndex::needs_refinement`]) and routes through the certified
//! refinement loop instead of the Lemma-2 search: the whole reachable set
//! is solved approximately, the residual `r = b − W x̃` is streamed from
//! the permuted graph itself (which the index stores exactly), and the
//! bound `|p_u − c·x̃_u| ≤ ‖r‖₁` turns the ranking into a proof
//! obligation — once every consecutive gap among the answer candidates
//! exceeds `2‖r‖₁`, the returned set *and order* are provably identical
//! to the dense-exact answer. While gaps stay unproven, one correction
//! `x̃ += Ũ⁻¹(L̃⁻¹ r)` contracts the residual geometrically (the
//! sparsified inverses are their own preconditioner) and the check
//! re-runs. Genuinely tied proximities can never separate, so the loop
//! fails loudly with [`KdashError::RefinementFailed`] instead of
//! guessing; returned proximity *values* are `c·x̃` — within the final
//! `‖r‖₁` of exact, which certification keeps below half the smallest
//! decisive gap. Ties among certified answers break by ascending
//! *permuted* id, matching the classic heap's comparator.
//!
//! All five query entry points run through this workspace; the matching
//! [`KdashIndex`] methods are thin conveniences that build a transient
//! `Searcher` per call.

use crate::{
    ArbitraryOrderBound, KdashError, KdashIndex, LayerEstimator, RankedNode, Result, SearchStats,
    TopKResult,
};
use kdash_graph::{BfsScratch, NodeId};
use kdash_sparse::{
    DanglingPolicy, GatherCounters, GatherKernel, GatherScratch, ResolvedKernel, ScatteredColumn,
};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::time::{Duration, Instant};

/// Candidate rows per prefetch block: when the visit cursor enters a new
/// block, the whole block's `U⁻¹` row spans are software-prefetched before
/// the first of them is gathered — so on DRAM-resident indexes the next
/// rows' cache misses overlap the current row's arithmetic instead of
/// serialising behind it. Small enough that a Lemma 2 termination wastes
/// at most a handful of speculative prefetches.
const PREFETCH_BLOCK: usize = 8;

/// Hard ceiling on certified-refinement correction passes. The loop
/// contracts `‖r‖₁` geometrically when it converges at all, so a query
/// still uncertified after this many passes is tied (or past the
/// floating-point floor) and fails loudly instead of spinning.
const REFINE_MAX_ITERATIONS: usize = 64;

/// Residual floor the full-vector refined paths iterate down to: the
/// returned vector is within this `ℓ∞` distance of the exact proximities
/// (and exactly exact when the residual reaches zero). Chosen a couple of
/// decades above `f64` epsilon so accumulation noise cannot stall the
/// loop short of its goal.
pub(crate) const FULL_VECTOR_FLOOR: f64 = 1e-13;

/// The resource ceiling a runaway query hit first — carried inside
/// [`KdashError::BudgetExceeded`] so callers can tell *which* knob fired
/// without parsing a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetLimit {
    /// [`QueryBudget::max_frontier_nodes`] was reached.
    FrontierNodes(usize),
    /// [`QueryBudget::max_gather_nnz`] was reached.
    GatherNnz(usize),
    /// [`QueryBudget::deadline`] elapsed.
    Deadline(Duration),
}

impl std::fmt::Display for BudgetLimit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetLimit::FrontierNodes(n) => write!(f, "frontier budget of {n} visited nodes"),
            BudgetLimit::GatherNnz(n) => write!(f, "gather budget of {n} stored entries"),
            BudgetLimit::Deadline(d) => write!(f, "wall-clock deadline of {d:?}"),
        }
    }
}

/// Per-query resource ceilings for serving tiers that cannot let one
/// pathological query monopolise a worker. The default is unlimited —
/// exactly the pre-budget behaviour, bit for bit.
///
/// Budgets never truncate: a query that would exceed a ceiling is
/// *aborted* with [`KdashError::BudgetExceeded`] (carrying the
/// [`SearchStats`] accumulated so far), never answered with a silently
/// incomplete "exact" result. The two work meters are deterministic and
/// execution-strategy-independent — `max_frontier_nodes` counts visited
/// candidates and `max_gather_nnz` counts stored `U⁻¹` entries of
/// gathered rows, both identical across kernels, layouts and thread
/// counts — so the same budget admits exactly the same queries
/// everywhere. Only `deadline` is inherently wall-clock (and therefore
/// machine-dependent); use it as the outermost safety net.
///
/// Checks run once per candidate visit, *before* the candidate's work,
/// so a budget of `N` admits at most `N` whole units — a partial visit
/// is never half-charged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryBudget {
    /// Abort once this many candidates have been visited (frontier work).
    pub max_frontier_nodes: Option<usize>,
    /// Abort once the gathered rows' stored entries reach this total
    /// (proximity work — the dominant cost on dense hub rows).
    pub max_gather_nnz: Option<usize>,
    /// Abort once this much wall clock has elapsed since the query began.
    pub deadline: Option<Duration>,
}

impl QueryBudget {
    /// No limits — the default, bit-identical to pre-budget behaviour.
    pub fn unlimited() -> Self {
        QueryBudget::default()
    }

    /// The clock anchor for [`deadline`](Self::deadline); `None` when no
    /// deadline is set so unbudgeted queries never touch the clock.
    #[inline]
    fn start(&self) -> Option<Instant> {
        self.deadline.map(|_| Instant::now())
    }

    /// The first ceiling the running totals have reached, if any.
    #[inline]
    fn exceeded(
        &self,
        visited: usize,
        gathered_nnz: usize,
        started: Option<Instant>,
    ) -> Option<BudgetLimit> {
        if let Some(max) = self.max_frontier_nodes {
            if visited >= max {
                return Some(BudgetLimit::FrontierNodes(max));
            }
        }
        if let Some(max) = self.max_gather_nnz {
            if gathered_nnz >= max {
                return Some(BudgetLimit::GatherNnz(max));
            }
        }
        if let (Some(deadline), Some(started)) = (self.deadline, started) {
            if started.elapsed() >= deadline {
                return Some(BudgetLimit::Deadline(deadline));
            }
        }
        None
    }
}

/// Fixed-capacity min-heap keeping the K largest `(proximity, node)` pairs.
/// θ (the K-th best proximity so far) is the root once the heap is full.
/// Reusable: [`reset`](TopKHeap::reset) keeps the backing storage.
#[derive(Debug, Clone)]
pub(crate) struct TopKHeap {
    k: usize,
    entries: Vec<(f64, NodeId)>,
}

impl TopKHeap {
    pub(crate) fn new(k: usize) -> Self {
        TopKHeap { k, entries: Vec::with_capacity(k) }
    }

    /// Empties the heap for a new query of size `k`, keeping capacity.
    pub(crate) fn reset(&mut self, k: usize) {
        self.k = k;
        self.entries.clear();
    }

    pub(crate) fn is_full(&self) -> bool {
        self.entries.len() >= self.k
    }

    /// The paper's θ: K-th best proximity, 0 while dummies remain.
    pub(crate) fn threshold(&self) -> f64 {
        if self.k > 0 && self.is_full() {
            self.entries[0].0
        } else {
            0.0
        }
    }

    pub(crate) fn offer(&mut self, proximity: f64, node: NodeId) {
        if self.k == 0 {
            return;
        }
        if !self.is_full() {
            self.entries.push((proximity, node));
            let mut i = self.entries.len() - 1;
            while i > 0 {
                let parent = (i - 1) / 2;
                if self.entries[parent].0 <= self.entries[i].0 {
                    break;
                }
                self.entries.swap(i, parent);
                i = parent;
            }
        } else if proximity > self.entries[0].0 {
            self.entries[0] = (proximity, node);
            let mut i = 0;
            loop {
                let (l, r) = (2 * i + 1, 2 * i + 2);
                let mut smallest = i;
                if l < self.entries.len() && self.entries[l].0 < self.entries[smallest].0 {
                    smallest = l;
                }
                if r < self.entries.len() && self.entries[r].0 < self.entries[smallest].0 {
                    smallest = r;
                }
                if smallest == i {
                    break;
                }
                self.entries.swap(i, smallest);
                i = smallest;
            }
        }
    }

    /// Sorts the entries into descending proximity order (ties by
    /// ascending node id) in place and returns them. The comparator is a
    /// total order over distinct nodes, so the unstable sort is
    /// deterministic — and allocation-free, unlike the stable one.
    pub(crate) fn sorted_entries(&mut self) -> &[(f64, NodeId)] {
        self.entries.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0).expect("finite proximities").then(a.1.cmp(&b.1))
        });
        &self.entries
    }
}

/// Workspace of the certified refinement loop — allocated on the first
/// refined query (sparsified tier only) and reused afterwards. Dense
/// vectors are indexed by permuted node id; the touched-entry lists make
/// per-iteration resets proportional to the work done, not to `n`.
#[derive(Debug)]
struct RefineState {
    /// The approximate solution `x̃`, zero outside the current reachable
    /// set; reset via the BFS order after every refined query.
    x: Vec<f64>,
    /// The residual `r = b − W x̃` and its touched-entry bookkeeping.
    resid: Vec<f64>,
    resid_supp: Vec<NodeId>,
    in_resid: Vec<bool>,
    /// The correction intermediate `y = L̃⁻¹ r` and its bookkeeping.
    y: Vec<f64>,
    y_supp: Vec<NodeId>,
    in_y: Vec<bool>,
    /// Values of `y` in `y_supp` order, feeding `ycol`.
    y_val: Vec<f64>,
    /// Scattered form of `y` the correction row-gathers run against.
    ycol: ScatteredColumn,
    /// Top-`(k+1)` scratch the certification check ranks candidates with.
    cert: TopKHeap,
}

impl RefineState {
    fn new(n: usize) -> Self {
        RefineState {
            x: vec![0.0; n],
            resid: vec![0.0; n],
            resid_supp: Vec::new(),
            in_resid: vec![false; n],
            y: vec![0.0; n],
            y_supp: Vec::new(),
            in_y: vec![false; n],
            y_val: Vec::new(),
            ycol: ScatteredColumn::new(n),
            cert: TopKHeap::new(0),
        }
    }
}

/// What the refinement loop must prove before it may stop.
enum RefineGoal<'o> {
    /// Certify the top-k set and order; the winners land in the
    /// workspace heap (ties by ascending permuted id).
    TopK(usize),
    /// Certify every reachable node's side of `theta` and the order of
    /// the hits; the hits land in the workspace hit list (sorted).
    Threshold(f64),
    /// Iterate the residual down to [`FULL_VECTOR_FLOOR`]; `c·x̃` lands
    /// in the provided dense permuted vector.
    FullVector(&'o mut [f64]),
}

/// Appends `j` to a touched-entry list exactly once per reset cycle.
#[inline]
fn touch(supp: &mut Vec<NodeId>, seen: &mut [bool], j: NodeId) {
    if !seen[j as usize] {
        seen[j as usize] = true;
        supp.push(j);
    }
}

/// Top-k certification: ranks the `k + 1` best candidates (the entry
/// below the last ranked one is the exact-zero proximity of the
/// unreached padding) and demands every consecutive gap among the top
/// `k` exceed `2δ` — then no exchange across any of those boundaries can
/// survive the error bound, so set and order are proven. A zero residual
/// certifies unconditionally (the values are exact; ties fall to the
/// deterministic comparator). Returns the verdict and the smallest
/// decisive gap for diagnostics.
fn certify_top_k(
    x: &[f64],
    order: &[NodeId],
    c: f64,
    k: usize,
    delta: f64,
    cert: &mut TopKHeap,
) -> (bool, f64) {
    cert.reset(k + 1);
    for &u in order {
        cert.offer(c * x[u as usize], u);
    }
    let ranked = cert.sorted_entries();
    let m = ranked.len();
    let limit = k.min(m);
    let mut min_gap = f64::INFINITY;
    for i in 0..limit {
        let next = if i + 1 < m { ranked[i + 1].0 } else { 0.0 };
        min_gap = min_gap.min(ranked[i].0 - next);
    }
    if !min_gap.is_finite() {
        min_gap = 0.0;
    }
    (delta == 0.0 || min_gap > 2.0 * delta, min_gap)
}

/// Threshold certification: every reachable node must sit provably on
/// one side of `theta` (margin `> δ`) and the hits must be provably
/// ordered among themselves (gaps `> 2δ`). Fills `hits` with the
/// candidate answers, sorted; on the accepting iteration they are the
/// final ones.
fn certify_threshold(
    x: &[f64],
    order: &[NodeId],
    c: f64,
    theta: f64,
    delta: f64,
    hits: &mut Vec<(f64, NodeId)>,
) -> (bool, f64) {
    hits.clear();
    let mut min_margin = f64::INFINITY;
    for &u in order {
        let p = c * x[u as usize];
        min_margin = min_margin.min((p - theta).abs());
        if p >= theta {
            hits.push((p, u));
        }
    }
    hits.sort_unstable_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
    let mut min_gap = 2.0 * min_margin;
    for pair in hits.windows(2) {
        min_gap = min_gap.min(pair[0].0 - pair[1].0);
    }
    if !min_gap.is_finite() {
        min_gap = 0.0;
    }
    (delta == 0.0 || (min_margin > delta && min_gap > 2.0 * delta), min_gap)
}

/// A reusable query workspace over one [`KdashIndex`].
///
/// Construction is `O(n)`; each query after the first allocates nothing
/// (for [`top_k_into`](Searcher::top_k_into)) or only its result vector.
/// A `Searcher` is single-threaded by design — for parallel serving, give
/// each worker its own (see [`crate::batch_top_k`], which does exactly
/// that over a work-stealing queue).
///
/// ```
/// use kdash_core::{IndexOptions, KdashIndex, TopKResult};
/// use kdash_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(5);
/// for v in 0..5u32 { b.add_edge(v, (v + 1) % 5, 1.0); }
/// let index = KdashIndex::build(&b.build().unwrap(), IndexOptions::default()).unwrap();
///
/// let mut searcher = index.searcher();
/// let mut result = TopKResult::default();
/// for q in 0..5u32 {
///     searcher.top_k_into(q, 3, &mut result).unwrap();   // no allocations after warm-up
///     assert_eq!(result.items[0].node, q);
/// }
/// ```
#[derive(Debug)]
pub struct Searcher<'a> {
    index: &'a KdashIndex,
    /// Epoch-stamped lazy BFS layers/order, reused across queries.
    bfs: BfsScratch,
    /// The dense scattered query column `L⁻¹ e_q`.
    column: ScatteredColumn,
    /// Top-k candidates of the current query.
    heap: TopKHeap,
    /// Threshold-query hit list scratch.
    hits: Vec<(f64, NodeId)>,
    /// Permuted restart-set scratch for multi-source queries.
    sources_p: Vec<NodeId>,
    /// Host-validated gather kernel every proximity runs through.
    kernel: ResolvedKernel,
    /// Decode scratch for wide kernels over the blocked layout, sized to
    /// the largest `U⁻¹` row at construction (stays allocation-free).
    scratch: GatherScratch,
    /// Byte-traffic and kernel-split counters, reset per query and folded
    /// into [`SearchStats`].
    counters: GatherCounters,
    /// Visit position up to which candidate rows have been prefetched.
    prefetched_until: usize,
    /// Per-query resource ceilings (default: unlimited).
    budget: QueryBudget,
    /// Certified-refinement workspace, allocated on the first refined
    /// query. Stays `None` forever on a dense-exact index.
    refine: Option<Box<RefineState>>,
}

impl<'a> Searcher<'a> {
    /// A fresh workspace for `index` with the [`GatherKernel::Adaptive`]
    /// kernel (the recommended default). `O(n)` once; queries then reuse
    /// it.
    pub fn new(index: &'a KdashIndex) -> Self {
        let n = index.num_nodes();
        Searcher {
            index,
            bfs: BfsScratch::new(n),
            column: ScatteredColumn::new(n),
            heap: TopKHeap::new(0),
            hits: Vec::new(),
            sources_p: Vec::new(),
            kernel: ResolvedKernel::default(),
            scratch: GatherScratch::with_capacity(index.uinv_rows().max_row_nnz()),
            counters: GatherCounters::default(),
            prefetched_until: 0,
            budget: QueryBudget::default(),
            refine: None,
        }
    }

    /// A fresh workspace running every proximity through `kernel`.
    /// Fails with [`KdashError::UnsupportedKernel`] when the host CPU
    /// cannot honour the selection (only [`GatherKernel::Auto`] falls
    /// back).
    pub fn with_kernel(index: &'a KdashIndex, kernel: GatherKernel) -> Result<Self> {
        let mut searcher = Searcher::new(index);
        searcher.set_kernel(kernel)?;
        Ok(searcher)
    }

    /// Switches the gather kernel for subsequent queries. Fails with
    /// [`KdashError::UnsupportedKernel`] — leaving the current kernel in
    /// place — when the host cannot honour the selection.
    pub fn set_kernel(&mut self, kernel: GatherKernel) -> Result<()> {
        self.kernel = kernel.resolve()?;
        Ok(())
    }

    /// The kernel proximities currently run through (the *resolved*
    /// dispatch target, e.g. `Auto` shows up as `avx2` or `unrolled`).
    pub fn kernel(&self) -> ResolvedKernel {
        self.kernel
    }

    /// The index this workspace serves.
    pub fn index(&self) -> &'a KdashIndex {
        self.index
    }

    /// Installs per-query resource ceilings for every subsequent query on
    /// this workspace. `QueryBudget::default()` removes them again.
    pub fn set_budget(&mut self, budget: QueryBudget) {
        self.budget = budget;
    }

    /// The active per-query budget.
    pub fn budget(&self) -> QueryBudget {
        self.budget
    }

    /// The typed abort for a query that hit a budget ceiling: folds the
    /// traversal and gather progress made so far into the carried stats so
    /// the caller can see exactly how far the runaway got. The workspace
    /// itself stays fully reusable — every entry point re-seeds its state.
    #[cold]
    fn budget_abort(&self, limit: BudgetLimit, mut stats: SearchStats) -> KdashError {
        self.record_traversal(&mut stats);
        KdashError::BudgetExceeded { limit, stats: Box::new(stats) }
    }

    /// Shared single-root query prologue: validates `q`, seeds the lazy
    /// BFS at it (layer 0 only — deeper layers are discovered on demand by
    /// the search loop) and scatters its `L⁻¹` column. Returns the
    /// permuted query id.
    fn prepare_query(&mut self, q: NodeId) -> Result<NodeId> {
        self.index.check_node(q)?;
        let qp = self.index.permutation().new_of(q);
        self.bfs.begin(self.index.permuted_graph(), qp);
        let (col_idx, col_val) = self.index.linv().col(qp);
        self.column.load(col_idx, col_val);
        self.counters.reset();
        self.prefetched_until = 0;
        Ok(qp)
    }

    /// One candidate proximity gather (without the `c` factor): row `u`
    /// of the stored `U⁻¹` against the scattered query column, through
    /// the workspace kernel, with byte traffic accumulated.
    #[inline]
    fn gather(&mut self, u: NodeId) -> f64 {
        self.index.uinv().row_gather(
            self.kernel,
            u,
            &self.column,
            &mut self.scratch,
            &mut self.counters,
        )
    }

    /// Candidate batching: on entering a new block of visit positions,
    /// prefetches the whole block's row spans (index and values) so their
    /// DRAM fetches overlap the gathers that precede them.
    #[inline]
    fn prefetch_block(&mut self, pos: usize) {
        if pos < self.prefetched_until {
            return;
        }
        let end = (pos + PREFETCH_BLOCK).min(self.bfs.num_discovered());
        let uinv = self.index.uinv();
        for &u in &self.bfs.order()[pos..end] {
            uinv.prefetch_row(u);
        }
        self.prefetched_until = end;
    }

    /// One lazy-frontier step: ensures the node at visit position `pos` is
    /// discovered, expanding exactly one further layer if the cursor has
    /// consumed everything discovered so far. Returns the node, or `None`
    /// when the traversal is exhausted.
    #[inline]
    fn next_visit(&mut self, pos: usize) -> Option<NodeId> {
        if pos == self.bfs.num_discovered() && self.bfs.expand_next_layer(self.index.permuted_graph()) == 0
        {
            return None;
        }
        Some(self.bfs.order()[pos])
    }

    /// Folds the traversal counters of the finished (or abandoned) lazy
    /// run into `stats`.
    #[inline]
    fn record_traversal(&self, stats: &mut SearchStats) {
        stats.reachable = self.bfs.num_discovered();
        stats.frontier_expanded = self.bfs.num_expanded();
        self.record_gather(stats);
    }

    /// Folds the gather counters and the resolved kernel into `stats` —
    /// how `auto`/`adaptive` resolutions stay reproducible from logs.
    #[inline]
    fn record_gather(&self, stats: &mut SearchStats) {
        stats.bytes_touched = self.counters.index_bytes;
        stats.value_bytes_touched = self.counters.value_bytes;
        stats.rows_scalar = self.counters.rows_scalar;
        stats.rows_wide = self.counters.rows_wide;
        stats.nnz_gathered = self.counters.nnz;
        stats.kernel = self.kernel.name();
    }

    /// Exact top-k search (Algorithm 4). Returns `min(k, n)` nodes in
    /// descending proximity order; when fewer than `k` nodes are reachable
    /// the remainder is padded with unreachable nodes at proximity 0.
    pub fn top_k(&mut self, q: NodeId, k: usize) -> Result<TopKResult> {
        let mut out = TopKResult::default();
        self.top_k_into(q, k, &mut out)?;
        Ok(out)
    }

    /// [`top_k`](Self::top_k) writing into a caller-owned result, so a
    /// serving loop can reuse the result's allocation too. This is the
    /// zero-allocation hot path: once the workspace buffers have reached
    /// their high-water mark, repeated calls allocate nothing. (The BFS
    /// order and heap grow to the largest reachable set and `k` seen so
    /// far — a later query reaching strictly more nodes than any before
    /// it still grows them once.)
    pub fn top_k_into(&mut self, q: NodeId, k: usize, out: &mut TopKResult) -> Result<()> {
        self.top_k_into_impl(q, k, out, false)
    }

    /// The eager-traversal replay of [`top_k_into`](Self::top_k_into): the
    /// whole BFS tree is drained *before* the same search loop runs,
    /// exactly what the engine did before the lazy frontier landed.
    /// Hidden — benchmark baseline (the `query_engine` bench measures the
    /// lazy path's traversal saving against it) and equivalence oracle
    /// only.
    #[doc(hidden)]
    pub fn top_k_eager_into(&mut self, q: NodeId, k: usize, out: &mut TopKResult) -> Result<()> {
        self.top_k_into_impl(q, k, out, true)
    }

    /// One search loop for both traversal modes, so the eager baseline can
    /// never drift from the production algorithm: `eager` only decides
    /// whether the frontier is drained up front or pulled by `next_visit`.
    fn top_k_into_impl(
        &mut self,
        q: NodeId,
        k: usize,
        out: &mut TopKResult,
        eager: bool,
    ) -> Result<()> {
        let index = self.index;
        if k == 0 {
            // The answer is known empty; skip the traversal entirely.
            index.check_node(q)?;
            out.items.clear();
            out.stats = SearchStats::default();
            return Ok(());
        }
        let qp = self.prepare_query(q)?;
        if index.needs_refinement() {
            // Sparsified tier: gathered values are approximate, so the
            // Lemma-2 path is unsound — certify instead (both traversal
            // modes drain the frontier there anyway).
            return self.refined_top_k(&[(qp, 1.0)], k, out);
        }
        if eager {
            while self.bfs.expand_next_layer(index.permuted_graph()) > 0 {}
        }
        let c = index.restart_probability();
        let started = self.budget.start();

        self.heap.reset(k);
        let mut estimator = LayerEstimator::new(index.a_max());
        let mut stats = SearchStats::default();

        // The frontier is pulled lazily: `next_visit` discovers one more
        // layer exactly when the cursor has consumed everything known, so
        // breaking out of this loop leaves every deeper layer unexpanded.
        // (An eager run arrives pre-drained and `next_visit` just walks
        // the complete order.)
        let mut pos = 0;
        while let Some(u) = self.next_visit(pos) {
            if let Some(limit) = self.budget.exceeded(stats.visited, self.counters.nnz, started) {
                return Err(self.budget_abort(limit, stats));
            }
            self.prefetch_block(pos);
            stats.visited += 1;
            let layer = self.bfs.layer(u);
            if pos == 0 {
                // The root is the query: p̄_q = 1 by definition, never pruned.
                let p = c * self.gather(u);
                stats.proximity_computations += 1;
                estimator.record_root(p, index.a_col_max()[u as usize]);
                self.heap.offer(p, u);
                pos += 1;
                continue;
            }
            let terms = estimator.advance(layer);
            // Termination must cover every unvisited node, whose c' may
            // exceed this node's when self-loops are present — use max c'.
            if self.heap.is_full() && index.c_prime_max() * terms < self.heap.threshold() {
                // Lemma 2: every unvisited node is bounded by this too —
                // discovered or not, so the undiscovered layers need never
                // be enumerated.
                stats.terminated_early = true;
                break;
            }
            let p = c * self.gather(u);
            stats.proximity_computations += 1;
            estimator.record_selected(layer, p, index.a_col_max()[u as usize]);
            self.heap.offer(p, u);
            pos += 1;
        }
        self.record_traversal(&mut stats);

        self.finish(k, true, stats, out);
        Ok(())
    }

    /// Algorithm 4 with the termination test removed: computes the exact
    /// proximity of every reachable node (the traversal always runs to
    /// exhaustion, so its `reachable` is the full reachable count). This
    /// is the "Without pruning" series of Figure 7.
    pub fn top_k_unpruned(&mut self, q: NodeId, k: usize) -> Result<TopKResult> {
        let index = self.index;
        if k == 0 {
            index.check_node(q)?;
            return Ok(TopKResult::default());
        }
        let qp = self.prepare_query(q)?;
        if index.needs_refinement() {
            let mut out = TopKResult::default();
            self.refined_top_k(&[(qp, 1.0)], k, &mut out)?;
            return Ok(out);
        }
        let c = index.restart_probability();
        let started = self.budget.start();

        self.heap.reset(k);
        let mut stats = SearchStats::default();
        let mut pos = 0;
        while let Some(u) = self.next_visit(pos) {
            if let Some(limit) = self.budget.exceeded(stats.visited, self.counters.nnz, started) {
                return Err(self.budget_abort(limit, stats));
            }
            self.prefetch_block(pos);
            stats.visited += 1;
            let p = c * self.gather(u);
            stats.proximity_computations += 1;
            self.heap.offer(p, u);
            pos += 1;
        }
        self.record_traversal(&mut stats);
        let mut out = TopKResult::default();
        self.finish(k, true, stats, &mut out);
        Ok(out)
    }

    /// Exact *threshold* query: every node whose proximity is at least
    /// `theta`, in descending order. Extension beyond the paper, enabled
    /// by the same machinery: visit in BFS-layer order and stop as soon as
    /// the Lemma 2 bound falls below `theta` — every unvisited node is
    /// then provably below the threshold.
    ///
    /// `theta` must be positive and finite; anything else returns
    /// [`KdashError::InvalidThreshold`] (a proximity is a probability mass
    /// in `(0, 1]`, so a non-positive threshold would select every node
    /// and a NaN one nothing meaningful).
    pub fn nodes_above(&mut self, q: NodeId, theta: f64) -> Result<TopKResult> {
        let index = self.index;
        index.check_node(q)?;
        if !(theta > 0.0 && theta.is_finite()) {
            return Err(KdashError::InvalidThreshold { theta });
        }
        let qp = self.prepare_query(q)?;
        if index.needs_refinement() {
            let mut stats = SearchStats::default();
            self.refined_run(&[(qp, 1.0)], RefineGoal::Threshold(theta), &mut stats)?;
            self.record_traversal(&mut stats);
            // The accepting certification pass left `hits` sorted; the
            // shared epilogue below maps them to original ids.
            let items = self
                .hits
                .iter()
                .map(|&(p, u)| RankedNode { node: index.permutation().old_of(u), proximity: p })
                .collect();
            return Ok(TopKResult { items, stats });
        }
        let c = index.restart_probability();
        let started = self.budget.start();

        self.hits.clear();
        let mut estimator = LayerEstimator::new(index.a_max());
        let mut stats = SearchStats::default();
        let mut pos = 0;
        while let Some(u) = self.next_visit(pos) {
            if let Some(limit) = self.budget.exceeded(stats.visited, self.counters.nnz, started) {
                return Err(self.budget_abort(limit, stats));
            }
            self.prefetch_block(pos);
            stats.visited += 1;
            let layer = self.bfs.layer(u);
            if pos > 0 {
                let bound = index.c_prime_max() * estimator.advance(layer);
                if bound < theta {
                    stats.terminated_early = true;
                    break;
                }
            }
            let p = c * self.gather(u);
            stats.proximity_computations += 1;
            if pos == 0 {
                estimator.record_root(p, index.a_col_max()[u as usize]);
            } else {
                estimator.record_selected(layer, p, index.a_col_max()[u as usize]);
            }
            if p >= theta {
                self.hits.push((p, u));
            }
            pos += 1;
        }
        self.record_traversal(&mut stats);
        self.hits.sort_unstable_by(|a, b| {
            b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1))
        });
        let items = self
            .hits
            .iter()
            .map(|&(p, u)| RankedNode { node: index.permutation().old_of(u), proximity: p })
            .collect();
        Ok(TopKResult { items, stats })
    }

    /// Exact top-k for a *restart set*: the walk restarts uniformly over
    /// `sources` (Personalized PageRank in the sense of the paper's
    /// footnote 6). All sources form layer 0 of the search tree and are
    /// computed exactly; pruning starts at layer 1, where Lemma 1/2 hold
    /// unchanged (every non-source node still satisfies
    /// `p_u = c'_u Σ_v A_uv p_v`).
    pub fn top_k_from_set(&mut self, sources: &[NodeId], k: usize) -> Result<TopKResult> {
        let index = self.index;
        // Validation (empty/duplicate/out-of-bounds sources) must still run
        // for k = 0, so the short-circuit sits behind the column merge.
        let (col_idx, col_val) = index.merged_query_column(sources)?;
        if k == 0 {
            return Ok(TopKResult::default());
        }
        self.column.load(&col_idx, &col_val);
        self.counters.reset();
        self.prefetched_until = 0;
        self.sources_p.clear();
        self.sources_p.extend(sources.iter().map(|&s| index.permutation().new_of(s)));
        let roots = std::mem::take(&mut self.sources_p);
        self.bfs.begin_multi(index.permuted_graph(), &roots);
        self.sources_p = roots;
        if index.needs_refinement() {
            // The restart vector is uniform over the sources.
            let weight = 1.0 / self.sources_p.len() as f64;
            let rhs: Vec<(NodeId, f64)> =
                self.sources_p.iter().map(|&s| (s, weight)).collect();
            let mut out = TopKResult::default();
            self.refined_top_k(&rhs, k, &mut out)?;
            return Ok(out);
        }
        let c = index.restart_probability();
        let started = self.budget.start();

        self.heap.reset(k);
        let mut estimator = LayerEstimator::new(index.a_max());
        let mut stats = SearchStats::default();

        let mut pos = 0;
        while let Some(u) = self.next_visit(pos) {
            if let Some(limit) = self.budget.exceeded(stats.visited, self.counters.nnz, started) {
                return Err(self.budget_abort(limit, stats));
            }
            self.prefetch_block(pos);
            stats.visited += 1;
            let layer = self.bfs.layer(u);
            if layer == 0 {
                // Sources carry the restart term; their proximities are
                // computed unconditionally and feed the estimator chain.
                let p = c * self.gather(u);
                stats.proximity_computations += 1;
                if pos > 0 {
                    let _ = estimator.advance(0);
                }
                estimator.record_selected(0, p, index.a_col_max()[u as usize]);
                self.heap.offer(p, u);
                pos += 1;
                continue;
            }
            let terms = estimator.advance(layer);
            if self.heap.is_full() && index.c_prime_max() * terms < self.heap.threshold() {
                stats.terminated_early = true;
                break;
            }
            let p = c * self.gather(u);
            stats.proximity_computations += 1;
            estimator.record_selected(layer, p, index.a_col_max()[u as usize]);
            self.heap.offer(p, u);
            pos += 1;
        }
        self.record_traversal(&mut stats);
        let mut out = TopKResult::default();
        self.finish(k, true, stats, &mut out);
        Ok(out)
    }

    /// The Appendix D.1 ablation: the search tree is rooted at a random
    /// node instead of the query. The layer bound is no longer valid, so an
    /// order-agnostic bound is used — exact answers, per-node skipping
    /// only, and every node must still be visited.
    pub fn top_k_random_root(&mut self, q: NodeId, k: usize, seed: u64) -> Result<TopKResult> {
        let n = self.index.num_nodes();
        self.index.check_node(q)?;
        let root = StdRng::seed_from_u64(seed).gen_range(0..n) as NodeId;
        self.top_k_from_root(q, k, root)
    }

    /// Random-root search with an explicit root (exposed for tests).
    pub fn top_k_from_root(&mut self, q: NodeId, k: usize, root: NodeId) -> Result<TopKResult> {
        let index = self.index;
        index.check_node(q)?;
        index.check_node(root)?;
        if k == 0 {
            return Ok(TopKResult::default());
        }
        if index.needs_refinement() {
            // The ablation's visit order is irrelevant to a refined
            // answer — every reachable node is solved and certified
            // regardless — so the random root routes through the standard
            // refined query and stays exact on sparsified tiers.
            let qp = self.prepare_query(q)?;
            let mut out = TopKResult::default();
            self.refined_top_k(&[(qp, 1.0)], k, &mut out)?;
            return Ok(out);
        }
        let qp = index.permutation().new_of(q);
        let rootp = index.permutation().new_of(root);
        // The order-agnostic bound can never terminate the search, so every
        // node must be visited regardless — the lazy frontier has nothing
        // to save here and the tree is drained eagerly up front. Its
        // counters are exact: `reachable` is the full root-reachable set
        // and `frontier_expanded` equals it.
        self.bfs.run(index.permuted_graph(), rootp);
        let (col_idx, col_val) = index.linv().col(qp);
        self.column.load(col_idx, col_val);
        self.counters.reset();
        let c = index.restart_probability();
        let started = self.budget.start();

        self.heap.reset(k);
        let mut bound_state = ArbitraryOrderBound::new(index.a_max());
        let mut stats = SearchStats::default();
        self.record_traversal(&mut stats);

        // Visit order: BFS from the root, then every node the root cannot
        // reach (they may still be answers — the walk starts at q, not at
        // the root). The tree is complete up front, so candidate batching
        // prefetches straight off the final order.
        let uinv = index.uinv();
        let order = self.bfs.order();
        for (i, &u) in order.iter().enumerate() {
            if let Some(limit) = self.budget.exceeded(stats.visited, self.counters.nnz, started) {
                return Err(self.budget_abort(limit, stats));
            }
            if i % PREFETCH_BLOCK == 0 {
                for &v in &order[i..(i + PREFETCH_BLOCK).min(order.len())] {
                    uinv.prefetch_row(v);
                }
            }
            visit_any_order(
                index,
                self.kernel,
                &self.column,
                &mut self.scratch,
                &mut self.counters,
                &mut self.heap,
                &mut bound_state,
                &mut stats,
                qp,
                c,
                u,
            );
        }
        let n = index.num_nodes() as NodeId;
        for v in 0..n {
            if let Some(limit) = self.budget.exceeded(stats.visited, self.counters.nnz, started) {
                return Err(self.budget_abort(limit, stats));
            }
            // Same candidate batching for the unreached tail (which can be
            // most of the graph when the root's component is small):
            // prefetch the block's unreached rows before gathering them.
            if v % PREFETCH_BLOCK as NodeId == 0 {
                for w in v..(v + PREFETCH_BLOCK as NodeId).min(n) {
                    if !self.bfs.is_reached(w) {
                        uinv.prefetch_row(w);
                    }
                }
            }
            if !self.bfs.is_reached(v) {
                visit_any_order(
                    index,
                    self.kernel,
                    &self.column,
                    &mut self.scratch,
                    &mut self.counters,
                    &mut self.heap,
                    &mut bound_state,
                    &mut stats,
                    qp,
                    c,
                    v,
                );
            }
        }
        // The traversal counters were exact before the visits; the gather
        // counters only exist now that the visits ran.
        self.record_gather(&mut stats);
        // Every node was visited (or skipped soundly); no padding needed.
        let mut out = TopKResult::default();
        self.finish(k, false, stats, &mut out);
        Ok(out)
    }

    /// Shared epilogue: drains the heap in rank order, maps back to
    /// original ids, and (when `pad_unreached` is set) pads with
    /// unreachable, zero-proximity nodes when fewer than `k` candidates
    /// exist. Heap entries are always reached nodes, so pads can never
    /// collide with them.
    ///
    /// Padding and lazy discovery cannot conflict: fewer than `k` heap
    /// entries means the heap never filled, so the Lemma 2 termination
    /// (which requires a full heap) never fired, the traversal ran to
    /// exhaustion, and `is_reached` is exact reachability.
    fn finish(&mut self, k: usize, pad_unreached: bool, stats: SearchStats, out: &mut TopKResult) {
        let index = self.index;
        out.stats = stats;
        out.items.clear();
        for &(p, u) in self.heap.sorted_entries() {
            out.items.push(RankedNode { node: index.permutation().old_of(u), proximity: p });
        }
        if pad_unreached && out.items.len() < k {
            for v in 0..index.num_nodes() as NodeId {
                if out.items.len() >= k {
                    break;
                }
                if !self.bfs.is_reached(v) {
                    out.items.push(RankedNode {
                        node: index.permutation().old_of(v),
                        proximity: 0.0,
                    });
                }
            }
        }
    }

    /// Refined top-k epilogue shared by every sparsified-tier ranking
    /// entry point: run the certified loop, fold the traversal counters,
    /// rank + pad. Expects the BFS seeded and the query column loaded.
    fn refined_top_k(
        &mut self,
        rhs: &[(NodeId, f64)],
        k: usize,
        out: &mut TopKResult,
    ) -> Result<()> {
        let mut stats = SearchStats::default();
        self.refined_run(rhs, RefineGoal::TopK(k), &mut stats)?;
        self.record_traversal(&mut stats);
        self.finish(k, true, stats, out);
        Ok(())
    }

    /// The full proximity vector (original id space) through the
    /// certified refinement loop, iterated down to [`FULL_VECTOR_FLOOR`]:
    /// every returned value is within that bound of exact (and exact when
    /// the residual reaches zero). `sources` restart uniformly, so a
    /// singleton slice reproduces the single-query vector. This is the
    /// sparsified-tier backend of [`KdashIndex::full_proximities`] and
    /// friends.
    #[doc(hidden)]
    pub fn refined_full_proximities(&mut self, sources: &[NodeId]) -> Result<Vec<f64>> {
        let index = self.index;
        let (col_idx, col_val) = index.merged_query_column(sources)?;
        self.column.load(&col_idx, &col_val);
        self.counters.reset();
        self.prefetched_until = 0;
        self.sources_p.clear();
        self.sources_p.extend(sources.iter().map(|&s| index.permutation().new_of(s)));
        let roots = std::mem::take(&mut self.sources_p);
        self.bfs.begin_multi(index.permuted_graph(), &roots);
        let weight = 1.0 / roots.len() as f64;
        let rhs: Vec<(NodeId, f64)> = roots.iter().map(|&s| (s, weight)).collect();
        self.sources_p = roots;
        let mut permuted = vec![0.0; index.num_nodes()];
        let mut stats = SearchStats::default();
        self.refined_run(&rhs, RefineGoal::FullVector(&mut permuted), &mut stats)?;
        Ok(index.permutation().unpermute_values(&permuted))
    }

    /// The certified refinement driver (see the module docs): drains the
    /// reachable set, solves it approximately through the sparsified
    /// inverses, and iterates residual/correction passes until `goal` is
    /// proven. Expects the BFS seeded at the support of `rhs` (the
    /// restart vector `b = Σ weight·e_root`, permuted ids) and the
    /// matching `L̃⁻¹` query column loaded.
    fn refined_run(
        &mut self,
        rhs: &[(NodeId, f64)],
        mut goal: RefineGoal<'_>,
        stats: &mut SearchStats,
    ) -> Result<()> {
        // The Lemma-2 bound cannot prune against approximate proximities,
        // so the refined path always drains the whole reachable set —
        // supp(x̃), supp(r) and the correction all stay inside it.
        while self.bfs.expand_next_layer(self.index.permuted_graph()) > 0 {}
        let mut st = self
            .refine
            .take()
            .unwrap_or_else(|| Box::new(RefineState::new(self.index.num_nodes())));
        let result = self.refined_run_inner(&mut st, rhs, &mut goal, stats);
        // Zero x̃ over the visited set before parking the state, so an
        // error leaves the workspace exactly as reusable as success does.
        for &u in &self.bfs.order()[..self.bfs.num_discovered()] {
            st.x[u as usize] = 0.0;
        }
        self.refine = Some(st);
        result
    }

    fn refined_run_inner(
        &mut self,
        st: &mut RefineState,
        rhs: &[(NodeId, f64)],
        goal: &mut RefineGoal<'_>,
        stats: &mut SearchStats,
    ) -> Result<()> {
        let index = self.index;
        let graph = index.permuted_graph();
        let c = index.restart_probability();
        let one_minus_c = 1.0 - c;
        let dangling = index.dangling_policy();
        let started = self.budget.start();
        let reach = self.bfs.num_discovered();

        // Initial approximate solve x̃ = Ũ⁻¹(L̃⁻¹ b): one gather per
        // reachable node through the workspace kernel, exactly the
        // classic search's per-candidate cost.
        for pos in 0..reach {
            if let Some(limit) = self.budget.exceeded(stats.visited, self.counters.nnz, started) {
                return Err(self.budget_abort(limit, stats.clone()));
            }
            self.prefetch_block(pos);
            let u = self.bfs.order()[pos];
            stats.visited += 1;
            let v = self.gather(u);
            stats.proximity_computations += 1;
            st.x[u as usize] = v;
        }

        let mut iterations = 0usize;
        let mut prev_norm = f64::INFINITY;
        loop {
            // Residual r = b − W x̃ = b − x̃ + (1−c)·A x̃, streamed from
            // the permuted graph's out-edges (the index stores the graph
            // exactly, so this is the true residual): column j of A is
            // node j's out-distribution, self-looped when dangling under
            // that policy, empty when dangling is kept absorbing.
            for &j in &st.resid_supp {
                st.resid[j as usize] = 0.0;
                st.in_resid[j as usize] = false;
            }
            st.resid_supp.clear();
            let mut edge_terms = 0usize;
            for pos in 0..reach {
                let j = self.bfs.order()[pos];
                let xj = st.x[j as usize];
                if xj == 0.0 {
                    continue;
                }
                touch(&mut st.resid_supp, &mut st.in_resid, j);
                st.resid[j as usize] -= xj;
                let out_sum = graph.out_weight_sum(j);
                if out_sum > 0.0 {
                    let scale = one_minus_c * xj / out_sum;
                    for (t, w) in graph.out_edges(j) {
                        touch(&mut st.resid_supp, &mut st.in_resid, t);
                        st.resid[t as usize] += scale * w;
                        edge_terms += 1;
                    }
                } else if dangling == DanglingPolicy::SelfLoop {
                    st.resid[j as usize] += one_minus_c * xj;
                }
            }
            for &(root, weight) in rhs {
                touch(&mut st.resid_supp, &mut st.in_resid, root);
                st.resid[root as usize] += weight;
            }
            stats.refinement_nnz += edge_terms;
            let delta: f64 =
                st.resid_supp.iter().map(|&j| st.resid[j as usize].abs()).sum();

            // |p_u − c·x̃_u| ≤ ‖r‖₁ for every node (column sums of W⁻¹
            // are at most 1/c, cancelling the c in p = c·x): certify the
            // goal against that uniform bound.
            let order = &self.bfs.order()[..reach];
            let (certified, min_gap) = match goal {
                RefineGoal::TopK(k) => {
                    certify_top_k(&st.x, order, c, *k, delta, &mut st.cert)
                }
                RefineGoal::Threshold(theta) => {
                    certify_threshold(&st.x, order, c, *theta, delta, &mut self.hits)
                }
                RefineGoal::FullVector(_) => (delta <= FULL_VECTOR_FLOOR, delta),
            };
            if certified {
                break;
            }
            if iterations >= REFINE_MAX_ITERATIONS || delta >= prev_norm {
                // Tied (or sub-floating-point-separated) proximities can
                // never certify, and a non-contracting residual means the
                // drop tolerance out-weighs the preconditioner: fail
                // loudly, never return an unproven ranking.
                return Err(KdashError::RefinementFailed {
                    iterations,
                    residual: delta,
                    gap: min_gap,
                });
            }
            prev_norm = delta;

            // One correction pass x̃ += Ũ⁻¹(L̃⁻¹ r): scatter the L̃⁻¹
            // columns of the residual support into y, then gather every
            // reachable Ũ⁻¹ row against it — the same kernel and cost
            // model as the initial solve.
            for &u in &st.y_supp {
                st.y[u as usize] = 0.0;
                st.in_y[u as usize] = false;
            }
            st.y_supp.clear();
            let linv = index.linv();
            for &j in &st.resid_supp {
                let rj = st.resid[j as usize];
                if rj == 0.0 {
                    continue;
                }
                let (idx, val) = linv.col(j);
                stats.refinement_nnz += idx.len();
                for (&i, &v) in idx.iter().zip(val) {
                    touch(&mut st.y_supp, &mut st.in_y, i);
                    st.y[i as usize] += rj * v;
                }
            }
            st.y_val.clear();
            st.y_val.extend(st.y_supp.iter().map(|&i| st.y[i as usize]));
            st.ycol.load(&st.y_supp, &st.y_val);
            let nnz_before = self.counters.nnz;
            for pos in 0..reach {
                if let Some(limit) =
                    self.budget.exceeded(stats.visited, self.counters.nnz, started)
                {
                    return Err(self.budget_abort(limit, stats.clone()));
                }
                if pos % PREFETCH_BLOCK == 0 {
                    let end = (pos + PREFETCH_BLOCK).min(reach);
                    let uinv = index.uinv();
                    for &v in &self.bfs.order()[pos..end] {
                        uinv.prefetch_row(v);
                    }
                }
                let u = self.bfs.order()[pos];
                let d = index.uinv().row_gather(
                    self.kernel,
                    u,
                    &st.ycol,
                    &mut self.scratch,
                    &mut self.counters,
                );
                st.x[u as usize] += d;
            }
            stats.refinement_nnz += self.counters.nnz - nnz_before;
            iterations += 1;
        }
        stats.refinement_iterations = iterations;

        // Deliver the certified answer.
        match goal {
            RefineGoal::TopK(k) => {
                // The certification scratch already ranked the k+1 best
                // candidates (descending proximity, ties by ascending
                // permuted id); the first k are the proven answer.
                self.heap.reset(*k);
                let ranked = st.cert.sorted_entries();
                for &(p, u) in ranked.iter().take(*k) {
                    self.heap.offer(p, u);
                }
            }
            RefineGoal::Threshold(_) => {
                // The accepting certification pass left the final hits in
                // the workspace hit list, already sorted.
            }
            RefineGoal::FullVector(out) => {
                for pos in 0..reach {
                    let u = self.bfs.order()[pos];
                    out[u as usize] = c * st.x[u as usize];
                }
            }
        }
        Ok(())
    }
}

/// One candidate visit of the order-agnostic (random-root) search. A free
/// function over the workspace's split-out fields so both visit loops can
/// call it while the BFS order is borrowed.
#[allow(clippy::too_many_arguments)]
#[inline]
fn visit_any_order(
    index: &KdashIndex,
    kernel: ResolvedKernel,
    column: &ScatteredColumn,
    scratch: &mut GatherScratch,
    counters: &mut GatherCounters,
    heap: &mut TopKHeap,
    bound_state: &mut ArbitraryOrderBound,
    stats: &mut SearchStats,
    qp: NodeId,
    c: f64,
    u: NodeId,
) {
    stats.visited += 1;
    // The order-agnostic bound only holds for non-query nodes.
    if u != qp {
        let bound = index.c_prime()[u as usize] * bound_state.bound_term();
        if heap.is_full() && bound < heap.threshold() {
            stats.skipped += 1;
            return;
        }
    }
    let p = c * index.uinv().row_gather(kernel, u, column, scratch, counters);
    stats.proximity_computations += 1;
    bound_state.record(p, index.a_col_max()[u as usize]);
    heap.offer(p, u);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IndexOptions;
    use kdash_graph::GraphBuilder;

    fn tiny_index() -> KdashIndex {
        let mut b = GraphBuilder::new(6);
        for v in 0..6u32 {
            b.add_edge(v, (v + 1) % 6, 1.0);
            b.add_edge(v, (v + 2) % 6, 0.5);
        }
        KdashIndex::build(&b.build().unwrap(), IndexOptions::default()).unwrap()
    }

    #[test]
    fn heap_keeps_largest_k() {
        let mut h = TopKHeap::new(3);
        for (p, n) in [(0.1, 1u32), (0.5, 2), (0.3, 3), (0.9, 4), (0.2, 5)] {
            h.offer(p, n);
        }
        let nodes: Vec<NodeId> = h.sorted_entries().iter().map(|&(_, n)| n).collect();
        assert_eq!(nodes, vec![4, 2, 3]);
    }

    #[test]
    fn heap_threshold_tracks_kth_best() {
        let mut h = TopKHeap::new(2);
        assert_eq!(h.threshold(), 0.0);
        h.offer(0.4, 1);
        assert_eq!(h.threshold(), 0.0, "not full yet");
        h.offer(0.7, 2);
        assert!((h.threshold() - 0.4).abs() < 1e-15);
        h.offer(0.5, 3);
        assert!((h.threshold() - 0.5).abs() < 1e-15);
        h.offer(0.1, 4); // too small, ignored
        assert!((h.threshold() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn heap_with_k_zero_accepts_and_returns_nothing() {
        let mut h = TopKHeap::new(0);
        assert!(h.is_full(), "a zero-capacity heap is trivially full");
        assert_eq!(h.threshold(), 0.0, "but its threshold stays the dummy 0");
        for (p, n) in [(0.9, 1u32), (0.1, 2)] {
            h.offer(p, n);
        }
        assert!(h.sorted_entries().is_empty());
    }

    #[test]
    fn heap_with_k_beyond_population_keeps_everything() {
        let mut h = TopKHeap::new(100);
        for (p, n) in [(0.1, 1u32), (0.5, 2), (0.3, 3)] {
            h.offer(p, n);
        }
        assert!(!h.is_full());
        assert_eq!(h.threshold(), 0.0, "threshold is 0 while dummies remain");
        let nodes: Vec<NodeId> = h.sorted_entries().iter().map(|&(_, n)| n).collect();
        assert_eq!(nodes, vec![2, 3, 1]);
    }

    #[test]
    fn heap_reset_reuses_storage_across_sizes() {
        let mut h = TopKHeap::new(3);
        for i in 0..10u32 {
            h.offer(f64::from(i) * 0.05, i);
        }
        h.reset(1);
        h.offer(0.2, 7);
        h.offer(0.9, 8);
        let top: Vec<NodeId> = h.sorted_entries().iter().map(|&(_, n)| n).collect();
        assert_eq!(top, vec![8]);
        h.reset(0);
        h.offer(1.0, 1);
        assert!(h.sorted_entries().is_empty());
    }

    #[test]
    fn heap_ties_break_by_ascending_node_id() {
        let mut h = TopKHeap::new(4);
        for n in [9u32, 3, 7, 1] {
            h.offer(0.25, n);
        }
        let nodes: Vec<NodeId> = h.sorted_entries().iter().map(|&(_, n)| n).collect();
        assert_eq!(nodes, vec![1, 3, 7, 9]);
    }

    #[test]
    fn searcher_reuse_matches_fresh_searchers() {
        let index = tiny_index();
        let mut reused = index.searcher();
        for q in 0..6u32 {
            for k in [0usize, 2, 6, 10] {
                let a = reused.top_k(q, k).unwrap();
                let b = index.searcher().top_k(q, k).unwrap();
                assert_eq!(a.items.len(), b.items.len());
                for (x, y) in a.items.iter().zip(&b.items) {
                    assert_eq!(x.node, y.node);
                    assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
                }
            }
        }
    }

    #[test]
    fn top_k_into_reuses_the_result_buffer() {
        let index = tiny_index();
        let mut searcher = index.searcher();
        let mut out = TopKResult::default();
        searcher.top_k_into(0, 4, &mut out).unwrap();
        let first: Vec<NodeId> = out.items.iter().map(|r| r.node).collect();
        searcher.top_k_into(3, 4, &mut out).unwrap();
        assert_eq!(out.items.len(), 4);
        assert_eq!(out.items[0].node, 3, "buffer must hold the *new* query's answer");
        searcher.top_k_into(0, 4, &mut out).unwrap();
        let again: Vec<NodeId> = out.items.iter().map(|r| r.node).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn mixed_entry_points_share_one_workspace() {
        // Interleaving different query kinds must not leak state between
        // them: each call replays identically to a fresh workspace.
        let index = tiny_index();
        let mut s = index.searcher();
        for round in 0..3 {
            let a = s.top_k(1, 3).unwrap();
            let b = s.nodes_above(2, 1e-4).unwrap();
            let c = s.top_k_from_set(&[0, 4], 3).unwrap();
            let d = s.top_k_from_root(1, 3, 5).unwrap();
            let e = s.top_k_unpruned(1, 3).unwrap();
            let fresh_a = index.searcher().top_k(1, 3).unwrap();
            let fresh_b = index.searcher().nodes_above(2, 1e-4).unwrap();
            let fresh_c = index.searcher().top_k_from_set(&[0, 4], 3).unwrap();
            let fresh_d = index.searcher().top_k_from_root(1, 3, 5).unwrap();
            for (got, want) in [(&a, &fresh_a), (&b, &fresh_b), (&c, &fresh_c), (&d, &fresh_d)] {
                assert_eq!(got.items.len(), want.items.len(), "round {round}");
                for (x, y) in got.items.iter().zip(&want.items) {
                    assert_eq!(x.node, y.node);
                    assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
                }
            }
            for (x, y) in a.items.iter().zip(&e.items) {
                assert!((x.proximity - y.proximity).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn invalid_thresholds_are_errors_not_panics() {
        let index = tiny_index();
        let mut s = index.searcher();
        for theta in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            match s.nodes_above(0, theta) {
                Err(KdashError::InvalidThreshold { .. }) => {}
                other => panic!("theta {theta}: expected InvalidThreshold, got {other:?}"),
            }
        }
        // The workspace stays usable after a rejected query.
        assert!(s.nodes_above(0, 1e-3).is_ok());
    }

    #[test]
    fn frontier_budget_aborts_with_typed_error_and_stats() {
        let index = tiny_index();
        let mut s = index.searcher();
        s.set_budget(QueryBudget {
            max_frontier_nodes: Some(2),
            ..QueryBudget::default()
        });
        match s.top_k(0, 6) {
            Err(KdashError::BudgetExceeded { limit, stats }) => {
                assert_eq!(limit, BudgetLimit::FrontierNodes(2));
                assert_eq!(stats.visited, 2, "the budget admits exactly 2 visits");
                assert!(stats.proximity_computations <= 2);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // The same workspace answers exactly once the budget is lifted.
        s.set_budget(QueryBudget::unlimited());
        let a = s.top_k(0, 6).unwrap();
        let b = index.searcher().top_k(0, 6).unwrap();
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.node, y.node);
            assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
        }
    }

    #[test]
    fn gather_budget_meters_stored_entries() {
        let index = tiny_index();
        let mut s = index.searcher();
        s.set_budget(QueryBudget { max_gather_nnz: Some(1), ..QueryBudget::default() });
        match s.top_k(0, 6) {
            Err(KdashError::BudgetExceeded { limit, stats }) => {
                assert_eq!(limit, BudgetLimit::GatherNnz(1));
                assert!(stats.nnz_gathered >= 1, "the abort carries the running total");
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn budgets_cover_every_entry_point() {
        let index = tiny_index();
        let mut s = index.searcher();
        s.set_budget(QueryBudget {
            max_frontier_nodes: Some(1),
            ..QueryBudget::default()
        });
        assert!(matches!(s.top_k(0, 6), Err(KdashError::BudgetExceeded { .. })));
        assert!(matches!(s.top_k_unpruned(0, 6), Err(KdashError::BudgetExceeded { .. })));
        assert!(matches!(s.nodes_above(0, 1e-6), Err(KdashError::BudgetExceeded { .. })));
        assert!(matches!(
            s.top_k_from_set(&[0, 3], 6),
            Err(KdashError::BudgetExceeded { .. })
        ));
        assert!(matches!(
            s.top_k_from_root(0, 6, 2),
            Err(KdashError::BudgetExceeded { .. })
        ));
    }

    #[test]
    fn expired_deadline_aborts_before_any_work() {
        let index = tiny_index();
        let mut s = index.searcher();
        s.set_budget(QueryBudget {
            deadline: Some(Duration::ZERO),
            ..QueryBudget::default()
        });
        match s.top_k(0, 3) {
            Err(KdashError::BudgetExceeded { limit, stats }) => {
                assert_eq!(limit, BudgetLimit::Deadline(Duration::ZERO));
                assert_eq!(stats.visited, 0);
                assert_eq!(stats.proximity_computations, 0);
            }
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn unlimited_budget_is_bit_identical_to_no_budget() {
        let index = tiny_index();
        let mut budgeted = index.searcher();
        budgeted.set_budget(QueryBudget {
            max_frontier_nodes: Some(usize::MAX),
            max_gather_nnz: Some(usize::MAX),
            deadline: Some(Duration::from_secs(3600)),
            ..QueryBudget::default()
        });
        let mut plain = index.searcher();
        for q in 0..6u32 {
            let a = budgeted.top_k(q, 4).unwrap();
            let b = plain.top_k(q, 4).unwrap();
            assert_eq!(a.stats, b.stats, "budget checks must not perturb the search");
            for (x, y) in a.items.iter().zip(&b.items) {
                assert_eq!(x.node, y.node);
                assert_eq!(x.proximity.to_bits(), y.proximity.to_bits());
            }
        }
    }
}
