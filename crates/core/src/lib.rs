//! # kdash-core
//!
//! K-dash: exact top-k proximity search for Random Walk with Restart,
//! reproducing *Fujiwara, Nakatsuji, Onizuka, Kitsuregawa — "Fast and Exact
//! Top-k Search for Random Walk with Restart", PVLDB 5(5), 2012*.
//!
//! ## The algorithm in one paragraph
//!
//! RWR proximities from a query node `q` solve
//! `p = (1−c) A p + c e_q  ⇔  p = c W⁻¹ e_q` with `W = I − (1−c)A`
//! (Equations (1)–(2)). K-dash precomputes a node reordering that keeps the
//! triangular inverses of `W = LU` sparse, stores `L⁻¹` (column-major) and
//! `U⁻¹` (row-major), and answers a query by walking a breadth-first tree
//! rooted at `q`: each visited node first gets a cheap upper bound
//! (Definition 1, updated in `O(1)` per Definition 2); the moment the
//! bound of the next node falls below the current K-th best proximity the
//! search *terminates*, provably without missing an answer (Lemmas 1–2,
//! Theorem 2). A node that survives the bound gets its exact proximity as
//! a sparse row-times-column product `c · (U⁻¹)ᵤ · (L⁻¹ e_q)`.
//!
//! ## Quick start
//!
//! ```
//! use kdash_core::{KdashIndex, IndexOptions, NodeOrdering};
//! use kdash_graph::GraphBuilder;
//!
//! // A little directed ring with a chord.
//! let mut b = GraphBuilder::new(5);
//! for v in 0..5u32 { b.add_edge(v, (v + 1) % 5, 1.0); }
//! b.add_edge(0, 2, 2.0);
//! let graph = b.build().unwrap();
//!
//! let index = KdashIndex::build(&graph, IndexOptions::default()).unwrap();
//! let result = index.top_k(0, 3).unwrap();
//! assert_eq!(result.items.len(), 3);
//! assert_eq!(result.items[0].node, 0); // the query node ranks first
//! ```
//!
//! The default [`IndexOptions`] use the paper's settings: hybrid reordering
//! and restart probability `c = 0.95`.
//!
//! ## Building at scale: the staged [`IndexBuilder`] pipeline
//!
//! [`KdashIndex::build`] is a convenience wrapper over a five-stage
//! pipeline — `ordering → factorization → inversion → estimator →
//! assemble` — that [`IndexBuilder`] exposes directly. Each stage is
//! individually timed ([`IndexBuilder::build_with_report`]), and the
//! inversion stage, which dominates precomputation cost (the paper's
//! Figure 6), runs its independent column solves on a work-stealing
//! worker pool: `threads(0)` uses every core, and the stored inverses are
//! **bit-identical** at any thread count.
//!
//! ```
//! use kdash_core::{IndexBuilder, NodeOrdering};
//! use kdash_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(48);
//! for v in 0..48u32 { b.add_edge(v, (v + 1) % 48, 1.0); }
//! let graph = b.build().unwrap();
//!
//! let (index, report) = IndexBuilder::new()
//!     .ordering(NodeOrdering::Hybrid)  // Louvain-backed cluster+degree order
//!     .threads(0)                      // parallel triangular inversion
//!     .build_with_report(&graph)
//!     .unwrap();
//! for timing in &report.stages {
//!     println!("{:<14} {:?}", timing.stage.name(), timing.duration);
//! }
//! assert_eq!(index.top_k(0, 3).unwrap().items.len(), 3);
//! ```
//!
//! ## Serving loops: reuse a [`Searcher`]
//!
//! [`KdashIndex::top_k`] builds a transient query workspace per call. A
//! serving loop should hold a [`Searcher`] instead: the `O(n)` BFS and
//! scatter buffers are allocated once and every query after the first
//! allocates nothing (with [`Searcher::top_k_into`]) — the per-candidate
//! work drops to a dense gather over the stored `U⁻¹` row.
//!
//! ```
//! use kdash_core::{KdashIndex, IndexOptions, TopKResult};
//! use kdash_graph::GraphBuilder;
//!
//! let mut b = GraphBuilder::new(64);
//! for v in 0..64u32 { b.add_edge(v, (v + 1) % 64, 1.0); b.add_edge(v, (v + 7) % 64, 0.5); }
//! let index = KdashIndex::build(&b.build().unwrap(), IndexOptions::default()).unwrap();
//!
//! let mut searcher = index.searcher();       // one per serving thread
//! let mut result = TopKResult::default();    // reused result buffer
//! for q in 0..64u32 {
//!     searcher.top_k_into(q, 10, &mut result).unwrap(); // allocation-free after warm-up
//!     assert_eq!(result.items[0].node, q);
//! }
//! ```
//!
//! Batches fan out with [`batch_top_k`]: a work-stealing queue hands each
//! query to the next idle worker, one `Searcher` per worker thread
//! (`threads = 0` means "use all available cores").
//!
//! ## Serving changing graphs
//!
//! The index does not have to be rebuilt when the graph changes: the
//! `kdash-dynamic` crate wraps a [`KdashIndex`] in a `DynamicIndex` that
//! applies validated edge-edit batches **incrementally** — a
//! Gilbert–Peierls reach analysis bounds exactly which `L⁻¹`/`U⁻¹`
//! columns an edit can touch, only those re-run their triangular
//! solves, and the patched index is bit-for-bit what a from-scratch
//! rebuild under the same node order would produce.
//! [`KdashIndex::update_epoch`] counts applied batches (persisted from
//! index-format v3).
//!
//! Four hot-path levers live on the index and its `Searcher`:
//!
//! * **Lazy frontier** — BFS layers are discovered on demand inside the
//!   search loop, so a query the Lemma 2 bound terminates early never
//!   enumerates the layers it pruned away.
//!   [`SearchStats::frontier_expanded`] reports the traversal work paid;
//!   [`SearchStats::reachable`] is the discovered-so-far count on
//!   early-terminated queries (exact reachability on complete runs).
//! * **Blocked index layout** — the stored `U⁻¹` encodes column indices
//!   as `u16` deltas against aligned block anchors
//!   ([`RowLayout::Blocked`], the default): ~half the index bytes of
//!   flat CSR on the fill-dominated inverse rows, bit-identical values
//!   and answers ([`IndexOptions::layout`](precompute::IndexOptions),
//!   pinned by `tests/layout_equivalence.rs`).
//! * **Gather kernels** — proximities run through a runtime-selected
//!   kernel ([`GatherKernel`]: `scalar`, `unrolled`, `simd`, `auto`,
//!   `adaptive`). The wide kernels are bit-identical to each other on
//!   every row (AVX2 and the portable 4-accumulator unrolled kernel
//!   share one reduction order), so answers are deterministic across
//!   machines; a selector the host cannot honour is a typed
//!   [`KdashError::UnsupportedKernel`], and only `auto`/`adaptive` fall
//!   back. `Adaptive` — the recommended default — picks scalar or wide
//!   *per candidate row* from build-time row stats and the query
//!   column's density profile: a pure function of index + query, never
//!   the machine, so the kernel-class choice (and with it every byte
//!   counter in [`SearchStats`]) is host-independent. The resolution and
//!   the per-class row split are recorded in [`SearchStats`] for
//!   reproducibility.
//! * **Prefetched candidate batching** — the search loops prefetch the
//!   next block of candidate rows' index/value spans while the current
//!   row gathers, restoring memory-level parallelism on DRAM-resident
//!   indexes.
//!
//! ## The exactness contract under sparsified indexes
//!
//! [`IndexOptions::drop_tolerance`](precompute::IndexOptions) > 0 builds a
//! **sparsified index tier**: entries of `L⁻¹`/`U⁻¹` below `ε` are
//! truncated during inversion (shrinking both build time and stored
//! bytes), and the per-column dropped ℓ₁ masses are stored alongside.
//! Answers remain *exact* — the brand does not change — because queries on
//! a sparsified index run a **certified residual refinement loop** instead
//! of trusting the stored values:
//!
//! 1. Gather the approximate solution `x̃ ≈ W⁻¹ b` from the sparsified
//!    store (`b` is the unit restart vector `e_q`, or the merged
//!    restart-set vector).
//! 2. Compute the residual `r = b − W x̃` directly against the stored
//!    permuted graph (`W = I − (1−c)A` is never materialised; the residual
//!    streams the graph's edges).
//! 3. Because `A` is column-substochastic, `W⁻¹ = Σ ((1−c)A)^i` is
//!    entrywise non-negative with column sums ≤ `1/c`, so **every** entry
//!    of the error obeys `|p_u − c·x̃_u| ≤ ‖r‖₁`. This is the same
//!    upper/lower-bound style as the paper's Lemma 2, applied to the
//!    refinement residual instead of the BFS frontier.
//! 4. If consecutive ranked proximities (and the k-th/(k+1)-th boundary)
//!    are separated by more than `2‖r‖₁`, the top-k *set and order* are
//!    proven identical to the exact answer — terminate. Otherwise apply
//!    one correction `x̃ += Ũ⁻¹(L̃⁻¹ r)` (the sparsified inverses act as a
//!    preconditioner, so `‖r‖₁` contracts geometrically) and re-certify.
//!
//! The loop fails *loudly* ([`KdashError::RefinementFailed`]) if
//! proximities are genuinely tied or closer than the achievable
//! floating-point floor — it never returns a ranking it could not prove.
//! With `drop_tolerance = 0` (the default) nothing changes: the build
//! routes through the exact inverters bit-for-bit and queries run the
//! classic Lemma-2 path with zero refinement iterations.
//!
//! ## Operational guarantees
//!
//! Exactness is the brand, so the failure modes are engineered to be
//! *loud* rather than approximate:
//!
//! * **Crash-safe writes** — [`persist::save_atomic`] writes a temp file,
//!   fsyncs it, and renames it over the destination (then fsyncs the
//!   directory), so an interrupted save leaves the previous index intact.
//!   `kdash build` and `kdash update --out` both go through it. Transient
//!   failures (`EINTR`-class) are retried with bounded backoff; anything
//!   else surfaces as a typed [`persist::PersistError::Io`] naming the
//!   failing [stage](persist::IoStage) (tmp-write / fsync / rename /
//!   dir-fsync). An fsync that reports an *I/O error* is never retried
//!   (only `EINTR`-class interruptions are): once the kernel has
//!   reported write-back failure, dirty pages may already be gone, and
//!   retry-until-ok would convert data loss into a success report.
//! * **Corruption detection** — the v4 on-disk format checksums every
//!   section (graph, `L⁻¹`, `U⁻¹`, row stats, estimator, trailer) with
//!   CRC32 plus a whole-file footer; [`KdashIndex::load`] reports a typed
//!   [`persist::PersistError`] naming the failing section and byte
//!   offset. Older (v1–v3) files still load, flagged unchecksummed in
//!   [`persist::LoadInfo`].
//! * **Deep auditing** — [`audit::IndexAudit::run`] re-verifies every
//!   structural invariant of a loaded or patched index (triangularity,
//!   permutation bijectivity, blocked-layout encoding, row stats,
//!   estimator constants recomputed bit-for-bit). Exposed as
//!   `kdash verify <index>` and as an opt-in post-update check on the
//!   dynamic engine (`DynamicIndex::verify_after_apply`).
//! * **Batch failure isolation** — [`batch_top_k_outcomes`] wraps every
//!   query in `catch_unwind`: one poisoned query yields one
//!   [`BatchOutcome::Failed`] while the other queries complete with
//!   bit-identical results. ([`batch_top_k`] keeps fail-fast semantics,
//!   returning the lowest-index error — now including panics as typed
//!   [`KdashError::QueryPanicked`] instead of propagating the unwind.)
//! * **Query budgets** — a [`QueryBudget`] on a [`Searcher`] (or
//!   [`batch::BatchOptions`]) bounds frontier visits, gathered `U⁻¹`
//!   entries, and wall clock per query; a query that would exceed a
//!   ceiling aborts with a typed [`KdashError::BudgetExceeded`] carrying
//!   its [`SearchStats`] — never a silently truncated "exact" answer.
//!
//! ### Durability contract (journaled updates)
//!
//! With a sidecar write-ahead journal attached (`kdash-dynamic`'s
//! journaled mode, `kdash update --journal`), the update path promises:
//!
//! * **After an acknowledged apply** — the batch's journal frame (length
//!   + CRC32 + epoch) was written *and fsynced* before the in-memory
//!   patch was installed, so a crash at any later instant loses nothing:
//!   recovery replays the frame onto the last snapshot and lands on an
//!   index bit-identical to the pre-crash one. If the journal write
//!   itself fails, the apply returns [`KdashError::JournalFailed`] and
//!   the index is *not* modified — acknowledgement and durability cannot
//!   disagree.
//! * **After a checkpoint** — `save_atomic` has durably replaced the
//!   snapshot (old-or-new atomicity, as above) and only then was the
//!   journal truncated — itself atomically, by renaming a fresh
//!   header-only journal into place. A crash between the two steps
//!   leaves snapshot *and* journal records; recovery skips frames at or
//!   below the snapshot's epoch, so replay is idempotent.
//! * **After a torn tail** — a crash mid-append leaves a prefix of a
//!   frame. Recovery (and reopening for append) scans frames, stops at
//!   the first bad length/CRC/epoch, truncates the tail, and replays
//!   only the intact prefix — typed errors throughout, never a panic,
//!   and never a frame acknowledged but not replayed (the torn frame was
//!   by construction never acknowledged). Epochs inside the journal must
//!   be contiguous and ascending; a gap above the snapshot epoch means
//!   acknowledged records were lost out-of-band and recovery refuses
//!   with a typed error rather than silently skipping history.
//!
//! The whole contract is enforced by a crash-point sweep in
//! `tests/failure_injection.rs`: a [`fault::CrashPlan`] kills the
//! pipeline at *every* injectable point (each byte of each write, each
//! fsync, rename and truncate) and recovery must produce an
//! [`IndexAudit`]-clean index, bit-identical to the live-apply state at
//! a well-defined epoch.

pub mod audit;
pub mod batch;
pub mod estimator;
pub mod fault;
pub mod ordering;
pub mod persist;
pub mod pipeline;
pub mod precompute;
pub mod search;
pub mod searcher;
pub mod stats;

pub use audit::{AuditFinding, AuditSection, IndexAudit};
pub use batch::{
    batch_top_k, batch_top_k_outcomes, batch_top_k_with_kernel, BatchOptions, BatchOutcome,
    IsolatedExecutor,
};
pub use estimator::{ArbitraryOrderBound, LayerEstimator};
pub use ordering::{compute_ordering, compute_ordering_with_stats, NodeOrdering, OrderingStats};
pub use fault::{CrashPlan, FaultInjector, NoFaults, WriteRuling};
pub use persist::{save_atomic, save_atomic_with, IoStage, LoadInfo, PersistError};
pub use pipeline::{BuildReport, BuildStage, IndexBuilder, StageTiming};
pub use precompute::{IndexOptions, KdashIndex};
#[doc(hidden)]
pub use precompute::IndexPatch;
pub use search::{RankedNode, TopKResult};
pub use searcher::{BudgetLimit, QueryBudget, Searcher};
pub use stats::{IndexStats, SearchStats};

/// The gather-kernel selector and the `U⁻¹` row-layout selector,
/// re-exported so callers picking a kernel or layout (CLI, serving
/// loops) need not depend on `kdash-sparse` directly.
pub use kdash_sparse::{GatherKernel, ResolvedKernel, RowLayout};

/// Errors surfaced by index construction and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum KdashError {
    /// A query or root node id was out of bounds.
    NodeOutOfBounds { node: kdash_graph::NodeId, num_nodes: usize },
    /// A threshold query received a non-positive or non-finite θ.
    InvalidThreshold { theta: f64 },
    /// A restart-set query received an empty set, a duplicate node, or an
    /// otherwise unusable source set.
    InvalidRestartSet { reason: String },
    /// A [`GatherKernel`] selector the host CPU cannot honour (e.g.
    /// `simd` on a machine without AVX2), or an unknown selector spelling.
    /// Only [`GatherKernel::Auto`] falls back; explicit requests fail
    /// typed rather than silently downgrading.
    UnsupportedKernel { requested: String, reason: String },
    /// Propagated graph error.
    Graph(kdash_graph::GraphError),
    /// Propagated sparse-kernel error.
    Sparse(kdash_sparse::SparseError),
    /// A query exceeded its [`QueryBudget`]: `limit` names the ceiling
    /// that fired and `stats` carries the work accumulated up to the
    /// abort. The query has no answer — budgets abort, never truncate.
    BudgetExceeded { limit: BudgetLimit, stats: Box<SearchStats> },
    /// A query panicked inside a batch worker and was isolated by
    /// `catch_unwind`; `message` is the panic payload when it was a
    /// string. The rest of the batch is unaffected.
    QueryPanicked { message: String },
    /// A deep structural audit ([`IndexAudit::run`]) found invariant
    /// violations; each entry is `"<section>: <detail>"`.
    AuditFailed { findings: Vec<String> },
    /// The certified refinement loop on a sparsified index could not
    /// separate the top-k set and order within its iteration budget:
    /// after `iterations` correction passes the residual bound was
    /// `residual` but certifying the ranking needed a gap above
    /// `2 × residual`, and the smallest decisive gap was `gap`. This
    /// happens only when proximities are tied (or separated by less than
    /// the achievable floating-point floor) — the query has no answer
    /// rather than a silently mis-ordered one. A dense-exact index
    /// (`drop_tolerance = 0`) never takes this path.
    RefinementFailed { iterations: usize, residual: f64, gap: f64 },
    /// A durability operation on the attached update journal failed
    /// before the patch was installed: the in-memory index is unchanged
    /// and the durable journal prefix still ends at the last
    /// acknowledged batch (a torn partial frame is healed in place or
    /// skipped by recovery). `detail` renders the underlying journal
    /// error; the rich typed form lives in `kdash-dynamic`'s
    /// `JournalError` (this enum is `Clone + PartialEq`, so it cannot
    /// carry the `io::Error` itself).
    JournalFailed { detail: String },
}

impl std::fmt::Display for KdashError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KdashError::NodeOutOfBounds { node, num_nodes } => {
                write!(f, "node {node} out of bounds for index over {num_nodes} nodes")
            }
            KdashError::InvalidThreshold { theta } => {
                write!(f, "threshold {theta} must be positive and finite")
            }
            KdashError::InvalidRestartSet { reason } => {
                write!(f, "invalid restart set: {reason}")
            }
            KdashError::UnsupportedKernel { requested, reason } => {
                write!(f, "gather kernel '{requested}' unavailable on this host: {reason}")
            }
            KdashError::Graph(e) => write!(f, "graph error: {e}"),
            KdashError::Sparse(e) => write!(f, "sparse error: {e}"),
            KdashError::BudgetExceeded { limit, stats } => {
                write!(
                    f,
                    "query aborted: {limit} exceeded after visiting {} nodes \
                     ({} stored entries gathered)",
                    stats.visited, stats.nnz_gathered
                )
            }
            KdashError::QueryPanicked { message } => {
                write!(f, "query panicked: {message}")
            }
            KdashError::AuditFailed { findings } => {
                write!(f, "index audit failed with {} finding(s)", findings.len())?;
                if let Some(first) = findings.first() {
                    write!(f, "; first: {first}")?;
                }
                Ok(())
            }
            KdashError::RefinementFailed { iterations, residual, gap } => {
                write!(
                    f,
                    "refinement could not certify the top-k order after {iterations} \
                     iteration(s): residual bound {residual:.3e} needs a ranking gap \
                     > {:.3e} but the smallest decisive gap was {gap:.3e} \
                     (tied or near-tied proximities)",
                    2.0 * residual
                )
            }
            KdashError::JournalFailed { detail } => {
                write!(f, "update journal failure (index not modified): {detail}")
            }
        }
    }
}

impl std::error::Error for KdashError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KdashError::Graph(e) => Some(e),
            KdashError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<kdash_graph::GraphError> for KdashError {
    fn from(e: kdash_graph::GraphError) -> Self {
        KdashError::Graph(e)
    }
}

impl From<kdash_sparse::SparseError> for KdashError {
    fn from(e: kdash_sparse::SparseError) -> Self {
        match e {
            // Kernel-selection failures surface as the first-class query
            // error, not as a generic propagated sparse error.
            kdash_sparse::SparseError::UnsupportedKernel { requested, reason } => {
                KdashError::UnsupportedKernel { requested, reason }
            }
            other => KdashError::Sparse(other),
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, KdashError>;
