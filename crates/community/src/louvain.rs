//! The Louvain method: greedy modularity optimisation with graph
//! aggregation (Blondel, Guillaume, Lambiotte & Lefebvre, 2008).

use crate::{modularity, Partition};
use kdash_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

/// Tuning parameters. The defaults mirror common implementations; the
/// `resolution` parameter (γ) is an extension — γ = 1 is classic Louvain,
/// larger values produce more, smaller communities.
#[derive(Debug, Clone, Copy)]
pub struct LouvainOptions {
    /// Maximum number of aggregation levels.
    pub max_levels: usize,
    /// Maximum local-move passes per level.
    pub max_passes: usize,
    /// Minimum modularity gain to keep iterating.
    pub min_gain: f64,
    /// Seed for the node-visit shuffles (deterministic results per seed).
    pub seed: u64,
    /// Resolution parameter γ.
    pub resolution: f64,
}

impl Default for LouvainOptions {
    fn default() -> Self {
        LouvainOptions { max_levels: 16, max_passes: 16, min_gain: 1e-7, seed: 0xC0FFEE, resolution: 1.0 }
    }
}

/// Runs Louvain on a *directed* graph by symmetrising it first.
pub fn louvain(graph: &CsrGraph, options: LouvainOptions) -> Partition {
    louvain_undirected(&graph.symmetrize(), options)
}

/// Runs Louvain on a graph that is already symmetric (both directions of
/// every edge stored with equal weights; self-loops stored once).
pub fn louvain_undirected(graph: &CsrGraph, options: LouvainOptions) -> Partition {
    let n = graph.num_nodes();
    if n == 0 {
        return Partition::from_labels(&[]);
    }
    let mut rng = StdRng::seed_from_u64(options.seed);
    // assignment of original nodes, refined level by level
    let mut global: Vec<u32> = (0..n as u32).collect();
    let mut level_graph = graph.clone();
    let mut last_q = modularity(graph, &Partition::from_labels(&global));

    for _level in 0..options.max_levels {
        let local = one_level(&level_graph, options, &mut rng);
        // Fold the level assignment into the global one. After this fold,
        // `global` holds `local`'s dense community ids — exactly the node
        // ids of the aggregated graph built below, so no renumbering may
        // happen in between.
        for g in global.iter_mut() {
            *g = local.community_of(*g);
        }
        let q = modularity(graph, &Partition::from_labels(&global));
        if q - last_q < options.min_gain || local.num_communities() == 1 {
            return Partition::from_labels(&global);
        }
        last_q = q;
        level_graph = aggregate(&level_graph, &local);
    }
    Partition::from_labels(&global)
}

/// One local-moving phase. Returns the (renumbered) community assignment of
/// the level graph's nodes.
fn one_level(graph: &CsrGraph, options: LouvainOptions, rng: &mut StdRng) -> Partition {
    let n = graph.num_nodes();
    // Weighted degree (self-loops twice) and self-loop weight per node.
    let mut k = vec![0.0f64; n];
    let mut self_w = vec![0.0f64; n];
    for v in 0..n as NodeId {
        for (t, w) in graph.out_edges(v) {
            k[v as usize] += w;
            if t == v {
                k[v as usize] += w;
                self_w[v as usize] += w;
            }
        }
    }
    let two_m: f64 = k.iter().sum();
    if two_m == 0.0 {
        return Partition::singletons(n);
    }
    let gamma = options.resolution;

    let mut comm: Vec<u32> = (0..n as u32).collect();
    let mut sigma_tot: Vec<f64> = k.clone();

    let mut order: Vec<NodeId> = (0..n as NodeId).collect();
    // Scratch: community -> accumulated edge weight from the current node.
    let mut neigh_w = vec![0.0f64; n];
    let mut touched: Vec<u32> = Vec::new();

    for _pass in 0..options.max_passes {
        order.shuffle(rng);
        let mut moved = 0usize;
        for &v in &order {
            let vc = comm[v as usize];
            // Gather neighbour-community weights (excluding self-loops).
            touched.clear();
            for (t, w) in graph.out_edges(v) {
                if t == v {
                    continue;
                }
                let tc = comm[t as usize];
                if neigh_w[tc as usize] == 0.0 {
                    touched.push(tc);
                }
                neigh_w[tc as usize] += w;
            }
            // Remove v from its community.
            sigma_tot[vc as usize] -= k[v as usize];
            // Best destination: maximise k_in − γ·Σ_tot·k_v / 2m.
            let kv = k[v as usize];
            let mut best_c = vc;
            let mut best_gain = neigh_w[vc as usize] - gamma * sigma_tot[vc as usize] * kv / two_m;
            for &c in &touched {
                let gain = neigh_w[c as usize] - gamma * sigma_tot[c as usize] * kv / two_m;
                if gain > best_gain + 1e-15 {
                    best_gain = gain;
                    best_c = c;
                }
            }
            sigma_tot[best_c as usize] += kv;
            if best_c != vc {
                comm[v as usize] = best_c;
                moved += 1;
            }
            for &c in &touched {
                neigh_w[c as usize] = 0.0;
            }
        }
        if moved == 0 {
            break;
        }
    }
    Partition::from_labels(&comm)
}

/// Builds the community super-graph: one node per community, edge weights
/// summed, intra-community weight becoming a self-loop.
fn aggregate(graph: &CsrGraph, partition: &Partition) -> CsrGraph {
    let nc = partition.num_communities();
    let mut b = GraphBuilder::with_capacity(nc, graph.num_edges());
    for v in 0..graph.num_nodes() as NodeId {
        let cv = partition.community_of(v);
        for (t, w) in graph.out_edges(v) {
            let ct = partition.community_of(t);
            if cv == ct {
                // Both directions of an intra edge fold into one self-loop
                // entry each; halve so the self-loop is stored once with the
                // undirected weight (v==t contributes w directly).
                if v == t {
                    b.add_edge(cv, cv, w);
                } else {
                    b.add_edge(cv, cv, w / 2.0);
                }
            } else {
                b.add_edge(cv, ct, w);
            }
        }
    }
    b.build().expect("aggregation preserves validity")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clique_pair(k: usize) -> CsrGraph {
        // Two k-cliques joined by a single edge.
        let n = 2 * k;
        let mut b = GraphBuilder::new(n);
        for base in [0, k] {
            for i in 0..k {
                for j in i + 1..k {
                    b.add_undirected_edge((base + i) as NodeId, (base + j) as NodeId, 1.0);
                }
            }
        }
        b.add_undirected_edge((k - 1) as NodeId, k as NodeId, 1.0);
        b.build().unwrap()
    }

    #[test]
    fn splits_two_cliques() {
        let g = clique_pair(5);
        let p = louvain_undirected(&g, LouvainOptions::default());
        assert_eq!(p.num_communities(), 2);
        for i in 0..5u32 {
            assert_eq!(p.community_of(i), p.community_of(0));
            assert_eq!(p.community_of(i + 5), p.community_of(5));
        }
        assert_ne!(p.community_of(0), p.community_of(5));
    }

    #[test]
    fn ring_of_cliques() {
        // 4 triangles in a ring; expected: one community per triangle.
        let k = 3;
        let rings = 4;
        let n = k * rings;
        let mut b = GraphBuilder::new(n);
        for r in 0..rings {
            let base = r * k;
            for i in 0..k {
                for j in i + 1..k {
                    b.add_undirected_edge((base + i) as NodeId, (base + j) as NodeId, 1.0);
                }
            }
            let next = ((r + 1) % rings) * k;
            b.add_undirected_edge((base + k - 1) as NodeId, next as NodeId, 1.0);
        }
        let g = b.build().unwrap();
        let p = louvain_undirected(&g, LouvainOptions::default());
        assert_eq!(p.num_communities(), rings);
        for r in 0..rings {
            let c = p.community_of((r * k) as NodeId);
            for i in 1..k {
                assert_eq!(p.community_of((r * k + i) as NodeId), c);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = clique_pair(4);
        let p1 = louvain_undirected(&g, LouvainOptions::default());
        let p2 = louvain_undirected(&g, LouvainOptions::default());
        assert_eq!(p1, p2);
    }

    #[test]
    fn improves_modularity_over_singletons() {
        let g = clique_pair(6);
        let p = louvain_undirected(&g, LouvainOptions::default());
        let q = modularity(&g, &p);
        let q0 = modularity(&g, &Partition::singletons(g.num_nodes()));
        assert!(q > q0, "{q} vs {q0}");
        assert!(q > 0.3, "two cliques should be strongly modular, got {q}");
    }

    #[test]
    fn edgeless_graph_gives_singletons() {
        let g = GraphBuilder::new(5).build().unwrap();
        let p = louvain_undirected(&g, LouvainOptions::default());
        assert_eq!(p.num_communities(), 5);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new(0).build().unwrap();
        let p = louvain_undirected(&g, LouvainOptions::default());
        assert_eq!(p.num_communities(), 0);
    }

    #[test]
    fn directed_entry_point_symmetrises() {
        // Directed two-clique pair still splits.
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)] {
            b.add_edge(u, v, 1.0); // one direction only
        }
        b.add_edge(2, 3, 1.0);
        let g = b.build().unwrap();
        let p = louvain(&g, LouvainOptions::default());
        assert_eq!(p.num_communities(), 2);
    }

    #[test]
    fn high_resolution_splits_more() {
        let g = clique_pair(8);
        let coarse = louvain_undirected(&g, LouvainOptions::default());
        let fine = louvain_undirected(
            &g,
            LouvainOptions { resolution: 30.0, ..LouvainOptions::default() },
        );
        assert!(fine.num_communities() >= coarse.num_communities());
    }

    #[test]
    fn aggregate_conserves_weight() {
        let g = clique_pair(4);
        let p = louvain_undirected(&g, LouvainOptions::default());
        let agg = aggregate(&g, &p);
        // Total undirected weight: symmetric storage sums each edge twice;
        // aggregation folds intra edges into self-loops stored once.
        let orig: f64 = g.edges().map(|(_, _, w)| w).sum();
        let agg_total: f64 =
            agg.edges().map(|(u, v, w)| if u == v { 2.0 * w } else { w }).sum();
        assert!((orig - agg_total).abs() < 1e-9, "{orig} vs {agg_total}");
    }
}
