//! Dense node partitions.

use kdash_graph::NodeId;

/// An assignment of every node to one of `count` communities, with labels
/// dense in `0..count`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<u32>,
    count: usize,
}

impl Partition {
    /// Builds a partition from raw labels, renumbering them densely in
    /// order of first appearance.
    pub fn from_labels(labels: &[u32]) -> Partition {
        let mut remap: Vec<u32> = vec![u32::MAX; labels.len().max(1)];
        // Labels may exceed n when produced by intermediate passes; grow on
        // demand via a simple linear probe table keyed by label value.
        let max_label = labels.iter().copied().max().unwrap_or(0) as usize;
        if remap.len() <= max_label {
            remap.resize(max_label + 1, u32::MAX);
        }
        let mut next = 0u32;
        let mut assignment = Vec::with_capacity(labels.len());
        for &l in labels {
            if remap[l as usize] == u32::MAX {
                remap[l as usize] = next;
                next += 1;
            }
            assignment.push(remap[l as usize]);
        }
        Partition { assignment, count: next as usize }
    }

    /// Each node in its own community.
    pub fn singletons(n: usize) -> Partition {
        Partition { assignment: (0..n as u32).collect(), count: n }
    }

    /// Community of node `v`.
    #[inline]
    pub fn community_of(&self, v: NodeId) -> u32 {
        self.assignment[v as usize]
    }

    /// Number of communities.
    #[inline]
    pub fn num_communities(&self) -> usize {
        self.count
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// The raw assignment slice.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Members of every community: `members()[c]` lists the nodes of `c`
    /// in ascending order.
    pub fn members(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (v, &c) in self.assignment.iter().enumerate() {
            out[c as usize].push(v as NodeId);
        }
        out
    }

    /// Community sizes.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.count];
        for &c in &self.assignment {
            s[c as usize] += 1;
        }
        s
    }

    /// The largest community as `(community, size)`; ties broken by the
    /// lower community id. `None` on an empty partition.
    pub fn largest(&self) -> Option<(u32, usize)> {
        self.sizes()
            .into_iter()
            .enumerate()
            .max_by_key(|&(c, size)| (size, std::cmp::Reverse(c)))
            .map(|(c, size)| (c as u32, size))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renumbering_is_dense_and_order_preserving() {
        let p = Partition::from_labels(&[7, 7, 3, 9, 3]);
        assert_eq!(p.num_communities(), 3);
        assert_eq!(p.assignment(), &[0, 0, 1, 2, 1]);
    }

    #[test]
    fn singletons() {
        let p = Partition::singletons(4);
        assert_eq!(p.num_communities(), 4);
        assert_eq!(p.sizes(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn members_sorted() {
        let p = Partition::from_labels(&[1, 0, 1, 0]);
        let m = p.members();
        assert_eq!(m[0], vec![0, 2]);
        assert_eq!(m[1], vec![1, 3]);
    }

    #[test]
    fn empty_partition() {
        let p = Partition::from_labels(&[]);
        assert_eq!(p.num_communities(), 0);
        assert_eq!(p.num_nodes(), 0);
        assert_eq!(p.largest(), None);
    }

    #[test]
    fn largest_breaks_ties_by_lower_id() {
        let p = Partition::from_labels(&[0, 0, 1, 1, 2]);
        assert_eq!(p.largest(), Some((0, 2)));
        let q = Partition::from_labels(&[0, 1, 1, 1]);
        assert_eq!(q.largest(), Some((1, 3)));
    }
}
