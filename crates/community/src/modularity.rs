//! Newman modularity of a partition.

use crate::Partition;
use kdash_graph::CsrGraph;

/// Computes the (weighted) Newman modularity of `partition` on an
/// **undirected** graph given as a symmetric CSR (both directions stored;
/// self-loops stored once).
///
/// Conventions: `2m = Σ_v k_v` with `k_v` = sum of the stored incident
/// weights plus the self-loop weight counted twice — the convention under
/// which a self-loop contributes one full edge to the graph.
///
/// `Q = Σ_c [ in_c / 2m − (tot_c / 2m)² ]` where `in_c` counts intra-
/// community directed entries (each undirected edge twice, self-loops
/// twice) and `tot_c = Σ_{v ∈ c} k_v`.
pub fn modularity(graph: &CsrGraph, partition: &Partition) -> f64 {
    assert_eq!(graph.num_nodes(), partition.num_nodes(), "partition size mismatch");
    let n = graph.num_nodes();
    let nc = partition.num_communities();
    if n == 0 || nc == 0 {
        return 0.0;
    }
    let mut k = vec![0.0f64; n];
    for v in 0..n as kdash_graph::NodeId {
        for (t, w) in graph.out_edges(v) {
            k[v as usize] += w;
            if t == v {
                k[v as usize] += w; // self-loop counts twice toward degree
            }
        }
    }
    let two_m: f64 = k.iter().sum();
    if two_m == 0.0 {
        return 0.0;
    }
    let mut intra = vec![0.0f64; nc];
    let mut tot = vec![0.0f64; nc];
    for v in 0..n as kdash_graph::NodeId {
        let cv = partition.community_of(v) as usize;
        tot[cv] += k[v as usize];
        for (t, w) in graph.out_edges(v) {
            if partition.community_of(t) as usize == cv {
                intra[cv] += if t == v { 2.0 * w } else { w };
            }
        }
    }
    (0..nc).map(|c| intra[c] / two_m - (tot[c] / two_m).powi(2)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_graph::GraphBuilder;

    /// Two triangles joined by one edge, symmetric storage.
    fn two_triangles() -> CsrGraph {
        let mut b = GraphBuilder::new(6);
        for (u, v) in [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)] {
            b.add_undirected_edge(u, v, 1.0);
        }
        b.build().unwrap()
    }

    #[test]
    fn natural_split_beats_singletons_and_lump() {
        let g = two_triangles();
        let split = Partition::from_labels(&[0, 0, 0, 1, 1, 1]);
        let lump = Partition::from_labels(&[0, 0, 0, 0, 0, 0]);
        let single = Partition::singletons(6);
        let q_split = modularity(&g, &split);
        let q_lump = modularity(&g, &lump);
        let q_single = modularity(&g, &single);
        assert!(q_split > q_lump, "{q_split} vs {q_lump}");
        assert!(q_split > q_single, "{q_split} vs {q_single}");
        // Known value: 7 edges, intra = 6, m = 7.
        // Q = 2*(3/7 - (7/14)^2) = 6/7 - 1/2
        let expect = 6.0 / 7.0 - 0.5;
        assert!((q_split - expect).abs() < 1e-12, "{q_split} vs {expect}");
    }

    #[test]
    fn lump_partition_modularity_is_zero() {
        let g = two_triangles();
        let lump = Partition::from_labels(&[0; 6]);
        assert!(modularity(&g, &lump).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(modularity(&g, &Partition::singletons(3)), 0.0);
    }

    #[test]
    fn self_loops_count_once_as_edges() {
        // One self-loop only: the single community holds all weight.
        let mut b = GraphBuilder::new(1);
        b.add_edge(0, 0, 1.0);
        let g = b.build().unwrap();
        let q = modularity(&g, &Partition::from_labels(&[0]));
        // in = 2w, 2m = 2w, tot = 2w -> Q = 1 - 1 = 0
        assert!(q.abs() < 1e-12);
    }
}
