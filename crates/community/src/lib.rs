//! # kdash-community
//!
//! Louvain community detection (Blondel et al., 2008) — the partitioner the
//! paper's *cluster* and *hybrid* reorderings use (§4.2.2) and that this
//! reproduction also plugs into the B_LIN and partition-local-RWR baselines
//! (substituting for METIS; see DESIGN.md).
//!
//! The entry point is [`louvain`], which takes any directed graph,
//! symmetrises it (modularity is defined on undirected graphs), and returns
//! a dense [`Partition`]. The number of communities is chosen by the
//! algorithm itself — exactly the "automatically determined" behaviour the
//! paper relies on for its parameter-free claim.

pub mod louvain;
pub mod modularity;
pub mod partition;

pub use louvain::{louvain, louvain_undirected, LouvainOptions};
pub use modularity::modularity;
pub use partition::Partition;
