//! `kdash` — command-line top-k RWR search.
//!
//! ```text
//! kdash build  <edges.txt> <index.kdash> [--c 0.95] [--ordering hybrid] [--threads 1]
//!              [--drop-tol 0]
//! kdash query  <index.kdash> <node> [--k 5] [--set n1,n2,...]
//!              [--kernel auto] [--pruning on]
//! kdash update --index <index.kdash> --edits <edits.txt> [--out FILE] [--threads 1]
//!              [--coalesce] [--dry-run] [--journal]
//! kdash recover <index.kdash> [--journal PATH] [--out FILE]
//! kdash serve  <index.kdash> --bench [--duration 5] [--workers 0] [--mix 100:1]
//!              [--clients 2] [--k 10] [--queue 1024] [--batch 32] [--seed 42]
//!              [--journal]
//! kdash verify <index.kdash> [--factors | --journal]
//! kdash info   <index.kdash>
//! kdash gen    <profile> <edges.txt> [--nodes 2000] [--seed 42]
//! ```
//!
//! `build` runs the staged `IndexBuilder` pipeline and prints one timing
//! line per stage; `--threads 0` parallelises the inversion stage over all
//! available cores (output is bit-identical at any thread count).
//! `--drop-tol EPS` builds the *sparsified* tier: inverse entries whose
//! magnitude falls below `EPS` are dropped during the inversion solves
//! (the per-column dropped ℓ₁ masses are recorded in the index), shrinking
//! the stored `L⁻¹`/`U⁻¹` at the cost of routing every query through the
//! certified residual-refinement loop. Returned top-k sets and their
//! order are still **exact** — refinement iterates until the residual
//! norm proves the ranking — and an uncertifiable query (exact
//! proximity tie, or a gap below the floating-point floor) fails loudly
//! rather than returning a silently approximate answer. `--drop-tol 0`
//! (the default) is bit-identical to the dense-exact build.
//!
//! `query` selects its gather kernel with `--kernel
//! {scalar,unrolled,simd,auto}` (a selector the host CPU cannot honour is
//! a typed error; only `auto` falls back) and prints the per-query work
//! counters, including the lazy-BFS `frontier_expanded`/`discovered`
//! pair — on early-terminated queries `discovered` is the
//! discovered-so-far count, not full reachability (see
//! `kdash_core::SearchStats`). `--pruning off` disables the Lemma 2
//! termination, so pruned-vs-unpruned ablations (the paper's Figure 7)
//! run straight from the command line.
//!
//! `update` applies an edit stream to a built index **incrementally**:
//! only the `L⁻¹`/`U⁻¹` columns inside the Gilbert–Peierls reach of the
//! edited nodes are re-solved (the patched index is bit-identical to a
//! from-scratch rebuild under the same node order). The edit format is
//! one edit per line — `+ src dst w` (insert), `- src dst` (delete),
//! `= src dst w` (reweight), `#` comments — with blank lines separating
//! atomically applied batches; per-batch dirty-column/reach/re-solve
//! stats are printed and `kdash info` reports the resulting update epoch.
//! `--coalesce` merges the whole stream into **one** pass (one
//! incremental refactorisation, one reach analysis, one re-solve) —
//! bit-identical to batch-by-batch application, with the epoch still
//! advancing per batch. `--dry-run` prints the predicted dirty-W /
//! scheduled-factor / inverse-reach fractions of that coalesced pass and
//! exits without modifying or writing anything.
//!
//! `--journal` makes the update **durable before it is acknowledged**:
//! every batch is appended and fsynced to the sidecar write-ahead log
//! `<index>.journal` *before* its patch installs, so a crash at any byte
//! loses nothing that was acked. If the sidecar already holds records
//! beyond the snapshot (a previous run crashed before checkpointing),
//! the update **auto-recovers first** — replaying the journal in one
//! coalesced pass, bit-identical to the pre-crash state — then applies
//! the new edits. Saving back to the index path checkpoints: the fresh
//! snapshot lands atomically and the journal truncates to empty.
//!
//! `serve --bench` stands up the epoch-snapshot serving tier of
//! `kdash-serve` **in process** and drives it with a synthetic
//! closed-loop workload: `--clients` reader threads issue blocking
//! top-`--k` queries against the `ServeLoop` worker pool while the main
//! thread applies single-edge update batches through the `EpochWriter`,
//! paced so reads:writes approaches `--mix R:W` (`--mix 100:0` is
//! read-only). Readers always see a consistent pinned snapshot — every
//! answer is bit-identical to a standalone query on that epoch's index —
//! and the epoch swap happens off the serving path. `--journal` routes
//! the writer through a scratch write-ahead journal (fsync per batch,
//! auto-checkpoint when the journal exceeds the default record budget)
//! so the durable write path is measured instead of the in-memory one;
//! the scratch files live under the system temp dir and are removed on
//! exit. The run prints progress lines and ends with one JSON summary
//! line (throughput, latency quantiles, freshness lag, shed rate, swap
//! latency) for scripting.
//!
//! `recover` runs that replay standalone after a crash: load the last
//! good snapshot, scan the journal (tolerating a torn tail — the first
//! bad frame truncates the log, never panics), replay the surviving
//! records, and checkpoint. `verify --journal` checks the sidecar's
//! frame CRCs and epoch contiguity without loading the index at all.
//!
//! `verify` is the operational fsck: it loads the index (which already
//! validates every per-section checksum of the v4 format) and then runs
//! the deep structural audit of `kdash_core::audit` — triangularity of
//! the stored inverses, permutation bijectivity, blocked-encoding decode
//! contract, policy-table and estimator coherence — printing one timing
//! line per section, every finding, and a machine-readable JSON summary.
//! `--factors` appends the factor-consistency section: kept LU factors
//! are checked for triangularity and the diag-last column layout, and
//! `W = L·U` is spot-recomputed on sampled columns (skipped with a note
//! when the index holds no factors — persisted indexes never do).
//! Exit status is non-zero when any invariant is violated.
//!
//! Edge lists are plain text (`src dst [weight]`, `#`/`%` comments) — the
//! format of the SNAP / Pajek exports the paper's datasets use. Indexes
//! are the versioned binary format of `kdash_core::persist`; every
//! index-writing path goes through `kdash_core::save_atomic` (temp file →
//! fsync → rename), so a crash mid-write can never destroy the previous
//! copy.

use kdash_core::{
    save_atomic, BuildStage, GatherKernel, IndexAudit, IndexBuilder, IndexOptions, KdashIndex,
    NodeOrdering, RowLayout, Searcher,
};
use kdash_datagen::DatasetProfile;
use kdash_dynamic::{DynamicIndex, Journal, RecoveryReport, UpdateBatch};
use kdash_graph::io::read_edge_list;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("update") => cmd_update(&args[1..]),
        Some("recover") => cmd_recover(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("verify") => cmd_verify(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try --help)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn print_usage() {
    println!(
        "kdash — exact top-k Random Walk with Restart search (VLDB 2012 reproduction)\n\
         \n\
         USAGE:\n\
         \x20 kdash build  <edges.txt> <index.kdash> [--c 0.95] [--ordering hybrid] [--threads 1]\n\
         \x20              [--drop-tol 0]\n\
         \x20 kdash query  <index.kdash> <node> [--k 5] [--set n1,n2,...] [--theta T]\n\
         \x20              [--kernel auto] [--pruning on]\n\
         \x20 kdash update --index <index.kdash> --edits <edits.txt> [--out FILE] [--threads 1]\n\
         \x20              [--coalesce] [--dry-run] [--journal]\n\
         \x20 kdash recover <index.kdash> [--journal PATH] [--out FILE]\n\
         \x20 kdash serve  <index.kdash> --bench [--duration 5] [--workers 0] [--mix 100:1]\n\
         \x20              [--clients 2] [--k 10] [--queue 1024] [--batch 32] [--seed 42]\n\
         \x20              [--journal]\n\
         \x20 kdash verify <index.kdash> [--factors | --journal]\n\
         \x20 kdash info   <index.kdash>\n\
         \x20 kdash gen    <profile> <edges.txt> [--nodes 2000] [--seed 42]\n\
         \n\
         ORDERINGS: natural random degree community (= cluster) hybrid rcm mindegree\n\
         PROFILES:  dictionary internet citation social email\n\
         THREADS:   inversion-stage workers; 0 = all cores, results identical at any count\n\
         KERNELS:   scalar unrolled simd auto — proximity gather kernel; 'simd' errors on\n\
         \x20          hosts without AVX2, only 'auto' falls back\n\
         PRUNING:   on (Lemma 2 early termination) | off (visit every reachable node)\n\
         DROP-TOL:  inverse entries below this magnitude are dropped at build time;\n\
         \x20          queries then run certified residual refinement — top-k sets and\n\
         \x20          order stay exact, uncertifiable queries fail loudly; 0 = dense\n\
         EDITS:     one edit per line: '+ src dst w' insert, '- src dst' delete,\n\
         \x20          '= src dst w' reweight; blank lines separate atomic batches;\n\
         \x20          --coalesce merges all batches into one pass (bit-identical),\n\
         \x20          --dry-run prints the predicted footprint without mutating\n\
         JOURNAL:   update --journal fsyncs each batch to <index>.journal before its\n\
         \x20          patch installs (auto-recovering any pending records first);\n\
         \x20          recover replays a journal after a crash; verify --journal\n\
         \x20          checks frame CRCs and epoch contiguity without loading the index\n\
         SERVE:     --bench drives the kdash-serve epoch-snapshot tier in process:\n\
         \x20          --clients reader threads + one writer paced to --mix R:W;\n\
         \x20          --journal measures the durable write path against scratch\n\
         \x20          files in the temp dir; ends with one JSON summary line"
    );
}

/// Pulls `--flag value` out of an argument list; remaining positionals are
/// returned in order. Flags named in `bools` are presence-only switches —
/// they consume no value and report `"true"`.
fn parse_flags<'a>(
    args: &'a [String],
    bools: &[&str],
) -> Result<(Vec<&'a str>, Vec<(&'a str, &'a str)>), String> {
    let mut positional = Vec::new();
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            if bools.contains(&name) {
                flags.push((name, "true"));
                i += 1;
            } else {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} expects a value"))?;
                flags.push((name, value.as_str()));
                i += 2;
            }
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn flag<'a>(flags: &[(&str, &'a str)], name: &str) -> Option<&'a str> {
    flags.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
}

/// Rejects flags the command does not know. A misspelled `--threds 8`
/// must fail loudly, not silently fall back to the default.
fn reject_unknown_flags(flags: &[(&str, &str)], allowed: &[&str]) -> Result<(), String> {
    for (name, _) in flags {
        if !allowed.contains(name) {
            return Err(if allowed.is_empty() {
                format!("unknown flag --{name} (this command takes no flags)")
            } else {
                format!(
                    "unknown flag --{name} (allowed: {})",
                    allowed.iter().map(|f| format!("--{f}")).collect::<Vec<_>>().join(" ")
                )
            });
        }
    }
    Ok(())
}

fn parse_ordering(text: &str) -> Result<NodeOrdering, String> {
    Ok(match text {
        "natural" => NodeOrdering::Natural,
        "random" => NodeOrdering::Random { seed: 42 },
        "degree" => NodeOrdering::Degree,
        // "community" spells out what backs the paper's cluster ordering:
        // Louvain partitions from kdash-community.
        "cluster" | "community" => NodeOrdering::Cluster,
        "hybrid" => NodeOrdering::Hybrid,
        "rcm" => NodeOrdering::ReverseCuthillMcKee,
        "mindegree" => NodeOrdering::MinDegree,
        other => return Err(format!("unknown ordering '{other}'")),
    })
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args, &[])?;
    reject_unknown_flags(&flags, &["c", "ordering", "threads", "layout", "drop-tol"])?;
    let [edges_path, index_path] = pos.as_slice() else {
        return Err("usage: kdash build <edges.txt> <index.kdash> [--c 0.95] [--ordering hybrid] \
                    [--threads 1] [--layout blocked] [--drop-tol 0]"
            .into());
    };
    let c: f64 = flag(&flags, "c").unwrap_or("0.95").parse().map_err(|_| "invalid --c")?;
    let ordering = parse_ordering(flag(&flags, "ordering").unwrap_or("hybrid"))?;
    let threads: usize =
        flag(&flags, "threads").unwrap_or("1").parse().map_err(|_| "invalid --threads")?;
    let layout: RowLayout =
        flag(&flags, "layout").unwrap_or("blocked").parse().map_err(|e| format!("{e}"))?;
    let drop_tolerance: f64 =
        flag(&flags, "drop-tol").unwrap_or("0").parse().map_err(|_| "invalid --drop-tol")?;

    let file = File::open(edges_path).map_err(|e| format!("open {edges_path}: {e}"))?;
    let graph = read_edge_list(BufReader::new(file)).map_err(|e| e.to_string())?;
    println!("loaded {} nodes, {} edges", graph.num_nodes(), graph.num_edges());

    let builder = IndexBuilder::from_options(IndexOptions {
        ordering,
        restart_probability: c,
        layout,
        drop_tolerance,
        ..Default::default()
    })
    .threads(threads);
    let (index, report) = builder.build_with_report(&graph).map_err(|e| e.to_string())?;

    for timing in &report.stages {
        let extra = match timing.stage {
            BuildStage::Ordering => match (report.ordering.communities, report.ordering.border_nodes)
            {
                (Some(communities), Some(border)) => {
                    format!("  ({communities} communities, {border} border nodes)")
                }
                _ => String::new(),
            },
            BuildStage::Inversion => format!("  ({} workers)", report.inversion_threads),
            _ => String::new(),
        };
        println!("stage {:<14} {:>12.2?}{extra}", timing.stage.name(), timing.duration);
    }
    println!(
        "built index in {:.2?} ({} ordering, {} layout, inverse nnz/m = {:.1}, U⁻¹ index \
         {:.2} B/nnz)",
        report.total(),
        ordering.name(),
        index.layout().name(),
        index.stats().inverse_nnz_ratio(),
        index.stats().uinv_index_bytes as f64 / index.stats().nnz_u_inv.max(1) as f64,
    );
    if index.is_sparsified() {
        println!(
            "sparsified tier: drop tolerance {:e}, dropped l1 mass {:.3e} — queries run \
             certified residual refinement{}",
            index.drop_tolerance(),
            index.dropped_mass(),
            if index.needs_refinement() { "" } else { " (nothing dropped: classic path)" },
        );
    }

    save_atomic(&index, index_path).map_err(|e| format!("write {index_path}: {e}"))?;
    println!("wrote {index_path}");
    Ok(())
}

fn load_index(path: &str) -> Result<KdashIndex, String> {
    let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    KdashIndex::load(BufReader::new(file)).map_err(|e| e.to_string())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args, &[])?;
    reject_unknown_flags(&flags, &["k", "set", "theta", "kernel", "pruning"])?;
    let [index_path, node_text] = pos.as_slice() else {
        return Err("usage: kdash query <index.kdash> <node> [--k 5] [--set n1,n2,...] [--theta T] \
                    [--kernel auto] [--pruning on]"
            .into());
    };
    let q: u32 = node_text.parse().map_err(|_| "invalid node id")?;
    let k: usize = flag(&flags, "k").unwrap_or("5").parse().map_err(|_| "invalid --k")?;
    let kernel: GatherKernel =
        flag(&flags, "kernel").unwrap_or("adaptive").parse().map_err(|e| format!("{e}"))?;
    let pruning = match flag(&flags, "pruning").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(format!("invalid --pruning '{other}' (expected on or off)")),
    };
    let index = load_index(index_path)?;
    // An unsupported explicit selector (e.g. --kernel simd without AVX2)
    // surfaces here as a typed KdashError, before any query work runs.
    let mut searcher = Searcher::with_kernel(&index, kernel).map_err(|e| e.to_string())?;

    let t = Instant::now();
    let result = if let Some(theta_text) = flag(&flags, "theta") {
        if !pruning {
            return Err("--pruning off applies to top-k queries, not --theta".into());
        }
        let theta: f64 = theta_text.parse().map_err(|_| "invalid --theta")?;
        searcher.nodes_above(q, theta).map_err(|e| e.to_string())?
    } else if let Some(set_text) = flag(&flags, "set") {
        if !pruning {
            return Err("--pruning off applies to single-source top-k, not --set".into());
        }
        let mut sources: Vec<u32> = vec![q];
        for tok in set_text.split(',').filter(|s| !s.is_empty()) {
            sources.push(tok.parse().map_err(|_| format!("invalid set member '{tok}'"))?);
        }
        searcher.top_k_from_set(&sources, k).map_err(|e| e.to_string())?
    } else if pruning {
        searcher.top_k(q, k).map_err(|e| e.to_string())?
    } else {
        searcher.top_k_unpruned(q, k).map_err(|e| e.to_string())?
    };
    let elapsed = t.elapsed();

    for (rank, item) in result.items.iter().enumerate() {
        println!("{:<4} node {:<10} proximity {:.6e}", rank + 1, item.node, item.proximity);
    }
    let s = &result.stats;
    // `reachable` is the *discovered* count: exact reachability when the
    // search ran to completion, a lower bound after early termination
    // (the lazy frontier never enumerates layers Lemma 2 pruned away).
    println!(
        "-- {:?}; kernel {}; visited {}, computed {}, frontier expanded {}/{} discovered, \
         early-termination {}",
        elapsed,
        searcher.kernel().name(),
        s.visited,
        s.proximity_computations,
        s.frontier_expanded,
        s.reachable,
        s.terminated_early
    );
    // The adaptive policy's observability line: which kernel class ran
    // each candidate row, and what the gathers streamed (value bytes per
    // the fixed accounting model — machine-independent).
    println!(
        "-- gather: kernel resolved {}; rows scalar {}, rows wide {}; index bytes {}, value \
         bytes {} (model)",
        if s.kernel.is_empty() { "n/a" } else { s.kernel },
        s.rows_scalar,
        s.rows_wide,
        s.bytes_touched,
        s.value_bytes_touched,
    );
    // Sparsified-tier observability: how many certified-refinement sweeps
    // the query needed and the extra nonzeros they streamed (residual
    // edges + correction scatter/gather). Dense-exact indexes skip the
    // loop entirely, so the line would always read 0/0 — omit it.
    if index.needs_refinement() {
        println!(
            "-- refinement: {} iteration(s), {} streamed nnz (sparsified tier, drop tolerance \
             {:e})",
            s.refinement_iterations,
            s.refinement_nnz,
            index.drop_tolerance(),
        );
    }
    Ok(())
}

/// One human-readable line per interesting fact about a journal replay,
/// shared by `update --journal` (auto-recovery) and `kdash recover`.
fn print_recovery(report: &RecoveryReport) {
    println!(
        "recovered epoch {} -> {}: replayed {} batch(es) ({} edits) in {:.2?}, skipped {} \
         already-checkpointed record(s)",
        report.snapshot_epoch,
        report.final_epoch,
        report.replayed_batches,
        report.replayed_edits,
        report.replay_time,
        report.skipped_records,
    );
    if report.header_repaired {
        println!("journal header was torn — repaired in place");
    }
    if let Some(torn) = &report.torn_tail {
        println!("torn tail truncated (mid-append crash): {torn}");
    }
}

fn cmd_update(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args, &["coalesce", "dry-run", "journal"])?;
    reject_unknown_flags(
        &flags,
        &["index", "edits", "out", "threads", "coalesce", "dry-run", "journal"],
    )?;
    if !pos.is_empty() {
        return Err(format!("unexpected positional argument '{}'", pos[0]));
    }
    let usage = "usage: kdash update --index <index.kdash> --edits <edits.txt> [--out FILE] \
                 [--threads 1] [--coalesce] [--dry-run] [--journal]";
    let index_path = flag(&flags, "index").ok_or(usage)?;
    let edits_path = flag(&flags, "edits").ok_or(usage)?;
    let out_path = flag(&flags, "out").unwrap_or(index_path);
    let threads: usize =
        flag(&flags, "threads").unwrap_or("1").parse().map_err(|_| "invalid --threads")?;
    let coalesce = flag(&flags, "coalesce").is_some();
    let dry_run = flag(&flags, "dry-run").is_some();
    let journaled = flag(&flags, "journal").is_some();
    let journal_path = Journal::sidecar_path(index_path);

    let index = load_index(index_path)?;
    println!(
        "loaded index: {} nodes, {} edges, update epoch {}",
        index.num_nodes(),
        index.stats().num_edges,
        index.update_epoch()
    );
    let snapshot_epoch = index.update_epoch();
    let text = std::fs::read_to_string(edits_path).map_err(|e| format!("read {edits_path}: {e}"))?;
    let batches = UpdateBatch::parse_stream(&text).map_err(|e| e.to_string())?;
    if batches.is_empty() {
        return Err(format!("{edits_path} contains no edits"));
    }

    let t_attach = Instant::now();
    let mut dynamic = if journaled && !dry_run {
        // Journaled path: an existing sidecar may hold acknowledged
        // batches a crash kept out of the snapshot — replay them before
        // touching the new edit stream, so the engine starts from the
        // exact pre-crash state.
        if journal_path.exists() {
            let (engine, report) = DynamicIndex::recover(index, &journal_path)
                .map_err(|e| format!("recover {}: {e}", journal_path.display()))?;
            if report.replayed_batches > 0 || report.torn_tail.is_some() || report.header_repaired
            {
                print_recovery(&report);
            }
            engine
        } else {
            let journal = Journal::create(&journal_path, snapshot_epoch)
                .map_err(|e| format!("create {}: {e}", journal_path.display()))?;
            println!("journaling to {} (checkpoint epoch {})", journal_path.display(), snapshot_epoch);
            DynamicIndex::new(index)
                .map_err(|e| e.to_string())?
                .journaled(journal)
                .map_err(|e| e.to_string())?
        }
    } else {
        DynamicIndex::new(index).map_err(|e| e.to_string())?
    }
    .threads(threads);
    println!("attached update engine (factorization) in {:.2?}", t_attach.elapsed());

    if dry_run {
        // A dry run must not write — not even journal frames — but a
        // pending journal silently changes what a real run would do, so
        // say so.
        if journaled && journal_path.exists() {
            if let Ok(scan) = Journal::scan_path(&journal_path) {
                if scan.tail_epoch() > snapshot_epoch {
                    println!(
                        "note: {} holds records up to epoch {} (snapshot is at {}) — a real \
                         --journal run replays them before applying these edits",
                        journal_path.display(),
                        scan.tail_epoch(),
                        snapshot_epoch,
                    );
                }
            }
        }
        // Predict the footprint of the whole stream as one coalesced
        // pass — no mutation, no save.
        let p = dynamic.predict(&batches).map_err(|e| e.to_string())?;
        println!(
            "dry run: {} edits in {} batch(es) -> dirty W cols {} ({:.2}%), scheduled factor \
             cols {} ({:.2}%), predicted reach L⁻¹/U⁻¹ cols {}/{} ({:.2}%/{:.2}%)",
            p.edits,
            p.batches,
            p.dirty_w_columns,
            100.0 * p.w_fraction(),
            p.candidate_factor_columns,
            100.0 * p.factor_fraction(),
            p.predicted_linv_columns,
            p.predicted_uinv_columns,
            100.0 * p.linv_fraction(),
            100.0 * p.uinv_fraction(),
        );
        println!("dry run: index not modified, nothing written");
        return Ok(());
    }

    let reports = if coalesce {
        let report = dynamic.apply_coalesced(&batches).map_err(|e| e.to_string())?;
        println!("coalesced {} batch(es) into one pass", report.batches);
        vec![report]
    } else {
        let mut reports = Vec::with_capacity(batches.len());
        for (i, batch) in batches.iter().enumerate() {
            reports.push(dynamic.apply(batch).map_err(|e| format!("batch {}: {e}", i + 1))?);
        }
        reports
    };
    for (i, report) in reports.iter().enumerate() {
        let n = report.num_columns.max(1);
        println!(
            "batch {:<3} {} edits -> dirty W cols {}, recomputed factor cols {}, dirty L/U \
             cols {}/{}, reach L⁻¹/U⁻¹ cols {}/{} ({:.2}%/{:.2}%), re-encoded U⁻¹ rows {}, \
             re-solved nnz {}",
            i + 1,
            report.edits,
            report.dirty_w_columns,
            report.dirty_factor_columns_recomputed,
            report.dirty_l_columns,
            report.dirty_u_columns,
            report.dirty_linv_columns,
            report.dirty_uinv_columns,
            100.0 * report.dirty_linv_columns as f64 / n as f64,
            100.0 * report.dirty_uinv_columns as f64 / n as f64,
            report.dirty_uinv_rows,
            report.resolved_nnz,
        );
        println!(
            "          {:.2?} total: graph {:.2?} | factorize {:.2?} (refactor {:.2?}, splice \
             {:.2?}) | reach {:.2?} | re-solve {:.2?} | splice {:.2?} | estimator {:.2?}",
            report.total_time(),
            report.graph_time,
            report.factorization_time,
            report.refactor_time,
            report.factor_splice_time,
            report.reach_time,
            report.resolve_time,
            report.splice_time,
            report.estimator_time,
        );
    }

    // --out defaults to the input path: truncating the only copy of a
    // multi-minute build before the new bytes are safely down would lose
    // the index on a failed save, so the write must be atomic + durable.
    if journaled && out_path == index_path {
        // Checkpoint: fresh snapshot down atomically, then the journal
        // truncates — its records are folded in and no longer needed.
        dynamic.checkpoint(out_path).map_err(|e| format!("checkpoint {out_path}: {e}"))?;
        let index = dynamic.into_index();
        println!(
            "wrote {out_path} ({} edges, update epoch {}); journal truncated at checkpoint",
            index.stats().num_edges,
            index.update_epoch()
        );
    } else {
        let index = dynamic.into_index();
        save_atomic(&index, out_path).map_err(|e| format!("write {out_path}: {e}"))?;
        println!(
            "wrote {out_path} ({} edges, update epoch {})",
            index.stats().num_edges,
            index.update_epoch()
        );
        if journaled {
            // Saving elsewhere is not a checkpoint: the sidecar's
            // records are what still protects the *original* index.
            println!(
                "note: {} left intact — its records still protect {}",
                journal_path.display(),
                index_path
            );
        }
    }
    Ok(())
}

fn cmd_recover(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args, &[])?;
    reject_unknown_flags(&flags, &["journal", "out"])?;
    let [index_path] = pos.as_slice() else {
        return Err("usage: kdash recover <index.kdash> [--journal PATH] [--out FILE]".into());
    };
    let journal_path =
        flag(&flags, "journal").map(PathBuf::from).unwrap_or_else(|| Journal::sidecar_path(index_path));
    let out_path = flag(&flags, "out").unwrap_or(index_path);

    let index = load_index(index_path)?;
    println!(
        "loaded snapshot {index_path}: {} nodes, {} edges, update epoch {}",
        index.num_nodes(),
        index.stats().num_edges,
        index.update_epoch()
    );
    let (mut dynamic, report) = DynamicIndex::recover(index, &journal_path)
        .map_err(|e| format!("recover {}: {e}", journal_path.display()))?;
    print_recovery(&report);

    if out_path == *index_path {
        dynamic.checkpoint(out_path).map_err(|e| format!("checkpoint {out_path}: {e}"))?;
        println!(
            "wrote {out_path} (update epoch {}); journal truncated at checkpoint",
            dynamic.index().update_epoch()
        );
    } else {
        save_atomic(dynamic.index(), out_path).map_err(|e| format!("write {out_path}: {e}"))?;
        println!(
            "wrote {out_path} (update epoch {}); {} left intact — its records still protect \
             {index_path}",
            dynamic.index().update_epoch(),
            journal_path.display(),
        );
    }
    Ok(())
}

/// SplitMix64 — a tiny deterministic generator for the synthetic serve
/// workload. Statistical quality is irrelevant here; reproducibility
/// from `--seed` is the point.
struct WorkloadRng(u64);

impl WorkloadRng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Picks the next synthetic edit: inserts fresh random edges (checked
/// against the *current* permuted graph so a duplicate insert can never
/// be generated) and deletes from the pool of edges this run inserted —
/// so the driver never deletes an edge the loaded dataset owns and the
/// graph stays within a bounded distance of the original.
fn next_synthetic_edit(
    rng: &mut WorkloadRng,
    nodes: u64,
    inserted: &mut Vec<(u32, u32)>,
    index: &KdashIndex,
) -> Option<kdash_graph::EdgeEdit> {
    use kdash_graph::EdgeEdit;
    if !inserted.is_empty() && (inserted.len() >= 64 || rng.next() & 1 == 0) {
        let at = rng.below(inserted.len() as u64) as usize;
        let (src, dst) = inserted.swap_remove(at);
        return Some(EdgeEdit::Delete { src, dst });
    }
    let perm = index.permutation();
    let graph = index.permuted_graph();
    for _ in 0..64 {
        let src = rng.below(nodes) as u32;
        let dst = rng.below(nodes) as u32;
        if src == dst || graph.has_edge(perm.new_of(src), perm.new_of(dst)) {
            continue;
        }
        inserted.push((src, dst));
        return Some(EdgeEdit::Insert { src, dst, weight: 1.0 });
    }
    None
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use kdash_serve::{EpochWriter, ServeError, ServeLoop, ServeOptions};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let (pos, flags) = parse_flags(args, &["bench", "journal"])?;
    reject_unknown_flags(
        &flags,
        &["bench", "journal", "duration", "workers", "mix", "clients", "k", "queue", "batch",
          "seed"],
    )?;
    let [index_path] = pos.as_slice() else {
        return Err(
            "usage: kdash serve <index.kdash> --bench [--duration 5] [--workers 0] \
             [--mix 100:1] [--clients 2] [--k 10] [--queue 1024] [--batch 32] [--seed 42] \
             [--journal]"
                .into(),
        );
    };
    if flag(&flags, "bench").is_none() {
        return Err(
            "kdash serve currently ships the in-process --bench driver only (no network \
             listener); add --bench"
                .into(),
        );
    }
    let duration: f64 = flag(&flags, "duration")
        .unwrap_or("5")
        .parse()
        .map_err(|e| format!("bad --duration: {e}"))?;
    if !(duration > 0.0) {
        return Err("--duration must be positive".into());
    }
    let workers: usize =
        flag(&flags, "workers").unwrap_or("0").parse().map_err(|e| format!("bad --workers: {e}"))?;
    let clients: usize =
        flag(&flags, "clients").unwrap_or("2").parse().map_err(|e| format!("bad --clients: {e}"))?;
    if clients == 0 {
        return Err("--clients must be at least 1".into());
    }
    let k: usize = flag(&flags, "k").unwrap_or("10").parse().map_err(|e| format!("bad --k: {e}"))?;
    let queue: usize =
        flag(&flags, "queue").unwrap_or("1024").parse().map_err(|e| format!("bad --queue: {e}"))?;
    let batch: usize =
        flag(&flags, "batch").unwrap_or("32").parse().map_err(|e| format!("bad --batch: {e}"))?;
    let seed: u64 =
        flag(&flags, "seed").unwrap_or("42").parse().map_err(|e| format!("bad --seed: {e}"))?;
    let mix = flag(&flags, "mix").unwrap_or("100:1");
    let (mix_r, mix_w) = mix
        .split_once(':')
        .and_then(|(r, w)| Some((r.parse::<u64>().ok()?, w.parse::<u64>().ok()?)))
        .ok_or_else(|| format!("bad --mix '{mix}' (expected READS:WRITES, e.g. 100:1)"))?;
    if mix_r == 0 {
        return Err("--mix needs a non-zero read share (writes are paced off reads)".into());
    }
    let journaled = flag(&flags, "journal").is_some();

    let index = load_index(index_path)?;
    let nodes = index.num_nodes() as u64;
    if nodes == 0 {
        return Err("index holds an empty graph; nothing to serve".into());
    }
    println!(
        "serving {index_path}: {} nodes, {} edges, update epoch {}",
        index.num_nodes(),
        index.stats().num_edges,
        index.update_epoch()
    );

    let mut engine = DynamicIndex::new(index).map_err(|e| format!("attach engine: {e}"))?;
    // Journaled mode writes to scratch files: overwriting the *user's*
    // snapshot from a benchmark (auto-checkpoint rewrites the index
    // path) would be a hostile default.
    let mut scratch: Option<PathBuf> = None;
    if journaled {
        let dir = std::env::temp_dir().join(format!("kdash-serve-bench-{}", std::process::id()));
        std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let snapshot = dir.join("serve-bench.kdash");
        save_atomic(engine.index(), &snapshot)
            .map_err(|e| format!("write scratch snapshot {}: {e}", snapshot.display()))?;
        let journal_path = Journal::sidecar_path(&snapshot);
        let journal = Journal::create(&journal_path, engine.index().update_epoch())
            .map_err(|e| format!("create scratch journal {}: {e}", journal_path.display()))?;
        engine = engine
            .journaled(journal)
            .map_err(|e| format!("attach journal: {e}"))?
            .auto_checkpoint(&snapshot, kdash_dynamic::AUTO_CHECKPOINT_DEFAULT_RECORDS);
        println!(
            "journaled write path: fsync per batch to {}, auto-checkpoint past {} records",
            journal_path.display(),
            kdash_dynamic::AUTO_CHECKPOINT_DEFAULT_RECORDS,
        );
        scratch = Some(dir);
    }

    let (mut writer, store) = EpochWriter::new(engine);
    let serve_loop = ServeLoop::start(
        Arc::clone(&store),
        ServeOptions { workers, queue_capacity: queue, max_batch: batch, ..Default::default() },
    )
    .map_err(|e| format!("start serve loop: {e}"))?;
    writer.attach_metrics(serve_loop.metrics());
    println!(
        "serve loop up: {} workers, queue capacity {}, max batch {batch}, mix {mix_r}:{mix_w}, \
         {clients} reader clients, {duration}s",
        serve_loop.workers(),
        serve_loop.queue_capacity(),
    );

    let reads_done = AtomicU64::new(0);
    let read_failures = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let mut writes_acked = 0u64;
    let mut writes_failed = 0u64;
    let started = Instant::now();
    let deadline = started + Duration::from_secs_f64(duration);

    std::thread::scope(|scope| -> Result<(), String> {
        let serve_ref = &serve_loop;
        let reads_ref = &reads_done;
        let fail_ref = &read_failures;
        let stop_ref = &stop;
        for c in 0..clients {
            let mut rng = WorkloadRng(seed ^ (c as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            scope.spawn(move || {
                while !stop_ref.load(Ordering::Acquire) {
                    let query = rng.below(nodes) as u32;
                    match serve_ref.query_blocking(query, k) {
                        Ok(_) => {
                            reads_ref.fetch_add(1, Ordering::Relaxed);
                        }
                        // Closed-loop clients back off on shed and retry;
                        // the shed itself is already counted in metrics.
                        Err(ServeError::Overloaded { .. }) => std::thread::yield_now(),
                        Err(_) => {
                            fail_ref.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }

        // The writer runs on this thread: applies are paced so the
        // attempted-write count tracks reads * W/R, each apply prepares
        // epoch N+1 off the serving path and swaps it in.
        let mut rng = WorkloadRng(seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1));
        let mut inserted: Vec<(u32, u32)> = Vec::new();
        while Instant::now() < deadline {
            let reads = reads_done.load(Ordering::Relaxed);
            let attempted = writes_acked + writes_failed;
            if mix_w == 0 || attempted * mix_r > reads * mix_w {
                std::thread::sleep(Duration::from_micros(200));
                continue;
            }
            let Some(edit) = next_synthetic_edit(&mut rng, nodes, &mut inserted, writer.engine().index())
            else {
                writes_failed += 1;
                continue;
            };
            let batch = UpdateBatch::new(vec![edit]).map_err(|e| format!("build batch: {e}"))?;
            match writer.apply(&batch) {
                Ok(_) => writes_acked += 1,
                Err(_) => writes_failed += 1,
            }
        }
        stop.store(true, Ordering::Release);
        Ok(())
    })?;

    let elapsed = started.elapsed().as_secs_f64();
    let final_epoch = store.epoch();
    let final_lag = store.freshness_lag();
    let workers_started = serve_loop.workers();
    let metrics = serve_loop.metrics();
    serve_loop.shutdown();

    let reads = reads_done.load(Ordering::Relaxed);
    let failures = read_failures.load(Ordering::Relaxed);
    let m = metrics.snapshot();
    println!(
        "served {reads} reads in {elapsed:.2}s ({:.0}/s), {writes_acked} writes acked \
         ({writes_failed} generator misses), final epoch {final_epoch}, freshness lag {final_lag}",
        reads as f64 / elapsed,
    );
    println!(
        "latency p50 {:.3}ms p99 {:.3}ms p999 {:.3}ms max {:.3}ms, mean batch {:.2}, \
         {} swaps (p50 {:.3}ms max {:.3}ms), shed {} ({:.2}%)",
        m.latency_p50_ms,
        m.latency_p99_ms,
        m.latency_p999_ms,
        m.latency_max_ms,
        m.mean_batch,
        m.swaps,
        m.swap_p50_ms,
        m.swap_max_ms,
        m.shed,
        m.shed_rate() * 100.0,
    );
    println!(
        r#"{{"serve_bench":"{}","nodes":{},"duration_s":{:.3},"workers":{},"clients":{},"mix":"{}:{}","queue":{},"max_batch":{},"journaled":{},"reads":{},"read_failures":{},"read_throughput_per_s":{:.1},"writes_acked":{},"latency_p50_ms":{:.4},"latency_p99_ms":{:.4},"latency_p999_ms":{:.4},"latency_max_ms":{:.4},"mean_batch":{:.2},"freshness_lag_p50":{},"freshness_lag_max":{},"swaps":{},"swap_p50_ms":{:.4},"swap_max_ms":{:.4},"shed":{},"shed_rate":{:.6},"final_epoch":{}}}"#,
        index_path,
        nodes,
        elapsed,
        workers_started,
        clients,
        mix_r,
        mix_w,
        queue,
        batch,
        journaled,
        reads,
        failures,
        reads as f64 / elapsed,
        writes_acked,
        m.latency_p50_ms,
        m.latency_p99_ms,
        m.latency_p999_ms,
        m.latency_max_ms,
        m.mean_batch,
        m.freshness_lag_p50,
        m.freshness_lag_max,
        m.swaps,
        m.swap_p50_ms,
        m.swap_max_ms,
        m.shed,
        m.shed_rate(),
        final_epoch,
    );

    if let Some(dir) = scratch {
        let _ = std::fs::remove_dir_all(&dir);
    }
    Ok(())
}

fn cmd_verify(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args, &["factors", "journal"])?;
    reject_unknown_flags(&flags, &["factors", "journal"])?;
    let check_factors = flag(&flags, "factors").is_some();
    let check_journal = flag(&flags, "journal").is_some();
    let [index_path] = pos.as_slice() else {
        return Err("usage: kdash verify <index.kdash> [--factors | --journal]".into());
    };
    if check_journal {
        if check_factors {
            return Err("--factors audits the loaded index; --journal inspects only the \
                        sidecar journal — pick one"
                .into());
        }
        return verify_journal(index_path);
    }

    // Stage 1 — load. The v4 loader verifies every per-section CRC32 and
    // the whole-file footer while parsing, plus all structural
    // cross-checks; any damage surfaces here as a typed PersistError
    // naming the section and byte offset.
    let t = Instant::now();
    let file = File::open(index_path).map_err(|e| format!("open {index_path}: {e}"))?;
    let (index, info) =
        KdashIndex::load_with_info(BufReader::new(file)).map_err(|e| e.to_string())?;
    println!(
        "loaded {index_path} in {:.2?}: format v{}, {} ({} nodes, {} edges, update epoch {})",
        t.elapsed(),
        info.version,
        if info.checksummed {
            "checksums verified"
        } else {
            "UNCHECKSUMMED legacy format — re-save to add integrity checksums"
        },
        index.num_nodes(),
        index.stats().num_edges,
        index.update_epoch(),
    );

    // Stage 2 — deep structural audit; --factors appends the
    // factor-consistency section (triangularity, diag-last layout, and
    // the spot-recomputed W = L·U check on sampled columns).
    let audit = if check_factors {
        IndexAudit::run_with_factors(&index, None)
    } else {
        IndexAudit::run(&index)
    };
    for section in &audit.sections {
        let findings = audit.findings.iter().filter(|f| f.section == section.name).count();
        println!(
            "section {:<12} {:>8} checks {:>12.2?}  {}",
            section.name,
            section.checks,
            section.duration,
            if findings == 0 { "ok".to_string() } else { format!("{findings} FINDING(S)") },
        );
    }
    if check_factors
        && audit.sections.iter().any(|s| s.name == "factors" && s.checks == 0)
    {
        println!(
            "note: this index stores no LU factors (built without keep_factors), so the \
             factor-consistency checks were skipped — that is not a finding"
        );
    }
    for finding in &audit.findings {
        println!("FINDING [{}] {}", finding.section, finding.detail);
    }
    if audit.suppressed > 0 {
        println!("… and {} further finding(s) suppressed", audit.suppressed);
    }

    // Machine-readable summary (one line, stable keys) for scripting.
    let sections_json: Vec<String> = audit
        .sections
        .iter()
        .map(|s| {
            format!(
                r#"{{"name":"{}","checks":{},"micros":{}}}"#,
                s.name,
                s.checks,
                s.duration.as_micros()
            )
        })
        .collect();
    println!(
        r#"{{"index":"{}","version":{},"checksummed":{},"clean":{},"findings":{},"sections":[{}]}}"#,
        index_path,
        info.version,
        info.checksummed,
        audit.is_clean(),
        audit.total_findings(),
        sections_json.join(","),
    );

    if audit.is_clean() {
        println!("verify: clean");
        Ok(())
    } else {
        Err(format!("index audit failed with {} finding(s)", audit.total_findings()))
    }
}

/// `kdash verify --journal` — check the sidecar write-ahead log without
/// loading (or even having) the index: header + frame CRCs, payload
/// decode, and epoch contiguity, exactly the scan recovery would run.
fn verify_journal(index_path: &str) -> Result<(), String> {
    let path = Journal::sidecar_path(index_path);
    let t = Instant::now();
    let scan = Journal::scan_path(&path).map_err(|e| e.to_string())?;
    println!(
        "scanned {} in {:.2?}: {} of {} bytes intact",
        path.display(),
        t.elapsed(),
        scan.good_bytes,
        scan.file_bytes,
    );
    match scan.checkpoint_epoch {
        Some(epoch) => println!("header ok, checkpoint epoch {epoch}"),
        None => println!("header TORN (checkpoint epoch unreadable)"),
    }
    match (scan.first_epoch, scan.last_epoch) {
        (Some(first), Some(last)) => println!(
            "{} intact record(s), {} edits, epochs {first}..={last} (contiguous)",
            scan.records, scan.edits,
        ),
        _ => println!("no intact records (journal is empty)"),
    }
    if let Some(torn) = &scan.torn {
        println!(
            "TORN at byte {}: {} — recovery replays the {} record(s) before this point and \
             truncates the rest",
            torn.offset, torn.detail, scan.records,
        );
    }
    // Machine-readable summary (one line, stable keys) for scripting.
    println!(
        r#"{{"journal":"{}","header_ok":{},"checkpoint_epoch":{},"records":{},"edits":{},"tail_epoch":{},"good_bytes":{},"file_bytes":{},"torn":{}}}"#,
        path.display(),
        scan.header_ok,
        scan.checkpoint_epoch.map_or("null".to_string(), |e| e.to_string()),
        scan.records,
        scan.edits,
        scan.tail_epoch(),
        scan.good_bytes,
        scan.file_bytes,
        scan.torn.is_some(),
    );
    if scan.header_ok && scan.torn.is_none() {
        println!("verify: clean");
        Ok(())
    } else {
        Err(format!(
            "journal damaged ({}) — recovery still succeeds with the intact prefix, but the \
             bytes past offset {} are lost",
            if scan.header_ok { "torn tail" } else { "torn header" },
            scan.good_bytes,
        ))
    }
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args, &[])?;
    reject_unknown_flags(&flags, &[])?;
    let [index_path] = pos.as_slice() else {
        return Err("usage: kdash info <index.kdash>".into());
    };
    let index = load_index(index_path)?;
    let s = index.stats();
    println!("nodes              {}", s.num_nodes);
    println!("edges              {}", s.num_edges);
    println!("restart prob. c    {}", index.restart_probability());
    println!("ordering           {}", index.ordering().name());
    println!("update epoch       {}", index.update_epoch());
    println!("nnz(L⁻¹)           {}", s.nnz_l_inv);
    println!("nnz(U⁻¹)           {}", s.nnz_u_inv);
    println!("inverse nnz / m    {:.2}", s.inverse_nnz_ratio());
    println!("inverse heap bytes {}", s.inverse_heap_bytes);
    println!("U⁻¹ row layout     {}", index.layout().name());
    println!(
        "U⁻¹ index bytes    {} ({:.2} B/nnz; flat CSR would be 4.00)",
        s.uinv_index_bytes,
        s.uinv_index_bytes as f64 / s.nnz_u_inv.max(1) as f64
    );
    if index.is_sparsified() {
        println!("tier               sparsified (drop tolerance {:e})", index.drop_tolerance());
        println!("dropped l1 mass    {:.3e}", index.dropped_mass());
        println!(
            "query path         {}",
            if index.needs_refinement() {
                "certified residual refinement (top-k set and order exact)"
            } else {
                "classic (ε dropped nothing — stored inverses are dense-exact)"
            }
        );
    } else {
        println!("tier               dense-exact");
    }
    let journal_path = Journal::sidecar_path(index_path);
    if journal_path.exists() {
        match Journal::scan_path(&journal_path) {
            Ok(scan) => {
                println!("journal            {}", journal_path.display());
                println!(
                    "journal records    {} ({} edits, checkpoint epoch {})",
                    scan.records,
                    scan.edits,
                    scan.checkpoint_epoch.map_or("torn".to_string(), |e| e.to_string()),
                );
                if let Some(torn) = &scan.torn {
                    println!("journal damage     torn at byte {}: {}", torn.offset, torn.detail);
                }
                let pending = scan.tail_epoch().saturating_sub(index.update_epoch());
                if pending > 0 {
                    println!(
                        "journal pending    {pending} record(s) beyond this snapshot — run \
                         'kdash recover {index_path}' to replay them"
                    );
                } else {
                    println!("journal pending    none (snapshot is current)");
                }
            }
            Err(e) => println!("journal            {} (unreadable: {e})", journal_path.display()),
        }
    }
    Ok(())
}

fn cmd_gen(args: &[String]) -> Result<(), String> {
    let (pos, flags) = parse_flags(args, &[])?;
    reject_unknown_flags(&flags, &["nodes", "seed"])?;
    let [profile_text, out_path] = pos.as_slice() else {
        return Err("usage: kdash gen <profile> <edges.txt> [--nodes 2000] [--seed 42]".into());
    };
    let profile = match *profile_text {
        "dictionary" => DatasetProfile::Dictionary,
        "internet" => DatasetProfile::Internet,
        "citation" => DatasetProfile::Citation,
        "social" => DatasetProfile::Social,
        "email" => DatasetProfile::Email,
        other => return Err(format!("unknown profile '{other}'")),
    };
    let nodes: usize =
        flag(&flags, "nodes").unwrap_or("2000").parse().map_err(|_| "invalid --nodes")?;
    let seed: u64 = flag(&flags, "seed").unwrap_or("42").parse().map_err(|_| "invalid --seed")?;
    let graph = profile.generate(profile.scale_for_nodes(nodes), seed);
    let out = File::create(out_path).map_err(|e| format!("create {out_path}: {e}"))?;
    let mut w = BufWriter::new(out);
    kdash_graph::io::write_edge_list(&graph, &mut w).map_err(|e| e.to_string())?;
    w.flush().map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} profile, {} nodes, {} edges)",
        out_path,
        profile.name(),
        graph.num_nodes(),
        graph.num_edges()
    );
    Ok(())
}
