//! # kdash-harness
//!
//! Hosts the workspace-level integration tests (`/tests`) and runnable
//! examples (`/examples`), plus a few helpers they share. The crate
//! re-exports nothing new; its value is wiring every other crate into one
//! dependency set for cross-crate targets.

use kdash_baselines::{IterativeRwr, TopKEngine};
use kdash_core::TopKResult;
use kdash_datagen::DatasetProfile;
use kdash_graph::{CsrGraph, NodeId};

/// Generates a dataset profile scaled to roughly `target_nodes` nodes.
pub fn profile_graph(profile: DatasetProfile, target_nodes: usize, seed: u64) -> CsrGraph {
    profile.generate(profile.scale_for_nodes(target_nodes), seed)
}

/// Exact ground-truth top-k via power iteration (node ids only).
pub fn exact_top_k(graph: &CsrGraph, c: f64, q: NodeId, k: usize) -> Vec<NodeId> {
    IterativeRwr::new(graph, c).top_k(q, k).into_iter().map(|(n, _)| n).collect()
}

/// Exact ground-truth top-k with proximities.
pub fn exact_top_k_scored(graph: &CsrGraph, c: f64, q: NodeId, k: usize) -> Vec<(NodeId, f64)> {
    IterativeRwr::new(graph, c).top_k(q, k)
}

/// The lazy-vs-eager query-engine contract, shared by the equivalence
/// suites: `lazy` from the lazy-frontier production path (under the
/// *scalar* kernel), `eager` from an eager whole-tree-first replay oracle
/// (`top_k_merge_join`, `top_k_from_set_replay`, `top_k_eager_into`).
///
/// Checks: items bit-identical; `visited`/`proximity_computations`/
/// `skipped`/`terminated_early` equal; the eager oracle expands everything
/// it reaches; under early termination the lazy path discovered at most
/// the true reachable count and left the death layer unexpanded
/// (`frontier_expanded` strictly below `reachable`); on complete runs the
/// stats agree exactly.
pub fn check_lazy_vs_eager(lazy: &TopKResult, eager: &TopKResult) -> Result<(), String> {
    if lazy.items.len() != eager.items.len() {
        return Err(format!("lengths differ: {} vs {}", lazy.items.len(), eager.items.len()));
    }
    for (x, y) in lazy.items.iter().zip(&eager.items) {
        if x.node != y.node || x.proximity.to_bits() != y.proximity.to_bits() {
            return Err(format!(
                "item mismatch: ({}, {:.17e}) vs ({}, {:.17e})",
                x.node, x.proximity, y.node, y.proximity
            ));
        }
    }
    let (a, b) = (&lazy.stats, &eager.stats);
    if (a.visited, a.proximity_computations, a.skipped, a.terminated_early)
        != (b.visited, b.proximity_computations, b.skipped, b.terminated_early)
    {
        return Err(format!("work counters differ: {a:?} vs {b:?}"));
    }
    if b.frontier_expanded != b.reachable {
        return Err(format!("eager replay must expand its whole tree: {b:?}"));
    }
    if a.terminated_early {
        if a.reachable > b.reachable {
            return Err(format!(
                "lazy discovery exceeded true reachability: {} > {}",
                a.reachable, b.reachable
            ));
        }
        if a.frontier_expanded >= a.reachable {
            return Err(format!("death layer leaked into the expansion count: {a:?}"));
        }
    } else if a.without_gather() != b.without_gather() {
        // The merge-join oracles never run the gather kernel, so the byte
        // counters/kernel label legitimately differ; everything else must
        // agree exactly on complete runs.
        return Err(format!("full runs must agree exactly: {a:?} vs {b:?}"));
    }
    Ok(())
}

/// The flat-vs-blocked layout contract, shared by
/// `tests/layout_equivalence.rs`: under one kernel selection, the two
/// layouts must return bit-identical items and identical stats in every
/// field except `bytes_touched` — the index-byte counter is layout-
/// dependent by design (it is exactly what the blocked encoding shrinks
/// on fill-dominated rows; on near-empty rows the run header can cost
/// more, so aggregate reduction is asserted at matrix level, not here).
/// The per-kernel row split (`rows_scalar`/`rows_wide`) and the value
/// traffic agreeing across layouts is the pin that the adaptive policy
/// consumes layout-independent inputs.
pub fn check_layout_equivalence(flat: &TopKResult, blocked: &TopKResult) -> Result<(), String> {
    if flat.items.len() != blocked.items.len() {
        return Err(format!("lengths differ: {} vs {}", flat.items.len(), blocked.items.len()));
    }
    for (x, y) in flat.items.iter().zip(&blocked.items) {
        if x.node != y.node || x.proximity.to_bits() != y.proximity.to_bits() {
            return Err(format!(
                "item mismatch: ({}, {:.17e}) vs ({}, {:.17e})",
                x.node, x.proximity, y.node, y.proximity
            ));
        }
    }
    let (a, b) = (&flat.stats, &blocked.stats);
    let mut a_masked = a.clone();
    let mut b_masked = b.clone();
    a_masked.bytes_touched = 0;
    b_masked.bytes_touched = 0;
    if a_masked != b_masked {
        return Err(format!("stats differ beyond index bytes: {a:?} vs {b:?}"));
    }
    if (a.bytes_touched == 0) != (b.bytes_touched == 0) {
        return Err(format!(
            "one layout gathered, the other did not: {} vs {}",
            a.bytes_touched, b.bytes_touched
        ));
    }
    Ok(())
}

/// The dynamic-update contract, shared by `tests/dynamic_equivalence.rs`
/// and the update benchmarks: two indexes are **bit-identical at the
/// array level** — same permutation, same permuted graph, same `L⁻¹`
/// arrays (pointer, index and value bits), same `U⁻¹` proximity store
/// (layout, encoded arrays, per-row policy stats), same estimator
/// constants, same nnz statistics and same update-relevant metadata.
/// This is the strongest form of "incremental update ≡ from-scratch
/// rebuild": if it holds, every query answer and every `SearchStats`
/// field agrees automatically, on any machine.
pub fn check_index_bit_identity(
    a: &kdash_core::KdashIndex,
    b: &kdash_core::KdashIndex,
) -> Result<(), String> {
    if a.num_nodes() != b.num_nodes() {
        return Err(format!("node counts differ: {} vs {}", a.num_nodes(), b.num_nodes()));
    }
    if a.permutation().order() != b.permutation().order() {
        return Err("permutations differ".into());
    }
    if a.permuted_graph() != b.permuted_graph() {
        return Err("permuted graphs differ".into());
    }
    let (ap, ai, av) = a.linv_cols().raw();
    let (bp, bi, bv) = b.linv_cols().raw();
    if ap != bp || ai != bi {
        return Err("L⁻¹ structure differs".into());
    }
    for (i, (x, y)) in av.iter().zip(bv).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Err(format!("L⁻¹ value {i} differs: {x:e} vs {y:e}"));
        }
    }
    if a.layout() != b.layout() {
        return Err(format!("layouts differ: {} vs {}", a.layout(), b.layout()));
    }
    // ProximityStore equality covers the encoded index arrays, the value
    // bits, the RowStat policy table and the scratch high-water mark.
    if a.uinv_rows() != b.uinv_rows() {
        return Err("U⁻¹ proximity stores differ".into());
    }
    let (a_col_max_a, a_max_a, c_prime_a) = a.estimator_constants();
    let (a_col_max_b, a_max_b, c_prime_b) = b.estimator_constants();
    if a_max_a.to_bits() != a_max_b.to_bits() {
        return Err(format!("A_max differs: {a_max_a:e} vs {a_max_b:e}"));
    }
    for (name, xs, ys) in
        [("A_max(v)", a_col_max_a, a_col_max_b), ("c'", c_prime_a, c_prime_b)]
    {
        for (i, (x, y)) in xs.iter().zip(ys).enumerate() {
            if x.to_bits() != y.to_bits() {
                return Err(format!("{name}[{i}] differs: {x:e} vs {y:e}"));
            }
        }
    }
    let (sa, sb) = (a.stats(), b.stats());
    if (sa.nnz_l_inv, sa.nnz_u_inv, sa.uinv_index_bytes, sa.num_edges, sa.inverse_heap_bytes)
        != (sb.nnz_l_inv, sb.nnz_u_inv, sb.uinv_index_bytes, sb.num_edges, sb.inverse_heap_bytes)
    {
        return Err(format!("nnz/byte statistics differ: {sa:?} vs {sb:?}"));
    }
    if a.restart_probability() != b.restart_probability()
        || a.dangling_policy() != b.dangling_policy()
    {
        return Err("restart probability or dangling policy differs".into());
    }
    Ok(())
}

/// Picks `count` query nodes with at least one out-edge, deterministically
/// spread over the id space (queries from dangling nodes are legal but
/// uninteresting — their only answer is themselves).
pub fn sample_queries(graph: &CsrGraph, count: usize) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut queries = Vec::with_capacity(count);
    if n == 0 {
        return queries;
    }
    let stride = (n / count.max(1)).max(1);
    let mut v = 0usize;
    while queries.len() < count && v < n * 2 {
        let candidate = (v % n) as NodeId;
        if graph.out_degree(candidate) > 0 && !queries.contains(&candidate) {
            queries.push(candidate);
        }
        v += stride.max(1);
    }
    if queries.is_empty() {
        queries.push(0);
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_graph_scales() {
        let g = profile_graph(DatasetProfile::Internet, 500, 1);
        assert!(g.num_nodes() >= 300 && g.num_nodes() <= 1500, "{}", g.num_nodes());
    }

    #[test]
    fn sample_queries_have_out_edges() {
        let g = profile_graph(DatasetProfile::Email, 600, 2);
        let qs = sample_queries(&g, 10);
        assert!(!qs.is_empty());
        for q in qs {
            assert!(g.out_degree(q) > 0);
        }
    }

    #[test]
    fn exact_top_k_starts_at_query() {
        let g = profile_graph(DatasetProfile::Dictionary, 400, 3);
        let qs = sample_queries(&g, 3);
        for q in qs {
            let top = exact_top_k(&g, 0.95, q, 5);
            assert_eq!(top[0], q);
        }
    }
}
