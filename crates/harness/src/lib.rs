//! # kdash-harness
//!
//! Hosts the workspace-level integration tests (`/tests`) and runnable
//! examples (`/examples`), plus a few helpers they share. The crate
//! re-exports nothing new; its value is wiring every other crate into one
//! dependency set for cross-crate targets.

use kdash_baselines::{IterativeRwr, TopKEngine};
use kdash_datagen::DatasetProfile;
use kdash_graph::{CsrGraph, NodeId};

/// Generates a dataset profile scaled to roughly `target_nodes` nodes.
pub fn profile_graph(profile: DatasetProfile, target_nodes: usize, seed: u64) -> CsrGraph {
    profile.generate(profile.scale_for_nodes(target_nodes), seed)
}

/// Exact ground-truth top-k via power iteration (node ids only).
pub fn exact_top_k(graph: &CsrGraph, c: f64, q: NodeId, k: usize) -> Vec<NodeId> {
    IterativeRwr::new(graph, c).top_k(q, k).into_iter().map(|(n, _)| n).collect()
}

/// Exact ground-truth top-k with proximities.
pub fn exact_top_k_scored(graph: &CsrGraph, c: f64, q: NodeId, k: usize) -> Vec<(NodeId, f64)> {
    IterativeRwr::new(graph, c).top_k(q, k)
}

/// Picks `count` query nodes with at least one out-edge, deterministically
/// spread over the id space (queries from dangling nodes are legal but
/// uninteresting — their only answer is themselves).
pub fn sample_queries(graph: &CsrGraph, count: usize) -> Vec<NodeId> {
    let n = graph.num_nodes();
    let mut queries = Vec::with_capacity(count);
    if n == 0 {
        return queries;
    }
    let stride = (n / count.max(1)).max(1);
    let mut v = 0usize;
    while queries.len() < count && v < n * 2 {
        let candidate = (v % n) as NodeId;
        if graph.out_degree(candidate) > 0 && !queries.contains(&candidate) {
            queries.push(candidate);
        }
        v += stride.max(1);
    }
    if queries.is_empty() {
        queries.push(0);
    }
    queries
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_graph_scales() {
        let g = profile_graph(DatasetProfile::Internet, 500, 1);
        assert!(g.num_nodes() >= 300 && g.num_nodes() <= 1500, "{}", g.num_nodes());
    }

    #[test]
    fn sample_queries_have_out_edges() {
        let g = profile_graph(DatasetProfile::Email, 600, 2);
        let qs = sample_queries(&g, 10);
        assert!(!qs.is_empty());
        for q in qs {
            assert!(g.out_degree(q) > 0);
        }
    }

    #[test]
    fn exact_top_k_starts_at_query() {
        let g = profile_graph(DatasetProfile::Dictionary, 400, 3);
        let qs = sample_queries(&g, 3);
        for q in qs {
            let top = exact_top_k(&g, 0.95, q, 5);
            assert_eq!(top[0], q);
        }
    }
}
