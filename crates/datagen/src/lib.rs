//! # kdash-datagen
//!
//! Synthetic graph generators standing in for the paper's five public
//! datasets (FOLDOC Dictionary, Oregon AS Internet, cond-mat Citation,
//! Epinions Social, EuAll Email). The evaluation harness must run offline,
//! so each dataset is replaced by a generator from the same structural
//! family (see DESIGN.md, *Substitutions*): K-dash's behaviour depends on
//! degree skew, community block structure and reachability — properties
//! these generators reproduce — not on the identities of the original
//! nodes.
//!
//! * [`erdos_renyi`] — directed G(n, m) noise baseline,
//! * [`barabasi_albert`] — preferential attachment (heavy-tailed degrees),
//! * [`watts_strogatz`] — small-world ring lattice with rewiring,
//! * [`planted_partition`] — directed stochastic block model,
//! * [`rmat`] — R-MAT / Kronecker scale-free directed graphs,
//! * [`collaboration`] — Newman-weighted co-authorship cliques,
//! * [`dictionary`] — labelled word web with planted term clusters
//!   (drives the Table 2 case study),
//! * [`DatasetProfile`] — the five paper datasets at a configurable scale.
//!
//! All generators are deterministic given their seed.

pub mod ba;
pub mod collaboration;
pub mod dictionary;
pub mod er;
pub mod profiles;
pub mod rmat;
pub mod sbm;
pub mod util;
pub mod ws;

pub use ba::barabasi_albert;
pub use collaboration::collaboration;
pub use dictionary::{dictionary, DictionaryDataset};
pub use er::erdos_renyi;
pub use profiles::DatasetProfile;
pub use rmat::{rmat, RmatParams};
pub use sbm::{gateway_partition, planted_partition};
pub use ws::watts_strogatz;
