//! Directed planted-partition graphs (two-parameter stochastic block
//! model). The block structure is what the paper's cluster reordering
//! exploits, so this generator drives the Fig. 5 / Fig. 6 shape.

use crate::util::poisson;
use kdash_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashSet;

/// Samples a directed SBM with `communities` equally sized blocks, edge
/// probability `p_in` within a block and `p_out` across blocks.
///
/// Edge counts per block pair are drawn Poisson (sparse-regime
/// approximation of the Binomial), then that many distinct ordered pairs
/// are placed uniformly — `O(n + m)` rather than `O(n²)`.
pub fn planted_partition(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
) -> CsrGraph {
    assert!(communities >= 1 && communities <= n.max(1), "invalid community count");
    assert!((0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Block boundaries: community c covers [bounds[c], bounds[c+1]).
    let bounds: Vec<usize> = (0..=communities).map(|c| c * n / communities).collect();
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();

    for ci in 0..communities {
        let (i0, i1) = (bounds[ci], bounds[ci + 1]);
        let rows = i1 - i0;
        if rows == 0 {
            continue;
        }
        for cj in 0..communities {
            let (j0, j1) = (bounds[cj], bounds[cj + 1]);
            let cols = j1 - j0;
            if cols == 0 {
                continue;
            }
            let p = if ci == cj { p_in } else { p_out };
            let pairs = if ci == cj { rows * (cols - 1) } else { rows * cols };
            let target = poisson(&mut rng, p * pairs as f64).min(pairs as u64 / 2 + 1);
            let mut placed = 0u64;
            let mut attempts = 0u64;
            while placed < target && attempts < 20 * target + 100 {
                attempts += 1;
                let u = rng.gen_range(i0..i1) as NodeId;
                let v = rng.gen_range(j0..j1) as NodeId;
                if u != v && seen.insert((u, v)) {
                    b.add_edge(u, v, 1.0);
                    placed += 1;
                }
            }
        }
    }
    b.build().expect("generated edges are valid")
}

/// Like [`planted_partition`], but cross-community edges run only between
/// designated *gateway* nodes (the first `gateway_fraction` of every
/// block). Real modular graphs route inter-community traffic through hub
/// nodes; concentrating the cut on gateways reproduces the
/// doubly-bordered block-diagonal structure of the paper's Figure 1,
/// where the border partition stays small.
///
/// `cross_per_node` is the expected number of cross edges per node,
/// redistributed onto the gateways.
pub fn gateway_partition(
    n: usize,
    communities: usize,
    p_in: f64,
    cross_per_node: f64,
    gateway_fraction: f64,
    seed: u64,
) -> CsrGraph {
    assert!(communities >= 1 && communities <= n.max(1), "invalid community count");
    assert!((0.0..=1.0).contains(&p_in));
    assert!(gateway_fraction > 0.0 && gateway_fraction <= 1.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    let bounds: Vec<usize> = (0..=communities).map(|c| c * n / communities).collect();
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::new();

    // Intra-block edges exactly as in the plain planted partition.
    for ci in 0..communities {
        let (i0, i1) = (bounds[ci], bounds[ci + 1]);
        let rows = i1 - i0;
        if rows < 2 {
            continue;
        }
        let pairs = rows * (rows - 1);
        let target = poisson(&mut rng, p_in * pairs as f64).min(pairs as u64 / 2 + 1);
        let mut placed = 0u64;
        let mut attempts = 0u64;
        while placed < target && attempts < 20 * target + 100 {
            attempts += 1;
            let u = rng.gen_range(i0..i1) as NodeId;
            let v = rng.gen_range(i0..i1) as NodeId;
            if u != v && seen.insert((u, v)) {
                b.add_edge(u, v, 1.0);
                placed += 1;
            }
        }
    }
    // Cross edges only among gateways.
    let gateways: Vec<Vec<NodeId>> = (0..communities)
        .map(|c| {
            let (i0, i1) = (bounds[c], bounds[c + 1]);
            let g = (((i1 - i0) as f64 * gateway_fraction).ceil() as usize).max(1).min(i1 - i0);
            (i0..i0 + g).map(|v| v as NodeId).collect()
        })
        .collect();
    let total_cross = poisson(&mut rng, cross_per_node * n as f64);
    let mut placed = 0u64;
    let mut attempts = 0u64;
    while placed < total_cross && attempts < 20 * total_cross + 100 && communities > 1 {
        attempts += 1;
        let ci = rng.gen_range(0..communities);
        let cj = loop {
            let c = rng.gen_range(0..communities);
            if c != ci {
                break c;
            }
        };
        if gateways[ci].is_empty() || gateways[cj].is_empty() {
            continue;
        }
        let u = gateways[ci][rng.gen_range(0..gateways[ci].len())];
        let v = gateways[cj][rng.gen_range(0..gateways[cj].len())];
        if seen.insert((u, v)) {
            b.add_edge(u, v, 1.0);
            placed += 1;
        }
    }
    b.build().expect("generated edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_near_expectation() {
        let n = 400;
        let k = 4;
        let (p_in, p_out) = (0.1, 0.002);
        let g = planted_partition(n, k, p_in, p_out, 7);
        let block = n / k;
        let expect = k as f64 * p_in * (block * (block - 1)) as f64
            + (k * k - k) as f64 * p_out * (block * block) as f64;
        let m = g.num_edges() as f64;
        assert!((m - expect).abs() < 0.25 * expect, "m {m} expect {expect}");
    }

    #[test]
    fn intra_edges_dominate() {
        let n = 300;
        let k = 3;
        let g = planted_partition(n, k, 0.15, 0.001, 9);
        let block = n / k;
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v, _) in g.edges() {
            if (u as usize) / block == (v as usize) / block {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 10 * inter, "intra {intra} vs inter {inter}");
    }

    #[test]
    fn no_self_loops_or_duplicates() {
        let g = planted_partition(120, 4, 0.2, 0.01, 3);
        assert!(g.edges().all(|(u, v, _)| u != v));
        // builder would have summed duplicates to weight 2.0
        assert!(g.edges().all(|(_, _, w)| w == 1.0));
    }

    #[test]
    fn single_community_is_er_like() {
        let g = planted_partition(100, 1, 0.05, 0.0, 5);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(planted_partition(150, 3, 0.1, 0.01, 8), planted_partition(150, 3, 0.1, 0.01, 8));
    }

    #[test]
    fn gateway_cross_edges_touch_only_gateways() {
        let n = 400;
        let k = 8;
        let g = gateway_partition(n, k, 0.15, 1.0, 0.1, 5);
        let block = n / k;
        let gateway_cap = (block as f64 * 0.1).ceil() as usize;
        for (u, v, _) in g.edges() {
            let (bu, bv) = (u as usize / block, v as usize / block);
            if bu != bv {
                assert!(
                    u as usize % block < gateway_cap && v as usize % block < gateway_cap,
                    "cross edge {u}->{v} touches a non-gateway node"
                );
            }
        }
    }

    #[test]
    fn gateway_partition_bounds_border_size() {
        // Nodes with cross edges are a small minority.
        let n = 600;
        let g = gateway_partition(n, 10, 0.12, 1.0, 0.1, 9);
        let block = n / 10;
        let mut has_cross = vec![false; n];
        for (u, v, _) in g.edges() {
            if u as usize / block != v as usize / block {
                has_cross[u as usize] = true;
                has_cross[v as usize] = true;
            }
        }
        let border = has_cross.iter().filter(|&&b| b).count();
        assert!(border * 5 <= n, "border {border} of {n} is too large");
    }

    #[test]
    fn gateway_partition_deterministic() {
        assert_eq!(
            gateway_partition(200, 4, 0.1, 0.8, 0.1, 3),
            gateway_partition(200, 4, 0.1, 0.8, 0.1, 3)
        );
    }
}
