//! Directed Erdős–Rényi G(n, m) graphs.

use kdash_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::HashSet;

/// Samples a directed graph with exactly `m` distinct edges chosen
/// uniformly among the `n·(n−1)` ordered pairs (no self-loops).
///
/// # Panics
/// If `m` exceeds 80% of the possible pairs (rejection sampling would
/// degenerate; dense graphs are outside this library's use cases).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> CsrGraph {
    let possible = n.saturating_mul(n.saturating_sub(1));
    assert!(
        m as f64 <= 0.8 * possible as f64,
        "requested {m} edges out of {possible} possible pairs"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen: HashSet<(NodeId, NodeId)> = HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(n, m);
    while seen.len() < m {
        let u = rng.gen_range(0..n) as NodeId;
        let v = rng.gen_range(0..n) as NodeId;
        if u != v && seen.insert((u, v)) {
            b.add_edge(u, v, 1.0);
        }
    }
    b.build().expect("generated edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count() {
        let g = erdos_renyi(50, 200, 7);
        assert_eq!(g.num_nodes(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn no_self_loops() {
        let g = erdos_renyi(30, 100, 8);
        assert!(g.edges().all(|(u, v, _)| u != v));
    }

    #[test]
    fn deterministic() {
        assert_eq!(erdos_renyi(40, 120, 9), erdos_renyi(40, 120, 9));
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(erdos_renyi(40, 120, 1), erdos_renyi(40, 120, 2));
    }

    #[test]
    fn zero_edges() {
        let g = erdos_renyi(10, 0, 3);
        assert_eq!(g.num_edges(), 0);
    }
}
