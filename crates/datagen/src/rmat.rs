//! R-MAT (recursive matrix) scale-free directed graphs
//! (Chakrabarti, Zhan & Faloutsos, 2004).
//!
//! Stands in for the paper's *Social* (Epinions trust) and *Email* (EuAll)
//! datasets: strongly skewed in/out-degrees, directed, low average degree.

use kdash_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Quadrant probabilities of the recursive split. Must sum to 1.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Top-left quadrant probability (hub-to-hub mass).
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Bottom-right.
    pub d: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        // The canonical "social network" setting.
        RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05 }
    }
}

/// Generates a directed graph with `2^scale` nodes and (up to) `m` edges.
/// Duplicate placements are merged by weight summation, so the final edge
/// count may be slightly below `m` — that mirrors the reference generator.
/// Self-loops are dropped.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> CsrGraph {
    let total = params.a + params.b + params.c + params.d;
    assert!((total - 1.0).abs() < 1e-9, "quadrant probabilities must sum to 1");
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    builder.set_allow_self_loops(false);
    for _ in 0..m {
        let (mut r0, mut r1) = (0usize, n);
        let (mut c0, mut c1) = (0usize, n);
        while r1 - r0 > 1 {
            // Add +-10% noise per level to avoid staircase artefacts.
            let noise = |p: f64, rng: &mut StdRng| (p * rng.gen_range(0.9..1.1)).max(1e-9);
            let (pa, pb, pc) =
                (noise(params.a, &mut rng), noise(params.b, &mut rng), noise(params.c, &mut rng));
            let pd = noise(params.d, &mut rng);
            let norm = pa + pb + pc + pd;
            let u: f64 = rng.gen_range(0.0..1.0) * norm;
            let rm = (r0 + r1) / 2;
            let cm = (c0 + c1) / 2;
            if u < pa {
                r1 = rm;
                c1 = cm;
            } else if u < pa + pb {
                r1 = rm;
                c0 = cm;
            } else if u < pa + pb + pc {
                r0 = rm;
                c1 = cm;
            } else {
                r0 = rm;
                c0 = cm;
            }
        }
        builder.add_edge(r0 as NodeId, c0 as NodeId, 1.0);
    }
    builder.build().expect("generated edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_count_is_power_of_two() {
        let g = rmat(8, 1000, RmatParams::default(), 1);
        assert_eq!(g.num_nodes(), 256);
        assert!(g.num_edges() <= 1000);
        assert!(g.num_edges() > 500, "merging should not halve the edges");
    }

    #[test]
    fn hubs_emerge() {
        let g = rmat(11, 12000, RmatParams::default(), 2);
        let mut degrees = g.total_degrees();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let nonzero: Vec<_> = degrees.iter().copied().filter(|&d| d > 0).collect();
        let max = nonzero[0];
        let median = nonzero[nonzero.len() / 2];
        assert!(max > 20 * median, "max {max} vs median {median}");
    }

    #[test]
    fn uniform_params_are_er_like() {
        let p = RmatParams { a: 0.25, b: 0.25, c: 0.25, d: 0.25 };
        let g = rmat(9, 4000, p, 3);
        let mut degrees = g.total_degrees();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let max = degrees[0];
        let median = degrees[degrees.len() / 2];
        assert!(max < 8 * median.max(1), "uniform R-MAT should be flat, max {max} median {median}");
    }

    #[test]
    fn no_self_loops() {
        let g = rmat(7, 800, RmatParams::default(), 4);
        assert!(g.edges().all(|(u, v, _)| u != v));
    }

    #[test]
    fn deterministic() {
        let p = RmatParams::default();
        assert_eq!(rmat(8, 900, p, 6).num_edges(), rmat(8, 900, p, 6).num_edges());
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn invalid_params_panic() {
        rmat(4, 10, RmatParams { a: 0.5, b: 0.5, c: 0.5, d: 0.5 }, 1);
    }
}
