//! Co-authorship graphs with Newman's weighting.
//!
//! Stands in for the paper's *Citation* dataset (cond-mat co-authorship):
//! authors co-author papers drawn from a skewed activity distribution, and
//! every pair of co-authors of a `k`-author paper receives weight
//! `1/(k−1)` (Newman, 2001) — summed over shared papers. Undirected.

use crate::util::power_law;
use kdash_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Generates a weighted co-authorship graph over `n_authors` authors and
/// `n_papers` papers. Papers have 2–6 authors; author selection is
/// preferential in past activity, creating the community-and-hub structure
/// of real co-authorship networks.
pub fn collaboration(n_authors: usize, n_papers: usize, seed: u64) -> CsrGraph {
    assert!(n_authors >= 6, "need at least 6 authors");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n_authors);
    // Activity-proportional sampling pool, seeded with every author once so
    // newcomers can be drawn.
    let mut pool: Vec<NodeId> = (0..n_authors as NodeId).collect();
    let mut authors: Vec<NodeId> = Vec::with_capacity(8);
    for _ in 0..n_papers {
        let k = power_law(&mut rng, 2.0, 6.0, 2.5) as usize;
        authors.clear();
        let mut guard = 0;
        while authors.len() < k && guard < 100 {
            guard += 1;
            let a = pool[rng.gen_range(0..pool.len())];
            if !authors.contains(&a) {
                authors.push(a);
            }
        }
        if authors.len() < 2 {
            continue;
        }
        let w = 1.0 / (authors.len() as f64 - 1.0);
        for i in 0..authors.len() {
            for j in i + 1..authors.len() {
                b.add_undirected_edge(authors[i], authors[j], w);
            }
            pool.push(authors[i]); // preferential reinforcement
        }
    }
    b.build().expect("generated edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_weighted_symmetric_graph() {
        let g = collaboration(200, 400, 1);
        assert_eq!(g.num_nodes(), 200);
        assert!(g.num_edges() > 0);
        for (u, v, w) in g.edges() {
            assert_eq!(g.edge_weight(v, u), Some(w), "asymmetric weight {u}<->{v}");
        }
    }

    #[test]
    fn pair_paper_weight_is_one() {
        // With only 2-author papers every edge weight is a whole number of
        // collaborations; more broadly weights are sums of 1/(k-1) <= 1 per
        // paper, so some weight below 1 must appear for k > 2 papers.
        let g = collaboration(300, 600, 2);
        let has_fractional = g.edges().any(|(_, _, w)| w < 0.999);
        assert!(has_fractional, "power-law paper sizes should produce k>2 papers");
    }

    #[test]
    fn activity_is_skewed() {
        let g = collaboration(1000, 3000, 3);
        let mut degrees = g.total_degrees();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let nonzero: Vec<_> = degrees.iter().copied().filter(|&d| d > 0).collect();
        assert!(nonzero[0] > 5 * nonzero[nonzero.len() / 2], "no prolific authors emerged");
    }

    #[test]
    fn deterministic() {
        assert_eq!(collaboration(150, 250, 9), collaboration(150, 250, 9));
    }
}
