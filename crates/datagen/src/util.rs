//! Sampling helpers shared by the generators.

use rand::{rngs::StdRng, Rng};

/// Draws from a Poisson distribution with mean `lambda`.
///
/// Knuth's product method below `lambda = 30`, a clamped normal
/// approximation above — accurate enough for edge-count sampling.
pub fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.gen_range(0.0..1.0);
        let mut count = 0u64;
        while product > limit {
            product *= rng.gen_range(0.0f64..1.0);
            count += 1;
        }
        count
    } else {
        let draw = lambda + lambda.sqrt() * standard_normal(rng);
        draw.round().max(0.0) as u64
    }
}

/// Box–Muller standard normal.
pub fn standard_normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let v = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        if v.is_finite() {
            return v;
        }
    }
}

/// Draws an integer from a discrete power-law `P(k) ∝ k^(−alpha)` on
/// `[k_min, k_max]` by inverse-transform on the continuous envelope.
pub fn power_law(rng: &mut StdRng, k_min: f64, k_max: f64, alpha: f64) -> u64 {
    debug_assert!(alpha > 1.0 && k_min >= 1.0 && k_max > k_min);
    let u: f64 = rng.gen_range(0.0..1.0);
    let one_minus = 1.0 - alpha;
    let x = (k_min.powf(one_minus) + u * (k_max.powf(one_minus) - k_min.powf(one_minus)))
        .powf(1.0 / one_minus);
    x.round().clamp(k_min, k_max) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn poisson_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(1);
        for lambda in [0.5, 5.0, 50.0, 500.0] {
            let trials = 4000;
            let sum: u64 = (0..trials).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = sum as f64 / trials as f64;
            assert!(
                (mean - lambda).abs() < 0.15 * lambda.max(1.0),
                "lambda {lambda}: mean {mean}"
            );
        }
    }

    #[test]
    fn poisson_zero_lambda() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -1.0), 0);
    }

    #[test]
    fn power_law_in_range_and_skewed() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut small = 0usize;
        for _ in 0..2000 {
            let k = power_law(&mut rng, 1.0, 1000.0, 2.5);
            assert!((1..=1000).contains(&k));
            if k <= 3 {
                small += 1;
            }
        }
        // Heavy skew: most draws are tiny.
        assert!(small > 1200, "only {small} small draws");
    }

    #[test]
    fn normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 8000;
        let draws: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }
}
