//! Watts–Strogatz small-world graphs.

use kdash_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// A ring lattice on `n` nodes where every node connects to its `k` nearest
/// neighbours on each side, with each edge rewired to a random target with
/// probability `beta`. Undirected (both directions stored).
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 1 && 2 * k < n, "need 1 <= k and 2k < n");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 2 * n * k);
    for v in 0..n {
        for offset in 1..=k {
            let mut t = (v + offset) % n;
            if rng.gen_bool(beta) {
                // Rewire to a uniform non-self target.
                loop {
                    t = rng.gen_range(0..n);
                    if t != v {
                        break;
                    }
                }
            }
            b.add_undirected_edge(v as NodeId, t as NodeId, 1.0);
        }
    }
    b.build().expect("generated edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdash_graph::components::weakly_connected_components;

    #[test]
    fn zero_beta_is_ring_lattice() {
        let g = watts_strogatz(12, 2, 0.0, 1);
        assert_eq!(g.num_nodes(), 12);
        // node 0 connects to 1, 2, 10, 11
        for t in [1, 2, 10, 11] {
            assert!(g.has_edge(0, t), "missing 0->{t}");
        }
        assert_eq!(g.out_degree(0), 4);
    }

    #[test]
    fn stays_connected_for_small_beta() {
        let g = watts_strogatz(200, 3, 0.1, 2);
        let (_, count) = weakly_connected_components(&g);
        assert_eq!(count, 1);
    }

    #[test]
    fn rewiring_changes_structure() {
        let lattice = watts_strogatz(100, 2, 0.0, 3);
        let rewired = watts_strogatz(100, 2, 0.5, 3);
        assert_ne!(lattice, rewired);
    }

    #[test]
    fn deterministic() {
        assert_eq!(watts_strogatz(60, 2, 0.2, 5), watts_strogatz(60, 2, 0.2, 5));
    }
}
