//! The five paper datasets as generator profiles.
//!
//! Each profile records the original node/edge counts (Appendix C of the
//! paper) and generates a structurally matching synthetic graph at a
//! configurable scale. `scale = 1.0` reproduces the paper's sizes; the
//! experiment harness defaults to a few thousand nodes per dataset so the
//! whole suite runs in minutes (see DESIGN.md, Substitutions).

use crate::{barabasi_albert, collaboration, rmat, RmatParams};
use kdash_graph::CsrGraph;

/// One of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetProfile {
    /// FOLDOC word web: ~13.4 k nodes, ~120 k directed edges, strong
    /// community structure with skewed in-degrees. Modelled as a directed
    /// planted partition.
    Dictionary,
    /// Oregon AS topology: ~23 k nodes, ~48 k undirected edges, extreme
    /// power law. Modelled as Barabási–Albert.
    Internet,
    /// cond-mat co-authorship: ~31 k nodes, ~120 k weighted edges, cliquey.
    /// Modelled by the Newman-weighted collaboration generator.
    Citation,
    /// Epinions trust network: ~132 k nodes, ~841 k directed edges.
    /// Modelled as R-MAT with the canonical social parameters.
    Social,
    /// EU research email: ~265 k nodes, ~420 k directed edges, very sparse
    /// with giant hubs. Modelled as a skewier R-MAT.
    Email,
}

impl DatasetProfile {
    /// All five datasets in the paper's presentation order.
    pub const ALL: [DatasetProfile; 5] = [
        DatasetProfile::Dictionary,
        DatasetProfile::Internet,
        DatasetProfile::Citation,
        DatasetProfile::Social,
        DatasetProfile::Email,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetProfile::Dictionary => "Dictionary",
            DatasetProfile::Internet => "Internet",
            DatasetProfile::Citation => "Citation",
            DatasetProfile::Social => "Social",
            DatasetProfile::Email => "Email",
        }
    }

    /// Node count of the original public dataset.
    pub fn paper_nodes(&self) -> usize {
        match self {
            DatasetProfile::Dictionary => 13_356,
            DatasetProfile::Internet => 22_963,
            DatasetProfile::Citation => 31_163,
            DatasetProfile::Social => 131_828,
            DatasetProfile::Email => 265_214,
        }
    }

    /// Edge count of the original public dataset.
    pub fn paper_edges(&self) -> usize {
        match self {
            DatasetProfile::Dictionary => 120_238,
            DatasetProfile::Internet => 48_436,
            DatasetProfile::Citation => 120_029,
            DatasetProfile::Social => 841_372,
            DatasetProfile::Email => 420_045,
        }
    }

    /// The scale that yields approximately `target_nodes` nodes.
    pub fn scale_for_nodes(&self, target_nodes: usize) -> f64 {
        (target_nodes as f64 / self.paper_nodes() as f64).min(1.0)
    }

    /// Generates the synthetic stand-in at the given scale (fraction of the
    /// original node count, floored at 300 nodes).
    pub fn generate(&self, scale: f64, seed: u64) -> CsrGraph {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        let n = ((self.paper_nodes() as f64 * scale) as usize).max(300);
        match self {
            DatasetProfile::Dictionary => {
                // ~9 edges per node, 85% intra-community; cross-topic links
                // run through gateway terms (~10% of each topic), matching
                // the doubly-bordered structure the paper's reorderings
                // exploit (Figure 1).
                let communities = (n / 90).max(8);
                let block = (n / communities).max(2);
                let p_in = (0.85 * 9.0) / (block.saturating_sub(1)).max(1) as f64;
                crate::sbm::gateway_partition(
                    n,
                    communities,
                    p_in.min(0.9),
                    0.15 * 9.0,
                    0.1,
                    seed,
                )
            }
            DatasetProfile::Internet => barabasi_albert(n, 2, seed),
            DatasetProfile::Citation => collaboration(n, (n * 3) / 2, seed),
            DatasetProfile::Social => {
                let scale_log = (n as f64).log2().ceil() as u32;
                let m = (6.4 * n as f64) as usize;
                rmat(scale_log, m, RmatParams::default(), seed)
            }
            DatasetProfile::Email => {
                let scale_log = (n as f64).log2().ceil() as u32;
                let m = (1.6 * n as f64) as usize;
                rmat(scale_log, m, RmatParams { a: 0.65, b: 0.2, c: 0.1, d: 0.05 }, seed)
            }
        }
    }
}

impl std::fmt::Display for DatasetProfile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_generate() {
        for p in DatasetProfile::ALL {
            let g = p.generate(0.02, 7);
            assert!(g.num_nodes() >= 300, "{p}: {} nodes", g.num_nodes());
            assert!(g.num_edges() > 0, "{p}: no edges");
        }
    }

    #[test]
    fn edge_density_tracks_paper_ratio() {
        // Density need not match exactly, but should be within 3x of the
        // paper's m/n for the directed profiles.
        for p in [DatasetProfile::Dictionary, DatasetProfile::Social, DatasetProfile::Email] {
            let g = p.generate(0.05, 3);
            let got = g.num_edges() as f64 / g.num_nodes() as f64;
            let want = p.paper_edges() as f64 / p.paper_nodes() as f64;
            assert!(
                got > want / 3.0 && got < want * 3.0,
                "{p}: m/n = {got:.2}, paper {want:.2}"
            );
        }
    }

    #[test]
    fn scale_for_nodes_roundtrip() {
        let p = DatasetProfile::Citation;
        let s = p.scale_for_nodes(2000);
        let g = p.generate(s, 1);
        let n = g.num_nodes();
        assert!((1000..4000).contains(&n), "{n}");
    }

    #[test]
    fn names_match_paper() {
        let names: Vec<_> = DatasetProfile::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["Dictionary", "Internet", "Citation", "Social", "Email"]);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DatasetProfile::Internet.generate(0.02, 5);
        let b = DatasetProfile::Internet.generate(0.02, 5);
        assert_eq!(a, b);
    }
}
