//! Barabási–Albert preferential attachment.
//!
//! Produces the heavy-tailed degree distributions of Internet-style graphs
//! (the paper's *Internet* dataset is the Oregon AS topology, a canonical
//! preferential-attachment graph).

use kdash_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Grows a graph by attaching each new node to `m_attach` existing nodes
/// with probability proportional to their degree. Edges are inserted in
/// both directions (the AS graph is undirected).
///
/// The seed graph is a `(m_attach + 1)`-clique; `n` must exceed that.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> CsrGraph {
    assert!(m_attach >= 1, "attachment degree must be >= 1");
    assert!(n > m_attach + 1, "need more than {} nodes", m_attach + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, 2 * n * m_attach);
    // Repeated-endpoint list: sampling uniformly from it is sampling
    // proportional to degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m_attach);

    let clique = m_attach + 1;
    for i in 0..clique {
        for j in i + 1..clique {
            b.add_undirected_edge(i as NodeId, j as NodeId, 1.0);
            endpoints.push(i as NodeId);
            endpoints.push(j as NodeId);
        }
    }
    let mut chosen: Vec<NodeId> = Vec::with_capacity(m_attach);
    for v in clique..n {
        chosen.clear();
        // Rejection-sample m_attach distinct targets.
        while chosen.len() < m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_undirected_edge(v as NodeId, t, 1.0);
            endpoints.push(v as NodeId);
            endpoints.push(t);
        }
    }
    b.build().expect("generated edges are valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_and_edge_counts() {
        let n = 200;
        let m_attach = 3;
        let g = barabasi_albert(n, m_attach, 5);
        assert_eq!(g.num_nodes(), n);
        // clique edges + attachment edges, both directions
        let clique_edges = (m_attach + 1) * m_attach / 2;
        let expected = 2 * (clique_edges + (n - m_attach - 1) * m_attach);
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = barabasi_albert(2000, 2, 11);
        let mut degrees = g.total_degrees();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let max = degrees[0];
        let median = degrees[degrees.len() / 2];
        assert!(max > 10 * median, "max {max} vs median {median} — no hub formed");
    }

    #[test]
    fn graph_is_symmetric() {
        let g = barabasi_albert(100, 2, 3);
        for (u, v, _) in g.edges() {
            assert!(g.has_edge(v, u), "missing reverse of {u}->{v}");
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(120, 2, 42), barabasi_albert(120, 2, 42));
    }
}
