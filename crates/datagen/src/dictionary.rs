//! A labelled word web with planted term clusters.
//!
//! The paper's Table 2 queries the FOLDOC dictionary graph for terms such
//! as "Microsoft" and checks that K-dash surfaces the semantically related
//! terms while the low-rank approximation scatters. FOLDOC itself is not
//! redistributable here, so this generator plants five topic clusters with
//! FOLDOC-flavoured labels inside a background word web: the case study
//! then measures how many planted cluster members each engine's top-k
//! recovers (a quantitative stand-in for the paper's qualitative table).
//!
//! Edge semantics follow the paper: an edge `u -> v` exists when term `v`
//! is used to describe term `u`.

use kdash_graph::{CsrGraph, GraphBuilder, NodeId};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// The planted topics and their member terms.
const TOPICS: &[(&str, &[&str])] = &[
    (
        "microsoft",
        &[
            "ms-dos",
            "windows-3.0",
            "windows-95",
            "windows-nt",
            "internet-explorer",
            "visual-basic",
            "excel",
            "activex",
        ],
    ),
    (
        "apple",
        &[
            "apple-ii",
            "macintosh",
            "quickdraw",
            "hypercard",
            "applescript",
            "powerbook",
            "firewire",
            "newton",
        ],
    ),
    (
        "linux",
        &[
            "kernel",
            "gnu",
            "bash",
            "debian",
            "red-hat",
            "x-window-system",
            "posix",
            "shell-script",
        ],
    ),
    (
        "database",
        &[
            "sql",
            "relational-model",
            "transaction",
            "b-tree",
            "query-optimizer",
            "acid",
            "secondary-index",
            "normalization",
        ],
    ),
    (
        "network",
        &["tcp-ip", "ethernet", "router", "packet", "bgp", "dns", "http", "socket"],
    ),
];

/// A generated dictionary graph with human-readable labels.
#[derive(Debug, Clone)]
pub struct DictionaryDataset {
    /// The word web.
    pub graph: CsrGraph,
    /// Node labels (planted terms first, then `word-<i>` background words).
    pub labels: Vec<String>,
    /// For every planted topic: the head node followed by its members.
    pub clusters: Vec<Vec<NodeId>>,
    /// Head terms, parallel to `clusters`.
    pub topics: Vec<String>,
}

impl DictionaryDataset {
    /// Node id of a labelled term, if present.
    pub fn node_of(&self, label: &str) -> Option<NodeId> {
        self.labels.iter().position(|l| l == label).map(|i| i as NodeId)
    }

    /// The planted members (excluding the head) of the topic owning `head`.
    pub fn planted_members(&self, head: NodeId) -> Option<&[NodeId]> {
        self.clusters.iter().find(|c| c[0] == head).map(|c| &c[1..])
    }
}

/// Generates the dictionary graph with `n_background` extra background
/// words around the planted clusters.
pub fn dictionary(n_background: usize, seed: u64) -> DictionaryDataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut labels: Vec<String> = Vec::new();
    let mut clusters: Vec<Vec<NodeId>> = Vec::new();
    let mut topics: Vec<String> = Vec::new();

    for (head, members) in TOPICS {
        let head_id = labels.len() as NodeId;
        labels.push((*head).to_string());
        let mut cluster = vec![head_id];
        for m in *members {
            cluster.push(labels.len() as NodeId);
            labels.push((*m).to_string());
        }
        clusters.push(cluster);
        topics.push((*head).to_string());
    }
    let background_start = labels.len();
    for i in 0..n_background {
        labels.push(format!("word-{i:04}"));
    }
    let n = labels.len();
    let mut b = GraphBuilder::new(n);

    // Dense intra-cluster structure: the head's definition cites every
    // member and vice versa (strong weights), members form a sparse ring.
    for cluster in &clusters {
        let head = cluster[0];
        for &m in &cluster[1..] {
            b.add_edge(head, m, 3.0);
            b.add_edge(m, head, 3.0);
        }
        for w in cluster[1..].windows(2) {
            b.add_edge(w[0], w[1], 1.0);
            b.add_edge(w[1], w[0], 1.0);
        }
    }
    // Background word web: each word's definition cites a few random other
    // words, with preference for earlier (more "basic") vocabulary — this
    // yields the skewed in-degrees of real dictionaries.
    for v in background_start..n {
        let refs = rng.gen_range(2..=6);
        for _ in 0..refs {
            let upper = v.max(background_start + 1);
            let t = if rng.gen_bool(0.7) {
                rng.gen_range(background_start..upper)
            } else {
                rng.gen_range(0..n)
            };
            if t != v {
                b.add_edge(v as NodeId, t as NodeId, 1.0);
            }
        }
    }
    // Sparse cross links: cluster terms occasionally cite background words
    // and (rarely) other clusters, so everything is one weak component.
    for cluster in &clusters {
        for &t in cluster {
            if n_background > 0 {
                let w = background_start + rng.gen_range(0..n_background);
                b.add_edge(t, w as NodeId, 0.5);
                b.add_edge(w as NodeId, t, 0.5);
            }
        }
    }

    DictionaryDataset { graph: b.build().expect("valid edges"), labels, clusters, topics }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_resolvable() {
        let d = dictionary(100, 1);
        let mut sorted = d.labels.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), d.labels.len(), "duplicate labels");
        assert!(d.node_of("microsoft").is_some());
        assert!(d.node_of("tcp-ip").is_some());
        assert!(d.node_of("no-such-term").is_none());
    }

    #[test]
    fn clusters_are_densely_linked() {
        let d = dictionary(50, 2);
        for cluster in &d.clusters {
            let head = cluster[0];
            for &m in &cluster[1..] {
                assert!(d.graph.has_edge(head, m));
                assert!(d.graph.has_edge(m, head));
            }
        }
    }

    #[test]
    fn planted_members_lookup() {
        let d = dictionary(10, 3);
        let ms = d.node_of("microsoft").unwrap();
        let members = d.planted_members(ms).unwrap();
        assert_eq!(members.len(), 8);
        assert!(d.planted_members(d.node_of("word-0001").unwrap()).is_none());
    }

    #[test]
    fn background_words_have_out_edges() {
        let d = dictionary(80, 4);
        let start = d.labels.iter().position(|l| l.starts_with("word-")).unwrap();
        for v in start..d.labels.len() {
            assert!(d.graph.out_degree(v as NodeId) >= 1, "word {v} is dangling");
        }
    }

    #[test]
    fn deterministic() {
        let a = dictionary(60, 9);
        let b = dictionary(60, 9);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.labels, b.labels);
    }
}
