//! Gilbert–Peierls reach analysis for incremental inverse maintenance.
//!
//! Column `q` of a triangular inverse `T⁻¹` is the solution of
//! `T x = e_q`, and the Gilbert–Peierls symbolic phase says its nonzero
//! pattern is exactly the set of nodes *reachable* from `q` in the
//! directed pattern graph of `T` (an edge `j → i` for every stored
//! off-diagonal `T_ij`). The numeric phase reads only the columns of `T`
//! in that reach. Two consequences drive the dynamic-update engine:
//!
//! 1. If none of the columns reachable from `q` changed, the solve for
//!    `q` reads only bit-identical inputs — and because reachability
//!    itself is determined step by step by the patterns of the columns
//!    traversed (all unchanged), the *reach* is also identical. Column
//!    `q` of `T⁻¹` is therefore **provably bit-identical** to a
//!    from-scratch inversion.
//! 2. Conversely, the set of inverse columns that *may* change when a
//!    column set `S` of `T` changes is `{ q : Reach_T(q) ∩ S ≠ ∅ }` —
//!    the set of nodes that reach `S`, i.e. the forward-reachable set of
//!    `S` in the **reverse** pattern graph (edge `i → j` for every
//!    stored off-diagonal `T_ij`).
//!
//! [`inverse_dirty_columns`] computes set (2) with one `O(nnz)` pattern
//! transpose plus a BFS that touches only the closure — the exact dirty
//! column set the re-solve stage has to pay for, and nothing else.
//! Everything outside it is untouched, which is the freshness guarantee
//! `tests/dynamic_equivalence.rs` pins.
//!
//! The same machinery drives the *factor* side: [`refactor_candidates`]
//! runs the pattern-only taint closure of the incremental
//! refactorisation ([`crate::refactor_columns`], see `lu`'s module docs
//! for the exactness argument) — the columns of the factorisation that
//! *can* change when the given `W` columns change, assuming every
//! candidate's `L` pattern changes. It is a provable superset of the
//! exact (value-aware) recompute set, cheap enough to serve as a
//! dry-run predictor and as the up-front schedule of the parallel
//! refactor path.

use crate::{CscMatrix, Index};

/// Row-pattern adjacency of `t` as flat CSR-ish arrays: for node `i`,
/// `cols[ptr[i]..ptr[i + 1]]` lists the columns `j ≠ i` with a stored
/// off-diagonal `t_ij` — the reverse of the Gilbert–Peierls pattern
/// graph. One counting transpose over the pattern; values untouched.
pub(crate) fn pattern_row_adjacency(t: &CscMatrix) -> (Vec<usize>, Vec<Index>) {
    let n = t.ncols();
    let (col_ptr, row_idx, _) = t.raw();
    let mut ptr = vec![0usize; n + 1];
    for (j, window) in col_ptr.windows(2).enumerate() {
        for &i in &row_idx[window[0]..window[1]] {
            if i as usize != j {
                ptr[i as usize + 1] += 1;
            }
        }
    }
    for i in 0..n {
        ptr[i + 1] += ptr[i];
    }
    let mut cols = vec![0 as Index; ptr[n]];
    let mut cursor = ptr.clone();
    for (j, window) in col_ptr.windows(2).enumerate() {
        for &i in &row_idx[window[0]..window[1]] {
            if i as usize != j {
                cols[cursor[i as usize]] = j as Index;
                cursor[i as usize] += 1;
            }
        }
    }
    (ptr, cols)
}

/// The columns of `T⁻¹` whose Gilbert–Peierls reach intersects `dirty` —
/// the exact set of inverse columns a change confined to the `dirty`
/// columns of `T` can affect. Returned sorted ascending; always a
/// superset of `dirty` itself (every in-bounds dirty column trivially
/// reaches itself). Out-of-bounds dirty indices are ignored. Works for
/// either triangle: the traversal follows stored off-diagonal entries,
/// and a valid triangular matrix only stores entries on its own side.
pub fn inverse_dirty_columns(t: &CscMatrix, dirty: &[Index]) -> Vec<Index> {
    let n = t.ncols();
    if n == 0 || dirty.is_empty() {
        return Vec::new();
    }
    // Row-pattern adjacency (the reverse graph): for node `i`, the
    // columns `j` with a stored off-diagonal `T_ij`.
    let (ptr, cols) = pattern_row_adjacency(t);

    // BFS from the dirty seed over the reverse graph.
    let mut visited = vec![false; n];
    let mut queue: Vec<Index> = Vec::new();
    for &s in dirty {
        if (s as usize) < n && !visited[s as usize] {
            visited[s as usize] = true;
            queue.push(s);
        }
    }
    let mut head = 0usize;
    while head < queue.len() {
        let v = queue[head] as usize;
        head += 1;
        for &j in &cols[ptr[v]..ptr[v + 1]] {
            if !visited[j as usize] {
                visited[j as usize] = true;
                queue.push(j);
            }
        }
    }
    queue.sort_unstable();
    queue
}

/// The factor columns that *can* be recomputed when the `dirty_w`
/// columns of `W` change, given the old factor `l` (strictly-lower part)
/// and the new matrix `w_new`: the pattern-only taint closure of the
/// incremental refactorisation. Ascending over the columns, column `j`
/// is a candidate iff its `W` column is dirty or `pattern(w_new(:, j))`
/// holds a tainted node, and every candidate immediately taints its
/// ancestors-or-self in the old `L`'s pattern DAG (as if its `L` part
/// were guaranteed to change). Because the exact algorithm only taints
/// from columns whose `L` part *did* change — a subset of the
/// candidates, by induction — this closure is always a **superset** of
/// the exact recompute set, which makes it safe as the up-front schedule
/// of [`crate::refactor_columns_with`]'s parallel path and honest as the
/// `--dry-run` predictor. Returned sorted ascending; out-of-bounds dirty
/// indices are ignored.
pub fn refactor_candidates(l: &CscMatrix, w_new: &CscMatrix, dirty_w: &[Index]) -> Vec<Index> {
    let n = l.ncols().min(w_new.ncols());
    if n == 0 || dirty_w.is_empty() {
        return Vec::new();
    }
    let mut dirty = vec![false; n];
    let mut any = false;
    for &d in dirty_w {
        if (d as usize) < n {
            dirty[d as usize] = true;
            any = true;
        }
    }
    if !any {
        return Vec::new();
    }
    let (ptr, cols) = pattern_row_adjacency(l);
    let mut taint = vec![false; n];
    let mut bfs: Vec<Index> = Vec::new();
    let mut out: Vec<Index> = Vec::new();
    for j in 0..n {
        let seeds = w_new.col(j as Index).0;
        let candidate =
            dirty[j] || seeds.iter().any(|&s| (s as usize) < n && taint[s as usize]);
        if !candidate {
            continue;
        }
        out.push(j as Index);
        if !taint[j] {
            taint[j] = true;
            bfs.push(j as Index);
            while let Some(v) = bfs.pop() {
                for &k in &cols[ptr[v as usize]..ptr[v as usize + 1]] {
                    if !taint[k as usize] {
                        taint[k as usize] = true;
                        bfs.push(k);
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{invert_lower_unit, invert_upper};

    #[test]
    fn lower_chain_reach_runs_upward() {
        // L (unit diag implicit): subdiagonal chain 0→1→2→3. Column q of
        // L⁻¹ reaches everything ≥ q, so dirtying column 2 dirties the
        // inverse columns {0, 1, 2} (they all reach 2), not column 3.
        let l = CscMatrix::from_triplets(
            4,
            4,
            &[(1, 0, -1.0), (2, 1, -1.0), (3, 2, -1.0)],
        )
        .unwrap();
        assert_eq!(inverse_dirty_columns(&l, &[2]), vec![0, 1, 2]);
        assert_eq!(inverse_dirty_columns(&l, &[0]), vec![0]);
        assert_eq!(inverse_dirty_columns(&l, &[3]), vec![0, 1, 2, 3]);
    }

    #[test]
    fn upper_chain_reach_runs_downward() {
        // U: superdiagonal chain. Column q of U⁻¹ reaches everything ≤ q.
        let u = CscMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 1.0),
                (1, 1, 1.0),
                (2, 2, 1.0),
                (3, 3, 1.0),
                (0, 1, 0.5),
                (1, 2, 0.5),
                (2, 3, 0.5),
            ],
        )
        .unwrap();
        assert_eq!(inverse_dirty_columns(&u, &[1]), vec![1, 2, 3]);
        assert_eq!(inverse_dirty_columns(&u, &[3]), vec![3]);
    }

    #[test]
    fn disconnected_blocks_do_not_leak() {
        // Two independent 2-blocks: dirt in one never reaches the other.
        let l = CscMatrix::from_triplets(4, 4, &[(1, 0, -0.5), (3, 2, -0.5)]).unwrap();
        assert_eq!(inverse_dirty_columns(&l, &[1]), vec![0, 1]);
        assert_eq!(inverse_dirty_columns(&l, &[2]), vec![2]);
    }

    #[test]
    fn empty_and_out_of_bounds_inputs() {
        let l = CscMatrix::from_triplets(3, 3, &[(1, 0, -1.0)]).unwrap();
        assert!(inverse_dirty_columns(&l, &[]).is_empty());
        assert_eq!(inverse_dirty_columns(&l, &[7]), Vec::<Index>::new());
        let empty = CscMatrix::zeros(0, 0);
        assert!(inverse_dirty_columns(&empty, &[0]).is_empty());
    }

    #[test]
    fn refactor_candidates_cover_the_dirty_columns_and_respect_components() {
        use crate::{refactor_columns, sparse_lu, ColumnUpdate};
        // Two independent 3-blocks in W: dirt in one block never makes
        // candidates in the other.
        let mut trips: Vec<(Index, Index, f64)> = Vec::new();
        for base in [0u32, 3] {
            for j in 0..3u32 {
                trips.push((base + j, base + j, 4.0));
                trips.push((base + (j + 1) % 3, base + j, -1.0));
            }
        }
        let w = CscMatrix::from_triplets(6, 6, &trips).unwrap();
        let f = sparse_lu(&w).unwrap();
        let cand = refactor_candidates(&f.l, &w, &[4]);
        assert!(cand.contains(&4));
        assert!(cand.iter().all(|&c| c >= 3), "block {{0,1,2}} must stay clean: {cand:?}");
        // Superset contract: the exact recompute set of a real edit is
        // contained in the candidates of the same dirty set.
        let mut vals = w.col(4).1.to_vec();
        vals[0] += 1.5;
        let w2 = w
            .splice_columns(&[ColumnUpdate { col: 4, rows: w.col(4).0.to_vec(), vals }])
            .unwrap();
        let cand2 = refactor_candidates(&f.l, &w2, &[4]);
        let (_, report) = refactor_columns(&f, &w2, &[4]).unwrap();
        for &c in &report.changed_l_columns {
            assert!(cand2.contains(&c), "changed column {c} missing from candidates {cand2:?}");
        }
        assert!(report.recomputed_columns <= cand2.len());
        // Degenerate inputs mirror inverse_dirty_columns.
        assert!(refactor_candidates(&f.l, &w, &[]).is_empty());
        assert!(refactor_candidates(&f.l, &w, &[99]).is_empty());
    }

    /// The exactness contract on random triangles: a column is in the
    /// computed dirty set **iff** its Gilbert–Peierls solve pattern
    /// intersects the dirty seed — verified against the actual solve
    /// patterns.
    #[test]
    fn dirty_set_matches_solve_patterns() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..20 {
            let n = rng.gen_range(3..28usize);
            let upper = trial % 2 == 0;
            let mut trips: Vec<(Index, Index, f64)> = Vec::new();
            for j in 0..n as Index {
                for i in 0..n as Index {
                    let strict = if upper { i < j } else { i > j };
                    if strict && rng.gen_bool(0.25) {
                        trips.push((i, j, rng.gen_range(0.1..1.0)));
                    }
                }
            }
            if upper {
                for j in 0..n as Index {
                    trips.push((j, j, 2.0));
                }
            }
            let t = CscMatrix::from_triplets(n, n, &trips).unwrap();
            let seed_col = rng.gen_range(0..n) as Index;
            let dirty = inverse_dirty_columns(&t, &[seed_col]);
            // Independent oracle: the forward Gilbert–Peierls reach of
            // each column, computed with a plain BFS over the *stored*
            // pattern (edge j → i for every off-diagonal T_ij).
            let forward_reach = |q: Index| -> Vec<Index> {
                let mut seen = vec![false; n];
                let mut stack = vec![q];
                seen[q as usize] = true;
                while let Some(j) = stack.pop() {
                    for &i in t.col(j).0 {
                        if i != j && !seen[i as usize] {
                            seen[i as usize] = true;
                            stack.push(i);
                        }
                    }
                }
                (0..n as Index).filter(|&v| seen[v as usize]).collect()
            };
            for q in 0..n as Index {
                let reaches_seed = forward_reach(q).contains(&seed_col);
                assert_eq!(dirty.contains(&q), reaches_seed, "trial {trial} q {q}");
            }
            // And inverting only the dirty columns after perturbing the
            // seed column leaves every clean column bit-identical.
            let inv_before = if upper { invert_upper(&t) } else { invert_lower_unit(&t) }.unwrap();
            let mut perturbed_trips = trips.clone();
            perturbed_trips.push((
                if upper { 0 } else { n as Index - 1 },
                seed_col,
                0.77,
            ));
            let t2 = match CscMatrix::from_triplets(n, n, &perturbed_trips) {
                Ok(m) => m,
                Err(_) => continue,
            };
            let dirty2 = {
                let mut d = inverse_dirty_columns(&t2, &[seed_col]);
                d.extend(dirty.iter().copied());
                d.sort_unstable();
                d.dedup();
                d
            };
            let inv_after =
                if upper { invert_upper(&t2) } else { invert_lower_unit(&t2) }.unwrap();
            for q in 0..n as Index {
                if !dirty2.contains(&q) {
                    let (ri, vi) = inv_before.col(q);
                    let (rj, vj) = inv_after.col(q);
                    assert_eq!(ri, rj, "trial {trial} clean col {q}: pattern changed");
                    for (a, b) in vi.iter().zip(vj) {
                        assert_eq!(
                            a.to_bits(),
                            b.to_bits(),
                            "trial {trial} clean col {q}: value changed"
                        );
                    }
                }
            }
        }
    }
}
