//! The proximity read path: one store, two row layouts, one policy.
//!
//! [`ProximityStore`] is what the query engine holds for `U⁻¹`: the row
//! payload in either the classic flat CSR layout or the bandwidth-lean
//! [`BlockedCsr`] encoding, plus the packed per-row [`RowStat`] table the
//! adaptive kernel policy reads (built once at index-assembly time so
//! policy decisions never touch the DRAM-resident index arrays).
//!
//! Every gather funnels through [`ProximityStore::row_gather`]: the
//! resolved kernel picks the arm (for [`GatherKernel::Adaptive`]
//! per row, via the deterministic policy), the layout picks the decode,
//! and both layouts end in the *same* slice kernels — which is why the
//! flat and blocked layouts are bit-identical under every kernel, pinned
//! by `tests/layout_equivalence.rs`. Byte-traffic and per-kernel row
//! counts accumulate into the caller's [`GatherCounters`].
//!
//! [`GatherKernel::Adaptive`]: crate::GatherKernel::Adaptive

use crate::blocked::prefetch_span;
use crate::kernel::{gather_scalar_counting, gather_wide, row_stat_of, IndexFootprint};
use crate::{
    BlockedCsr, CscMatrix, CsrMatrix, GatherCounters, GatherScratch, Index, ResolvedKernel,
    Result, RowStat, ScatteredColumn, SparseError,
};
use std::fmt;
use std::str::FromStr;

/// How a [`ProximityStore`] encodes its row indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowLayout {
    /// Plain CSR: one `u32` column index per stored entry.
    Flat,
    /// Block-compressed indices ([`BlockedCsr`]): `u16` deltas against
    /// aligned `u32` block anchors — ~half the index traffic on the
    /// fill-dominated inverse rows. The default.
    #[default]
    Blocked,
}

impl RowLayout {
    /// The layout's spelling (also what [`FromStr`] parses).
    pub fn name(self) -> &'static str {
        match self {
            RowLayout::Flat => "flat",
            RowLayout::Blocked => "blocked",
        }
    }
}

impl fmt::Display for RowLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for RowLayout {
    type Err = SparseError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "flat" => Ok(RowLayout::Flat),
            "blocked" => Ok(RowLayout::Blocked),
            other => Err(SparseError::Malformed(format!(
                "unknown row layout '{other}' (expected flat or blocked)"
            ))),
        }
    }
}

/// Row-major proximity storage behind the query engine (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ProximityStore {
    rows: RowStorage,
    /// Packed per-row policy stats (12 bytes/row), assembly-time built.
    row_stats: Vec<RowStat>,
    /// Largest row's stored-entry count — the decode-scratch high-water
    /// mark, so workspaces can preallocate and stay allocation-free.
    max_row_nnz: usize,
    /// Build-time footprint class steering the adaptive policy's hit-rate
    /// bar. Derived from stored value bytes (`8 × nnz`) — a
    /// layout-invariant quantity, so the executed kernel class (and with
    /// it flat/blocked bit-identity) never depends on the row encoding.
    footprint: IndexFootprint,
}

#[derive(Debug, Clone, PartialEq)]
enum RowStorage {
    Flat(CsrMatrix),
    Blocked(BlockedCsr),
}

impl ProximityStore {
    /// Builds the store from a flat CSR matrix, re-encoding per `layout`.
    /// Values are never touched, so results are bit-identical across
    /// layouts.
    pub fn from_csr(csr: CsrMatrix, layout: RowLayout) -> Result<ProximityStore> {
        let row_stats = row_stats_of_csr(&csr);
        let max_row_nnz = row_stats.iter().map(|s| s.nnz as usize).max().unwrap_or(0);
        let footprint = IndexFootprint::classify(8 * csr.nnz());
        let rows = match layout {
            RowLayout::Flat => RowStorage::Flat(csr),
            RowLayout::Blocked => RowStorage::Blocked(BlockedCsr::from_csr(csr)?),
        };
        Ok(ProximityStore { rows, row_stats, max_row_nnz, footprint })
    }

    /// Wraps an already-validated blocked matrix (the persistence load
    /// path), rebuilding the policy table from it.
    pub fn from_blocked(blocked: BlockedCsr) -> ProximityStore {
        let row_stats = row_stats_of_blocked(&blocked);
        let max_row_nnz = row_stats.iter().map(|s| s.nnz as usize).max().unwrap_or(0);
        let footprint = IndexFootprint::classify(8 * blocked.nnz());
        ProximityStore { rows: RowStorage::Blocked(blocked), row_stats, max_row_nnz, footprint }
    }

    /// Re-encodes into `layout` (no-op when already there). Values move
    /// bit-identically; the policy table is preserved.
    pub fn relayout(&self, layout: RowLayout) -> ProximityStore {
        if self.layout() == layout {
            return self.clone();
        }
        ProximityStore::from_csr(self.to_csr(), layout)
            .expect("a valid store re-encodes losslessly")
    }

    /// The active row layout.
    pub fn layout(&self) -> RowLayout {
        match &self.rows {
            RowStorage::Flat(_) => RowLayout::Flat,
            RowStorage::Blocked(_) => RowLayout::Blocked,
        }
    }

    /// The flat matrix, if that is the active layout.
    pub fn as_flat(&self) -> Option<&CsrMatrix> {
        match &self.rows {
            RowStorage::Flat(m) => Some(m),
            RowStorage::Blocked(_) => None,
        }
    }

    /// The blocked matrix, if that is the active layout.
    pub fn as_blocked(&self) -> Option<&BlockedCsr> {
        match &self.rows {
            RowStorage::Flat(_) => None,
            RowStorage::Blocked(b) => Some(b),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        match &self.rows {
            RowStorage::Flat(m) => m.nrows(),
            RowStorage::Blocked(b) => b.nrows(),
        }
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        match &self.rows {
            RowStorage::Flat(m) => m.ncols(),
            RowStorage::Blocked(b) => b.ncols(),
        }
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        match &self.rows {
            RowStorage::Flat(m) => m.nnz(),
            RowStorage::Blocked(b) => b.nnz(),
        }
    }

    /// The packed per-row policy table.
    pub fn row_stats(&self) -> &[RowStat] {
        &self.row_stats
    }

    /// Policy stats of one row.
    #[inline]
    pub fn row_stat(&self, r: Index) -> RowStat {
        self.row_stats[r as usize]
    }

    /// Largest row's stored-entry count (decode-scratch sizing).
    pub fn max_row_nnz(&self) -> usize {
        self.max_row_nnz
    }

    /// The build-time footprint class the adaptive policy consumes.
    pub fn footprint(&self) -> IndexFootprint {
        self.footprint
    }

    /// Index bytes a gather streams for row `r` under the active layout.
    #[inline]
    pub fn row_index_bytes(&self, r: Index) -> usize {
        match &self.rows {
            RowStorage::Flat(m) => 4 * m.row(r).0.len(),
            RowStorage::Blocked(b) => b.row_index_bytes(r),
        }
    }

    /// Index bytes of the whole store (the column-index encoding only —
    /// the quantity the blocked layout shrinks; row pointers and values
    /// are identical across layouts).
    pub fn index_bytes(&self) -> usize {
        match &self.rows {
            RowStorage::Flat(m) => 4 * m.nnz(),
            RowStorage::Blocked(b) => b.index_bytes(),
        }
    }

    /// Heap footprint of the stored arrays in bytes (policy table
    /// included).
    pub fn heap_bytes(&self) -> usize {
        let rows = match &self.rows {
            RowStorage::Flat(m) => m.heap_bytes(),
            RowStorage::Blocked(b) => b.heap_bytes(),
        };
        rows + self.row_stats.len() * std::mem::size_of::<RowStat>()
    }

    /// Rebuilds the flat CSR matrix (values bit-identical).
    pub fn to_csr(&self) -> CsrMatrix {
        match &self.rows {
            RowStorage::Flat(m) => m.clone(),
            RowStorage::Blocked(b) => b.to_csr(),
        }
    }

    /// Converts to CSC form (the transpose-array persistence encoding the
    /// flat format uses).
    pub fn to_csc(&self) -> CscMatrix {
        self.to_csr().to_csc()
    }

    /// **The** proximity gather: row `r` against the scattered query
    /// column, through the resolved kernel (per-row policy for
    /// `Adaptive`), with byte traffic and the kernel-class row split
    /// accumulated into `counters`. Both layouts end in the same slice
    /// kernels, so for a fixed kernel the result is bit-identical across
    /// layouts.
    #[inline]
    pub fn row_gather(
        &self,
        kernel: ResolvedKernel,
        r: Index,
        buf: &ScatteredColumn,
        scratch: &mut GatherScratch,
        counters: &mut GatherCounters,
    ) -> f64 {
        debug_assert_eq!(buf.dim(), self.ncols());
        let stat = self.row_stats[r as usize];
        let arm = kernel.arm_for_with(stat, buf, self.footprint);
        counters.index_bytes += self.row_index_bytes(r);
        counters.nnz += stat.nnz as usize;
        match (&self.rows, arm) {
            (RowStorage::Flat(m), None) => {
                let (cols, vals) = m.row(r);
                let (acc, hits) = gather_scalar_counting(cols, vals, buf);
                counters.rows_scalar += 1;
                counters.value_bytes += 8 * hits;
                acc
            }
            (RowStorage::Flat(m), Some(wide)) => {
                let (cols, vals) = m.row(r);
                counters.rows_wide += 1;
                counters.value_bytes += 8 * cols.len();
                gather_wide(wide, cols, vals, buf)
            }
            (RowStorage::Blocked(b), None) => {
                let (acc, hits) = b.row_dot_scattered_counting(r, buf);
                counters.rows_scalar += 1;
                counters.value_bytes += 8 * hits;
                acc
            }
            (RowStorage::Blocked(b), Some(wide)) => {
                b.decode_row_into(r, &mut scratch.cols);
                counters.rows_wide += 1;
                counters.value_bytes += 8 * scratch.cols.len();
                gather_wide(wide, &scratch.cols, b.row_values(r), buf)
            }
        }
    }

    /// Replaces whole rows under the active layout, refreshing the
    /// per-row policy table and the decode-scratch high-water mark for
    /// exactly the dirty rows — the splice stage of the dynamic-update
    /// engine. The result equals [`ProximityStore::from_csr`] of the
    /// fully spliced flat matrix under the same layout, arrays, policy
    /// table and all (pinned by the store tests and, end to end, by
    /// `tests/dynamic_equivalence.rs`). `updates` must be sorted by
    /// strictly increasing row.
    pub fn splice_rows(&self, updates: &[crate::csr::RowUpdate]) -> Result<ProximityStore> {
        let rows = match &self.rows {
            RowStorage::Flat(m) => RowStorage::Flat(m.splice_rows(updates)?),
            RowStorage::Blocked(b) => RowStorage::Blocked(b.splice_rows(updates)?),
        };
        let mut row_stats = self.row_stats.clone();
        for u in updates {
            row_stats[u.row as usize] = row_stat_of(&u.cols);
        }
        let max_row_nnz = row_stats.iter().map(|s| s.nnz as usize).max().unwrap_or(0);
        let footprint = match &rows {
            RowStorage::Flat(m) => IndexFootprint::classify(8 * m.nnz()),
            RowStorage::Blocked(b) => IndexFootprint::classify(8 * b.nnz()),
        };
        Ok(ProximityStore { rows, row_stats, max_row_nnz, footprint })
    }

    /// Two-pointer merge join of row `r` against a sorted sparse vector —
    /// the layout-agnostic reference kernel (bit-identical across
    /// layouts; the eager oracles run on it).
    #[inline]
    pub fn row_dot_sparse(&self, r: Index, idx: &[Index], val: &[f64]) -> f64 {
        match &self.rows {
            RowStorage::Flat(m) => m.row_dot_sparse(r, idx, val),
            RowStorage::Blocked(b) => b.row_dot_sparse(r, idx, val),
        }
    }

    /// Dense `y = A · x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        match &self.rows {
            RowStorage::Flat(m) => m.matvec(x),
            RowStorage::Blocked(b) => b.matvec(x),
        }
    }

    /// Issues software prefetches for the front of row `r`'s index and
    /// value spans — the candidate-batching hook: the search loop calls
    /// this a small block of candidates ahead, restoring memory-level
    /// parallelism on DRAM-resident rows.
    #[inline]
    pub fn prefetch_row(&self, r: Index) {
        match &self.rows {
            RowStorage::Flat(m) => {
                let (cols, vals) = m.row(r);
                prefetch_span(cols, 2);
                prefetch_span(vals, 2);
            }
            RowStorage::Blocked(b) => b.prefetch_row(r),
        }
    }
}

/// Per-row policy stats of a flat matrix.
fn row_stats_of_csr(csr: &CsrMatrix) -> Vec<RowStat> {
    (0..csr.nrows() as Index).map(|r| row_stat_of(csr.row(r).0)).collect()
}

/// Per-row policy stats of a blocked matrix.
pub fn row_stats_of_blocked(blocked: &BlockedCsr) -> Vec<RowStat> {
    (0..blocked.nrows() as Index)
        .map(|r| match (blocked.row_first_col(r), blocked.row_last_col(r)) {
            (Some(first), Some(last)) => {
                RowStat { nnz: blocked.row_nnz(r) as u32, first, last }
            }
            _ => RowStat::default(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GatherKernel;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_csr(nrows: usize, ncols: usize, density: f64, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trips = Vec::new();
        for r in 0..nrows as Index {
            for c in 0..ncols as Index {
                if rng.gen_bool(density) {
                    trips.push((r, c, rng.gen_range(-2.0..2.0)));
                }
            }
        }
        CsrMatrix::from_csc(&CscMatrix::from_triplets(nrows, ncols, &trips).unwrap())
    }

    fn loaded_column(n: usize, density: f64, seed: u64) -> ScatteredColumn {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut idx, mut val) = (Vec::new(), Vec::new());
        for i in 0..n as Index {
            if rng.gen_bool(density) {
                idx.push(i);
                val.push(rng.gen_range(-1.0..1.0));
            }
        }
        let mut buf = ScatteredColumn::new(n);
        buf.load(&idx, &val);
        buf
    }

    #[test]
    fn layouts_are_bit_identical_under_every_kernel() {
        for seed in 0..6u64 {
            let csr = random_csr(24, 48, 0.35, seed);
            let flat = ProximityStore::from_csr(csr.clone(), RowLayout::Flat).unwrap();
            let blocked = ProximityStore::from_csr(csr, RowLayout::Blocked).unwrap();
            assert_eq!(flat.row_stats(), blocked.row_stats(), "policy inputs must agree");
            let buf = loaded_column(48, 0.5, seed + 100);
            let mut scratch = GatherScratch::with_capacity(flat.max_row_nnz());
            for kernel in GatherKernel::ALL {
                let Ok(resolved) = kernel.resolve() else { continue };
                for r in 0..24 as Index {
                    let (mut ca, mut cb) = (GatherCounters::default(), GatherCounters::default());
                    let a = flat.row_gather(resolved, r, &buf, &mut scratch, &mut ca);
                    let b = blocked.row_gather(resolved, r, &buf, &mut scratch, &mut cb);
                    assert_eq!(a.to_bits(), b.to_bits(), "seed {seed} {kernel} row {r}");
                    // The kernel-class split and value traffic are layout-
                    // independent; index bytes shrink with the blocked
                    // encoding.
                    assert_eq!(ca.rows_scalar, cb.rows_scalar);
                    assert_eq!(ca.rows_wide, cb.rows_wide);
                    assert_eq!(ca.value_bytes, cb.value_bytes);
                }
            }
        }
    }

    #[test]
    fn counters_account_for_every_row() {
        let csr = random_csr(20, 40, 0.4, 2);
        let store = ProximityStore::from_csr(csr, RowLayout::Blocked).unwrap();
        let buf = loaded_column(40, 0.5, 7);
        let mut scratch = GatherScratch::with_capacity(store.max_row_nnz());
        let mut counters = GatherCounters::default();
        for r in 0..20 as Index {
            store.row_gather(ResolvedKernel::default(), r, &buf, &mut scratch, &mut counters);
        }
        assert_eq!(counters.rows_scalar + counters.rows_wide, 20);
        let expect_index: usize = (0..20).map(|r| store.row_index_bytes(r)).sum();
        assert_eq!(counters.index_bytes, expect_index);
        counters.reset();
        assert_eq!(counters, GatherCounters::default());
    }

    #[test]
    fn relayout_roundtrips() {
        let csr = random_csr(15, 30, 0.3, 5);
        let flat = ProximityStore::from_csr(csr, RowLayout::Flat).unwrap();
        let blocked = flat.relayout(RowLayout::Blocked);
        assert_eq!(blocked.layout(), RowLayout::Blocked);
        assert_eq!(flat.to_csr(), blocked.to_csr());
        assert_eq!(flat.nnz(), blocked.nnz());
        assert_eq!(flat.row_stats(), blocked.row_stats());
        assert!(blocked.index_bytes() < flat.index_bytes());
        let back = blocked.relayout(RowLayout::Flat);
        assert_eq!(back.to_csr(), flat.to_csr());
    }

    /// The store-level splice contract: under both layouts, splicing rows
    /// equals rebuilding the store from the fully spliced flat matrix —
    /// including the policy table and the decode-scratch high-water mark.
    #[test]
    fn splice_rows_matches_full_rebuild_under_both_layouts() {
        use crate::RowUpdate;
        for seed in 0..5u64 {
            let csr = random_csr(16, 40, 0.3, seed);
            let mut rng = StdRng::seed_from_u64(seed + 50);
            let mut updates: Vec<RowUpdate> = Vec::new();
            for r in [1u32, 7, 12] {
                let mut cols: Vec<Index> =
                    (0..rng.gen_range(0..30u32)).map(|_| rng.gen_range(0..40u32)).collect();
                cols.sort_unstable();
                cols.dedup();
                let vals: Vec<f64> = cols.iter().map(|&c| c as f64 - 3.5).collect();
                updates.push(RowUpdate { row: r, cols, vals });
            }
            let rebuilt_flat = csr.splice_rows(&updates).unwrap();
            for layout in [RowLayout::Flat, RowLayout::Blocked] {
                let store = ProximityStore::from_csr(csr.clone(), layout).unwrap();
                let spliced = store.splice_rows(&updates).unwrap();
                let rebuilt =
                    ProximityStore::from_csr(rebuilt_flat.clone(), layout).unwrap();
                assert_eq!(spliced, rebuilt, "seed {seed} layout {layout}");
                assert_eq!(spliced.row_stats(), rebuilt.row_stats(), "seed {seed}");
                assert_eq!(spliced.max_row_nnz(), rebuilt.max_row_nnz(), "seed {seed}");
            }
        }
    }

    #[test]
    fn merge_join_and_matvec_agree_across_layouts() {
        let csr = random_csr(18, 36, 0.3, 8);
        let flat = ProximityStore::from_csr(csr, RowLayout::Flat).unwrap();
        let blocked = flat.relayout(RowLayout::Blocked);
        let idx: Vec<Index> = (0..36).step_by(3).collect();
        let val: Vec<f64> = idx.iter().map(|&i| i as f64 * 0.25 - 2.0).collect();
        let dense: Vec<f64> = (0..36).map(|i| (i as f64).sin()).collect();
        for r in 0..18 as Index {
            assert_eq!(
                flat.row_dot_sparse(r, &idx, &val).to_bits(),
                blocked.row_dot_sparse(r, &idx, &val).to_bits()
            );
        }
        assert_eq!(flat.matvec(&dense), blocked.matvec(&dense));
    }
}
