//! Drop-tolerance sparsified triangular inverses.
//!
//! The exact inverses `L⁻¹` / `U⁻¹` are the index's memory wall: their
//! density is set by the reach closure of the ordering, and at scale the
//! stored nonzeros dwarf the graph itself. This module computes *sparsified*
//! inverses: each column solve runs with a drop tolerance `ε` that zeroes an
//! entry the moment it is final if its magnitude falls below `ε`
//! ([`SolveWorkspace::solve_truncated`]). Because the entry is killed
//! *before* it propagates, truncation prunes the whole downstream subtree it
//! would have filled in — cutting build time and peak memory together, not
//! just the stored bytes.
//!
//! The result is an approximation, and the per-column dropped ℓ₁ mass is
//! returned alongside each inverse so callers can account for it. Exactness
//! is restored at query time by certified residual refinement against the
//! stored graph (see `kdash-core`'s `Searcher`): the refinement loop treats
//! the sparsified inverses as a preconditioner and terminates only once a
//! rigorous residual bound separates the top-k set and order, so answers
//! remain exact — the dropped mass only shifts work from DRAM-bound gather
//! to a few cache-friendly correction passes.
//!
//! Properties mirrored from [`crate::inverse`]:
//!
//! * per-column solves are independent, so the work-stealing parallel driver
//!   is **bit-identical** to the sequential one at every thread count;
//! * with `ε == 0` the drivers delegate to the exact inverters, so the
//!   output arrays are bit-identical to [`crate::invert_lower_unit_with`] /
//!   [`crate::invert_upper_with`] and every dropped mass is exactly `0.0`;
//! * errors report the lowest failing column at every thread count.

use crate::inverse::claim_chunk;
use crate::{CscMatrix, Index, InvertOptions, Result, SolveWorkspace, SparseError, Triangle};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A sparsified triangular inverse plus its per-column dropped ℓ₁ masses.
#[derive(Debug, Clone, PartialEq)]
pub struct SparsifiedInverse {
    /// The truncated inverse; diagonals are protected and always present.
    pub inverse: CscMatrix,
    /// `dropped[j]` = Σ |x_i| over entries truncated from column `j`.
    /// All-zero when `ε == 0` or nothing fell below the tolerance.
    pub dropped: Vec<f64>,
}

/// Re-solved sparsified columns plus their dropped masses, parallel to the
/// requested column subset (the dynamic-engine counterpart of
/// [`crate::invert_columns_with`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SparsifiedColumns {
    /// One update per requested column, sorted ascending by column.
    pub updates: Vec<crate::csc::ColumnUpdate>,
    /// `dropped[k]` is the mass truncated from `updates[k]`'s solve.
    pub dropped: Vec<f64>,
}

/// Validates a drop tolerance: must be finite and non-negative.
pub fn validate_drop_tolerance(eps: f64) -> Result<()> {
    if !eps.is_finite() || eps < 0.0 {
        return Err(SparseError::InvalidDropTolerance(eps));
    }
    Ok(())
}

/// Sparsified [`crate::invert_lower_unit_with`]: inverts a unit lower
/// triangle, truncating entries below `eps` during each column solve. The
/// unit diagonal is the protected seed and is always stored explicitly.
pub fn sparsify_lower_unit_with(
    l: &CscMatrix,
    eps: f64,
    options: InvertOptions,
) -> Result<SparsifiedInverse> {
    sparsify(l, Triangle::Lower, true, eps, options)
}

/// Sparsified [`crate::invert_upper_with`]: inverts an upper triangle with
/// stored diagonal, truncating entries below `eps`. The diagonal entry
/// `1/U_jj` is the protected seed of column `j` and always survives.
pub fn sparsify_upper_with(
    u: &CscMatrix,
    eps: f64,
    options: InvertOptions,
) -> Result<SparsifiedInverse> {
    sparsify(u, Triangle::Upper, false, eps, options)
}

fn sparsify(
    t: &CscMatrix,
    triangle: Triangle,
    unit_diag: bool,
    eps: f64,
    options: InvertOptions,
) -> Result<SparsifiedInverse> {
    validate_drop_tolerance(eps)?;
    let n = t.nrows();
    if t.nrows() != t.ncols() {
        return Err(SparseError::NotSquare { nrows: t.nrows(), ncols: t.ncols() });
    }
    if eps == 0.0 {
        // Exact tier: delegate so the arrays are bit-identical to the
        // plain inverters (and the truncation branch costs nothing).
        let inverse = match triangle {
            Triangle::Lower => crate::invert_lower_unit_with(t, options)?,
            Triangle::Upper => crate::invert_upper_with(t, options)?,
        };
        return Ok(SparsifiedInverse { inverse, dropped: vec![0.0; n] });
    }
    let threads = options.resolved_threads(n);
    if threads <= 1 {
        sparsify_sequential(t, triangle, unit_diag, eps)
    } else {
        sparsify_parallel(t, triangle, unit_diag, eps, threads)
    }
}

fn sparsify_sequential(
    t: &CscMatrix,
    triangle: Triangle,
    unit_diag: bool,
    eps: f64,
) -> Result<SparsifiedInverse> {
    let n = t.nrows();
    let mut ws = SolveWorkspace::new(n);
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0usize);
    let mut row_idx: Vec<Index> = Vec::new();
    let mut values: Vec<f64> = Vec::new();
    let mut dropped = Vec::with_capacity(n);
    let (mut xi, mut xv) = (Vec::new(), Vec::new());
    for j in 0..n as Index {
        let mass = ws.solve_unit_truncated(t, triangle, unit_diag, j, eps, &mut xi, &mut xv)?;
        dropped.push(mass);
        row_idx.extend_from_slice(&xi);
        values.extend_from_slice(&xv);
        col_ptr.push(row_idx.len());
    }
    let inverse = CscMatrix::from_raw_parts(n, n, col_ptr, row_idx, values)?;
    Ok(SparsifiedInverse { inverse, dropped })
}

/// A contiguous run of solved columns, produced by one worker claim
/// (the sparsified twin of the block in [`crate::inverse`]).
struct ColumnBlock {
    first: usize,
    col_lens: Vec<usize>,
    rows: Vec<Index>,
    vals: Vec<f64>,
    /// Dropped ℓ₁ mass per column, parallel to `col_lens`.
    dropped: Vec<f64>,
}

fn sparsify_parallel(
    t: &CscMatrix,
    triangle: Triangle,
    unit_diag: bool,
    eps: f64,
    threads: usize,
) -> Result<SparsifiedInverse> {
    let n = t.nrows();
    let chunk = claim_chunk(n, threads);
    let cursor = AtomicUsize::new(0);

    type WorkerOutput = (Vec<ColumnBlock>, Option<(usize, SparseError)>);
    let worker_outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = SolveWorkspace::new(n);
                    let (mut xi, mut xv) = (Vec::new(), Vec::new());
                    let mut blocks: Vec<ColumnBlock> = Vec::new();
                    let mut error: Option<(usize, SparseError)> = None;
                    'claims: loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        let end = (start + chunk).min(n);
                        let mut block = ColumnBlock {
                            first: start,
                            col_lens: Vec::with_capacity(end - start),
                            rows: Vec::new(),
                            vals: Vec::new(),
                            dropped: Vec::with_capacity(end - start),
                        };
                        for j in start..end {
                            match ws.solve_unit_truncated(
                                t,
                                triangle,
                                unit_diag,
                                j as Index,
                                eps,
                                &mut xi,
                                &mut xv,
                            ) {
                                Ok(mass) => {
                                    block.col_lens.push(xi.len());
                                    block.rows.extend_from_slice(&xi);
                                    block.vals.extend_from_slice(&xv);
                                    block.dropped.push(mass);
                                }
                                Err(e) => {
                                    error = Some((j, e));
                                    // Poison the cursor; lowest-column error
                                    // still wins deterministically because
                                    // chunks go out in increasing order.
                                    cursor.fetch_max(n, Ordering::Relaxed);
                                    break 'claims;
                                }
                            }
                        }
                        blocks.push(block);
                    }
                    (blocks, error)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sparsify worker panicked")).collect()
    });

    let mut first_error: Option<(usize, SparseError)> = None;
    let mut blocks: Vec<ColumnBlock> = Vec::new();
    for (worker_blocks, error) in worker_outputs {
        blocks.extend(worker_blocks);
        if let Some((col, e)) = error {
            match &first_error {
                Some((lowest, _)) if *lowest <= col => {}
                _ => first_error = Some((col, e)),
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }

    blocks.sort_unstable_by_key(|b| b.first);
    let total_nnz: usize = blocks.iter().map(|b| b.rows.len()).sum();
    let mut col_ptr = Vec::with_capacity(n + 1);
    col_ptr.push(0usize);
    let mut row_idx: Vec<Index> = Vec::with_capacity(total_nnz);
    let mut values: Vec<f64> = Vec::with_capacity(total_nnz);
    let mut dropped: Vec<f64> = Vec::with_capacity(n);
    let mut next_col = 0usize;
    for block in &blocks {
        debug_assert_eq!(block.first, next_col, "blocks must tile the column range");
        next_col += block.col_lens.len();
        for &len in &block.col_lens {
            col_ptr.push(col_ptr.last().expect("non-empty") + len);
        }
        row_idx.extend_from_slice(&block.rows);
        values.extend_from_slice(&block.vals);
        dropped.extend_from_slice(&block.dropped);
    }
    debug_assert_eq!(next_col, n, "every column must be covered");
    let inverse = CscMatrix::from_raw_parts(n, n, col_ptr, row_idx, values)?;
    Ok(SparsifiedInverse { inverse, dropped })
}

/// Sparsified [`crate::invert_columns_with`]: re-solves a sorted column
/// subset under drop tolerance `eps`, returning each column's update plus
/// its dropped mass. This is what the dynamic-update engine runs so spliced
/// columns keep the sparsified tier's invariants: every returned column is
/// bit-identical to the same column of [`sparsify_lower_unit_with`] /
/// [`sparsify_upper_with`] output at the same `eps`.
pub fn sparsify_columns_with(
    t: &CscMatrix,
    triangle: Triangle,
    unit_diag: bool,
    columns: &[Index],
    eps: f64,
    options: InvertOptions,
) -> Result<SparsifiedColumns> {
    validate_drop_tolerance(eps)?;
    if eps == 0.0 {
        let updates = crate::invert_columns_with(t, triangle, unit_diag, columns, options)?;
        let dropped = vec![0.0; updates.len()];
        return Ok(SparsifiedColumns { updates, dropped });
    }
    let n = t.nrows();
    if t.nrows() != t.ncols() {
        return Err(SparseError::NotSquare { nrows: t.nrows(), ncols: t.ncols() });
    }
    for (k, &c) in columns.iter().enumerate() {
        if (c as usize) >= n {
            return Err(SparseError::Malformed(format!(
                "column {c} out of bounds for dimension {n}"
            )));
        }
        if k > 0 && columns[k - 1] >= c {
            return Err(SparseError::Malformed(
                "columns must be sorted strictly ascending".into(),
            ));
        }
    }
    // The dirty sets this serves are small; the sequential loop is the
    // common case and parallel claims reuse the exact-driver pattern.
    let threads = options.resolved_threads(columns.len());
    if threads <= 1 {
        let mut ws = SolveWorkspace::new(n);
        let (mut xi, mut xv) = (Vec::new(), Vec::new());
        let mut updates = Vec::with_capacity(columns.len());
        let mut dropped = Vec::with_capacity(columns.len());
        for &j in columns {
            let mass = ws.solve_unit_truncated(t, triangle, unit_diag, j, eps, &mut xi, &mut xv)?;
            updates.push(crate::csc::ColumnUpdate { col: j, rows: xi.clone(), vals: xv.clone() });
            dropped.push(mass);
        }
        return Ok(SparsifiedColumns { updates, dropped });
    }

    let chunk = claim_chunk(columns.len(), threads);
    let cursor = AtomicUsize::new(0);
    type Solved = (crate::csc::ColumnUpdate, f64);
    type WorkerOutput = (Vec<Solved>, Option<(usize, SparseError)>);
    let worker_outputs: Vec<WorkerOutput> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut ws = SolveWorkspace::new(n);
                    let (mut xi, mut xv) = (Vec::new(), Vec::new());
                    let mut solved: Vec<Solved> = Vec::new();
                    let mut error: Option<(usize, SparseError)> = None;
                    'claims: loop {
                        let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if start >= columns.len() {
                            break;
                        }
                        let end = (start + chunk).min(columns.len());
                        for &j in &columns[start..end] {
                            match ws.solve_unit_truncated(
                                t, triangle, unit_diag, j, eps, &mut xi, &mut xv,
                            ) {
                                Ok(mass) => solved.push((
                                    crate::csc::ColumnUpdate {
                                        col: j,
                                        rows: xi.clone(),
                                        vals: xv.clone(),
                                    },
                                    mass,
                                )),
                                Err(e) => {
                                    error = Some((j as usize, e));
                                    cursor.fetch_max(columns.len(), Ordering::Relaxed);
                                    break 'claims;
                                }
                            }
                        }
                    }
                    (solved, error)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sparsify column worker panicked")).collect()
    });

    let mut first_error: Option<(usize, SparseError)> = None;
    let mut all: Vec<Solved> = Vec::with_capacity(columns.len());
    for (solved, error) in worker_outputs {
        all.extend(solved);
        if let Some((col, e)) = error {
            match &first_error {
                Some((lowest, _)) if *lowest <= col => {}
                _ => first_error = Some((col, e)),
            }
        }
    }
    if let Some((_, e)) = first_error {
        return Err(e);
    }
    all.sort_unstable_by_key(|(u, _)| u.col);
    let mut updates = Vec::with_capacity(all.len());
    let mut dropped = Vec::with_capacity(all.len());
    for (u, mass) in all {
        updates.push(u);
        dropped.push(mass);
    }
    Ok(SparsifiedColumns { updates, dropped })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_lu;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_w(rng: &mut StdRng, n: usize, density: f64) -> CscMatrix {
        let mut trips: Vec<(Index, Index, f64)> = Vec::new();
        let mut col_sum = vec![0.0f64; n];
        for j in 0..n as Index {
            for i in 0..n as Index {
                if i != j && rng.gen_bool(density) {
                    let v: f64 = -rng.gen_range(0.01..0.5);
                    trips.push((i, j, v));
                    col_sum[j as usize] += v.abs();
                }
            }
        }
        for (j, &cs) in col_sum.iter().enumerate() {
            trips.push((j as Index, j as Index, cs + 0.6));
        }
        CscMatrix::from_triplets(n, n, &trips).unwrap()
    }

    fn assert_bit_identical(a: &CscMatrix, b: &CscMatrix, tag: &str) {
        let (ap, ai, av) = a.raw();
        let (bp, bi, bv) = b.raw();
        assert_eq!(ap, bp, "{tag}: col_ptr differs");
        assert_eq!(ai, bi, "{tag}: row_idx differs");
        let abits: Vec<u64> = av.iter().map(|v| v.to_bits()).collect();
        let bbits: Vec<u64> = bv.iter().map(|v| v.to_bits()).collect();
        assert_eq!(abits, bbits, "{tag}: values differ");
    }

    #[test]
    fn zero_eps_is_bit_identical_to_exact_inversion() {
        let mut rng = StdRng::seed_from_u64(41);
        let w = random_w(&mut rng, 24, 0.3);
        let f = sparse_lu(&w).unwrap();
        let exact_l = crate::invert_lower_unit(&f.l).unwrap();
        let exact_u = crate::invert_upper(&f.u).unwrap();
        let sl = sparsify_lower_unit_with(&f.l, 0.0, InvertOptions::sequential()).unwrap();
        let su = sparsify_upper_with(&f.u, 0.0, InvertOptions::sequential()).unwrap();
        assert_bit_identical(&exact_l, &sl.inverse, "linv");
        assert_bit_identical(&exact_u, &su.inverse, "uinv");
        assert!(sl.dropped.iter().chain(&su.dropped).all(|&m| m == 0.0));
        assert_eq!(sl.dropped.len(), 24);
    }

    #[test]
    fn sparsified_parallel_is_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(43);
        for trial in 0..4 {
            let n = rng.gen_range(10..50usize);
            let w = random_w(&mut rng, n, 0.25);
            let f = sparse_lu(&w).unwrap();
            for eps in [1e-8, 1e-4, 1e-2] {
                let seq = sparsify_lower_unit_with(&f.l, eps, InvertOptions::sequential()).unwrap();
                let sequ = sparsify_upper_with(&f.u, eps, InvertOptions::sequential()).unwrap();
                for threads in [0usize, 2, 3, 16] {
                    let opts = InvertOptions { threads };
                    let par = sparsify_lower_unit_with(&f.l, eps, opts).unwrap();
                    let paru = sparsify_upper_with(&f.u, eps, opts).unwrap();
                    let tag = format!("trial {trial} eps {eps} threads {threads}");
                    assert_bit_identical(&seq.inverse, &par.inverse, &tag);
                    assert_bit_identical(&sequ.inverse, &paru.inverse, &tag);
                    let db = |v: &Vec<f64>| v.iter().map(|m| m.to_bits()).collect::<Vec<_>>();
                    assert_eq!(db(&seq.dropped), db(&par.dropped), "{tag}: linv masses");
                    assert_eq!(db(&sequ.dropped), db(&paru.dropped), "{tag}: uinv masses");
                }
            }
        }
    }

    #[test]
    fn sparsification_prunes_and_accounts_mass() {
        let mut rng = StdRng::seed_from_u64(47);
        let w = random_w(&mut rng, 40, 0.3);
        let f = sparse_lu(&w).unwrap();
        let exact = crate::invert_lower_unit(&f.l).unwrap();
        let sp = sparsify_lower_unit_with(&f.l, 1e-2, InvertOptions::sequential()).unwrap();
        assert!(sp.inverse.nnz() < exact.nnz(), "{} !< {}", sp.inverse.nnz(), exact.nnz());
        assert!(sp.dropped.iter().sum::<f64>() > 0.0);
        // Diagonals are protected: every column still leads with its seed.
        for j in 0..40 as Index {
            assert!(sp.inverse.get(j, j).is_some(), "column {j} lost its diagonal");
        }
        // No stored entry below the tolerance except the protected diagonal.
        for j in 0..40 as Index {
            let (rows, vals) = sp.inverse.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                if i != j {
                    assert!(v.abs() >= 1e-2, "({i},{j}) = {v} survived below eps");
                }
            }
        }
    }

    #[test]
    fn column_subset_matches_full_sparsified_inversion() {
        let mut rng = StdRng::seed_from_u64(53);
        let n = 30;
        let w = random_w(&mut rng, n, 0.3);
        let f = sparse_lu(&w).unwrap();
        let eps = 1e-3;
        let full = sparsify_upper_with(&f.u, eps, InvertOptions::sequential()).unwrap();
        let subset: Vec<Index> = (0..n as Index).filter(|j| j % 2 == 0).collect();
        for threads in [1usize, 3, 0] {
            let opts = InvertOptions { threads };
            let cols =
                sparsify_columns_with(&f.u, Triangle::Upper, false, &subset, eps, opts).unwrap();
            assert_eq!(cols.updates.len(), subset.len());
            for (k, u) in cols.updates.iter().enumerate() {
                let (rows, vals) = full.inverse.col(u.col);
                assert_eq!(u.rows.as_slice(), rows, "col {}", u.col);
                for (a, b) in u.vals.iter().zip(vals) {
                    assert_eq!(a.to_bits(), b.to_bits(), "col {}", u.col);
                }
                assert_eq!(
                    cols.dropped[k].to_bits(),
                    full.dropped[u.col as usize].to_bits(),
                    "col {} mass",
                    u.col
                );
            }
        }
    }

    #[test]
    fn invalid_tolerances_rejected() {
        let l = CscMatrix::from_triplets(2, 2, &[(1, 0, 1.0)]).unwrap();
        for bad in [-1e-9, f64::NAN, f64::INFINITY] {
            let err =
                sparsify_lower_unit_with(&l, bad, InvertOptions::sequential()).unwrap_err();
            assert!(matches!(err, SparseError::InvalidDropTolerance(_)), "{bad}: {err:?}");
        }
        assert!(validate_drop_tolerance(0.0).is_ok());
        assert!(validate_drop_tolerance(1e-3).is_ok());
    }
}
