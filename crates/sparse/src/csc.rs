//! Compressed sparse column matrices.

use crate::{Index, Result, SparseError};

/// A sparse matrix in compressed-sparse-column form.
///
/// Row indices within a column are strictly increasing; stored values may be
/// zero only transiently (constructors drop explicit zeros).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<Index>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// An `nrows x ncols` matrix with no stored entries.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix { nrows, ncols, col_ptr: vec![0; ncols + 1], row_idx: Vec::new(), values: Vec::new() }
    }

    /// The `n x n` identity.
    pub fn identity(n: usize) -> Self {
        CscMatrix {
            nrows: n,
            ncols: n,
            col_ptr: (0..=n).collect(),
            row_idx: (0..n as Index).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds from `(row, col, value)` triplets. Duplicates are summed;
    /// entries that cancel to exactly zero are dropped.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: &[(Index, Index, f64)],
    ) -> Result<Self> {
        for &(r, c, v) in triplets {
            if (r as usize) >= nrows || (c as usize) >= ncols {
                return Err(SparseError::Malformed(format!(
                    "triplet ({r}, {c}) out of bounds for {nrows}x{ncols}"
                )));
            }
            if !v.is_finite() {
                return Err(SparseError::Malformed(format!("non-finite value at ({r}, {c})")));
            }
        }
        let mut count = vec![0usize; ncols + 1];
        for &(_, c, _) in triplets {
            count[c as usize + 1] += 1;
        }
        for c in 0..ncols {
            count[c + 1] += count[c];
        }
        let mut bucket: Vec<(Index, f64)> = vec![(0, 0.0); triplets.len()];
        let mut cursor = count.clone();
        for &(r, c, v) in triplets {
            bucket[cursor[c as usize]] = (r, v);
            cursor[c as usize] += 1;
        }
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        col_ptr.push(0);
        let mut row_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        for c in 0..ncols {
            let slice = &mut bucket[count[c]..count[c + 1]];
            slice.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < slice.len() {
                let r = slice[i].0;
                let mut v = slice[i].1;
                let mut j = i + 1;
                while j < slice.len() && slice[j].0 == r {
                    v += slice[j].1;
                    j += 1;
                }
                if v != 0.0 {
                    row_idx.push(r);
                    values.push(v);
                }
                i = j;
            }
            col_ptr.push(row_idx.len());
        }
        Ok(CscMatrix { nrows, ncols, col_ptr, row_idx, values })
    }

    /// Builds directly from CSC arrays, validating all invariants.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        col_ptr: Vec<usize>,
        row_idx: Vec<Index>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if col_ptr.len() != ncols + 1 {
            return Err(SparseError::Malformed("col_ptr length must be ncols + 1".into()));
        }
        if row_idx.len() != values.len() {
            return Err(SparseError::Malformed("row_idx and values length mismatch".into()));
        }
        if col_ptr[0] != 0 || col_ptr[ncols] != row_idx.len() {
            return Err(SparseError::Malformed("col_ptr bounds are inconsistent".into()));
        }
        for c in 0..ncols {
            if col_ptr[c] > col_ptr[c + 1] {
                return Err(SparseError::Malformed(format!("col_ptr not monotone at {c}")));
            }
            let rows = &row_idx[col_ptr[c]..col_ptr[c + 1]];
            for (i, &r) in rows.iter().enumerate() {
                if (r as usize) >= nrows {
                    return Err(SparseError::Malformed(format!("row {r} out of bounds")));
                }
                if i > 0 && rows[i - 1] >= r {
                    return Err(SparseError::Malformed(format!(
                        "rows not strictly increasing in column {c}"
                    )));
                }
            }
        }
        for &v in &values {
            if !v.is_finite() {
                return Err(SparseError::Malformed("non-finite stored value".into()));
            }
        }
        Ok(CscMatrix { nrows, ncols, col_ptr, row_idx, values })
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Row indices and values of column `c`.
    #[inline]
    pub fn col(&self, c: Index) -> (&[Index], &[f64]) {
        let c = c as usize;
        let range = self.col_ptr[c]..self.col_ptr[c + 1];
        (&self.row_idx[range.clone()], &self.values[range])
    }

    /// Entry `(r, c)` if stored (binary search).
    pub fn get(&self, r: Index, c: Index) -> Option<f64> {
        let (rows, vals) = self.col(c);
        rows.binary_search(&r).ok().map(|i| vals[i])
    }

    /// Iterator over all `(row, col, value)` entries in column order.
    pub fn triplets(&self) -> impl Iterator<Item = (Index, Index, f64)> + '_ {
        (0..self.ncols as Index).flat_map(move |c| {
            let (rows, vals) = self.col(c);
            rows.iter().zip(vals).map(move |(&r, &v)| (r, c, v))
        })
    }

    /// The transpose as a new CSC matrix (`O(nnz)` counting transpose).
    pub fn transpose(&self) -> CscMatrix {
        let mut col_ptr = vec![0usize; self.nrows + 1];
        for &r in &self.row_idx {
            col_ptr[r as usize + 1] += 1;
        }
        for i in 0..self.nrows {
            col_ptr[i + 1] += col_ptr[i];
        }
        let mut cursor = col_ptr.clone();
        let mut row_idx = vec![0 as Index; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        for c in 0..self.ncols as Index {
            let (rows, vals) = self.col(c);
            for (&r, &v) in rows.iter().zip(vals) {
                let slot = cursor[r as usize];
                row_idx[slot] = c;
                values[slot] = v;
                cursor[r as usize] += 1;
            }
        }
        CscMatrix { nrows: self.ncols, ncols: self.nrows, col_ptr, row_idx, values }
    }

    /// Dense `y += A · x` accumulation. `x` has `ncols` entries, `y` has
    /// `nrows`.
    pub fn matvec_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "x length mismatch");
        assert_eq!(y.len(), self.nrows, "y length mismatch");
        for (c, &xc) in x.iter().enumerate() {
            if xc == 0.0 {
                continue;
            }
            let range = self.col_ptr[c]..self.col_ptr[c + 1];
            for (r, v) in self.row_idx[range.clone()].iter().zip(&self.values[range]) {
                y[*r as usize] += v * xc;
            }
        }
    }

    /// Dense `y = A · x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.matvec_add(x, &mut y);
        y
    }

    /// `y += Aᵀ · x` without materialising the transpose.
    pub fn matvec_transpose_add(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "x length mismatch");
        assert_eq!(y.len(), self.ncols, "y length mismatch");
        for (c, yc) in y.iter_mut().enumerate() {
            let range = self.col_ptr[c]..self.col_ptr[c + 1];
            let mut acc = 0.0;
            for (r, v) in self.row_idx[range.clone()].iter().zip(&self.values[range]) {
                acc += v * x[*r as usize];
            }
            *yc += acc;
        }
    }

    /// Maximum stored value per column (0.0 for empty columns). This is the
    /// `A_max(v)` of the paper's Definition 1 when applied to the transition
    /// matrix (whose entries are all positive).
    pub fn col_max(&self) -> Vec<f64> {
        (0..self.ncols as Index)
            .map(|c| self.col(c).1.iter().copied().fold(0.0f64, f64::max))
            .collect()
    }

    /// Maximum stored value across the matrix (the paper's global `A_max`).
    pub fn global_max(&self) -> f64 {
        self.values.iter().copied().fold(0.0f64, f64::max)
    }

    /// Applies `f` to every stored value, keeping the pattern.
    pub fn map_values(&self, f: impl Fn(f64) -> f64) -> CscMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v = f(*v);
        }
        out
    }

    /// Strict triangularity checks used to validate factor outputs.
    pub fn is_strictly_lower(&self) -> bool {
        self.triplets().all(|(r, c, _)| r > c)
    }

    /// True if every stored entry satisfies `row <= col`.
    pub fn is_upper(&self) -> bool {
        self.triplets().all(|(r, c, _)| r <= c)
    }

    /// True if every stored entry satisfies `row >= col`.
    pub fn is_lower(&self) -> bool {
        self.triplets().all(|(r, c, _)| r >= c)
    }

    /// Dense copy in row-major order — test helper, `O(nrows · ncols)`.
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.ncols]; self.nrows];
        for (r, c, v) in self.triplets() {
            d[r as usize][c as usize] = v;
        }
        d
    }

    /// Raw CSC views `(col_ptr, row_idx, values)`.
    pub fn raw(&self) -> (&[usize], &[Index], &[f64]) {
        (&self.col_ptr, &self.row_idx, &self.values)
    }

    /// Memory used by the index and value arrays in bytes (reported by the
    /// Fig. 5 experiment alongside nnz ratios).
    pub fn heap_bytes(&self) -> usize {
        self.col_ptr.len() * std::mem::size_of::<usize>()
            + self.row_idx.len() * std::mem::size_of::<Index>()
            + self.values.len() * std::mem::size_of::<f64>()
    }

    /// The columns on which two equally-shaped matrices differ — by
    /// pattern or by value *bits* (so a `-0.0` vs `0.0` flip counts).
    /// This is the minimal dirty set the dynamic engine feeds into the
    /// reach analysis after refactorising. `O(nnz)`, sorted ascending.
    pub fn diff_columns(a: &CscMatrix, b: &CscMatrix) -> Result<Vec<Index>> {
        if a.nrows != b.nrows || a.ncols != b.ncols {
            return Err(SparseError::Malformed(format!(
                "diff of {}x{} against {}x{}",
                a.nrows, a.ncols, b.nrows, b.ncols
            )));
        }
        let mut dirty = Vec::new();
        for c in 0..a.ncols as Index {
            let (ra, va) = a.col(c);
            let (rb, vb) = b.col(c);
            let same = ra == rb
                && va.iter().zip(vb).all(|(x, y)| x.to_bits() == y.to_bits());
            if !same {
                dirty.push(c);
            }
        }
        Ok(dirty)
    }

    /// Replaces whole columns, returning a new matrix: every column named
    /// by an update takes the update's (sorted, validated) content, every
    /// other column is copied over verbatim — so the result is exactly
    /// what rebuilding all columns from scratch would produce when the
    /// updates came from the same per-column solves. `O(nnz)` with
    /// wholesale copies of the clean column ranges.
    ///
    /// `updates` must be sorted by strictly increasing column.
    pub fn splice_columns(&self, updates: &[ColumnUpdate]) -> Result<CscMatrix> {
        for (k, u) in updates.iter().enumerate() {
            if (u.col as usize) >= self.ncols {
                return Err(SparseError::Malformed(format!(
                    "update column {} out of bounds for {} columns",
                    u.col, self.ncols
                )));
            }
            if k > 0 && updates[k - 1].col >= u.col {
                return Err(SparseError::Malformed(
                    "updates must be sorted by strictly increasing column".into(),
                ));
            }
            if u.rows.len() != u.vals.len() {
                return Err(SparseError::Malformed(format!(
                    "update column {}: {} rows vs {} values",
                    u.col,
                    u.rows.len(),
                    u.vals.len()
                )));
            }
            for (i, &r) in u.rows.iter().enumerate() {
                if (r as usize) >= self.nrows {
                    return Err(SparseError::Malformed(format!(
                        "update column {}: row {r} out of bounds",
                        u.col
                    )));
                }
                if i > 0 && u.rows[i - 1] >= r {
                    return Err(SparseError::Malformed(format!(
                        "update column {}: rows not strictly increasing",
                        u.col
                    )));
                }
            }
            if u.vals.iter().any(|v| !v.is_finite()) {
                return Err(SparseError::Malformed(format!(
                    "update column {}: non-finite value",
                    u.col
                )));
            }
        }

        let delta: isize = updates
            .iter()
            .map(|u| u.rows.len() as isize - self.col(u.col).0.len() as isize)
            .sum();
        let new_nnz = (self.nnz() as isize + delta) as usize;
        let mut col_ptr = Vec::with_capacity(self.ncols + 1);
        col_ptr.push(0usize);
        let mut row_idx: Vec<Index> = Vec::with_capacity(new_nnz);
        let mut values: Vec<f64> = Vec::with_capacity(new_nnz);
        let mut clean_from = 0usize; // first column of the pending clean run
        let flush_clean = |upto: usize,
                               col_ptr: &mut Vec<usize>,
                               row_idx: &mut Vec<Index>,
                               values: &mut Vec<f64>,
                               clean_from: &mut usize| {
            if *clean_from < upto {
                let span = self.col_ptr[*clean_from]..self.col_ptr[upto];
                let base = row_idx.len() as isize - self.col_ptr[*clean_from] as isize;
                row_idx.extend_from_slice(&self.row_idx[span.clone()]);
                values.extend_from_slice(&self.values[span]);
                for c in *clean_from..upto {
                    col_ptr.push((self.col_ptr[c + 1] as isize + base) as usize);
                }
                *clean_from = upto;
            }
        };
        for u in updates {
            let c = u.col as usize;
            flush_clean(c, &mut col_ptr, &mut row_idx, &mut values, &mut clean_from);
            row_idx.extend_from_slice(&u.rows);
            values.extend_from_slice(&u.vals);
            col_ptr.push(row_idx.len());
            clean_from = c + 1;
        }
        flush_clean(self.ncols, &mut col_ptr, &mut row_idx, &mut values, &mut clean_from);
        Ok(CscMatrix { nrows: self.nrows, ncols: self.ncols, col_ptr, row_idx, values })
    }
}

/// A replacement for one column of a [`CscMatrix`]: the full new content
/// (possibly empty), sorted by row. Produced by the subset inversion
/// driver ([`crate::inverse::invert_columns_with`]) and consumed by
/// [`CscMatrix::splice_columns`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnUpdate {
    /// Which column the update replaces.
    pub col: Index,
    /// Sorted row indices of the new content.
    pub rows: Vec<Index>,
    /// Values parallel to `rows`.
    pub vals: Vec<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [1 0 2]
        // [0 3 0]
        // [4 0 5]
        CscMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (2, 0, 4.0), (1, 1, 3.0), (0, 2, 2.0), (2, 2, 5.0)])
            .unwrap()
    }

    #[test]
    fn triplet_construction() {
        let m = sample();
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 0), Some(1.0));
        assert_eq!(m.get(2, 2), Some(5.0));
        assert_eq!(m.get(1, 0), None);
        let (rows, vals) = m.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 4.0]);
    }

    #[test]
    fn duplicates_sum_and_zeros_drop() {
        let m = CscMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.0), (1, 1, 1.0), (1, 1, -1.0)])
            .unwrap();
        assert_eq!(m.get(0, 0), Some(3.0));
        assert_eq!(m.get(1, 1), None);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn bounds_and_nan_rejected() {
        assert!(CscMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CscMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN)]).is_err());
    }

    #[test]
    fn transpose_matches_dense() {
        let m = sample();
        let t = m.transpose();
        let d = m.to_dense();
        let td = t.to_dense();
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(d[r][c], td[c][r]);
            }
        }
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let y = m.matvec(&x);
        assert_eq!(y, vec![1.0 + 6.0, 6.0, 4.0 + 15.0]);
        let mut yt = vec![0.0; 3];
        m.matvec_transpose_add(&x, &mut yt);
        // A^T x: col c of A dot x
        assert_eq!(yt, vec![1.0 + 12.0, 6.0, 2.0 + 15.0]);
    }

    #[test]
    fn identity_and_zeros() {
        let i = CscMatrix::identity(3);
        assert_eq!(i.matvec(&[1.0, 2.0, 3.0]), vec![1.0, 2.0, 3.0]);
        let z = CscMatrix::zeros(2, 3);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.matvec(&[1.0, 1.0, 1.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn col_max_and_global_max() {
        let m = sample();
        assert_eq!(m.col_max(), vec![4.0, 3.0, 5.0]);
        assert_eq!(m.global_max(), 5.0);
        assert_eq!(CscMatrix::zeros(2, 2).col_max(), vec![0.0, 0.0]);
    }

    #[test]
    fn triangular_predicates() {
        let lower = CscMatrix::from_triplets(2, 2, &[(1, 0, 1.0)]).unwrap();
        assert!(lower.is_strictly_lower());
        assert!(lower.is_lower());
        assert!(!lower.is_upper());
        let diag = CscMatrix::identity(2);
        assert!(diag.is_upper());
        assert!(diag.is_lower());
        assert!(!diag.is_strictly_lower());
    }

    #[test]
    fn from_raw_parts_validation() {
        assert!(CscMatrix::from_raw_parts(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        // bad col_ptr length
        assert!(CscMatrix::from_raw_parts(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).is_err());
        // unsorted rows
        assert!(CscMatrix::from_raw_parts(2, 1, vec![0, 2], vec![1, 0], vec![1.0, 1.0]).is_err());
        // row out of bounds
        assert!(CscMatrix::from_raw_parts(2, 1, vec![0, 1], vec![7], vec![1.0]).is_err());
    }

    #[test]
    fn map_values_keeps_pattern() {
        let m = sample().map_values(|v| v * 2.0);
        assert_eq!(m.get(2, 0), Some(8.0));
        assert_eq!(m.nnz(), 5);
    }

    #[test]
    fn diff_columns_finds_pattern_and_value_changes() {
        let a = sample();
        assert_eq!(CscMatrix::diff_columns(&a, &a).unwrap(), Vec::<Index>::new());
        // Value change in column 1, pattern change in column 2.
        let b = CscMatrix::from_triplets(
            3,
            3,
            &[(0, 0, 1.0), (2, 0, 4.0), (1, 1, 3.5), (0, 2, 2.0)],
        )
        .unwrap();
        assert_eq!(CscMatrix::diff_columns(&a, &b).unwrap(), vec![1, 2]);
        let wrong_shape = CscMatrix::zeros(2, 3);
        assert!(CscMatrix::diff_columns(&a, &wrong_shape).is_err());
    }

    #[test]
    fn splice_columns_matches_from_scratch() {
        let a = sample();
        let updates = vec![
            ColumnUpdate { col: 0, rows: vec![1], vals: vec![7.0] },
            ColumnUpdate { col: 2, rows: vec![0, 1, 2], vals: vec![1.0, 2.0, 3.0] },
        ];
        let spliced = a.splice_columns(&updates).unwrap();
        let scratch = CscMatrix::from_triplets(
            3,
            3,
            &[(1, 0, 7.0), (1, 1, 3.0), (0, 2, 1.0), (1, 2, 2.0), (2, 2, 3.0)],
        )
        .unwrap();
        assert_eq!(spliced, scratch);
        // Column 1 survived verbatim; zero-length updates empty a column.
        let emptied = a
            .splice_columns(&[ColumnUpdate { col: 1, rows: vec![], vals: vec![] }])
            .unwrap();
        assert_eq!(emptied.col(1).0.len(), 0);
        assert_eq!(emptied.col(0), a.col(0));
        assert_eq!(emptied.col(2), a.col(2));
        // Empty update list is the identity.
        assert_eq!(a.splice_columns(&[]).unwrap(), a);
    }

    #[test]
    fn splice_columns_validates() {
        let a = sample();
        // unsorted updates
        assert!(a
            .splice_columns(&[
                ColumnUpdate { col: 2, rows: vec![], vals: vec![] },
                ColumnUpdate { col: 0, rows: vec![], vals: vec![] },
            ])
            .is_err());
        // out-of-bounds column / row
        assert!(a.splice_columns(&[ColumnUpdate { col: 9, rows: vec![], vals: vec![] }]).is_err());
        assert!(a
            .splice_columns(&[ColumnUpdate { col: 0, rows: vec![5], vals: vec![1.0] }])
            .is_err());
        // length mismatch, unsorted rows, non-finite values
        assert!(a
            .splice_columns(&[ColumnUpdate { col: 0, rows: vec![0, 1], vals: vec![1.0] }])
            .is_err());
        assert!(a
            .splice_columns(&[ColumnUpdate { col: 0, rows: vec![1, 0], vals: vec![1.0, 2.0] }])
            .is_err());
        assert!(a
            .splice_columns(&[ColumnUpdate { col: 0, rows: vec![0], vals: vec![f64::NAN] }])
            .is_err());
    }
}
