//! Runtime-dispatched gather kernels.
//!
//! The query hot loop is the gather [`CsrMatrix::row_dot_scattered`]: one
//! dot product of a `U⁻¹` row against the scattered query column per
//! candidate. On the dense rows hub queries touch, the reference kernel's
//! single scalar accumulator serialises every add behind the previous
//! one — the loop runs at FP-add latency, not throughput. This module
//! provides two wider kernels and the machinery to pick one safely at
//! runtime:
//!
//! * [`CsrMatrix::row_dot_unrolled4`] — a portable fixed-width kernel with
//!   **four** independent accumulators: lane `j` sums the row's nonzeros at
//!   positions `≡ j (mod 4)`, and the lanes reduce as
//!   `(acc0 + acc2) + (acc1 + acc3)`.
//! * [`CsrMatrix::row_dot_avx2`] (x86-64 only) — the same kernel as four
//!   SIMD lanes: stamps are fetched four at once (`vpgatherdd`), compared
//!   against the generation in one instruction, and values are fetched
//!   with a *masked* gather (`vgatherdpd`) so lanes whose stamp check fails
//!   never touch the value array at all.
//!
//! Both kernels perform **the same lane operations in the same order** —
//! unmatched positions contribute an explicit `value = 0.0` to their lane
//! (instead of the reference kernel's skipped add), full four-wide chunks
//! first, the `len % 4` tail folded into lanes `0..tail` scalar-wise, then
//! the fixed lane reduction. Their results are therefore **bit-identical
//! to each other on every row**, on every machine — deterministic output
//! no matter which kernel the host dispatches to — though they may differ
//! from the one-accumulator reference in the last bits (different
//! association order; the equivalence suite pins `≤ 1e-12` against it, and
//! the search results stay exact against the iterative ground truth under
//! every kernel).
//!
//! Selection is two-phase so unsupported choices fail *typed* instead of
//! faulting: a [`GatherKernel`] is the caller's request, and
//! [`GatherKernel::resolve`] checks it against the host CPU, returning a
//! construction-gated [`ResolvedKernel`] token — the only way to obtain
//! one — or [`SparseError::UnsupportedKernel`]. Only [`GatherKernel::Auto`]
//! ever falls back (SIMD where detected, otherwise the unrolled kernel);
//! an explicit `Simd` request on a CPU without AVX2 is an error, never a
//! silent downgrade.

use crate::{CsrMatrix, Index, Result, ScatteredColumn, SparseError};
use std::fmt;
use std::str::FromStr;

/// A requested gather kernel, resolved against the host CPU by
/// [`resolve`](GatherKernel::resolve) before use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GatherKernel {
    /// The one-accumulator reference gather
    /// ([`CsrMatrix::row_dot_scattered`]), bit-identical to the merge join.
    Scalar,
    /// The portable four-accumulator kernel
    /// ([`CsrMatrix::row_dot_unrolled4`]).
    Unrolled4,
    /// The vector kernel ([`CsrMatrix::row_dot_avx2`] on x86-64 with AVX2).
    /// Resolution fails on hosts that cannot honour it.
    Simd,
    /// `Simd` where the host supports it, otherwise `Unrolled4` — the only
    /// variant that falls back instead of erroring.
    #[default]
    Auto,
}

impl GatherKernel {
    /// Every selectable kernel, in CLI presentation order.
    pub const ALL: [GatherKernel; 4] =
        [GatherKernel::Scalar, GatherKernel::Unrolled4, GatherKernel::Simd, GatherKernel::Auto];

    /// The selector's spelling (also what [`FromStr`] parses).
    pub fn name(self) -> &'static str {
        match self {
            GatherKernel::Scalar => "scalar",
            GatherKernel::Unrolled4 => "unrolled",
            GatherKernel::Simd => "simd",
            GatherKernel::Auto => "auto",
        }
    }

    /// Resolves the request against the host CPU. `Scalar` and `Unrolled4`
    /// always succeed; `Simd` succeeds only where the vector kernel can
    /// actually run ([`simd_support`] explains the host's answer); `Auto`
    /// falls back to `Unrolled4` when SIMD is unavailable.
    pub fn resolve(self) -> Result<ResolvedKernel> {
        match self {
            GatherKernel::Scalar => Ok(ResolvedKernel(Dispatch::Scalar)),
            GatherKernel::Unrolled4 => Ok(ResolvedKernel(Dispatch::Unrolled4)),
            GatherKernel::Simd => match simd_support() {
                Ok(dispatch) => Ok(ResolvedKernel(dispatch)),
                Err(reason) => Err(SparseError::UnsupportedKernel {
                    requested: self.name().to_string(),
                    reason,
                }),
            },
            GatherKernel::Auto => Ok(ResolvedKernel(
                simd_support().unwrap_or(Dispatch::Unrolled4),
            )),
        }
    }
}

impl fmt::Display for GatherKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for GatherKernel {
    type Err = SparseError;

    fn from_str(s: &str) -> Result<Self> {
        match s {
            "scalar" => Ok(GatherKernel::Scalar),
            "unrolled" | "unrolled4" => Ok(GatherKernel::Unrolled4),
            "simd" => Ok(GatherKernel::Simd),
            "auto" => Ok(GatherKernel::Auto),
            other => Err(SparseError::UnsupportedKernel {
                requested: other.to_string(),
                reason: "unknown kernel (expected scalar, unrolled, simd or auto)".to_string(),
            }),
        }
    }
}

/// Whether the host can run the vector kernel, and which one.
fn simd_support() -> std::result::Result<Dispatch, String> {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            Ok(Dispatch::Avx2)
        } else {
            Err("host x86-64 CPU does not report AVX2".to_string())
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Err(format!(
            "no vector gather kernel for target architecture {}",
            std::env::consts::ARCH
        ))
    }
}

/// A kernel choice validated against the host CPU — the token
/// [`CsrMatrix::row_dot_scattered_with`] dispatches on.
///
/// Only obtainable through [`GatherKernel::resolve`]; the inner dispatch
/// target is private so a vector variant can never be conjured on a host
/// that failed detection (calling AVX2 code there would be undefined
/// behaviour, not just wrong).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedKernel(Dispatch);

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dispatch {
    Scalar,
    Unrolled4,
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl ResolvedKernel {
    /// What actually runs, for logs and stats: `"scalar"`, `"unrolled"` or
    /// `"avx2"`.
    pub fn name(self) -> &'static str {
        match self.0 {
            Dispatch::Scalar => "scalar",
            Dispatch::Unrolled4 => "unrolled",
            #[cfg(target_arch = "x86_64")]
            Dispatch::Avx2 => "avx2",
        }
    }

    /// Whether this resolution dispatches to a vector (`std::arch`) path.
    pub fn is_simd(self) -> bool {
        match self.0 {
            Dispatch::Scalar | Dispatch::Unrolled4 => false,
            #[cfg(target_arch = "x86_64")]
            Dispatch::Avx2 => true,
        }
    }
}

impl Default for ResolvedKernel {
    /// The `Auto` resolution for this host.
    fn default() -> Self {
        GatherKernel::Auto.resolve().expect("Auto always resolves")
    }
}

impl CsrMatrix {
    /// [`row_dot_scattered`](Self::row_dot_scattered) through the kernel
    /// `kernel` resolved for this host. The hot-path entry point: one
    /// enum branch, then straight into the selected kernel.
    #[inline]
    pub fn row_dot_scattered_with(
        &self,
        kernel: ResolvedKernel,
        r: Index,
        buf: &ScatteredColumn,
    ) -> f64 {
        match kernel.0 {
            Dispatch::Scalar => self.row_dot_scattered(r, buf),
            Dispatch::Unrolled4 => self.row_dot_unrolled4(r, buf),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: a `Dispatch::Avx2` token only exists if
            // `GatherKernel::resolve` observed AVX2 on this host.
            Dispatch::Avx2 => unsafe { self.row_dot_avx2_unchecked(r, buf) },
        }
    }

    /// The portable four-accumulator gather: lane `j` accumulates the
    /// row's nonzeros at positions `≡ j (mod 4)`; an unmatched position
    /// contributes `value × 0.0` to its lane; the `len % 4` tail lands in
    /// lanes `0..tail`; lanes reduce as `(acc0 + acc2) + (acc1 + acc3)`.
    ///
    /// This exact operation order is the cross-kernel contract: the SIMD
    /// kernels perform the same per-lane multiplies and adds in the same
    /// sequence, so their results are bit-identical to this one on every
    /// row (pinned by the kernel equivalence suite).
    pub fn row_dot_unrolled4(&self, r: Index, buf: &ScatteredColumn) -> f64 {
        debug_assert_eq!(buf.dim(), self.ncols());
        let (cols, vals) = self.row(r);
        let (stamps, generation, values) = buf.raw_parts();
        #[inline(always)]
        fn lane(stamps: &[u32], generation: u32, values: &[f64], c: u32, v: f64) -> f64 {
            let c = c as usize;
            let x = if stamps[c] == generation { values[c] } else { 0.0 };
            v * x
        }
        // Four named accumulators (not an array) so they live in registers:
        // the whole point is breaking the FP-add latency chain, which an
        // in-memory accumulator would silently re-serialise through
        // store-to-load forwarding.
        let (mut acc0, mut acc1, mut acc2, mut acc3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        let mut col_chunks = cols.chunks_exact(4);
        let mut val_chunks = vals.chunks_exact(4);
        for (cc, vv) in (&mut col_chunks).zip(&mut val_chunks) {
            acc0 += lane(stamps, generation, values, cc[0], vv[0]);
            acc1 += lane(stamps, generation, values, cc[1], vv[1]);
            acc2 += lane(stamps, generation, values, cc[2], vv[2]);
            acc3 += lane(stamps, generation, values, cc[3], vv[3]);
        }
        let mut acc = [acc0, acc1, acc2, acc3];
        for (j, (&c, &v)) in
            col_chunks.remainder().iter().zip(val_chunks.remainder()).enumerate()
        {
            acc[j] += lane(stamps, generation, values, c, v);
        }
        (acc[0] + acc[2]) + (acc[1] + acc[3])
    }

    /// The AVX2 gather: four stamps per `vpgatherdd`, one generation
    /// compare per chunk, and a *masked* `vgatherdpd` so failed lanes never
    /// read the value array. Lane arithmetic (`vmulpd` + `vaddpd`, no FMA)
    /// and the tail/reduction mirror
    /// [`row_dot_unrolled4`](Self::row_dot_unrolled4) exactly, so the two
    /// are bit-identical on every row.
    ///
    /// Panics if the host CPU does not report AVX2; resolve
    /// [`GatherKernel::Simd`] and use
    /// [`row_dot_scattered_with`](Self::row_dot_scattered_with) to get a
    /// typed error instead.
    #[cfg(target_arch = "x86_64")]
    pub fn row_dot_avx2(&self, r: Index, buf: &ScatteredColumn) -> f64 {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "row_dot_avx2 called on a host without AVX2"
        );
        // SAFETY: just checked the required target feature.
        unsafe { self.row_dot_avx2_unchecked(r, buf) }
    }

    /// # Safety
    /// The host CPU must support AVX2.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn row_dot_avx2_unchecked(&self, r: Index, buf: &ScatteredColumn) -> f64 {
        use std::arch::x86_64::*;
        debug_assert_eq!(buf.dim(), self.ncols());
        // The gathers sign-extend each 32-bit index lane: a column index
        // >= 2^31 would wrap negative and read out of bounds. Unreachable
        // for any matrix this crate can build in practice, but the unsafe
        // block must not rely on "in practice" — fail loudly instead.
        assert!(
            self.ncols() <= i32::MAX as usize,
            "AVX2 gather kernel limited to matrices with < 2^31 columns"
        );
        let (cols, vals) = self.row(r);
        let (stamps, generation, values) = buf.raw_parts();
        let split = cols.len() - cols.len() % 4;
        let generation_v = _mm_set1_epi32(generation as i32);
        let zero = _mm256_setzero_pd();
        let mut acc_v = zero;
        let mut i = 0;
        while i < split {
            // SAFETY (for every gather below): `cols` holds validated
            // in-bounds column indices for a matrix whose column count
            // equals `buf.dim()` and (asserted above) fits in i32, so the
            // sign-extended index lanes are non-negative and `stamps[c]`
            // and `values[c]` are in-bounds reads; the masked value gather
            // touches only lanes whose stamp matched.
            let idx = _mm_loadu_si128(cols.as_ptr().add(i) as *const __m128i);
            let st = _mm_i32gather_epi32::<4>(stamps.as_ptr() as *const i32, idx);
            let mask = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(_mm_cmpeq_epi32(
                st,
                generation_v,
            )));
            let x = _mm256_mask_i32gather_pd::<8>(zero, values.as_ptr(), idx, mask);
            let v = _mm256_loadu_pd(vals.as_ptr().add(i));
            acc_v = _mm256_add_pd(acc_v, _mm256_mul_pd(v, x));
            i += 4;
        }
        let mut acc = [0.0f64; 4];
        _mm256_storeu_pd(acc.as_mut_ptr(), acc_v);
        for j in 0..cols.len() - split {
            let c = cols[split + j] as usize;
            let x = if stamps[c] == generation { values[c] } else { 0.0 };
            acc[j] += vals[split + j] * x;
        }
        (acc[0] + acc[2]) + (acc[1] + acc[3])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CscMatrix;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_csr(nrows: usize, ncols: usize, density: f64, seed: u64) -> CsrMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut trips = Vec::new();
        for r in 0..nrows as Index {
            for c in 0..ncols as Index {
                if rng.gen_bool(density) {
                    trips.push((r, c, rng.gen_range(-2.0..2.0)));
                }
            }
        }
        CsrMatrix::from_csc(&CscMatrix::from_triplets(nrows, ncols, &trips).unwrap())
    }

    fn random_sparse_vec(n: usize, density: f64, seed: u64) -> (Vec<Index>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut idx, mut val) = (Vec::new(), Vec::new());
        for i in 0..n as Index {
            if rng.gen_bool(density) {
                idx.push(i);
                val.push(rng.gen_range(-1.0..1.0));
            }
        }
        (idx, val)
    }

    /// Every kernel the host can run, with the reference first.
    fn host_kernels() -> Vec<ResolvedKernel> {
        let mut kernels = vec![
            GatherKernel::Scalar.resolve().unwrap(),
            GatherKernel::Unrolled4.resolve().unwrap(),
        ];
        if let Ok(simd) = GatherKernel::Simd.resolve() {
            kernels.push(simd);
        }
        kernels.push(GatherKernel::Auto.resolve().unwrap());
        kernels
    }

    #[test]
    fn kernels_agree_within_tolerance_and_unrolled_matches_simd_bitwise() {
        for seed in 0..12u64 {
            // Row lengths sweep every tail residue (len % 4 ∈ {0,1,2,3})
            // because density is random per row.
            let m = random_csr(24, 53, 0.35, seed);
            let (idx, val) = random_sparse_vec(53, 0.4, seed + 99);
            let mut buf = ScatteredColumn::new(53);
            buf.load(&idx, &val);
            for r in 0..24 as Index {
                let reference = m.row_dot_scattered(r, &buf);
                let unrolled = m.row_dot_unrolled4(r, &buf);
                assert!(
                    (reference - unrolled).abs() <= 1e-12 * reference.abs().max(1.0),
                    "seed {seed} row {r}: scalar {reference} vs unrolled {unrolled}"
                );
                if let Ok(simd) = GatherKernel::Simd.resolve() {
                    let vec = m.row_dot_scattered_with(simd, r, &buf);
                    assert_eq!(
                        unrolled.to_bits(),
                        vec.to_bits(),
                        "seed {seed} row {r}: unrolled {unrolled} vs simd {vec} not bit-identical"
                    );
                }
            }
        }
    }

    #[test]
    fn every_tail_length_is_exact() {
        // Deterministic rows of length 0..=9 against a fully-loaded buffer:
        // both wide kernels must equal the exact (rational) dot product.
        for len in 0..10usize {
            let trips: Vec<(Index, Index, f64)> =
                (0..len).map(|c| (0, c as Index, (c + 1) as f64 * 0.25)).collect();
            let m = CsrMatrix::from_csc(&CscMatrix::from_triplets(1, 10, &trips).unwrap());
            let idx: Vec<Index> = (0..10).collect();
            let val: Vec<f64> = (0..10).map(|i| (i as f64) - 4.0).collect();
            let mut buf = ScatteredColumn::new(10);
            buf.load(&idx, &val);
            let exact: f64 =
                (0..len).map(|c| (c + 1) as f64 * 0.25 * ((c as f64) - 4.0)).sum();
            for kernel in host_kernels() {
                let got = m.row_dot_scattered_with(kernel, 0, &buf);
                assert!(
                    (got - exact).abs() < 1e-12,
                    "len {len} kernel {}: {got} vs {exact}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn unmatched_positions_contribute_nothing() {
        // A row whose columns are entirely outside the loaded vector: all
        // kernels must return exactly 0.0 (the wide kernels' explicit
        // `value × 0.0` lanes included), even with negative row values.
        let trips: Vec<(Index, Index, f64)> =
            (0..7).map(|c| (0, c as Index, -1.5 * (c + 1) as f64)).collect();
        let m = CsrMatrix::from_csc(&CscMatrix::from_triplets(1, 12, &trips).unwrap());
        let mut buf = ScatteredColumn::new(12);
        buf.load(&[9, 11], &[3.0, -4.0]);
        for kernel in host_kernels() {
            let got = m.row_dot_scattered_with(kernel, 0, &buf);
            assert_eq!(got, 0.0, "kernel {}", kernel.name());
        }
    }

    #[test]
    fn kernels_respect_epoch_rollover() {
        let m = random_csr(8, 16, 0.5, 5);
        let mut buf = ScatteredColumn::new(16);
        let all: Vec<Index> = (0..16).collect();
        buf.force_epoch(u32::MAX - 1);
        buf.load(&all, &vec![1.0; 16]); // generation becomes u32::MAX
        let (idx, val) = random_sparse_vec(16, 0.3, 6);
        buf.load(&idx, &val); // wraps: stamps cleared
        for kernel in host_kernels() {
            for r in 0..8 as Index {
                let want = m.row_dot_sparse(r, &idx, &val);
                let got = m.row_dot_scattered_with(kernel, r, &buf);
                assert!(
                    (got - want).abs() < 1e-12,
                    "kernel {} row {r}: {got} vs {want} after rollover",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn selector_parsing_and_names() {
        for kernel in GatherKernel::ALL {
            assert_eq!(kernel.name().parse::<GatherKernel>().unwrap(), kernel);
        }
        assert_eq!("unrolled4".parse::<GatherKernel>().unwrap(), GatherKernel::Unrolled4);
        match "neon-but-misspelled".parse::<GatherKernel>() {
            Err(SparseError::UnsupportedKernel { requested, .. }) => {
                assert_eq!(requested, "neon-but-misspelled");
            }
            other => panic!("expected UnsupportedKernel, got {other:?}"),
        }
    }

    #[test]
    fn resolution_is_typed_and_auto_always_succeeds() {
        assert_eq!(GatherKernel::Scalar.resolve().unwrap().name(), "scalar");
        assert_eq!(GatherKernel::Unrolled4.resolve().unwrap().name(), "unrolled");
        let auto = GatherKernel::Auto.resolve().expect("Auto must resolve on every host");
        match GatherKernel::Simd.resolve() {
            // Where SIMD resolves, Auto must have picked it up too.
            Ok(simd) => {
                assert!(simd.is_simd());
                assert_eq!(auto, simd, "Auto must prefer the vector kernel when available");
            }
            // Where it does not, the error is typed and Auto fell back.
            Err(SparseError::UnsupportedKernel { requested, reason }) => {
                assert_eq!(requested, "simd");
                assert!(!reason.is_empty());
                assert_eq!(auto.name(), "unrolled");
            }
            Err(other) => panic!("expected UnsupportedKernel, got {other:?}"),
        }
    }
}
